#!/usr/bin/env bash
# End-to-end serving smoke against a real `ddb serve` daemon:
#
#   1. start the server on the examples catalog with --drain-on-stdin-close,
#      holding its stdin open on a pipe (the supervisor handshake);
#   2. parity: `ddb call` answers must be byte-identical — stdout AND the
#      oracle line on stderr — to the local CLI for all ten semantics;
#   3. chaos: malformed frames, oversized payloads, half-closes,
#      mid-request disconnects, concurrent cancellation (`ddb chaos`);
#   4. a deterministic fail-after sweep: every trip is a typed `unknown`
#      exiting 3, and the first un-tripped run matches the baseline;
#   5. drain by closing the server's stdin — the daemon must exit 0 and
#      report zero leaked sessions.
#
# Usage: scripts/serve_chaos.sh [threads]   (DDB overrides the binary path)
set -euo pipefail

DDB="${DDB:-./target/debug/ddb}"
THREADS="${1:-1}"
WORK="$(mktemp -d)"
SERVER_PID=""

cleanup() {
    exec 9>&- 2>/dev/null || true
    if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== serve smoke (--threads $THREADS)"
mkfifo "$WORK/stdin"
"$DDB" serve examples/vase.dl --db layers=examples/layers.dlv \
    --threads "$THREADS" --workers 4 --queue 8 --drain-on-stdin-close \
    < "$WORK/stdin" > "$WORK/out" 2> "$WORK/err" &
SERVER_PID=$!
# Hold the write end of the server's stdin; closing fd 9 later is the
# drain signal. (Opening it also unblocks the server's open of the FIFO.)
exec 9> "$WORK/stdin"

for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^listening on //p' "$WORK/out")"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" || { cat "$WORK/err"; echo "server died on startup"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never announced its address"; exit 1; }
echo "   listening on $ADDR"

echo "== parity: served answers byte-identical to the CLI, all ten semantics"
for sem in gcwa egcwa ccwa ecwa ddr pws perf icwa dsm pdsm; do
    "$DDB" query examples/vase.dl --semantics "$sem" --formula "-treat" \
        > "$WORK/local.out" 2> "$WORK/local.err"
    "$DDB" call --addr "$ADDR" --db vase --semantics "$sem" --formula "-treat" \
        > "$WORK/served.out" 2> "$WORK/served.err"
    cmp "$WORK/local.out" "$WORK/served.out" \
        || { echo "stdout parity broke under $sem"; exit 1; }
    cmp "$WORK/local.err" "$WORK/served.err" \
        || { echo "oracle-line parity broke under $sem"; exit 1; }
done
for sem in gcwa dsm pdsm; do
    "$DDB" models examples/vase.dl --semantics "$sem" \
        > "$WORK/local.out" 2> "$WORK/local.err"
    "$DDB" call --addr "$ADDR" --op models --db vase --semantics "$sem" \
        > "$WORK/served.out" 2> "$WORK/served.err"
    cmp "$WORK/local.out" "$WORK/served.out" \
        || { echo "models parity broke under $sem"; exit 1; }
    cmp "$WORK/local.err" "$WORK/served.err" \
        || { echo "models oracle-line parity broke under $sem"; exit 1; }
done

echo "== chaos: malformed frames, disconnects, cancellation, fail-after sweep"
"$DDB" chaos --addr "$ADDR" --rounds 120 --fail-after-max 128

echo "== fail-after sweep: typed unknown (exit 3) at every interior checkpoint"
"$DDB" query examples/vase.dl --semantics gcwa --formula "-treat" \
    > "$WORK/base.out" 2> /dev/null
# The budget counts its checkpoints; sweep one past the total so the
# final iteration is the un-tripped run that must match the baseline.
total="$("$DDB" call --addr "$ADDR" --db vase --semantics gcwa --formula "-treat" --json \
    | sed -n 's/.*"checkpoints": *\([0-9]*\).*/\1/p')"
[ -n "$total" ] || { echo "could not read the checkpoint total"; exit 1; }
completed=""
for n in $(seq 1 $((total + 1))); do
    rc=0
    "$DDB" call --addr "$ADDR" --db vase --semantics gcwa --formula "-treat" \
        --fail-after "$n" > "$WORK/fa.out" 2> "$WORK/fa.err" || rc=$?
    if [ "$rc" -eq 0 ]; then
        cmp "$WORK/base.out" "$WORK/fa.out" \
            || { echo "un-tripped run at fail-after $n drifted from baseline"; exit 1; }
        completed="$n"
        break
    fi
    [ "$rc" -eq 3 ] || { echo "fail-after $n exited $rc, not 3"; cat "$WORK/fa.err"; exit 1; }
    grep -q '^unknown$' "$WORK/fa.out" \
        || { echo "fail-after $n trip is not a typed unknown"; cat "$WORK/fa.out"; exit 1; }
done
[ -n "$completed" ] || { echo "query never completed within the sweep"; exit 1; }
echo "   query completes at checkpoint $completed; every earlier trip was typed"

echo "== stats: serve.* counters exposed over the wire"
rc=0
"$DDB" call --addr "$ADDR" --op stats --json > "$WORK/stats.json" || rc=$?
[ "$rc" -eq 0 ] || { echo "stats op failed ($rc)"; exit 1; }
grep -q '"serve.requests"' "$WORK/stats.json" \
    || { echo "stats snapshot is missing serve.* counters"; exit 1; }

echo "== drain: closing the server's stdin must drain with zero leaks"
exec 9>&-
rc=0
wait "$SERVER_PID" || rc=$?
SERVER_PID=""
cat "$WORK/err"
[ "$rc" -eq 0 ] || { echo "server exited $rc"; exit 1; }
grep -q "leaked 0" "$WORK/err" || { echo "drain report leaked sessions"; exit 1; }
echo "== serve smoke ok (--threads $THREADS)"
