//! `ddb` — command-line front end for the disjunctive-database engine.
//!
//! ```text
//! ddb classify <file>
//!     Report the database's syntactic class, stratification and stats.
//!
//! ddb check <file> [--json] [--strict]
//!     Static analysis: fragment classification, stratification, and the
//!     lint pass (DDB001–DDB011). Exit codes are stable: 0 when the
//!     report is clean, 1 when only warning-level lints fired, 2 on any
//!     error-level finding (parse and safety failures included). With
//!     --strict, warnings count as errors and exit 2.
//!
//! ddb slice <file> --query "<f>" [--semantics <name>] [--json]
//!     Query-relevant slicing: print the backward relevance slice of the
//!     query, the SCC condensation layers, and — per semantics — which
//!     soundness precondition admits (or blocks) answering on the slice.
//!
//! ddb rewrite <file> --query "<f>" [--semantics <name>] [--json]
//!     The magic-sets rewrite of the query: the demand restriction the
//!     planner routes bound queries through (dead rules pruned when the
//!     database is positive and the query minimal-model-determined),
//!     rendered as a guarded program with `magic__` seeds and demand
//!     rules, and — per semantics — whether the rewrite is admitted or
//!     which rule blocks it.
//!
//! ddb models <file> --semantics <name> [--partition-p a,b] [--partition-q c]
//!     Enumerate the characteristic models of a semantics.
//!
//! ddb query <file> --semantics <name> --formula "<f>" [--brave] [--explain]
//! ddb query <file> --semantics <name> --literal [-]<atom> [--explain]
//!     Decide (cautious or brave) inference; --explain prints a
//!     countermodel when the query is not inferred. `--formula` may be
//!     repeated: the batch shares one parse/analysis pass and the
//!     formulas are decided concurrently on `--threads` workers, printing
//!     one `<formula>: <verdict>` line each, in command order.
//!
//! ddb exists <file> --semantics <name>
//!     The paper's model-existence problem.
//!
//! ddb wfs <file>
//!     The well-founded model of a normal program (polynomial).
//!
//! ddb profile <file> [--literal [-]<atom>] [--formula "<f>"] [--cell-timeout-ms <n>]
//!     Run all ten semantics on all three problems and print the observed
//!     oracle-call matrix next to the paper's predicted complexity classes.
//!     With --cell-timeout-ms (or any resource limit), each cell runs under
//!     its own fresh budget; exhausted cells are marked `?<resource>` and
//!     the sweep continues.
//!
//! ddb explain <file> [--query "<f>"] [--semantics <name>] [--json] [--execute]
//!     The static query plan: per semantics, the route tree the
//!     dispatcher will take for the query (Horn / hcf / magic / slice /
//!     split / islands / generic), annotated with the paper's complexity
//!     class and a sound upper bound on oracle calls per node, plus the
//!     binding-pattern adornments of the query's backward slice and the
//!     plan lints DDB012–DDB018. `--max-oracle-calls <n>` declares the
//!     budget DDB015 checks plans against. With `--execute`, each planned
//!     cell also runs and the predicted route and bound are audited
//!     against the observed `route.*` counters and oracle-call totals;
//!     any mismatch exits 1.
//!
//! ddb trace <file> --query "<f>" [--semantics <name>] [--top <n>] [--json]
//!     Run the query under a full event trace and print the aggregated
//!     span tree: calls, inclusive/exclusive time, attributed oracle
//!     calls, and p50/p90/p99 latency per node. `--top <n>` keeps only
//!     the n heaviest children per node; `--stats` adds the counter and
//!     histogram tables on stderr.
//!
//! `models`, `query`, `exists` and `profile` all accept `--stats` (print
//! the observability counter and histogram tables to stderr),
//! `--trace-json <file>` (write a structured trace — counters,
//! histograms, thread-stamped events, answer — as JSON),
//! `--trace-chrome <file>` (Chrome trace-event JSON, loadable in
//! Perfetto / `chrome://tracing`, one track per pool worker),
//! `--flame <file>` (folded stacks for inferno / `flamegraph.pl`), and
//! `--threads <n>` (worker-pool width for component-parallel evaluation:
//! independent dependency islands, batched formulas and profile cells run
//! concurrently; answers are byte-identical at every width).
//!
//! Resource limits (models/query/exists; per cell on profile):
//!   --timeout-ms <n>  --max-oracle-calls <n>  --max-conflicts <n>
//!   --max-models <n>  --fail-after <n> (deterministic fault injection)
//! When a limit trips, the command reports `unknown (<resource>)` and
//! exits 3 — never a wrong answer, never a panic.
//!
//! Exit codes: 0 success, 1 `check` warnings, 2 `check` errors,
//! 3 resource budget exhausted, 4 usage/parse/IO errors.
//!
//! Semantics names: gcwa, egcwa, ccwa, ecwa, circ, ddr, wgcwa, pws, pms,
//! perf, icwa, dsm, pdsm, cwa. `<file>` may be `-` for stdin.
//! ```

use disjunctive_db::core::{cwa, parallel, profile, wfs, witness};
use disjunctive_db::ground::{ground_reduced, parse::parse_datalog};
use disjunctive_db::obs::json::Json;
use disjunctive_db::prelude::*;
use std::io::Read;
use std::process::ExitCode;
use std::time::Instant;

/// Exit code for usage, parse and I/O failures (`Err` out of [`run`]).
const EXIT_USAGE: u8 = 4;
/// Exit code when a resource budget tripped before the answer was decided.
const EXIT_EXHAUSTED: u8 = 3;

/// EPIPE-tolerant stdout. Every subcommand routes its output through here
/// (via `oprintln!`/`oprint!`), so `ddb profile … | head -3` — or any
/// downstream that closes the pipe early — never panics and never aborts
/// the process mid-command: once a write fails, further output is dropped,
/// while stderr, traces, and the exit code are unaffected.
mod out {
    use std::io::Write;
    use std::sync::atomic::{AtomicBool, Ordering};

    static CLOSED: AtomicBool = AtomicBool::new(false);

    /// Whether a stdout write has failed (downstream pipe closed).
    pub fn closed() -> bool {
        CLOSED.load(Ordering::Relaxed)
    }

    /// Writes `text` to stdout, recording (and swallowing) a broken pipe.
    pub fn text(text: &str) {
        if closed() {
            return;
        }
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        if lock.write_all(text.as_bytes()).is_err() || lock.flush().is_err() {
            CLOSED.store(true, Ordering::Relaxed);
        }
    }

    /// Writes `line` plus a newline, tolerating a broken pipe.
    pub fn line(line: &str) {
        if closed() {
            return;
        }
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        if writeln!(lock, "{line}").is_err() {
            CLOSED.store(true, Ordering::Relaxed);
        }
    }
}

/// `println!` for command output: formats into [`out`], which swallows a
/// closed downstream pipe instead of panicking.
macro_rules! oprintln {
    () => { crate::out::line("") };
    ($($arg:tt)*) => { crate::out::line(&format!($($arg)*)) };
}

/// `print!` counterpart of `oprintln!`.
macro_rules! oprint {
    ($($arg:tt)*) => { crate::out::text(&format!($($arg)*)) };
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `ddb help` for usage");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

/// Runs one CLI command. `Ok(code)` is the process exit code: `check`
/// uses its stable 0/1/2 contract, and `models`/`query`/`exists` return
/// [`EXIT_EXHAUSTED`] when a resource budget tripped. Every other failure
/// surfaces through `Err`, which exits [`EXIT_USAGE`].
fn run(args: &[String]) -> Result<u8, String> {
    let Some(command) = args.first() else {
        return Err("missing command".into());
    };
    match command.as_str() {
        "help" | "--help" | "-h" => {
            oprintln!("{}", USAGE);
            Ok(0)
        }
        "classify" => classify(&args[1..]).map(|()| 0),
        "check" => check_cmd(&args[1..]),
        "slice" => slice_cmd(&args[1..]).map(|()| 0),
        "rewrite" => rewrite_cmd(&args[1..]).map(|()| 0),
        "models" => models(&args[1..]),
        "query" => query(&args[1..]),
        "exists" => exists(&args[1..]),
        "wfs" => wfs_cmd(&args[1..]).map(|()| 0),
        "ground" => ground_cmd(&args[1..]).map(|()| 0),
        "proof" => proof_cmd(&args[1..]).map(|()| 0),
        "profile" => profile_cmd(&args[1..]).map(|()| 0),
        "explain" => explain_cmd(&args[1..]),
        "trace" => trace_cmd(&args[1..]),
        "serve" => serve_cmd(&args[1..]),
        "call" => call_cmd(&args[1..]),
        "chaos" => chaos_cmd(&args[1..]),
        other => Err(format!("unknown command `{other}`")),
    }
}

const USAGE: &str = "usage:
  ddb classify <file>
  ddb check  <file> [--json] [--strict] (static analysis + lints;
      exit 0 clean, 1 warning lints, 2 errors; --strict treats warnings as errors)
  ddb slice  <file> --query \"<f>\" [--semantics <name>] [--json]
      (query-relevant slice, condensation layers, per-semantics admission)
  ddb rewrite <file> --query \"<f>\" [--semantics <name>] [--json]
      (magic-sets rewrite: the demand restriction with dead rules pruned,
       the guarded magic__ program, and per-semantics admission)
  ddb models <file> --semantics <name> [--partition-p a,b] [--partition-q c] [--partial]
  ddb query  <file> --semantics <name> (--formula \"<f>\" | --literal [-]<atom>) [--brave] [--explain]
      (--formula may be repeated: the batch shares one analysis pass and
       runs concurrently on --threads workers, one verdict line each)
  ddb exists <file> --semantics <name>
  ddb wfs    <file>
  ddb ground <file> [--full]          (print the grounded program)
  ddb proof  <file> --atom <a>        (DDR activation proof for an atom)
  ddb profile <file> [--literal [-]<a>] [--formula \"<f>\"] [--cell-timeout-ms <n>]
      (observed 10-semantics x 3-problems oracle-call matrix vs paper classes;
       with a per-cell budget, exhausted cells are marked ?<resource>)
  ddb explain <file> [--query \"<f>\"] [--semantics <name>] [--json] [--execute]
      (static query plan: per semantics the route tree dispatch will take,
       with predicted complexity classes and oracle-call bounds, adornment
       analysis, and plan lints DDB012-DDB018; --max-oracle-calls <n>
       declares the budget DDB015 checks plans against; --execute runs each
       planned cell and audits predicted route/bound vs the observed
       route.* counters and sat calls — a mismatch exits 1)
  ddb trace  <file> --query \"<f>\" [--semantics <name>] [--top <n>] [--json] [--stats]
      (run the query under a trace and print the aggregated span tree:
       calls, inclusive/exclusive time, oracle calls, p50/p90/p99 per node;
       --top keeps the <n> heaviest children per node, --stats adds the
       histogram tables)
  ddb serve  [<file>] [--db name=path]... [--addr host:port] [--max-sessions <n>]
      [--workers <n>] [--queue <n>] [--read-timeout-ms <n>] [--write-timeout-ms <n>]
      [--idle-timeout-ms <n>] [--max-frame-bytes <n>] [--retry-after-ms <n>]
      [--threads <n>] [--drain-on-stdin-close] [resource limits]
      (multi-tenant query server over a newline-framed JSON protocol;
       resource limits become the server-side default budget, intersected
       with each request's declared limits; overload sheds with a typed
       `overloaded` response; `shutdown` op or stdin close drains cleanly)
  ddb call   --addr host:port [--op <op>] [--db <name>] [--semantics <name>]
      [--formula \"<f>\" | --literal [-]<atom>] [--brave] [--id <id>]
      [--target <id>] [--threads <n>] [--json] [<file>] [resource limits]
      (one-shot client; stdout matches the corresponding CLI command
       byte-for-byte; exit mirrors the CLI: 0 ok, 3 resource/overloaded,
       4 parse/usage/internal; a positional <file> is sent as `load` source)
  ddb chaos  --addr host:port [--rounds <n>] [--seed <n>] [--db <name>]
      [--formula \"<f>\"] [--fail-after-max <n>]
      (attack a running server: malformed frames, oversized payloads,
       half-closes, disconnects, concurrent cancels, fault-injection sweep;
       exit 1 if any robustness check fails)
models/query/exists/profile also take: --stats  --threads <n>  --trace-json <file>
  --trace-chrome <file> (Chrome trace-event JSON for Perfetto, one track
   per worker)  --flame <file> (folded stacks for inferno/FlameGraph)
  (--threads evaluates independent dependency islands, batched formulas and
   profile cells concurrently; answers are identical at every width)
resource limits (models/query/exists; applied per cell on profile):
  --timeout-ms <n>  --max-oracle-calls <n>  --max-conflicts <n>
  --max-models <n>  --fail-after <n>
exit codes: 0 ok; 1/2 check warnings/errors; 3 budget exhausted (answer
unknown); 4 usage, parse or I/O error
input is propositional program syntax, or Datalog∨ with --datalog
(auto-detected for .dlv files and sources containing predicate atoms)
semantics: gcwa egcwa ccwa ecwa|circ ddr|wgcwa pws|pms perf icwa dsm pdsm cwa";

/// Minimal flag parser: positional file + `--key value` pairs + bare flags.
struct Opts {
    file: Option<String>,
    values: Vec<(String, String)>,
    flags: Vec<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        file: None,
        values: Vec::new(),
        flags: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            if matches!(
                key,
                "brave"
                    | "explain"
                    | "datalog"
                    | "full"
                    | "partial"
                    | "stats"
                    | "json"
                    | "strict"
                    | "execute"
                    | "drain-on-stdin-close"
            ) {
                opts.flags.push(key.to_owned());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                opts.values.push((key.to_owned(), value.clone()));
                i += 2;
            }
        } else if opts.file.is_none() {
            opts.file = Some(a.clone());
            i += 1;
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
    }
    Ok(opts)
}

impl Opts {
    fn value(&self, key: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every occurrence of a repeatable `--key value`, in command order
    /// (`ddb query … --formula a --formula b` is a batch of two).
    fn values_all(&self, key: &str) -> Vec<&str> {
        self.values
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Parses `--threads N` (worker-pool width for component-parallel
/// evaluation); defaults to 1 (fully sequential, no pool). Answers are
/// identical at every width — only wall-clock time changes.
fn threads_from(opts: &Opts) -> Result<usize, String> {
    match opts.value("threads") {
        None => Ok(1),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("--threads needs a positive integer, got `{v}`")),
        },
    }
}

fn load(opts: &Opts) -> Result<Database, String> {
    let path = opts.file.as_deref().ok_or("missing <file> argument")?;
    let source = if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        s
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    // Datalog mode: explicit --datalog flag, .dlv extension, or the
    // telltale `(` of predicate atoms.
    let datalog = opts.flag("datalog") || path.ends_with(".dlv") || source.contains('(');
    if datalog {
        let program = parse_datalog(&source).map_err(|e| e.to_string())?;
        ground_reduced(&program, 1_000_000).map_err(|e| e.to_string())
    } else {
        parse_program(&source).map_err(|e| e.to_string())
    }
}

fn semantics_id(name: &str) -> Result<SemanticsId, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "gcwa" => SemanticsId::Gcwa,
        "egcwa" => SemanticsId::Egcwa,
        "ccwa" => SemanticsId::Ccwa,
        "ecwa" | "circ" => SemanticsId::Ecwa,
        "ddr" | "wgcwa" => SemanticsId::Ddr,
        "pws" | "pms" => SemanticsId::Pws,
        "perf" => SemanticsId::Perf,
        "icwa" => SemanticsId::Icwa,
        "dsm" | "stable" => SemanticsId::Dsm,
        "pdsm" => SemanticsId::Pdsm,
        other => return Err(format!("unknown semantics `{other}`")),
    })
}

fn config_for(opts: &Opts, db: &Database) -> Result<SemanticsConfig, String> {
    let name = opts
        .value("semantics")
        .ok_or("missing --semantics <name>")?;
    let id = semantics_id(name)?;
    let mut cfg = SemanticsConfig::new(id);
    if opts.value("partition-p").is_some() || opts.value("partition-q").is_some() {
        let collect = |spec: Option<&str>| -> Result<Vec<Atom>, String> {
            spec.map_or(Ok(Vec::new()), |s| {
                s.split(',')
                    .filter(|t| !t.is_empty())
                    .map(|t| {
                        db.symbols().lookup(t.trim()).ok_or_else(|| {
                            disjunctive_db::analysis::Diagnostic::unknown_atom("partition", t)
                                .to_string()
                        })
                    })
                    .collect()
            })
        };
        let p = collect(opts.value("partition-p"))?;
        let q = collect(opts.value("partition-q"))?;
        cfg = cfg.with_partition(Partition::from_p_q(db.num_atoms(), p, q));
    }
    Ok(cfg)
}

/// Parses the resource-limit flags into a [`Budget`], or `None` when no
/// limit was requested. Malformed values are usage errors (exit 4).
fn budget_from(opts: &Opts) -> Result<Option<Budget>, String> {
    let parse = |key: &str| -> Result<Option<u64>, String> {
        opts.value(key)
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("--{key} needs an unsigned integer, got `{v}`"))
            })
            .transpose()
    };
    let mut budget = Budget::unlimited();
    if let Some(ms) = parse("timeout-ms")? {
        budget = budget.with_timeout(std::time::Duration::from_millis(ms));
    }
    if let Some(n) = parse("max-oracle-calls")? {
        budget = budget.with_max_oracle_calls(n);
    }
    if let Some(n) = parse("max-conflicts")? {
        budget = budget.with_max_conflicts(n);
    }
    if let Some(n) = parse("max-models")? {
        budget = budget.with_max_models(n);
    }
    if let Some(n) = parse("fail-after")? {
        budget = budget.fail_after(n);
    }
    Ok((!budget.is_unlimited()).then_some(budget))
}

/// Trace-document fields describing the command's governance outcome:
/// which resource (if any) tripped, and the checkpoint/charge totals the
/// innermost governor consumed. Read while the budget guard is alive.
fn govern_extra<'a>(
    interrupted: Option<&Interrupted>,
    consumed: Option<disjunctive_db::obs::Consumed>,
) -> Vec<(&'a str, Json)> {
    vec![
        (
            "interrupted",
            interrupted.map_or(Json::Null, |i| Json::Str(i.resource.label().to_owned())),
        ),
        (
            "budget_consumed",
            consumed.map_or(Json::Null, |c| {
                Json::obj([
                    ("checkpoints", Json::UInt(c.checkpoints)),
                    ("conflicts", Json::UInt(c.conflicts)),
                    ("oracle_calls", Json::UInt(c.oracle_calls)),
                    ("models", Json::UInt(c.models)),
                ])
            }),
        ),
    ]
}

/// Prints the degradation notice for an interrupted command to stderr.
fn report_unknown(i: &Interrupted) {
    eprintln!("unknown ({}): {i}", i.resource.label());
}

/// Observability session for one CLI command: starts a counter snapshot,
/// resets the histogram registry, opens a `cmd.<command>` root span, and
/// — with any of `--trace-json`/`--trace-chrome`/`--flame` — installs an
/// event sink before the work runs.
struct Observation {
    sink: Option<std::sync::Arc<disjunctive_db::obs::MemorySink>>,
    before: disjunctive_db::obs::CounterSnapshot,
    started: Instant,
    root: Option<disjunctive_db::obs::SpanGuard>,
}

fn wants_events(opts: &Opts) -> bool {
    opts.value("trace-json").is_some()
        || opts.value("trace-chrome").is_some()
        || opts.value("flame").is_some()
}

/// `root_span` is the `cmd.<command>` span name bracketing the observed
/// region; it closes (flushing all thread-local buffers) before
/// [`Observation::finish`] reads counters, histograms, or events.
fn begin_observation(opts: &Opts, root_span: &'static str) -> Observation {
    let sink = wants_events(opts).then(|| {
        let s = disjunctive_db::obs::MemorySink::new();
        disjunctive_db::obs::set_sink(s.clone());
        s
    });
    disjunctive_db::obs::reset_histograms();
    Observation {
        sink,
        before: disjunctive_db::obs::snapshot(),
        started: Instant::now(),
        root: Some(disjunctive_db::obs::span(root_span)),
    }
}

impl Observation {
    /// Prints the `--stats` counter and histogram tables and writes the
    /// `--trace-json`, `--trace-chrome` and `--flame` files. `answer` and
    /// `extra` land verbatim in the trace document.
    fn finish(
        mut self,
        opts: &Opts,
        command: &str,
        answer: Json,
        extra: Vec<(&str, Json)>,
    ) -> Result<(), String> {
        // Close the root span first: its depth-0 exit flushes this
        // thread's buffered counters, histograms, and trace events.
        drop(self.root.take());
        let wall_ns = self.started.elapsed().as_nanos() as u64;
        let counters = disjunctive_db::obs::snapshot().diff(&self.before);
        let hists = disjunctive_db::obs::hist_snapshot();
        if opts.flag("stats") {
            eprint!("{}", counters.render_table());
            if !hists.is_empty() {
                eprint!("{}", hists.render_table());
            }
        }
        let events = match self.sink.as_ref() {
            Some(sink) => {
                disjunctive_db::obs::clear_sink();
                sink.take()
            }
            None => Vec::new(),
        };
        if let Some(path) = opts.value("trace-json") {
            let semantics = opts
                .value("semantics")
                .map_or(Json::Null, |s| Json::Str(s.to_owned()));
            let mut fields = vec![
                ("version", Json::UInt(1)),
                ("command", Json::Str(command.to_owned())),
                ("semantics", semantics),
                ("answer", answer),
                ("wall_ns", Json::UInt(wall_ns)),
                ("counters", counters.to_json()),
                ("histograms", hists.to_json()),
                (
                    "events",
                    Json::Arr(events.iter().map(|e| e.to_json()).collect()),
                ),
            ];
            fields.extend(extra);
            let doc = Json::obj(fields);
            std::fs::write(path, doc.render_pretty())
                .map_err(|e| format!("writing trace to {path}: {e}"))?;
        }
        if let Some(path) = opts.value("trace-chrome") {
            let doc = disjunctive_db::obs::chrome_trace(&events);
            std::fs::write(path, doc.render_pretty())
                .map_err(|e| format!("writing Chrome trace to {path}: {e}"))?;
        }
        if let Some(path) = opts.value("flame") {
            let folded = disjunctive_db::obs::folded_stacks(&events);
            std::fs::write(path, folded)
                .map_err(|e| format!("writing folded stacks to {path}: {e}"))?;
        }
        Ok(())
    }
}

/// Parse a query formula against the database's vocabulary. The formula
/// lexer cannot read datalog `name(args)` atoms, so on a parse failure
/// fall back to a verbatim symbol lookup (with optional leading `-`);
/// the original parse error is reported when the lookup misses too.
fn parse_query_formula(raw: &str, db: &Database) -> Result<Formula, String> {
    match parse_formula(raw, db.symbols()) {
        Ok(f) => Ok(f),
        Err(parse_err) => {
            let (name, positive) = match raw.trim().strip_prefix('-') {
                Some(rest) => (rest.trim(), false),
                None => (raw.trim(), true),
            };
            let atom = db
                .symbols()
                .lookup(name)
                .ok_or_else(|| parse_err.to_string())?;
            Ok(Formula::literal(atom, positive))
        }
    }
}

fn render_model(db: &Database, m: &Interpretation) -> String {
    let names: Vec<&str> = m.iter().map(|a| db.symbols().name(a)).collect();
    format!("{{{}}}", names.join(", "))
}

fn classify(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let db = load(&opts)?;
    oprintln!("atoms:              {}", db.num_atoms());
    oprintln!("rules:              {}", db.len());
    oprintln!("class:              {:?}", db.class());
    oprintln!("negation:           {}", db.has_negation());
    oprintln!("integrity clauses:  {}", db.has_integrity_clauses());
    match db.stratification() {
        Some(strata) => {
            oprintln!("stratification:     {} strata", strata.len());
            for (i, s) in strata.iter().enumerate() {
                let names: Vec<&str> = s.iter().map(|&a| db.symbols().name(a)).collect();
                oprintln!("  S{}: {{{}}}", i + 1, names.join(", "));
            }
        }
        None => oprintln!("stratification:     none (unstratifiable)"),
    }
    Ok(())
}

fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

/// `ddb check` with the stable exit-code contract: `Ok(0)` for a clean
/// report, `Ok(1)` when only warning-level lints fired, `Ok(2)` on any
/// error — error-level diagnostics, unreadable files, parse and safety
/// failures. `--strict` escalates warnings to the error exit code. Only
/// malformed command lines surface as `Err` (exit 1 via `main`).
fn check_cmd(args: &[String]) -> Result<u8, String> {
    use disjunctive_db::analysis::{analyze, Severity};
    let opts = parse_opts(args)?;
    let path = opts.file.as_deref().ok_or("missing <file> argument")?;
    let fail = |msg: String| -> Result<u8, String> {
        eprintln!("error: {msg}");
        Ok(2)
    };
    let source = match read_source(path) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let datalog = opts.flag("datalog") || path.ends_with(".dlv") || source.contains('(');
    let db = if datalog {
        let program = match parse_datalog(&source) {
            Ok(p) => p,
            Err(e) => return fail(e.to_string()),
        };
        // An unsafe program cannot be grounded, so its DDB001 diagnostics
        // are the whole report — all of them, one per offending rule and
        // carrying that rule's position, so the (code, position) sort is
        // stable for multi-rule files.
        let safety_errors = disjunctive_db::ground::safety::check_program_all(&program);
        if !safety_errors.is_empty() {
            let diags: Vec<_> = safety_errors
                .iter()
                .map(disjunctive_db::ground::safety::SafetyError::to_diagnostic)
                .collect();
            if opts.flag("json") {
                let doc = Json::obj([
                    ("file", Json::Str(path.to_owned())),
                    (
                        "diagnostics",
                        Json::Arr(diags.iter().map(|d| d.to_json()).collect()),
                    ),
                    ("errors", Json::UInt(diags.len() as u64)),
                    ("warnings", Json::UInt(0)),
                ]);
                oprint!("{}", doc.render_pretty());
            } else {
                for d in &diags {
                    oprintln!("{d}");
                }
            }
            return fail(format!("check failed: {} error(s)", diags.len()));
        }
        match ground_reduced(&program, 1_000_000) {
            Ok(db) => db,
            Err(e) => return fail(e.to_string()),
        }
    } else {
        match parse_program(&source) {
            Ok(db) => db,
            Err(e) => return fail(e.to_string()),
        }
    };
    let report = analyze(&db);
    if opts.flag("json") {
        let mut pairs = vec![("file".to_owned(), Json::Str(path.to_owned()))];
        if let Json::Obj(rest) = report.to_json(&db) {
            pairs.extend(rest);
        }
        oprint!("{}", Json::Obj(pairs).render_pretty());
    } else {
        oprint!("{}", report.render(&db));
    }
    let errors = report.count(Severity::Error);
    let warnings = report.count(Severity::Warning);
    if errors > 0 || (opts.flag("strict") && warnings > 0) {
        return fail(format!(
            "check failed: {errors} error(s), {warnings} warning(s)"
        ));
    }
    Ok(if warnings > 0 { 1 } else { 0 })
}

/// `ddb slice`: the CLI window onto the slicing subsystem. Prints the
/// backward relevance slice of the query, the SCC condensation layers of
/// the whole database, and per semantics which soundness precondition
/// admits answering on the slice (or that the generic route must run).
fn slice_cmd(args: &[String]) -> Result<(), String> {
    use disjunctive_db::analysis::{layering, relevant_slice, DepGraph, Fragments};
    use disjunctive_db::core::slicing::{admission, peel_mode, Admission};
    let opts = parse_opts(args)?;
    let db = load(&opts)?;
    let raw = opts.value("query").ok_or("missing --query <formula>")?;
    let formula = parse_query_formula(raw, &db)?;
    let query_atoms = formula.atoms();
    if query_atoms.is_empty() {
        return Err("the query mentions no atoms; nothing to slice".into());
    }
    let literal_query = query_atoms.len() == 1
        && (formula == Formula::literal(query_atoms[0], true)
            || formula == Formula::literal(query_atoms[0], false));
    let slice = relevant_slice(&db, &query_atoms);
    let graph = DepGraph::of_database(&db);
    let frags = Fragments::of(&db, &graph);
    let layers = layering(&db, &graph);
    let semantics: Vec<SemanticsId> = match opts.value("semantics") {
        Some(name) => vec![semantics_id(name)?],
        None => SemanticsId::ALL.to_vec(),
    };
    let admission_label = |a: Admission| match a {
        Admission::PositiveExact => "positive-exact",
        Admission::Product => "product",
        Admission::Blocked => "blocked (generic fallback)",
    };
    let peel_label = |m: Option<bool>| match m {
        Some(true) => "founded",
        Some(false) => "classical",
        None => "none",
    };
    if opts.flag("json") {
        let level_sets: Vec<Json> = (0..layers.num_levels)
            .map(|l| {
                Json::Arr(
                    db.symbols()
                        .atoms()
                        .filter(|a| layers.level[a.index()] == l)
                        .map(|a| Json::Str(db.symbols().name(a).to_owned()))
                        .collect(),
                )
            })
            .collect();
        let admissions: Vec<Json> = semantics
            .iter()
            .map(|&id| {
                Json::obj([
                    ("semantics", Json::Str(id.to_string())),
                    (
                        "admission",
                        Json::Str(
                            admission_label(admission(id, &frags, &slice, literal_query))
                                .to_owned(),
                        ),
                    ),
                    ("peel", Json::Str(peel_label(peel_mode(id)).to_owned())),
                ])
            })
            .collect();
        let doc = Json::obj([
            (
                "file",
                Json::Str(opts.file.as_deref().unwrap_or("-").into()),
            ),
            ("query", Json::Str(raw.to_owned())),
            ("literal_query", Json::Bool(literal_query)),
            (
                "slice_atoms",
                Json::Arr(
                    slice
                        .atoms
                        .iter()
                        .map(|&a| Json::Str(db.symbols().name(a).to_owned()))
                        .collect(),
                ),
            ),
            (
                "slice_rules",
                Json::Arr(slice.rules.iter().map(|&i| Json::UInt(i as u64)).collect()),
            ),
            (
                "dropped_rules",
                Json::UInt((db.len() - slice.rules.len()) as u64),
            ),
            ("split_closed", Json::Bool(slice.split_closed)),
            (
                "blocking_rule",
                slice
                    .blocking_rule
                    .map_or(Json::Null, |i| Json::UInt(i as u64)),
            ),
            ("num_levels", Json::UInt(layers.num_levels as u64)),
            ("levels", Json::Arr(level_sets)),
            ("admissions", Json::Arr(admissions)),
        ]);
        oprint!("{}", doc.render_pretty());
        return Ok(());
    }
    oprintln!(
        "slice of {} for query `{raw}`: {} of {} atom(s), {} of {} rule(s)",
        opts.file.as_deref().unwrap_or("-"),
        slice.atoms.len(),
        db.num_atoms(),
        slice.rules.len(),
        db.len(),
    );
    let names: Vec<&str> = slice.atoms.iter().map(|&a| db.symbols().name(a)).collect();
    oprintln!("  atoms: {{{}}}", names.join(", "));
    for &i in &slice.rules {
        oprintln!(
            "  rule #{i}: {}",
            display_rule(&db.rules()[i], db.symbols())
        );
    }
    match (slice.split_closed, slice.blocking_rule) {
        (true, _) => oprintln!("  split-closed: yes"),
        (false, Some(i)) => oprintln!(
            "  split-closed: no — blocked by rule #{i}: {}",
            display_rule(&db.rules()[i], db.symbols())
        ),
        (false, None) => oprintln!("  split-closed: no"),
    }
    oprintln!("layers: {} condensation level(s)", layers.num_levels);
    for l in 0..layers.num_levels {
        let at_level: Vec<&str> = db
            .symbols()
            .atoms()
            .filter(|a| layers.level[a.index()] == l)
            .map(|a| db.symbols().name(a))
            .collect();
        oprintln!("  L{l}: {{{}}}", at_level.join(", "));
    }
    oprintln!(
        "admission ({} query):",
        if literal_query { "literal" } else { "formula" }
    );
    for &id in &semantics {
        oprintln!(
            "  {:<13} {:<26} peel: {}",
            id.to_string(),
            admission_label(admission(id, &frags, &slice, literal_query)),
            peel_label(peel_mode(id)),
        );
    }
    Ok(())
}

/// `ddb rewrite`: print the magic-sets rewrite of a query — the demand
/// restriction the planner routes bound queries through, rendered as a
/// guarded program with `magic__` seeds and demand rules, plus the
/// per-semantics admission verdicts. The pruning gate is exactly the
/// planner's: dead rules are dropped only when the database is positive
/// and the query is minimal-model-determined for the semantics, so the
/// printed program is the one `RouteKind::Magic` would execute.
fn rewrite_cmd(args: &[String]) -> Result<(), String> {
    use disjunctive_db::analysis::{magic, magic_restrict, DepGraph, Fragments, MagicRestriction};
    use disjunctive_db::core::slicing::{admission, Admission};
    let opts = parse_opts(args)?;
    let db = load(&opts)?;
    // --threads is accepted for CLI uniformity; the rewrite is a pure
    // static analysis, so the output is identical at every width.
    let _ = threads_from(&opts)?;
    let raw = opts.value("query").ok_or("missing --query <formula>")?;
    let formula = parse_query_formula(raw, &db)?;
    let query_atoms = formula.atoms();
    if query_atoms.is_empty() {
        return Err("the query mentions no atoms; nothing to rewrite".into());
    }
    let literal_query = query_atoms.len() == 1
        && (formula == Formula::literal(query_atoms[0], true)
            || formula == Formula::literal(query_atoms[0], false));
    let graph = DepGraph::of_database(&db);
    let frags = Fragments::of(&db, &graph);
    let semantics: Vec<SemanticsId> = match opts.value("semantics") {
        Some(name) => vec![semantics_id(name)?],
        None => SemanticsId::ALL.to_vec(),
    };
    let mm_determined =
        |id: SemanticsId| literal_query || !matches!(id, SemanticsId::Gcwa | SemanticsId::Ccwa);
    // At most two distinct restrictions exist (pruned and unpruned); on
    // non-positive databases or literal queries they coincide.
    let restriction_for = |prune: bool| magic_restrict(&db, &query_atoms, prune);
    let pruned = restriction_for(frags.positive);
    let needs_unpruned = frags.positive && semantics.iter().any(|&id| !mm_determined(id));
    let unpruned: Option<MagicRestriction> = needs_unpruned.then(|| restriction_for(false));
    let restriction_of = |id: SemanticsId| -> &MagicRestriction {
        if frags.positive && !mm_determined(id) {
            unpruned.as_ref().expect("computed when needed")
        } else {
            &pruned
        }
    };
    let admission_label = |a: Admission| match a {
        Admission::PositiveExact => "positive-exact",
        Admission::Product => "product",
        Admission::Blocked => "blocked (generic fallback)",
    };
    let program_pruned = magic::rewrite(&db, &query_atoms, &pruned);
    let program_unpruned = unpruned
        .as_ref()
        .map(|r| magic::rewrite(&db, &query_atoms, r));
    if opts.flag("json") {
        let restriction_json = |r: &MagicRestriction, prog: &magic::MagicProgram| {
            Json::obj([
                ("pruned", Json::Bool(!r.dropped_dead.is_empty())),
                ("atoms", Json::UInt(r.slice.atoms.len() as u64)),
                (
                    "rules",
                    Json::Arr(
                        r.slice
                            .rules
                            .iter()
                            .map(|&i| Json::UInt(i as u64))
                            .collect(),
                    ),
                ),
                (
                    "dropped_dead",
                    Json::Arr(
                        r.dropped_dead
                            .iter()
                            .map(|&i| Json::UInt(i as u64))
                            .collect(),
                    ),
                ),
                ("split_closed", Json::Bool(r.slice.split_closed)),
                (
                    "blocking_rule",
                    r.slice
                        .blocking_rule
                        .map_or(Json::Null, |i| Json::UInt(i as u64)),
                ),
                ("program", prog.to_json()),
            ])
        };
        let mut restrictions = vec![restriction_json(&pruned, &program_pruned)];
        if let (Some(r), Some(p)) = (unpruned.as_ref(), program_unpruned.as_ref()) {
            restrictions.push(restriction_json(r, p));
        }
        let admissions: Vec<Json> = semantics
            .iter()
            .map(|&id| {
                let r = restriction_of(id);
                let adm = admission(id, &frags, &r.slice, literal_query);
                Json::obj([
                    ("semantics", Json::Str(id.to_string())),
                    ("admission", Json::Str(admission_label(adm).to_owned())),
                    ("pruning", Json::Bool(frags.positive && mm_determined(id))),
                    (
                        "blocking_rule",
                        if adm == Admission::Blocked {
                            r.slice
                                .blocking_rule
                                .or_else(|| r.dropped_dead.first().copied())
                                .map_or(Json::Null, |i| Json::UInt(i as u64))
                        } else {
                            Json::Null
                        },
                    ),
                ])
            })
            .collect();
        let doc = Json::obj([
            (
                "file",
                Json::Str(opts.file.as_deref().unwrap_or("-").into()),
            ),
            ("query", Json::Str(raw.to_owned())),
            ("literal_query", Json::Bool(literal_query)),
            ("positive", Json::Bool(frags.positive)),
            ("restrictions", Json::Arr(restrictions)),
            ("admissions", Json::Arr(admissions)),
        ]);
        oprint!("{}", doc.render_pretty());
        return Ok(());
    }
    oprintln!(
        "rewrite of {} for query `{raw}` ({} query)",
        opts.file.as_deref().unwrap_or("-"),
        if literal_query { "literal" } else { "formula" },
    );
    let describe = |label: &str, r: &MagicRestriction| {
        oprintln!(
            "{label}: {} of {} atom(s), {} of {} rule(s), {} dead rule(s) dropped, split-closed: {}",
            r.slice.atoms.len(),
            db.num_atoms(),
            r.slice.rules.len(),
            db.len(),
            r.dropped_dead.len(),
            if r.slice.split_closed { "yes" } else { "no" },
        );
    };
    describe("restriction", &pruned);
    if let Some(r) = unpruned.as_ref() {
        describe("restriction (gcwa/ccwa formula queries, no pruning)", r);
    }
    oprintln!("admission:");
    for &id in &semantics {
        let r = restriction_of(id);
        let adm = admission(id, &frags, &r.slice, literal_query);
        let witness = if adm == Admission::Blocked {
            r.slice
                .blocking_rule
                .or_else(|| r.dropped_dead.first().copied())
                .map(|i| {
                    format!(
                        " — rule #{i}: {}",
                        display_rule(&db.rules()[i], db.symbols())
                    )
                })
                .unwrap_or_default()
        } else {
            String::new()
        };
        oprintln!(
            "  {:<13} {}{}",
            id.to_string(),
            admission_label(adm),
            witness
        );
    }
    let show_program = |label: &str, prog: &magic::MagicProgram| {
        oprintln!();
        oprintln!(
            "{label} ({} seed(s), {} rule(s)):",
            prog.seeds.len(),
            prog.rules.len(),
        );
        for line in prog.render().lines() {
            oprintln!("  {line}");
        }
        if !prog.collisions.is_empty() {
            oprintln!(
                "  collisions with the magic__ namespace: {}",
                prog.collisions.join(", ")
            );
        }
    };
    show_program("rewritten program", &program_pruned);
    if let Some(p) = program_unpruned.as_ref() {
        show_program("rewritten program (no pruning)", p);
    }
    Ok(())
}

/// Writes one stdout line through [`out`]. Returns `false` once the pipe
/// is gone so unbounded enumeration loops can stop emitting early.
fn emit(line: &str) -> bool {
    out::line(line);
    !out::closed()
}

fn models(args: &[String]) -> Result<u8, String> {
    let opts = parse_opts(args)?;
    let db = load(&opts)?;
    let budget = budget_from(&opts)?;
    let observation = begin_observation(&opts, "cmd.models");
    let guard = budget.map(Budget::install);
    let name = opts.value("semantics").unwrap_or("egcwa");
    let mut cost = Cost::new();
    let mut model_count: u64 = 0;
    let mut interrupted: Option<Interrupted> = None;
    if name.eq_ignore_ascii_case("cwa") {
        match cwa::model(&db, &mut cost) {
            Ok(Some(m)) => {
                model_count = 1;
                oprintln!("{}", render_model(&db, &m));
            }
            Ok(None) => oprintln!("CWA is inconsistent for this database"),
            Err(i) => interrupted = Some(i),
        }
    } else if name.eq_ignore_ascii_case("pdsm") && opts.flag("partial") {
        match disjunctive_db::core::pdsm::models(&db, &mut cost) {
            Ok(models) => {
                model_count = models.len() as u64;
                oprintln!("{} partial stable model(s):", models.len());
                for p in &models {
                    let mut parts = Vec::new();
                    for a in db.symbols().atoms() {
                        let v = match p.value(a) {
                            TruthValue::True => "1",
                            TruthValue::Undefined => "1/2",
                            TruthValue::False => "0",
                        };
                        parts.push(format!("{}={v}", db.symbols().name(a)));
                    }
                    if !emit(&format!("  <{}>", parts.join(", "))) {
                        break;
                    }
                }
            }
            Err(i) => interrupted = Some(i),
        }
    } else {
        let cfg = config_for(&opts, &db)?.with_threads(threads_from(&opts)?);
        let enumeration = cfg.models(&db, &mut cost).map_err(|e| e.to_string())?;
        model_count = enumeration.len() as u64;
        if enumeration.is_complete() {
            oprintln!("{} model(s) under {}:", enumeration.len(), cfg.id);
        } else {
            oprintln!(
                "{} model(s) under {} (incomplete — budget exhausted):",
                enumeration.len(),
                cfg.id
            );
        }
        for m in enumeration.iter() {
            if !emit(&format!("  {}", render_model(&db, m))) {
                break;
            }
        }
        interrupted = enumeration.interrupted;
    }
    eprintln!(
        "[oracle: {} SAT calls, {} candidates]",
        cost.sat_calls, cost.candidates
    );
    let consumed = disjunctive_db::obs::budget::consumed();
    drop(guard);
    if let Some(i) = &interrupted {
        report_unknown(i);
    }
    let answer = if interrupted.is_some() && model_count == 0 {
        Json::Null
    } else {
        Json::UInt(model_count)
    };
    observation.finish(
        &opts,
        "models",
        answer,
        govern_extra(interrupted.as_ref(), consumed),
    )?;
    Ok(if interrupted.is_some() {
        EXIT_EXHAUSTED
    } else {
        0
    })
}

fn query(args: &[String]) -> Result<u8, String> {
    let opts = parse_opts(args)?;
    let db = load(&opts)?;
    if opts.values_all("formula").len() > 1 {
        return query_batch(&opts, &db);
    }
    let formula = match (opts.value("formula"), opts.value("literal")) {
        (Some(f), None) => parse_query_formula(f, &db)?,
        (None, Some(l)) => {
            let (name, positive) = match l.strip_prefix('-') {
                Some(rest) => (rest, false),
                None => (l, true),
            };
            let atom = db
                .symbols()
                .lookup(name)
                .ok_or_else(|| format!("unknown atom `{name}`"))?;
            Formula::literal(atom, positive)
        }
        _ => return Err("need exactly one of --formula / --literal".into()),
    };
    let budget = budget_from(&opts)?;
    let observation = begin_observation(&opts, "cmd.query");
    let guard = budget.map(Budget::install);
    let mut cost = Cost::new();
    let name = opts.value("semantics").unwrap_or("egcwa");
    let verdict: Verdict;
    if name.eq_ignore_ascii_case("cwa") {
        verdict = cwa::infers_formula(&db, &formula, &mut cost).into();
        match verdict.as_bool() {
            Some(ans) => oprintln!("{}", if ans { "inferred" } else { "not inferred" }),
            None => oprintln!("unknown"),
        }
    } else {
        let cfg = config_for(&opts, &db)?.with_threads(threads_from(&opts)?);
        if opts.flag("brave") {
            verdict = witness::brave_infers_formula(&cfg, &db, &formula, &mut cost)
                .map_err(|e| e.to_string())?;
            match verdict.as_bool() {
                Some(true) => oprintln!("bravely inferred (holds in some model)"),
                Some(false) => oprintln!("not bravely inferred"),
                None => oprintln!("unknown"),
            }
        } else if opts.flag("explain") {
            match witness::explain_formula(&cfg, &db, &formula, &mut cost)
                .map_err(|e| e.to_string())?
            {
                witness::QueryOutcome::Inferred => {
                    verdict = Verdict::True;
                    oprintln!("inferred");
                }
                witness::QueryOutcome::Countermodel(m) => {
                    verdict = Verdict::False;
                    oprintln!("not inferred; countermodel: {}", render_model(&db, &m));
                }
                witness::QueryOutcome::CountermodelPartial(p) => {
                    verdict = Verdict::False;
                    let mut parts = Vec::new();
                    for a in db.symbols().atoms() {
                        let v = match p.value(a) {
                            TruthValue::True => "1",
                            TruthValue::Undefined => "1/2",
                            TruthValue::False => "0",
                        };
                        parts.push(format!("{}={v}", db.symbols().name(a)));
                    }
                    oprintln!("not inferred; partial countermodel: ⟨{}⟩", parts.join(", "));
                }
                witness::QueryOutcome::Unknown(i) => {
                    verdict = Verdict::Unknown(i);
                    oprintln!("unknown");
                }
            }
        } else {
            verdict = cfg
                .infers_formula(&db, &formula, &mut cost)
                .map_err(|e| e.to_string())?;
            match verdict.as_bool() {
                Some(ans) => oprintln!("{}", if ans { "inferred" } else { "not inferred" }),
                None => oprintln!("unknown"),
            }
        }
    }
    eprintln!(
        "[oracle: {} SAT calls, {} candidates]",
        cost.sat_calls, cost.candidates
    );
    let consumed = disjunctive_db::obs::budget::consumed();
    drop(guard);
    let interrupted = verdict.interrupted().cloned();
    if let Some(i) = &interrupted {
        report_unknown(i);
    }
    let answer = verdict.as_bool().map_or(Json::Null, Json::Bool);
    observation.finish(
        &opts,
        "query",
        answer,
        govern_extra(interrupted.as_ref(), consumed),
    )?;
    Ok(if interrupted.is_some() {
        EXIT_EXHAUSTED
    } else {
        0
    })
}

/// Batched `ddb query`: repeated `--formula` occurrences share one
/// parse/analysis/applicability pass and are decided concurrently on
/// `--threads` workers. Results print in command order regardless of
/// width, so the output is byte-identical to querying one at a time.
fn query_batch(opts: &Opts, db: &Database) -> Result<u8, String> {
    if opts.value("literal").is_some() {
        return Err("--literal cannot be combined with a batch of --formula".into());
    }
    if opts.flag("brave") || opts.flag("explain") {
        return Err("--brave/--explain take a single --formula at a time".into());
    }
    let name = opts.value("semantics").unwrap_or("egcwa");
    if name.eq_ignore_ascii_case("cwa") {
        return Err("batch query is not available for cwa".into());
    }
    let raw = opts.values_all("formula");
    let formulas: Vec<Formula> = raw
        .iter()
        .map(|s| parse_query_formula(s, db))
        .collect::<Result<_, _>>()?;
    let cfg = config_for(opts, db)?.with_threads(threads_from(opts)?);
    let budget = budget_from(opts)?;
    let observation = begin_observation(opts, "cmd.query");
    let guard = budget.map(Budget::install);
    let results =
        parallel::infers_formulas_batch(&cfg, db, &formulas).map_err(|e| e.to_string())?;
    let mut total = Cost::new();
    let mut interrupted: Option<Interrupted> = None;
    let mut answers = Vec::with_capacity(results.len());
    for (src, (verdict, cost)) in raw.iter().zip(&results) {
        total.merge(cost);
        let text = match verdict.as_bool() {
            Some(true) => "inferred",
            Some(false) => "not inferred",
            None => "unknown",
        };
        oprintln!("{src}: {text}");
        if interrupted.is_none() {
            interrupted = verdict.interrupted().cloned();
        }
        answers.push(verdict.as_bool().map_or(Json::Null, Json::Bool));
    }
    eprintln!(
        "[oracle: {} SAT calls, {} candidates]",
        total.sat_calls, total.candidates
    );
    let consumed = disjunctive_db::obs::budget::consumed();
    drop(guard);
    if let Some(i) = &interrupted {
        report_unknown(i);
    }
    observation.finish(
        opts,
        "query",
        Json::Arr(answers),
        govern_extra(interrupted.as_ref(), consumed),
    )?;
    Ok(if interrupted.is_some() {
        EXIT_EXHAUSTED
    } else {
        0
    })
}

fn exists(args: &[String]) -> Result<u8, String> {
    let opts = parse_opts(args)?;
    let db = load(&opts)?;
    let budget = budget_from(&opts)?;
    let observation = begin_observation(&opts, "cmd.exists");
    let guard = budget.map(Budget::install);
    let mut cost = Cost::new();
    let name = opts.value("semantics").unwrap_or("egcwa");
    let verdict: Verdict = if name.eq_ignore_ascii_case("cwa") {
        cwa::is_consistent(&db, &mut cost).into()
    } else {
        let cfg = config_for(&opts, &db)?.with_threads(threads_from(&opts)?);
        cfg.has_model(&db, &mut cost).map_err(|e| e.to_string())?
    };
    match verdict.as_bool() {
        Some(ans) => oprintln!("{}", if ans { "has a model" } else { "no model" }),
        None => oprintln!("unknown"),
    }
    let consumed = disjunctive_db::obs::budget::consumed();
    drop(guard);
    let interrupted = verdict.interrupted().cloned();
    if let Some(i) = &interrupted {
        report_unknown(i);
    }
    let answer = verdict.as_bool().map_or(Json::Null, Json::Bool);
    observation.finish(
        &opts,
        "exists",
        answer,
        govern_extra(interrupted.as_ref(), consumed),
    )?;
    Ok(if interrupted.is_some() {
        EXIT_EXHAUSTED
    } else {
        0
    })
}

fn profile_cmd(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let db = load(&opts)?;
    if db.num_atoms() == 0 {
        return Err("profile needs a database with at least one atom".into());
    }
    // Queries for the two inference columns: default to the first atom as
    // a positive literal and as a formula.
    let lit = match opts.value("literal") {
        Some(l) => {
            let (name, positive) = match l.strip_prefix('-') {
                Some(rest) => (rest, false),
                None => (l, true),
            };
            let atom = db
                .symbols()
                .lookup(name)
                .ok_or_else(|| format!("unknown atom `{name}`"))?;
            Literal::with_sign(atom, positive)
        }
        None => Atom::new(0).pos(),
    };
    let f = match opts.value("formula") {
        Some(src) => parse_query_formula(src, &db)?,
        None => Formula::literal(lit.atom(), lit.is_positive()),
    };
    // Per-cell budget: --cell-timeout-ms plus any of the general resource
    // limits. Each matrix cell gets a fresh installation, so one slow
    // Πᵖ₂ cell is marked `?<resource>` while the sweep continues.
    let mut cell_budget = budget_from(&opts)?;
    if let Some(ms) = opts.value("cell-timeout-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("--cell-timeout-ms needs an unsigned integer, got `{ms}`"))?;
        cell_budget = Some(
            cell_budget
                .unwrap_or_else(Budget::unlimited)
                .with_timeout(std::time::Duration::from_millis(ms)),
        );
    }
    let threads = threads_from(&opts)?;
    let observation = begin_observation(&opts, "cmd.profile");
    let cells = profile::profile_all_budgeted(&db, lit, &f, cell_budget.as_ref(), threads);
    oprintln!(
        "profile of {} ({} atoms, {} rules); query literal `{}{}`",
        opts.file.as_deref().unwrap_or("-"),
        db.num_atoms(),
        db.len(),
        if lit.is_positive() { "" } else { "-" },
        db.symbols().name(lit.atom()),
    );
    oprintln!();
    oprint!("{}", profile::render_table(&cells));
    let cells_json = Json::Arr(cells.iter().map(profile::CellProfile::to_json).collect());
    observation.finish(&opts, "profile", Json::Null, vec![("cells", cells_json)])
}

/// `ddb explain`: print the static query plan — per semantics, the route
/// tree the dispatcher will take for the query, with predicted complexity
/// classes and sound oracle-call bounds — plus the adornment analysis of
/// the query's backward slice and the plan lints `DDB012`–`DDB015`. With
/// `--execute`, each planned cell also runs and the predicted route and
/// bound are audited against the observed `route.*` counters and
/// oracle-call totals; any mismatch exits 1.
///
/// The output is deterministic: identical across repeated runs and across
/// `--threads` widths (the worker pool changes wall-clock only, never
/// answers or oracle-call totals).
fn explain_cmd(args: &[String]) -> Result<u8, String> {
    use disjunctive_db::analysis::{
        adorn, magic, plan_lints, DomainEstimate, PlanData, PlanNode, PlanQuery,
    };
    use disjunctive_db::core::planner::problem_of;
    let opts = parse_opts(args)?;
    let db = load(&opts)?;
    let threads = threads_from(&opts)?;
    // The planned query: --query, else the first atom as a positive
    // literal (matching `ddb profile`'s default), else model existence.
    let (plan_query, query_label, lit, formula) = match opts.value("query") {
        Some(raw) => {
            let f = parse_query_formula(raw, &db)?;
            let atoms = f.atoms();
            let lit = (atoms.len() == 1
                && (f == Formula::literal(atoms[0], true)
                    || f == Formula::literal(atoms[0], false)))
            .then(|| Literal::with_sign(atoms[0], f == Formula::literal(atoms[0], true)));
            let pq = match lit {
                Some(l) => PlanQuery::Literal(l.atom()),
                None => PlanQuery::Formula(atoms),
            };
            (pq, raw.to_owned(), lit, Some(f))
        }
        None if db.num_atoms() > 0 => {
            let a = Atom::new(0);
            (
                PlanQuery::Literal(a),
                db.symbols().name(a).to_owned(),
                Some(a.pos()),
                None,
            )
        }
        None => (
            PlanQuery::Existence,
            "(model existence)".to_owned(),
            None,
            None,
        ),
    };
    let problem = problem_of(&plan_query);
    let oracle_budget = opts
        .value("max-oracle-calls")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("--max-oracle-calls needs an unsigned integer, got `{v}`"))
        })
        .transpose()?;
    let ids: Vec<SemanticsId> = match opts.value("semantics") {
        Some(name) => vec![semantics_id(name)?],
        None => SemanticsId::ALL.to_vec(),
    };
    // One plan per semantics; unsupported combinations are reported, not
    // fatal (a sweep over all ten must survive DDR/PWS on negation).
    let explained: Vec<(SemanticsId, SemanticsConfig, Result<PlanNode, String>)> = ids
        .into_iter()
        .map(|id| {
            let cfg = SemanticsConfig::new(id).with_threads(threads);
            let plan = cfg.plan(&db, &plan_query).map_err(|u| u.reason);
            (id, cfg, plan)
        })
        .collect();
    let query_atoms = plan_query.atoms().to_vec();
    let adornments = adorn(&db, &query_atoms);
    let estimate = DomainEstimate::of(&db);
    let plan_refs: Vec<(&str, &PlanNode)> = explained
        .iter()
        .filter_map(|(id, _, p)| p.as_ref().ok().map(|p| (id.name(), p)))
        .collect();
    let lints = plan_lints(&db, &query_atoms, &plan_refs, &adornments, oracle_budget);
    // When any plan routes through the magic rewrite, the transformed
    // program is part of the explanation (the restriction is taken from
    // the plan itself, so the rendered program is the one executed).
    let magic_rewrite = explained.iter().find_map(|(_, _, plan)| match plan {
        Ok(p) => match &p.data {
            PlanData::Magic { restriction, .. } => {
                Some(magic::rewrite(&db, &query_atoms, restriction))
            }
            _ => None,
        },
        Err(_) => None,
    });
    // --execute: run each planned cell and compare prediction to
    // observation. The dummy literal for existence-only audits is never
    // dereferenced (`has_model` ignores the query arguments).
    let mut audits: Vec<(SemanticsId, &PlanNode, profile::CellProfile)> = Vec::new();
    let mut audit_failures = 0usize;
    if opts.flag("execute") {
        let lit_q = lit.unwrap_or_else(|| Atom::new(0).pos());
        let f_q = formula
            .clone()
            .unwrap_or_else(|| Formula::literal(lit_q.atom(), lit_q.is_positive()));
        for (id, cfg, plan) in &explained {
            let Ok(plan) = plan else { continue };
            let cell = profile::profile_cell(cfg, &db, problem, lit_q, &f_q, None);
            if cell.unsupported.is_none()
                && (cell.route != Some(plan.route.label())
                    || cell.cost.sat_calls > plan.oracle_bound)
            {
                audit_failures += 1;
            }
            audits.push((*id, plan, cell));
        }
    }
    if opts.flag("json") {
        let plans_json: Vec<Json> = explained
            .iter()
            .map(|(id, _, plan)| {
                let (tree, unsupported) = match plan {
                    Ok(p) => (p.to_json(), Json::Null),
                    Err(reason) => (Json::Null, Json::Str(reason.clone())),
                };
                Json::obj([
                    ("semantics", Json::Str(id.name().to_owned())),
                    ("plan", tree),
                    ("unsupported", unsupported),
                ])
            })
            .collect();
        let audits_json: Vec<Json> = audits
            .iter()
            .map(|(id, plan, cell)| {
                Json::obj([
                    ("semantics", Json::Str(id.name().to_owned())),
                    ("predicted_route", Json::Str(plan.route.label().to_owned())),
                    (
                        "observed_route",
                        cell.route.map_or(Json::Null, |r| Json::Str(r.to_owned())),
                    ),
                    ("oracle_bound", Json::UInt(plan.oracle_bound)),
                    ("observed_sat_calls", Json::UInt(cell.cost.sat_calls)),
                    (
                        "unsupported",
                        cell.unsupported
                            .as_ref()
                            .map_or(Json::Null, |r| Json::Str(r.clone())),
                    ),
                    (
                        "ok",
                        Json::Bool(
                            cell.unsupported.is_some()
                                || (cell.route == Some(plan.route.label())
                                    && cell.cost.sat_calls <= plan.oracle_bound),
                        ),
                    ),
                ])
            })
            .collect();
        let doc = Json::obj([
            (
                "file",
                Json::Str(opts.file.as_deref().unwrap_or("-").into()),
            ),
            ("query", Json::Str(query_label)),
            ("problem", Json::Str(problem.name().to_owned())),
            ("atoms", Json::UInt(db.num_atoms() as u64)),
            ("rules", Json::UInt(db.len() as u64)),
            ("domain", estimate.to_json()),
            ("adornments", adornments.to_json()),
            ("plans", Json::Arr(plans_json)),
            (
                "rewrite",
                magic_rewrite
                    .as_ref()
                    .map_or(Json::Null, magic::MagicProgram::to_json),
            ),
            (
                "lints",
                Json::Arr(
                    lints
                        .iter()
                        .map(disjunctive_db::analysis::Diagnostic::to_json)
                        .collect(),
                ),
            ),
            ("audits", Json::Arr(audits_json)),
            ("audit_failures", Json::UInt(audit_failures as u64)),
        ]);
        oprintln!("{}", doc.render_pretty());
        return Ok(u8::from(audit_failures > 0));
    }
    oprintln!(
        "explain {} ({} atoms, {} rules); query `{}` ({} problem)",
        opts.file.as_deref().unwrap_or("-"),
        db.num_atoms(),
        db.len(),
        query_label,
        problem.name(),
    );
    oprintln!(
        "domain: {} constants, {} predicates, {} disjunctive rules (max head width {})",
        estimate.num_constants,
        estimate.predicates.len(),
        estimate.disjunctive_rules,
        estimate.max_head_width,
    );
    if !adornments.predicates.is_empty() {
        let shown: Vec<String> = adornments.predicates.iter().map(|p| p.display()).collect();
        oprintln!(
            "adornments: {} (bound constants: {})",
            shown.join(" "),
            if adornments.bound_constants.is_empty() {
                "none".to_owned()
            } else {
                adornments.bound_constants.join(", ")
            },
        );
    }
    for (id, _, plan) in &explained {
        oprintln!();
        match plan {
            Ok(p) => {
                oprintln!("== {}", id.name());
                for line in p.render().lines() {
                    oprintln!("  {line}");
                }
            }
            Err(reason) => oprintln!("== {} — unsupported: {}", id.name(), reason),
        }
    }
    if let Some(prog) = &magic_rewrite {
        oprintln!();
        oprintln!("rewritten program (magic):");
        for line in prog.render().lines() {
            oprintln!("  {line}");
        }
    }
    if !lints.is_empty() {
        oprintln!();
        for d in &lints {
            oprintln!("{d}");
        }
    }
    if opts.flag("execute") {
        oprintln!();
        for (id, plan, cell) in &audits {
            if let Some(reason) = &cell.unsupported {
                oprintln!("audit {}: skipped ({})", id.name(), reason);
                continue;
            }
            let route_ok = cell.route == Some(plan.route.label());
            let bound_ok = cell.cost.sat_calls <= plan.oracle_bound;
            oprintln!(
                "audit {}: route predicted={} observed={}; sat_calls={} (bound {}) — {}",
                id.name(),
                plan.route.label(),
                cell.route.unwrap_or("-"),
                cell.cost.sat_calls,
                disjunctive_db::analysis::cost::display_bound(plan.oracle_bound),
                if route_ok && bound_ok {
                    "ok"
                } else {
                    "MISMATCH"
                },
            );
        }
        if audit_failures > 0 {
            eprintln!("explain: {audit_failures} audit mismatch(es)");
            return Ok(1);
        }
    }
    Ok(0)
}

/// `ddb trace`: run one formula query under a full event trace and print
/// an aggregated span-tree report — calls, inclusive/exclusive time,
/// attributed oracle calls, and p50/p90/p99 latency per tree node. The
/// sink is always installed (that is the point of the command), so
/// `--trace-json`/`--trace-chrome`/`--flame` compose with it for free.
fn trace_cmd(args: &[String]) -> Result<u8, String> {
    let opts = parse_opts(args)?;
    let db = load(&opts)?;
    let raw = opts.value("query").ok_or("missing --query \"<formula>\"")?;
    let formula = parse_query_formula(raw, &db)?;
    let top = match opts.value("top") {
        Some(t) => t
            .parse::<usize>()
            .map_err(|_| format!("--top needs an unsigned integer, got `{t}`"))?,
        None => 0,
    };
    let budget = budget_from(&opts)?;
    let sink = disjunctive_db::obs::MemorySink::new();
    disjunctive_db::obs::set_sink(sink.clone());
    disjunctive_db::obs::reset_histograms();
    let before = disjunctive_db::obs::snapshot();
    let guard = budget.map(Budget::install);
    let mut cost = Cost::new();
    let verdict = {
        // The root span's depth-0 exit flushes this thread's buffered
        // counters, histograms, and trace events before the reads below.
        let _root = disjunctive_db::obs::span("cmd.trace");
        // Default to EGCWA like `ddb query` does, so a bare
        // `ddb trace <file> --query ...` works out of the box.
        let cfg = match opts.value("semantics") {
            Some(_) => config_for(&opts, &db)?,
            None => SemanticsConfig::new(SemanticsId::Egcwa),
        }
        .with_threads(threads_from(&opts)?);
        cfg.infers_formula(&db, &formula, &mut cost)
            .map_err(|e| e.to_string())?
    };
    drop(guard);
    let counters = disjunctive_db::obs::snapshot().diff(&before);
    let hists = disjunctive_db::obs::hist_snapshot();
    disjunctive_db::obs::clear_sink();
    let events = sink.take();
    let report = disjunctive_db::obs::TraceReport::build(&events);
    let interrupted = verdict.interrupted().cloned();
    if opts.flag("json") {
        let doc = Json::obj([
            ("version", Json::UInt(1)),
            ("command", Json::Str("trace".to_owned())),
            ("query", Json::Str(raw.to_owned())),
            ("answer", verdict.as_bool().map_or(Json::Null, Json::Bool)),
            ("oracle_calls", Json::UInt(counters.get("sat.solves"))),
            ("spans", report.to_json()),
            ("histograms", hists.to_json()),
        ]);
        oprintln!("{}", doc.render_pretty());
    } else {
        let answer = match verdict.as_bool() {
            Some(true) => "inferred",
            Some(false) => "not inferred",
            None => "unknown",
        };
        oprintln!("{raw}: {answer}");
        oprintln!();
        oprint!("{}", report.render(top));
        if opts.flag("stats") {
            eprint!("{}", counters.render_table());
            if !hists.is_empty() {
                eprint!("{}", hists.render_table());
            }
        }
    }
    if let Some(i) = &interrupted {
        report_unknown(i);
    }
    Ok(if interrupted.is_some() {
        EXIT_EXHAUSTED
    } else {
        0
    })
}

fn ground_cmd(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let path = opts.file.as_deref().ok_or("missing <file> argument")?;
    let source = if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        s
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    let program = parse_datalog(&source).map_err(|e| e.to_string())?;
    let db = if opts.flag("full") {
        disjunctive_db::ground::ground_full(&program, 1_000_000)
    } else {
        ground_reduced(&program, 1_000_000)
    }
    .map_err(|e| e.to_string())?;
    emit(display_database(&db).trim_end());
    eprintln!(
        "[{} ground atoms, {} ground rules]",
        db.num_atoms(),
        db.len()
    );
    Ok(())
}

fn proof_cmd(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let db = load(&opts)?;
    if db.has_negation() {
        return Err("DDR proofs need a database without negation".into());
    }
    let name = opts.value("atom").ok_or("missing --atom <name>")?;
    let atom = db
        .symbols()
        .lookup(name)
        .ok_or_else(|| format!("unknown atom `{name}`"))?;
    match disjunctive_db::models::fixpoint::activation_proof(&db, atom) {
        None => oprintln!("{name} does not occur in T_DB↑ω — DDR infers ¬{name}"),
        Some(proof) => {
            oprintln!("{name} occurs in T_DB↑ω (DDR does NOT infer ¬{name}); derivation:");
            for step in &proof {
                let rule = &db.rules()[step.rule_index];
                oprintln!(
                    "  {} by rule #{}: {}",
                    db.symbols().name(step.atom),
                    step.rule_index,
                    display_rule(rule, db.symbols())
                );
            }
            assert!(disjunctive_db::models::fixpoint::verify_proof(
                &db, atom, &proof
            ));
        }
    }
    Ok(())
}

fn wfs_cmd(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let db = load(&opts)?;
    if !wfs::is_normal_program(&db) {
        return Err("WFS needs a normal program (exactly one head atom per rule)".into());
    }
    let w = wfs::well_founded_model(&db);
    for a in db.symbols().atoms() {
        let v = match w.value(a) {
            TruthValue::True => "true",
            TruthValue::Undefined => "undefined",
            TruthValue::False => "false",
        };
        oprintln!("{}: {v}", db.symbols().name(a));
    }
    Ok(())
}

/// `ddb serve`: host the catalog over TCP with the fault-tolerance
/// contract of `ddb_serve::server` — bounded sessions and admission
/// queues with typed `overloaded` shedding, per-request budgets
/// (server defaults ∩ client limits), read/write/idle timeouts, a
/// max-frame guard, panic fencing, and graceful drain on the `shutdown`
/// op or (with `--drain-on-stdin-close`) when stdin reaches EOF — the
/// supervisor-friendly substitute for a SIGTERM handler, which a
/// `forbid(unsafe_code)` zero-dependency build cannot install.
fn serve_cmd(args: &[String]) -> Result<u8, String> {
    use disjunctive_db::serve::{catalog::name_from_path, Catalog, Server, ServerConfig};
    let opts = parse_opts(args)?;
    let parse_u64 = |key: &str| -> Result<Option<u64>, String> {
        opts.value(key)
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("--{key} needs an unsigned integer, got `{v}`"))
            })
            .transpose()
    };
    let mut config = ServerConfig::default();
    let mut catalog = Catalog::new();
    if let Some(path) = opts.file.as_deref() {
        catalog.load_file(&name_from_path(path), path, config.grounding_limit)?;
    }
    for spec in opts.values_all("db") {
        let (name, path) = match spec.split_once('=') {
            Some((n, p)) => (n.to_owned(), p.to_owned()),
            None => (name_from_path(spec), spec.to_owned()),
        };
        catalog.load_file(&name, &path, config.grounding_limit)?;
    }
    if catalog.is_empty() {
        return Err(
            "serve needs at least one database (positional <file> or --db name=path)".into(),
        );
    }
    // Operator-provisioned entries are sealed: wire `load` requests may
    // add new names but never replace these (the catalog's trust model).
    catalog.protect_all();
    if let Some(addr) = opts.value("addr") {
        config.addr = addr.to_owned();
    }
    if let Some(n) = parse_u64("max-sessions")? {
        config.max_sessions = n.max(1) as usize;
    }
    if let Some(n) = parse_u64("workers")? {
        config.workers = n.max(1) as usize;
    }
    if let Some(n) = parse_u64("queue")? {
        config.queue = n as usize;
    }
    if let Some(ms) = parse_u64("read-timeout-ms")? {
        config.read_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = parse_u64("write-timeout-ms")? {
        config.write_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = parse_u64("idle-timeout-ms")? {
        config.idle_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = parse_u64("max-frame-bytes")? {
        config.max_frame_bytes = n.max(64) as usize;
    }
    if let Some(ms) = parse_u64("retry-after-ms")? {
        config.retry_after_ms = ms;
    }
    if let Some(n) = opts.value("threads") {
        config.max_query_threads = n
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("--threads needs a positive integer, got `{n}`"))?;
    }
    if let Some(budget) = budget_from(&opts)? {
        config.defaults = budget;
    }
    let handle = Server::start(config, catalog)?;
    // The harness (CI, tests, supervisors) parses this line for the
    // bound address, so it goes to stdout and flushes immediately.
    oprintln!("listening on {}", handle.addr());
    if opts.flag("drain-on-stdin-close") {
        let trigger = handle.shutdown_trigger();
        std::thread::spawn(move || {
            let mut sink = String::new();
            let _ = std::io::stdin().read_to_string(&mut sink);
            trigger.shutdown();
        });
    }
    let report = handle.join();
    eprintln!("{report}");
    Ok(if report.sessions_leaked == 0 { 0 } else { 1 })
}

/// `ddb call`: one-shot client for a running server. Stdout reproduces
/// the matching CLI command byte-for-byte (`query` prints the verdict
/// line, `models` the header plus one `  {…}` line per model), so CI can
/// diff served answers against local ones; the exit code mirrors the
/// CLI contract (0 ok, 3 resource/overloaded, 4 parse/usage/internal).
fn call_cmd(args: &[String]) -> Result<u8, String> {
    use disjunctive_db::serve::chaos::Client;
    let opts = parse_opts(args)?;
    let addr = opts.value("addr").ok_or("missing --addr <host:port>")?;
    let op = opts.value("op").unwrap_or("query");
    let mut fields: Vec<(&str, Json)> = vec![("op", Json::Str(op.to_owned()))];
    if let Some(id) = opts.value("id") {
        fields.push(("id", Json::Str(id.to_owned())));
    }
    for key in ["db", "semantics", "formula", "literal", "target"] {
        if let Some(v) = opts.value(key) {
            fields.push((key, Json::Str(v.to_owned())));
        }
    }
    if opts.flag("brave") {
        fields.push(("brave", Json::Bool(true)));
    }
    if let Some(n) = opts.value("threads") {
        let n: u64 = n
            .parse()
            .map_err(|_| format!("--threads needs a positive integer, got `{n}`"))?;
        fields.push(("threads", Json::UInt(n)));
    }
    if let Some(path) = opts.file.as_deref() {
        fields.push(("source", Json::Str(read_source(path)?)));
        if opts.flag("datalog") {
            fields.push(("datalog", Json::Bool(true)));
        }
    }
    let mut limits: Vec<(&str, Json)> = Vec::new();
    for (flag, field) in [
        ("timeout-ms", "timeout_ms"),
        ("max-oracle-calls", "max_oracle_calls"),
        ("max-conflicts", "max_conflicts"),
        ("max-models", "max_models"),
        ("fail-after", "fail_after"),
    ] {
        if let Some(v) = opts.value(flag) {
            let n: u64 = v
                .parse()
                .map_err(|_| format!("--{flag} needs an unsigned integer, got `{v}`"))?;
            limits.push((field, Json::UInt(n)));
        }
    }
    if !limits.is_empty() {
        fields.push(("limits", Json::obj(limits)));
    }
    let frame = Json::obj(fields).render();
    let mut client = Client::connect(addr, std::time::Duration::from_secs(30))?;
    let doc = client.call(&frame)?;
    if opts.flag("json") {
        oprintln!("{}", doc.render_pretty());
    } else if doc.get("ok").and_then(Json::as_bool) == Some(true) {
        if let Some(answer) = doc.get("answer").and_then(Json::as_str) {
            oprintln!("{answer}");
        }
        if let Some(models) = doc.get("models").and_then(Json::as_arr) {
            for m in models {
                let names: Vec<&str> = m
                    .as_arr()
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(Json::as_str)
                    .collect();
                oprintln!("  {{{}}}", names.join(", "));
            }
        }
        if let (Some(sat), Some(cand)) = (
            doc.get("sat_calls").and_then(Json::as_u64),
            doc.get("candidates").and_then(Json::as_u64),
        ) {
            eprintln!("[oracle: {sat} SAT calls, {cand} candidates]");
        }
    } else if let Some(error) = doc.get("error") {
        let kind = error
            .get("kind")
            .and_then(Json::as_str)
            .unwrap_or("internal");
        let message = error.get("message").and_then(Json::as_str).unwrap_or("");
        eprintln!("error ({kind}): {message}");
    }
    // Exit contract: typed errors map through the wire taxonomy; a
    // budget-degraded success (`resource` set) exits 3 like the CLI.
    let code = if doc.get("ok").and_then(Json::as_bool) == Some(true) {
        match doc.get("resource") {
            Some(Json::Str(resource)) => {
                eprintln!("unknown ({resource})");
                EXIT_EXHAUSTED
            }
            _ => 0,
        }
    } else {
        match doc
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
        {
            Some("resource") | Some("overloaded") => EXIT_EXHAUSTED,
            _ => EXIT_USAGE,
        }
    };
    Ok(code)
}

/// `ddb chaos`: run the full attack harness against a live server and
/// report; any violated robustness check exits 1.
fn chaos_cmd(args: &[String]) -> Result<u8, String> {
    use disjunctive_db::serve::{run_chaos, ChaosConfig};
    let opts = parse_opts(args)?;
    let addr = opts.value("addr").ok_or("missing --addr <host:port>")?;
    let mut config = ChaosConfig {
        addr: addr.to_owned(),
        ..ChaosConfig::default()
    };
    let parse_u64 = |key: &str| -> Result<Option<u64>, String> {
        opts.value(key)
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("--{key} needs an unsigned integer, got `{v}`"))
            })
            .transpose()
    };
    if let Some(n) = parse_u64("rounds")? {
        config.rounds = n;
    }
    if let Some(n) = parse_u64("seed")? {
        config.seed = n;
    }
    if let Some(n) = parse_u64("fail-after-max")? {
        config.fail_after_max = n;
    }
    config.db = opts.value("db").map(str::to_owned);
    config.formula = opts.value("formula").map(str::to_owned);
    let report = run_chaos(&config)?;
    oprint!("{}", report.render());
    Ok(if report.ok() { 0 } else { 1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_opts_splits_values_and_flags() {
        let opts = parse_opts(&args(&[
            "file.dl",
            "--semantics",
            "gcwa",
            "--explain",
            "--formula",
            "a & b",
        ]))
        .unwrap();
        assert_eq!(opts.file.as_deref(), Some("file.dl"));
        assert_eq!(opts.value("semantics"), Some("gcwa"));
        assert_eq!(opts.value("formula"), Some("a & b"));
        assert!(opts.flag("explain"));
        assert!(!opts.flag("brave"));
    }

    #[test]
    fn parse_opts_rejects_dangling_value_flag() {
        assert!(parse_opts(&args(&["f.dl", "--semantics"])).is_err());
        assert!(parse_opts(&args(&["a.dl", "b.dl"])).is_err());
    }

    #[test]
    fn semantics_names_resolve() {
        assert_eq!(semantics_id("gcwa").unwrap(), SemanticsId::Gcwa);
        assert_eq!(semantics_id("CIRC").unwrap(), SemanticsId::Ecwa);
        assert_eq!(semantics_id("wgcwa").unwrap(), SemanticsId::Ddr);
        assert_eq!(semantics_id("pms").unwrap(), SemanticsId::Pws);
        assert_eq!(semantics_id("stable").unwrap(), SemanticsId::Dsm);
        assert!(semantics_id("nope").is_err());
    }

    #[test]
    fn unknown_command_reported() {
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&[])).is_err());
    }

    /// A database whose vocabulary is datalog ground-atom names — the
    /// shapes the grounder emits and the formula lexer cannot tokenize,
    /// so `parse_query_formula` (shared by query/trace/slice/explain)
    /// must resolve them through the verbatim-lookup fallback.
    fn ground_atom_db(names: &[&str]) -> Database {
        let mut db = Database::with_fresh_atoms(0);
        for name in names {
            let a = db.symbols_mut().intern(name);
            db.add_rule(Rule::new([a], [], []));
        }
        db
    }

    #[test]
    fn query_parser_resolves_datalog_ground_atoms() {
        let db = ground_atom_db(&["edge(a,b)", "p(f(a),b)", "p()", "not(a)"]);
        let lookup = |name: &str| {
            db.symbols()
                .atoms()
                .find(|&a| db.symbols().name(a) == name)
                .unwrap()
        };
        // Plain, nested-paren, and zero-arity ground atoms resolve.
        for name in ["edge(a,b)", "p(f(a),b)", "p()"] {
            assert_eq!(
                parse_query_formula(name, &db).unwrap(),
                Formula::literal(lookup(name), true),
                "{name}"
            );
        }
        // A reserved-word predicate name must reach the verbatim lookup,
        // not be lexed as the connective `not`.
        assert_eq!(
            parse_query_formula("not(a)", &db).unwrap(),
            Formula::literal(lookup("not(a)"), true)
        );
        // Leading `-` negates a ground atom through the fallback path.
        assert_eq!(
            parse_query_formula("-edge(a,b)", &db).unwrap(),
            Formula::literal(lookup("edge(a,b)"), false)
        );
        assert_eq!(
            parse_query_formula("  -p(f(a),b) ", &db).unwrap(),
            Formula::literal(lookup("p(f(a),b)"), false)
        );
    }

    #[test]
    fn query_parser_reports_malformed_and_unknown_atoms() {
        let db = ground_atom_db(&["edge(a,b)"]);
        // Mismatched parens never resolve and never panic; the original
        // formula parse error is what the user sees.
        assert!(parse_query_formula("edge(a", &db).is_err());
        assert!(parse_query_formula("edge(a))", &db).is_err());
        // Unknown predicate / wrong argument tuple.
        assert!(parse_query_formula("edge(b,a)", &db).is_err());
        assert!(parse_query_formula("node(a)", &db).is_err());
        // The fallback must not hijack real formula syntax errors.
        assert!(parse_query_formula("a &", &db).is_err());
    }

    #[test]
    fn end_to_end_classify_via_tempfile() {
        let path = std::env::temp_dir().join("ddb_cli_test_db.dl");
        std::fs::write(&path, "a | b. c :- a, b.").unwrap();
        let result = run(&args(&["classify", path.to_str().unwrap()]));
        std::fs::remove_file(&path).ok();
        assert!(result.is_ok());
    }

    #[test]
    fn check_exit_codes_are_stable() {
        // 0: clean report.
        let clean = std::env::temp_dir().join("ddb_cli_check_clean.dl");
        std::fs::write(&clean, "a | b. c :- a.").unwrap();
        assert_eq!(run(&args(&["check", clean.to_str().unwrap()])), Ok(0));
        assert_eq!(
            run(&args(&["check", clean.to_str().unwrap(), "--json"])),
            Ok(0)
        );
        std::fs::remove_file(&clean).ok();

        // 2: error-level lints (DDB002 fact violating a constraint).
        let bad = std::env::temp_dir().join("ddb_cli_check_bad.dl");
        std::fs::write(&bad, "a. :- a.").unwrap();
        assert_eq!(run(&args(&["check", bad.to_str().unwrap()])), Ok(2));
        std::fs::remove_file(&bad).ok();

        // 2: unreadable file.
        assert_eq!(run(&args(&["check", "/nonexistent/ddb_no_such.dl"])), Ok(2));
    }

    #[test]
    fn check_warnings_exit_one_and_strict_escalates() {
        let dup = std::env::temp_dir().join("ddb_cli_check_dup.dl");
        std::fs::write(&dup, "a. a.").unwrap();
        assert_eq!(run(&args(&["check", dup.to_str().unwrap()])), Ok(1));
        assert_eq!(
            run(&args(&["check", dup.to_str().unwrap(), "--strict"])),
            Ok(2)
        );
        std::fs::remove_file(&dup).ok();
    }

    #[test]
    fn check_reports_unsafe_datalog() {
        let unsafe_dl = std::env::temp_dir().join("ddb_cli_check_unsafe.dlv");
        std::fs::write(&unsafe_dl, "p(X).").unwrap();
        assert_eq!(run(&args(&["check", unsafe_dl.to_str().unwrap()])), Ok(2));
        std::fs::remove_file(&unsafe_dl).ok();
    }

    #[test]
    fn slice_prints_slice_and_admissions() {
        let path = std::env::temp_dir().join("ddb_cli_slice.dl");
        std::fs::write(&path, "a | b. c :- a. c :- b. x | y. z :- x.").unwrap();
        let p = path.to_str().unwrap();
        assert_eq!(run(&args(&["slice", p, "--query", "c"])), Ok(0));
        assert_eq!(run(&args(&["slice", p, "--query", "c", "--json"])), Ok(0));
        assert_eq!(
            run(&args(&["slice", p, "--query", "c", "--semantics", "dsm"])),
            Ok(0)
        );
        assert!(run(&args(&["slice", p, "--query", "nope"])).is_err());
        assert!(run(&args(&["slice", p])).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_with_partition_options() {
        let path = std::env::temp_dir().join("ddb_cli_test_part.dl");
        std::fs::write(&path, "a | b.").unwrap();
        let result = run(&args(&[
            "query",
            path.to_str().unwrap(),
            "--semantics",
            "ccwa",
            "--partition-p",
            "a",
            "--partition-q",
            "b",
            "--literal",
            "-a",
        ]));
        std::fs::remove_file(&path).ok();
        assert!(result.is_ok());
    }
}
