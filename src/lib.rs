//! # disjunctive-db
//!
//! Executable semantics for propositional disjunctive databases — a full
//! implementation of the systems studied in *Complexity Aspects of Various
//! Semantics for Disjunctive Databases* (Thomas Eiter & Georg Gottlob,
//! PODS 1993): GCWA, EGCWA, CCWA, ECWA/CIRC, DDR/WGCWA, PWS/PMS, PERF,
//! ICWA, DSM and PDSM, with the paper's three decision problems (literal
//! inference, formula inference, model existence) for each, over a
//! from-scratch SAT + minimal-model substrate.
//!
//! ## Quick start
//!
//! ```
//! use disjunctive_db::prelude::*;
//!
//! // A disjunctive database: someone broke the vase.
//! let db = parse_program(
//!     "alice | bob. grounded :- alice. grounded :- bob. treat :- alice, bob.",
//! ).unwrap();
//!
//! let mut cost = Cost::new();
//! // Under GCWA, `treat` is closed off (false in every minimal model)…
//! let treat = db.symbols().lookup("treat").unwrap();
//! assert!(gcwa::infers_literal(&db, treat.neg(), &mut cost).unwrap());
//! // …while `grounded` holds in every minimal model:
//! let grounded = parse_formula("grounded", db.symbols()).unwrap();
//! assert!(egcwa::infers_formula(&db, &grounded, &mut cost).unwrap());
//! // The weaker DDR does not close `treat` (it occurs in T↑ω):
//! assert!(!ddr::infers_literal(&db, treat.neg(), &mut cost).unwrap());
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`logic`] | atoms, rules, databases, formulas, interpretations, parser |
//! | [`sat`] | CDCL + DPLL SAT solvers (the NP oracle) |
//! | [`models`] | classical/minimal/⟨P;Z⟩-minimal model engine, CEGAR inference, fixpoints |
//! | [`core`] | the ten semantics + uniform dispatch |
//! | [`reductions`] | 2QBF, UMINSAT, and the executable hardness reductions |
//! | [`workloads`] | deterministic instance generators |
//! | [`ground`] | Datalog∨ front end: variables, safety, grounding |
//! | [`analysis`] | static analysis: dependency graph, fragment classifier, lints |
//! | [`obs`] | zero-dependency observability: counters, spans, event sinks, JSON |
//! | [`serve`] | fault-tolerant multi-tenant query server + chaos harness |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every Table 1/Table 2 cell.

#![forbid(unsafe_code)]

pub use ddb_analysis as analysis;
pub use ddb_core as core;
pub use ddb_ground as ground;
pub use ddb_logic as logic;
pub use ddb_models as models;
pub use ddb_obs as obs;
pub use ddb_reductions as reductions;
pub use ddb_sat as sat;
pub use ddb_serve as serve;
pub use ddb_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use ddb_core::{
        ccwa, ddr, dsm, ecwa, egcwa, gcwa, icwa, pdsm, perf, pws, Enumeration, SemanticsConfig,
        SemanticsId, Verdict,
    };
    pub use ddb_logic::parse::{
        display_database, display_formula, display_rule, parse_formula, parse_program,
    };
    pub use ddb_logic::{
        Atom, Database, DbClass, Formula, Interpretation, Literal, PartialInterpretation, Rule,
        Symbols, TruthValue,
    };
    pub use ddb_models::{Cost, Partition};
    pub use ddb_obs::{Budget, Governed, Interrupted};
}
