//! Datalog∨ end to end: a non-ground disjunctive program with variables
//! is grounded to a propositional database and solved under the stable
//! semantics — the classic "disjunctive deductive database" workflow the
//! paper's propositional analysis underpins.
//!
//! The program computes maximal independent sets of a graph:
//! every node is in or out; adjacent nodes are never both in; an out
//! node with no in-neighbour would contradict maximality.
//!
//! ```text
//! cargo run --example datalog
//! ```

use disjunctive_db::ground::{ground_full, ground_reduced, parse::parse_datalog};
use disjunctive_db::prelude::*;

fn main() {
    let source = "
        % a 5-cycle
        node(v1). node(v2). node(v3). node(v4). node(v5).
        edge(v1,v2). edge(v2,v3). edge(v3,v4). edge(v4,v5). edge(v5,v1).
        % symmetric closure
        adj(X,Y) :- edge(X,Y).
        adj(X,Y) :- edge(Y,X).
        % guess
        in(X) | out(X) :- node(X).
        % independence
        :- in(X), in(Y), adj(X,Y).
        % maximality: an out node must have an in-neighbour
        covered(X) :- adj(X,Y), in(Y).
        :- out(X), not covered(X).
    ";
    let program = parse_datalog(source).expect("valid Datalog∨");
    println!(
        "Non-ground program: {} rules over {} predicates, {} constants",
        program.rules.len(),
        program.predicates().len(),
        program.constants().len()
    );

    let db = ground_reduced(&program, 100_000).expect("grounds within budget");
    println!(
        "Reduced grounding: {} ground atoms, {} ground rules ({:?})",
        db.num_atoms(),
        db.len(),
        db.class()
    );

    let mut cost = Cost::new();
    let stable = dsm::models(&db, &mut cost).unwrap();
    println!("\n{} maximal independent sets of C5:", stable.len());
    for m in &stable {
        let mut ins: Vec<&str> = m
            .iter()
            .map(|a| db.symbols().name(a))
            .filter(|n| n.starts_with("in("))
            .collect();
        ins.sort_unstable();
        println!("  {}", ins.join(" "));
    }
    // C5 has 5 maximal independent sets of size 2 (rotations of {v1,v3}).
    assert_eq!(stable.len(), 5);

    // Cautious reasoning over all answer sets in one pass.
    if let Some((t, f)) = dsm::cautious_literals(&db, &mut cost).unwrap() {
        let names = |s: &Interpretation| -> Vec<String> {
            s.iter().map(|a| db.symbols().name(a).to_owned()).collect()
        };
        println!("\ncautiously true:  {:?}", names(&t));
        println!(
            "cautiously false: {:?}",
            names(&f)
                .into_iter()
                .filter(|n| n.starts_with("in("))
                .collect::<Vec<_>>()
        );
    }

    // Exact vs reduced grounding size (the DLV-style win).
    let full = ground_full(&program, 1_000_000).expect("grounds");
    println!(
        "\nexact grounding: {} rules / {} atoms; reduced: {} rules / {} atoms",
        full.len(),
        full.num_atoms(),
        db.len(),
        db.num_atoms()
    );
    println!(
        "oracle usage: {} SAT calls, {} candidates",
        cost.sat_calls, cost.candidates
    );
}
