//! Graph 3-coloring as a disjunctive deductive database: model existence
//! under EGCWA is exactly colorability (the NP-complete Table-2 cell), and
//! cautious inference reads off forced colors.
//!
//! ```text
//! cargo run --example coloring
//! ```

use disjunctive_db::prelude::*;
use disjunctive_db::workloads::structured;

fn main() {
    // A wheel: hub 0 connected to rim 1-2-3-4-1.
    let edges = vec![
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 1),
    ];
    let num_vertices = 5;

    for k in [2usize, 3] {
        let db = structured::graph_coloring(num_vertices, &edges, k);
        let mut cost = Cost::new();
        let cfg = SemanticsConfig::new(SemanticsId::Egcwa);
        let colorable = cfg.has_model(&db, &mut cost).unwrap().definite();
        println!(
            "wheel W4 with {k} colors: {}  ({} SAT calls)",
            if colorable {
                "colorable"
            } else {
                "NOT colorable"
            },
            cost.sat_calls
        );
    }

    // Enumerate the minimal models of the 3-coloring encoding — they are
    // exactly the proper colorings (one color atom per vertex).
    let db = structured::graph_coloring(num_vertices, &edges, 3);
    let mut cost = Cost::new();
    let colorings = SemanticsConfig::new(SemanticsId::Egcwa)
        .models(&db, &mut cost)
        .unwrap();
    println!("\n{} proper 3-colorings; first three:", colorings.len());
    for m in colorings.iter().take(3) {
        let mut per_vertex = vec![String::new(); num_vertices];
        for a in m.iter() {
            let name = db.symbols().name(a); // c_<v>_<i>
            let mut parts = name.split('_').skip(1);
            let v: usize = parts.next().unwrap().parse().unwrap();
            per_vertex[v] = parts.next().unwrap().to_owned();
        }
        println!("  colors by vertex: {per_vertex:?}");
        assert_eq!(m.count(), num_vertices, "one color per vertex");
    }

    // Cautious inference: an even cycle forces nothing, but gluing the hub
    // shrinks the space; ask whether vertex 1 and vertex 3 can share the
    // hub's color. (In W4 with 3 colors, rim vertices opposite each other
    // MUST share a color — check it cautiously.)
    let share = parse_formula(
        "(c_1_0 & c_3_0) | (c_1_1 & c_3_1) | (c_1_2 & c_3_2)",
        db.symbols(),
    )
    .unwrap();
    let forced = SemanticsConfig::new(SemanticsId::Egcwa)
        .infers_formula(&db, &share, &mut cost)
        .unwrap()
        .definite();
    println!("\nEGCWA ⊨ \"vertices 1 and 3 share a color\": {forced}");

    // On this positive database DSM and PDSM agree with EGCWA — the
    // paper's coincidence results, live.
    let dsm_ans = SemanticsConfig::new(SemanticsId::Dsm)
        .infers_formula(&db, &share, &mut cost)
        .unwrap()
        .definite();
    assert_eq!(forced, dsm_ans);
    println!("DSM agrees on positive databases ✓");
    println!(
        "\nOracle usage: {} SAT calls, {} candidates",
        cost.sat_calls, cost.candidates
    );
}
