//! A guided tour: one small database, all ten semantics side by side —
//! the fastest way to *see* how the semantics of the paper differ.
//!
//! ```text
//! cargo run --example semantics_tour
//! ```

use disjunctive_db::prelude::*;

fn show_models(db: &Database, id: SemanticsId, cost: &mut Cost) {
    let cfg = SemanticsConfig::new(id);
    match cfg.models(db, cost) {
        Ok(models) => {
            let rendered: Vec<String> = models
                .iter()
                .map(|m| {
                    let names: Vec<&str> = m.iter().map(|a| db.symbols().name(a)).collect();
                    format!("{{{}}}", names.join(","))
                })
                .collect();
            println!("  {:<14} {}", id.name(), rendered.join("  "));
        }
        Err(e) => println!("  {:<14} (n/a: {})", id.name(), e.reason),
    }
}

fn main() {
    let mut cost = Cost::new();

    // Scene 1: pure disjunction — where CWA families diverge.
    let db = parse_program("a | b. c :- a, b.").unwrap();
    println!("DB₁ = {{ a ∨ b.  c ← a ∧ b. }}   (positive)\n");
    println!("Characteristic model sets:");
    for id in SemanticsId::ALL {
        show_models(&db, id, &mut cost);
    }
    let nc = parse_formula("!c", db.symbols()).unwrap();
    let nab = parse_formula("!(a & b)", db.symbols()).unwrap();
    println!("\nInference of ¬c and ¬(a∧b):");
    for id in SemanticsId::ALL {
        let cfg = SemanticsConfig::new(id);
        let c_ans = cfg.infers_formula(&db, &nc, &mut cost);
        let ab_ans = cfg.infers_formula(&db, &nab, &mut cost);
        println!(
            "  {:<14} ¬c: {:<5}  ¬(a∧b): {}",
            id.name(),
            c_ans.map_or("n/a".into(), |b| b.to_string()),
            ab_ans.map_or("n/a".into(), |b| b.to_string()),
        );
    }

    // Scene 2: negation — stable vs partial stable vs perfect.
    let db2 = parse_program("p :- not q. q :- not p. r :- not r. s | t :- p.").unwrap();
    println!(
        "\nDB₂ = {{ p ← ¬q.  q ← ¬p.  r ← ¬r.  s ∨ t ← p. }}   ({:?})",
        db2.class()
    );
    for id in [SemanticsId::Dsm, SemanticsId::Pdsm, SemanticsId::Perf] {
        let cfg = SemanticsConfig::new(id);
        match cfg.has_model(&db2, &mut cost) {
            Ok(b) => println!("  {:<14} has a model: {b}", id.name()),
            Err(e) => println!("  {:<14} n/a: {}", id.name(), e.reason),
        }
    }
    // DSM dies on the odd loop; PDSM survives with r = ½.
    let pdsm_models = disjunctive_db::core::pdsm::models(&db2, &mut cost).unwrap();
    println!("  PDSM partial stable models ({}):", pdsm_models.len());
    for p in &pdsm_models {
        let mut parts = Vec::new();
        for a in db2.symbols().atoms() {
            let v = match p.value(a) {
                TruthValue::True => "1",
                TruthValue::Undefined => "½",
                TruthValue::False => "0",
            };
            parts.push(format!("{}={v}", db2.symbols().name(a)));
        }
        println!("    ⟨{}⟩", parts.join(", "));
    }

    // Scene 3: partitions — careful closure keeps protected atoms open.
    let db3 = parse_program("suspect_a | suspect_b. alibi_b.").unwrap();
    let part = Partition::from_p_q(
        db3.num_atoms(),
        [db3.symbols().lookup("suspect_a").unwrap()],
        [db3.symbols().lookup("alibi_b").unwrap()],
    );
    let nsa = parse_formula("!suspect_a", db3.symbols()).unwrap();
    println!("\nDB₃ = {{ suspect_a ∨ suspect_b.  alibi_b. }}");
    println!(
        "  GCWA (close everything)      ⊨ ¬suspect_a: {}",
        disjunctive_db::core::gcwa::infers_formula(&db3, &nsa, &mut cost).unwrap()
    );
    println!(
        "  CCWA (P={{suspect_a}}, Q={{alibi_b}}, Z=rest) ⊨ ¬suspect_a: {}",
        disjunctive_db::core::ccwa::infers_formula(&db3, &part, &nsa, &mut cost).unwrap()
    );

    println!(
        "\nTotal oracle usage: {} SAT calls, {} candidates",
        cost.sat_calls, cost.candidates
    );
}
