//! Quickstart: parse a disjunctive database, inspect its models under
//! several semantics, and ask the paper's three decision problems.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use disjunctive_db::prelude::*;

fn main() {
    // A small indefinite knowledge base: we know one of alice/bob broke
    // the vase; whoever it was is grounded; family therapy only if both.
    let db = parse_program(
        "alice | bob. \
         grounded :- alice. \
         grounded :- bob. \
         therapy :- alice, bob.",
    )
    .expect("valid program");
    println!("Database ({:?}):\n{}", db.class(), display_database(&db));

    let mut cost = Cost::new();

    // 1. Characteristic model sets.
    for id in [
        SemanticsId::Egcwa,
        SemanticsId::Gcwa,
        SemanticsId::Ddr,
        SemanticsId::Pws,
    ] {
        let cfg = SemanticsConfig::new(id);
        let models = cfg.models(&db, &mut cost).expect("applicable");
        println!("\n{id} characterizes {} model(s):", models.len());
        for m in &models {
            let names: Vec<&str> = m.iter().map(|a| db.symbols().name(a)).collect();
            println!("  {{{}}}", names.join(", "));
        }
    }

    // 2. Literal inference: is `therapy` closed off?
    let therapy = db.symbols().lookup("therapy").unwrap();
    println!("\n¬therapy inferred?");
    for id in [
        SemanticsId::Gcwa,
        SemanticsId::Egcwa,
        SemanticsId::Ddr,
        SemanticsId::Pws,
    ] {
        let cfg = SemanticsConfig::new(id);
        let ans = cfg
            .infers_literal(&db, therapy.neg(), &mut cost)
            .unwrap()
            .definite();
        println!("  {id}: {ans}");
    }

    // 3. Formula inference separates EGCWA from GCWA: no minimal model
    //    has both culprits, but GCWA's model set still allows it.
    let both = parse_formula("!(alice & bob)", db.symbols()).unwrap();
    println!("\n¬(alice ∧ bob) inferred?");
    for id in [SemanticsId::Gcwa, SemanticsId::Egcwa] {
        let cfg = SemanticsConfig::new(id);
        let ans = cfg
            .infers_formula(&db, &both, &mut cost)
            .unwrap()
            .definite();
        println!("  {id}: {ans}");
    }

    // 4. The integrity clauses EGCWA derives (via hypergraph
    //    dualization of the minimal models).
    let derived = disjunctive_db::core::egcwa::derived_integrity_clauses(&db, 10_000, &mut cost)
        .unwrap()
        .expect("within cap");
    println!("\nEGCWA-derived integrity clauses:");
    for clause in &derived {
        let names: Vec<&str> = clause.iter().map(|&a| db.symbols().name(a)).collect();
        println!("  :- {}.", names.join(", "));
    }

    // 5. Model existence, and what it cost us.
    let exists = SemanticsConfig::new(SemanticsId::Egcwa)
        .has_model(&db, &mut cost)
        .unwrap()
        .definite();
    println!("\nEGCWA has a model: {exists}");
    println!(
        "Total oracle usage this session: {} SAT calls, {} CEGAR candidates",
        cost.sat_calls, cost.candidates
    );
}
