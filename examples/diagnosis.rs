//! Model-based diagnosis with minimal models — the classic application of
//! closed-world reasoning over disjunctive databases (and circumscription).
//!
//! A two-inverter circuit is observed misbehaving. Encoding "component is
//! either ok or abnormal" as disjunctive facts and circuit behaviour as
//! rules, the *minimal* models (EGCWA ≡ minimal diagnosis) minimize the
//! set of abnormal components; ECWA with partition ⟨P = ab-atoms;
//! Z = line values⟩ expresses the same thing as circumscription.
//!
//! ```text
//! cargo run --example diagnosis
//! ```

use disjunctive_db::prelude::*;

fn main() {
    // Circuit: in --[inv1]-- mid --[inv2]-- out.
    // Observation: in = 1 and out = 1 (a correct double inverter would
    // give out = 1... inverter twice: out = in, so out=1 is EXPECTED;
    // we instead observe out = 0 → something is abnormal).
    //
    // Encoding: okX ∨ abX for each gate; behaviour rules fire only for ok
    // gates; observations are facts/integrity clauses.
    let db = parse_program(
        "% each inverter is ok or abnormal
         ok1 | ab1.
         ok2 | ab2.
         % observed input high
         in_high.
         % normal behaviour: an ok inverter flips its input
         mid_low  :- ok1, in_high.
         out_high :- ok2, mid_low.
         % observation: the output is NOT high
         :- out_high.",
    )
    .expect("valid program");
    println!(
        "Diagnosis database ({:?}):\n{}",
        db.class(),
        display_database(&db)
    );

    let mut cost = Cost::new();

    // Minimal models = minimal diagnoses.
    let cfg = SemanticsConfig::new(SemanticsId::Egcwa);
    let diagnoses = cfg.models(&db, &mut cost).unwrap();
    println!("Minimal diagnoses (abnormal sets):");
    for m in &diagnoses {
        let abs: Vec<&str> = m
            .iter()
            .filter(|a| db.symbols().name(*a).starts_with("ab"))
            .map(|a| db.symbols().name(a))
            .collect();
        println!("  {{{}}}", abs.join(", "));
    }

    // Cautious conclusions: is *some* gate definitely broken?
    let some_ab = parse_formula("ab1 | ab2", db.symbols()).unwrap();
    println!(
        "\nEGCWA ⊨ ab1 ∨ ab2 (some gate is broken): {}",
        cfg.infers_formula(&db, &some_ab, &mut cost)
            .unwrap()
            .definite()
    );
    let ab1 = parse_formula("ab1", db.symbols()).unwrap();
    println!(
        "EGCWA ⊨ ab1 (inverter 1 is definitely broken): {}",
        cfg.infers_formula(&db, &ab1, &mut cost).unwrap().definite()
    );
    let not_both = parse_formula("!(ab1 & ab2)", db.symbols()).unwrap();
    println!(
        "EGCWA ⊨ ¬(ab1 ∧ ab2) (never blame both): {}",
        cfg.infers_formula(&db, &not_both, &mut cost)
            .unwrap()
            .definite()
    );

    // Circumscription view: minimize the ab-atoms only, let line values
    // vary (⟨P;Z⟩-minimality = ECWA = CIRC).
    let ab_atoms: Vec<Atom> = db
        .symbols()
        .atoms()
        .filter(|a| db.symbols().name(*a).starts_with("ab"))
        .collect();
    let part = Partition::from_p_q(db.num_atoms(), ab_atoms, []);
    println!(
        "\nCIRC(ab; lines) ⊨ ab1 ∨ ab2: {}",
        disjunctive_db::core::ecwa::infers_formula(&db, &part, &some_ab, &mut cost).unwrap()
    );
    println!(
        "CIRC(ab; lines) ⊨ ¬(ab1 ∧ ab2): {}",
        disjunctive_db::core::ecwa::infers_formula(&db, &part, &not_both, &mut cost).unwrap()
    );

    println!(
        "\nOracle usage: {} SAT calls, {} CEGAR candidates",
        cost.sat_calls, cost.candidates
    );
}
