//! Default reasoning with stratified negation: the Tweety benchmark, run
//! under PERF, ICWA, DSM and PDSM side by side.
//!
//! Birds fly unless abnormal; penguins are birds and abnormal; Tweety is
//! a penguin, Coco is (just) a bird. Stratified semantics should conclude
//! that Coco flies and Tweety does not.
//!
//! ```text
//! cargo run --example defaults
//! ```

use disjunctive_db::core::icwa;
use disjunctive_db::prelude::*;

fn main() {
    let db = parse_program(
        "% facts
         penguin_tweety.
         bird_coco.
         % penguins are birds
         bird_tweety :- penguin_tweety.
         % abnormality: penguins don't fly
         ab_tweety :- penguin_tweety.
         % default: birds fly unless abnormal
         flies_tweety :- bird_tweety, not ab_tweety.
         flies_coco   :- bird_coco,   not ab_coco.",
    )
    .expect("valid program");

    println!("Database class: {:?}", db.class());
    let strata = db.stratification().expect("stratified");
    println!("Stratification into {} strata:", strata.len());
    for (i, s) in strata.iter().enumerate() {
        let names: Vec<&str> = s.iter().map(|&a| db.symbols().name(a)).collect();
        println!("  S{}: {{{}}}", i + 1, names.join(", "));
    }

    let mut cost = Cost::new();
    let queries = [
        ("flies_coco", true),
        ("flies_tweety", false),
        ("ab_coco", false),
    ];

    for id in [
        SemanticsId::Perf,
        SemanticsId::Icwa,
        SemanticsId::Dsm,
        SemanticsId::Pdsm,
    ] {
        let cfg = SemanticsConfig::new(id);
        println!("\n{id}:");
        for (name, _expected) in queries {
            let atom = db.symbols().lookup(name).unwrap();
            let pos = cfg
                .infers_literal(&db, atom.pos(), &mut cost)
                .unwrap()
                .definite();
            let neg = cfg
                .infers_literal(&db, atom.neg(), &mut cost)
                .unwrap()
                .definite();
            let verdict = match (pos, neg) {
                (true, _) => "true",
                (_, true) => "false",
                _ => "unknown",
            };
            println!("  {name}: {verdict}");
        }
    }

    // The perfect model is the intended one; show it.
    let perfect = SemanticsConfig::new(SemanticsId::Perf)
        .models(&db, &mut cost)
        .unwrap();
    println!("\nPerfect models ({}):", perfect.len());
    for m in &perfect {
        let names: Vec<&str> = m.iter().map(|a| db.symbols().name(a)).collect();
        println!("  {{{}}}", names.join(", "));
    }

    // ICWA's layer-by-layer closure agrees (it was introduced to capture
    // PERF on stratified databases).
    let layers = icwa::Layers::new(&db, &strata, &Interpretation::empty(db.num_atoms()));
    let icwa_models = icwa::models(&db, &layers, &mut cost).unwrap();
    assert_eq!(perfect, icwa_models, "PERF = ICWA on stratified databases");
    println!("ICWA model set coincides with PERF ✓");

    println!(
        "\nOracle usage: {} SAT calls, {} candidates",
        cost.sat_calls, cost.candidates
    );
}
