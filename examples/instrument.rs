//! Attaching the observability layer from library code: install a memory
//! sink, run the same inference question under two semantics from opposite
//! ends of the complexity landscape, and compare what the NP oracle was
//! actually asked to do.
//!
//! EGCWA answers `DB ⊨ F` with a counterexample-guided loop over minimal
//! models (Πᵖ₂ shape); DSM must additionally re-check stability of every
//! candidate against its Gelfond–Lifschitz reduct. The counter diffs make
//! that difference concrete.
//!
//! ```text
//! cargo run --example instrument
//! ```

use disjunctive_db::obs;
use disjunctive_db::prelude::*;

fn oracle_report(label: &str, before: &obs::CounterSnapshot) -> obs::CounterSnapshot {
    let now = obs::snapshot();
    let delta = now.diff(before);
    println!("--- {label} ---");
    print!("{}", delta.render_table());
    println!();
    now
}

fn main() {
    // Observe everything: spans and counters stream into a memory sink.
    let sink = obs::MemorySink::new();
    obs::set_sink(sink.clone());

    let db = parse_program("alice | bob. grounded :- alice. grounded :- bob. treat :- alice, bob.")
        .unwrap();
    let query = parse_formula("grounded & !treat", db.symbols()).unwrap();

    let mut cost = Cost::new();
    let baseline = obs::snapshot();

    // EGCWA: holds iff the formula is true in every minimal model.
    let egcwa_answer = egcwa::infers_formula(&db, &query, &mut cost).unwrap();
    let after_egcwa = oracle_report("EGCWA formula inference", &baseline);

    // DSM: holds iff the formula is true in every disjunctive stable model.
    let dsm_answer = dsm::infers_formula(&db, &query, &mut cost).unwrap();
    oracle_report("DSM formula inference", &after_egcwa);

    println!("EGCWA infers the query: {egcwa_answer}");
    println!("DSM   infers the query: {dsm_answer}");

    // The sink captured the full event stream (thread-stamped trace
    // events); prove every track is well-nested and show which spans ran.
    obs::clear_sink();
    let events = sink.take();
    let spans = obs::check_track_nesting(&events).expect("every track is well-nested");
    println!(
        "\ncaptured {} events ({spans} completed spans), e.g.:",
        events.len()
    );
    for e in events.iter().take(5) {
        println!("  {}", e.to_json().render());
    }
}
