//! # ddb-ground — the Datalog∨ front end
//!
//! The paper analyzes *propositional* ("grounded") disjunctive databases;
//! real disjunctive deductive databases are written with variables and
//! grounded first. This crate supplies that bridge:
//!
//! * [`ast`] — non-ground syntax: constants, variables, predicate atoms,
//!   disjunctive rules with default negation and constraints;
//! * [`parse`] — a Datalog-style concrete syntax
//!   (`path(X,Y) :- edge(X,Z), path(Z,Y).`, uppercase = variable), with
//!   the disequality builtin `X != Y` (evaluated at grounding time);
//! * [`safety`] — the classical range-restriction check (every variable
//!   of a rule must occur in its positive body);
//! * [`grounder`] — three grounding strategies:
//!     * [`grounder::ground_full`] — the exact Herbrand instantiation,
//!       equivalent for **every** semantics (exponential in rule arity);
//!     * [`grounder::ground_reduced`] — DLV-style *intelligent grounding*
//!       over the possibly-true closure. Sound for the supported
//!       semantics (DSM, PDSM, WFS, PWS) on all programs and for the
//!       minimal-model family on positive programs; **not** model-set
//!       preserving for classical/minimal semantics in the presence of
//!       negation (a `⊨`-minimal model may make an underivable negated
//!       atom true). The tests pin both the equivalences and the
//!       documented counterexample;
//!     * [`grounder::ground_magic`] — *goal-directed* grounding for one
//!       bound query atom: a static per-predicate first-argument demand
//!       fixpoint decides which rules can reach the query, and only
//!       those are instantiated, joining against a first-argument index.
//!       The grounding-side mirror of the planner's magic restriction.
//!
//! The output is an ordinary [`ddb_logic::Database`] whose atom names are
//! the ground atoms (`edge(a,b)`), ready for any semantics in `ddb-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod grounder;
pub mod parse;
pub mod safety;

pub use ast::{DatalogProgram, DatalogRule, PredAtom, Term};
pub use grounder::{ground_full, ground_magic, ground_reduced, GroundingError};
