//! Concrete Datalog∨ syntax.
//!
//! ```text
//! edge(a, b). edge(b, c).
//! path(X, Y) :- edge(X, Y).
//! path(X, Y) :- edge(X, Z), path(Z, Y).
//! in(X) | out(X) :- node(X).
//! :- in(X), in(Y), edge(X, Y).     % constraints
//! p :- not q.                      % arity-0 predicates, negation
//! ```
//!
//! Identifiers starting with an uppercase letter (or `_`) are variables;
//! everything else is a constant or predicate name. `%` starts a comment.

use crate::ast::{DatalogProgram, DatalogRule, PredAtom, Term};
use std::fmt;

/// A parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "datalog parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Pipe,
    Arrow,
    Dot,
    Tilde,
    Neq,
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            b')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            b',' => {
                out.push((Tok::Comma, i));
                i += 1;
            }
            b'|' => {
                out.push((Tok::Pipe, i));
                i += 1;
            }
            b'.' => {
                out.push((Tok::Dot, i));
                i += 1;
            }
            b'~' => {
                out.push((Tok::Tilde, i));
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Neq, i));
                    i += 2;
                } else {
                    out.push((Tok::Tilde, i));
                    i += 1;
                }
            }
            b':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    out.push((Tok::Arrow, i));
                    i += 2;
                } else {
                    return Err(ParseError {
                        offset: i,
                        message: "expected `:-`".into(),
                    });
                }
            }
            c if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push((Tok::Ident(src[start..i].to_owned()), start));
            }
            other => {
                return Err(ParseError {
                    offset: i,
                    message: format!("unexpected character `{}`", other as char),
                });
            }
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    end: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map_or(self.end, |(_, o)| *o)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(ParseError {
                offset: self.offset(),
                message: format!("expected {what}"),
            })
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.toks.get(self.pos) {
            Some((Tok::Ident(s), _)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(ParseError {
                offset: self.offset(),
                message: "expected identifier".into(),
            }),
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let name = self.ident()?;
        Ok(
            if name.starts_with(|c: char| c.is_ascii_uppercase() || c == '_') {
                Term::Var(name)
            } else {
                Term::Const(name)
            },
        )
    }

    fn atom(&mut self) -> Result<PredAtom, ParseError> {
        let offset = self.offset();
        let pred = self.ident()?;
        if pred.starts_with(|c: char| c.is_ascii_uppercase()) {
            return Err(ParseError {
                offset,
                message: format!("predicate name `{pred}` must not start uppercase"),
            });
        }
        let mut args = Vec::new();
        if self.eat(&Tok::LParen) {
            loop {
                let name = self.ident()?;
                let term = if name.starts_with(|c: char| c.is_ascii_uppercase() || c == '_') {
                    Term::Var(name)
                } else {
                    Term::Const(name)
                };
                args.push(term);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen, "`)`")?;
        }
        Ok(PredAtom { pred, args })
    }

    fn rule(&mut self) -> Result<DatalogRule, ParseError> {
        let mut head = Vec::new();
        if self.peek() != Some(&Tok::Arrow) {
            loop {
                head.push(self.atom()?);
                if !self.eat(&Tok::Pipe) {
                    break;
                }
            }
        }
        let mut body_pos = Vec::new();
        let mut body_neg = Vec::new();
        let mut disequalities = Vec::new();
        if self.eat(&Tok::Arrow) {
            loop {
                // Disequality builtin: `term != term` (lookahead on the
                // token after the identifier).
                if matches!(self.peek(), Some(Tok::Ident(_)))
                    && matches!(self.toks.get(self.pos + 1).map(|(t, _)| t), Some(Tok::Neq))
                {
                    let lhs = self.term()?;
                    self.expect(&Tok::Neq, "`!=`")?;
                    let rhs = self.term()?;
                    disequalities.push((lhs, rhs));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                    continue;
                }
                let mut negated = self.eat(&Tok::Tilde);
                if !negated {
                    if let Some(Tok::Ident(s)) = self.peek() {
                        if s == "not" {
                            self.pos += 1;
                            negated = true;
                        }
                    }
                }
                let atom = self.atom()?;
                if negated {
                    body_neg.push(atom);
                } else {
                    body_pos.push(atom);
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        if head.is_empty() && body_pos.is_empty() && body_neg.is_empty() && disequalities.is_empty()
        {
            return Err(ParseError {
                offset: self.offset(),
                message: "empty clause".into(),
            });
        }
        self.expect(&Tok::Dot, "`.`")?;
        Ok(DatalogRule {
            head,
            body_pos,
            body_neg,
            disequalities,
        })
    }
}

/// Parses a Datalog∨ program.
pub fn parse_datalog(src: &str) -> Result<DatalogProgram, ParseError> {
    let toks = tokenize(src)?;
    let mut p = P {
        toks,
        pos: 0,
        end: src.len(),
    };
    let mut rules = Vec::new();
    while p.peek().is_some() {
        rules.push(p.rule()?);
    }
    Ok(DatalogProgram { rules })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_reachability() {
        let prog = parse_datalog(
            "edge(a,b). edge(b,c). path(X,Y) :- edge(X,Y). \
             path(X,Y) :- edge(X,Z), path(Z,Y).",
        )
        .unwrap();
        assert_eq!(prog.rules.len(), 4);
        assert!(prog.rules[0].is_ground());
        assert!(!prog.rules[2].is_ground());
        assert_eq!(prog.rules[3].variables().len(), 3);
    }

    #[test]
    fn parses_disjunction_and_negation() {
        let prog = parse_datalog("in(X) | out(X) :- node(X), not removed(X).").unwrap();
        let r = &prog.rules[0];
        assert_eq!(r.head.len(), 2);
        assert_eq!(r.body_pos.len(), 1);
        assert_eq!(r.body_neg.len(), 1);
    }

    #[test]
    fn parses_constraint_and_proposition() {
        let prog = parse_datalog(":- p(a), q. r :- not s.").unwrap();
        assert!(prog.rules[0].head.is_empty());
        assert_eq!(prog.rules[1].head[0].args.len(), 0);
    }

    #[test]
    fn uppercase_is_variable_underscore_too() {
        let prog = parse_datalog("p(X, _G, a).").unwrap();
        let args = &prog.rules[0].head[0].args;
        assert!(args[0].is_var());
        assert!(args[1].is_var());
        assert!(!args[2].is_var());
    }

    #[test]
    fn rejects_uppercase_predicate() {
        assert!(parse_datalog("Pred(a).").is_err());
    }

    #[test]
    fn rejects_missing_paren() {
        assert!(parse_datalog("p(a.").is_err());
        assert!(parse_datalog("p(a))").is_err());
    }

    #[test]
    fn comments_skipped() {
        let prog = parse_datalog("% intro\np(a). % trailing\nq(b).").unwrap();
        assert_eq!(prog.rules.len(), 2);
    }

    #[test]
    fn parses_disequalities() {
        let prog = parse_datalog("pair(X,Y) :- d(X), d(Y), X != Y. p :- q, a != b.").unwrap();
        assert_eq!(prog.rules[0].disequalities.len(), 1);
        let (l, r) = &prog.rules[0].disequalities[0];
        assert!(l.is_var() && r.is_var());
        assert_eq!(prog.rules[1].disequalities.len(), 1);
        // Negation still lexes: `!` alone is Tilde.
        let neg = parse_datalog("p :- !q.").unwrap();
        assert_eq!(neg.rules[0].body_neg.len(), 1);
    }

    #[test]
    fn display_parse_roundtrip() {
        let src = "in(X) | out(X) :- node(X), not removed(X). :- in(a). \
                   pair(X,Y) :- n(X), n(Y), X != Y.";
        let prog = parse_datalog(src).unwrap();
        let printed = prog.to_string();
        let prog2 = parse_datalog(&printed).unwrap();
        assert_eq!(prog, prog2);
    }
}
