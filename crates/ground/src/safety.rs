//! Safety (range restriction): every variable of a rule must occur in the
//! rule's positive body, so grounding ranges over derivable bindings only
//! and negation is evaluated on ground atoms.

use crate::ast::{DatalogProgram, DatalogRule};
use std::fmt;

/// A safety violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyError {
    /// Index of the offending rule in the program.
    pub rule_index: usize,
    /// The unsafe variable.
    pub variable: String,
    /// Rendered rule for the message.
    pub rule: String,
}

impl fmt::Display for SafetyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unsafe variable `{}` in rule {} (`{}`): every variable must occur in the positive body",
            self.variable, self.rule_index, self.rule
        )
    }
}

impl std::error::Error for SafetyError {}

impl SafetyError {
    /// The violation as a structured DDB001 diagnostic, so `ddb check`
    /// reports safety failures through the same channel as the
    /// propositional lints.
    pub fn to_diagnostic(&self) -> ddb_analysis::Diagnostic {
        ddb_analysis::Diagnostic::unsafe_rule(self.rule_index, &self.variable, &self.rule)
    }
}

/// Checks one rule.
pub fn check_rule(index: usize, rule: &DatalogRule) -> Result<(), SafetyError> {
    let positive = rule.positive_body_variables();
    for v in rule.variables() {
        if !positive.contains(&v) {
            return Err(SafetyError {
                rule_index: index,
                variable: v,
                rule: rule.to_string(),
            });
        }
    }
    Ok(())
}

/// Checks a whole program.
pub fn check_program(prog: &DatalogProgram) -> Result<(), SafetyError> {
    for (i, rule) in prog.rules.iter().enumerate() {
        check_rule(i, rule)?;
    }
    Ok(())
}

/// Checks a whole program without short-circuiting: one violation per
/// offending rule, in rule order. `ddb check` renders the full list so a
/// multi-rule file reports every unsafe rule, with positions that keep
/// the `(code, position)` diagnostic sort stable.
pub fn check_program_all(prog: &DatalogProgram) -> Vec<SafetyError> {
    prog.rules
        .iter()
        .enumerate()
        .filter_map(|(i, rule)| check_rule(i, rule).err())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_datalog;

    #[test]
    fn safe_program_passes() {
        let prog =
            parse_datalog("edge(a,b). path(X,Y) :- edge(X,Y). p(X) | q(X) :- edge(X,Y), not r(Y).")
                .unwrap();
        assert!(check_program(&prog).is_ok());
    }

    #[test]
    fn head_variable_unbound() {
        let prog = parse_datalog("p(X).").unwrap();
        let err = check_program(&prog).unwrap_err();
        assert_eq!(err.variable, "X");
        assert_eq!(err.rule_index, 0);
    }

    #[test]
    fn safety_error_converts_to_ddb001_diagnostic() {
        let prog = parse_datalog("p(X).").unwrap();
        let err = check_program(&prog).unwrap_err();
        let d = err.to_diagnostic();
        assert_eq!(d.code, "DDB001");
        assert_eq!(d.severity, ddb_analysis::Severity::Error);
        assert!(d.message.contains('X'));
    }

    #[test]
    fn all_violations_are_collected_in_rule_order() {
        let prog = parse_datalog("p(X). q(a) :- r(a). s(Y) :- t(a), not u(Y). w(Z).").unwrap();
        let errs = check_program_all(&prog);
        assert_eq!(errs.len(), 3);
        assert_eq!(errs[0].rule_index, 0);
        assert_eq!(errs[0].variable, "X");
        assert_eq!(errs[1].rule_index, 2);
        assert_eq!(errs[1].variable, "Y");
        assert_eq!(errs[2].rule_index, 3);
        assert_eq!(errs[2].variable, "Z");
    }

    #[test]
    fn negative_body_variable_unbound() {
        let prog = parse_datalog("p(a) :- not q(X).").unwrap();
        let err = check_program(&prog).unwrap_err();
        assert_eq!(err.variable, "X");
    }

    #[test]
    fn constraint_variables_must_be_positive_bound() {
        assert!(check_program(&parse_datalog(":- edge(X,Y), not used(X).").unwrap()).is_ok());
        assert!(check_program(&parse_datalog(":- not used(X).").unwrap()).is_err());
    }
}
