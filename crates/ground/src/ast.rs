//! Non-ground abstract syntax.

use std::collections::BTreeSet;
use std::fmt;

/// A term: a constant (lowercase identifier) or a variable (uppercase).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A constant symbol.
    Const(String),
    /// A variable.
    Var(String),
}

impl Term {
    /// Whether the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => f.write_str(c),
            Term::Var(v) => f.write_str(v),
        }
    }
}

/// A predicate atom `p(t₁, …, tₖ)` (`k = 0` allowed: plain propositions).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PredAtom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl PredAtom {
    /// Whether the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| !t.is_var())
    }

    /// Collects the variable names into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<String>) {
        for t in &self.args {
            if let Term::Var(v) = t {
                out.insert(v.clone());
            }
        }
    }

    /// Renders a *ground* atom as its propositional name (`p(a,b)` or
    /// `p` for arity 0).
    ///
    /// # Panics
    /// Panics if the atom contains variables.
    pub fn ground_name(&self) -> String {
        assert!(self.is_ground(), "ground_name on non-ground atom {self}");
        if self.args.is_empty() {
            self.pred.clone()
        } else {
            let args: Vec<String> = self.args.iter().map(Term::to_string).collect();
            format!("{}({})", self.pred, args.join(","))
        }
    }
}

impl fmt::Display for PredAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pred)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, t) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A non-ground disjunctive rule
/// `h₁ ∨ … ∨ hₙ ← b₁ ∧ … ∧ bₖ ∧ ¬c₁ ∧ … ∧ ¬cₘ`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DatalogRule {
    /// Head atoms (empty for constraints).
    pub head: Vec<PredAtom>,
    /// Positive body atoms.
    pub body_pos: Vec<PredAtom>,
    /// Negated body atoms.
    pub body_neg: Vec<PredAtom>,
    /// Disequality constraints `t ≠ u` (builtin, evaluated at grounding
    /// time; both sides must be bound by the positive body or constant).
    pub disequalities: Vec<(Term, Term)>,
}

impl DatalogRule {
    /// All variables occurring anywhere in the rule.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for a in self.head.iter().chain(&self.body_pos).chain(&self.body_neg) {
            a.collect_vars(&mut out);
        }
        for (l, r) in &self.disequalities {
            for t in [l, r] {
                if let Term::Var(v) = t {
                    out.insert(v.clone());
                }
            }
        }
        out
    }

    /// Variables occurring in the positive body.
    pub fn positive_body_variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for a in &self.body_pos {
            a.collect_vars(&mut out);
        }
        out
    }

    /// Whether the rule is ground.
    pub fn is_ground(&self) -> bool {
        self.variables().is_empty()
    }
}

impl fmt::Display for DatalogRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, h) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{h}")?;
        }
        if !self.body_pos.is_empty() || !self.body_neg.is_empty() {
            if !self.head.is_empty() {
                write!(f, " ")?;
            }
            write!(f, ":- ")?;
            let mut first = true;
            for b in &self.body_pos {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{b}")?;
            }
            for c in &self.body_neg {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "not {c}")?;
            }
            for (l, r) in &self.disequalities {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{l} != {r}")?;
            }
        }
        write!(f, ".")
    }
}

/// A non-ground disjunctive program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DatalogProgram {
    /// The rules, in source order.
    pub rules: Vec<DatalogRule>,
}

impl DatalogProgram {
    /// All constants occurring in the program (the Herbrand universe).
    pub fn constants(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for rule in &self.rules {
            for atom in rule.head.iter().chain(&rule.body_pos).chain(&rule.body_neg) {
                for t in &atom.args {
                    if let Term::Const(c) = t {
                        out.insert(c.clone());
                    }
                }
            }
        }
        out
    }

    /// All predicate names with their arities. A predicate used with two
    /// different arities is reported as two entries.
    pub fn predicates(&self) -> BTreeSet<(String, usize)> {
        let mut out = BTreeSet::new();
        for rule in &self.rules {
            for atom in rule.head.iter().chain(&rule.body_pos).chain(&rule.body_neg) {
                out.insert((atom.pred.clone(), atom.args.len()));
            }
        }
        out
    }
}

impl fmt::Display for DatalogProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(pred: &str, args: &[Term]) -> PredAtom {
        PredAtom {
            pred: pred.into(),
            args: args.to_vec(),
        }
    }

    fn c(name: &str) -> Term {
        Term::Const(name.into())
    }

    fn v(name: &str) -> Term {
        Term::Var(name.into())
    }

    #[test]
    fn ground_names() {
        assert_eq!(atom("p", &[]).ground_name(), "p");
        assert_eq!(atom("edge", &[c("a"), c("b")]).ground_name(), "edge(a,b)");
    }

    #[test]
    #[should_panic(expected = "non-ground")]
    fn ground_name_rejects_vars() {
        let _ = atom("p", &[v("X")]).ground_name();
    }

    #[test]
    fn rule_variables() {
        let rule = DatalogRule {
            head: vec![atom("p", &[v("X")])],
            body_pos: vec![atom("q", &[v("X"), v("Y")])],
            body_neg: vec![atom("r", &[v("Z")])],
            disequalities: vec![],
        };
        let vars: Vec<String> = rule.variables().into_iter().collect();
        assert_eq!(vars, vec!["X", "Y", "Z"]);
        let pos: Vec<String> = rule.positive_body_variables().into_iter().collect();
        assert_eq!(pos, vec!["X", "Y"]);
    }

    #[test]
    fn program_constants_and_predicates() {
        let prog = DatalogProgram {
            rules: vec![
                DatalogRule {
                    head: vec![atom("edge", &[c("a"), c("b")])],
                    body_pos: vec![],
                    body_neg: vec![],
                    disequalities: vec![],
                },
                DatalogRule {
                    head: vec![atom("path", &[v("X"), v("Y")])],
                    body_pos: vec![atom("edge", &[v("X"), v("Y")])],
                    body_neg: vec![],
                    disequalities: vec![],
                },
            ],
        };
        assert_eq!(
            prog.constants().into_iter().collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(prog.predicates().len(), 2);
    }

    #[test]
    fn display_roundtrips_visually() {
        let rule = DatalogRule {
            head: vec![atom("p", &[v("X")]), atom("q", &[v("X")])],
            body_pos: vec![atom("r", &[v("X")])],
            body_neg: vec![atom("s", &[v("X")])],
            disequalities: vec![],
        };
        assert_eq!(rule.to_string(), "p(X) | q(X) :- r(X), not s(X).");
        let constraint = DatalogRule {
            head: vec![],
            body_pos: vec![atom("p", &[c("a")])],
            body_neg: vec![],
            disequalities: vec![],
        };
        assert_eq!(constraint.to_string(), ":- p(a).");
    }
}
