//! Grounding: from non-ground Datalog∨ to propositional [`Database`]s.

use crate::ast::{DatalogProgram, DatalogRule, PredAtom, Term};
use crate::safety::{check_program, SafetyError};
use ddb_logic::{Database, Rule, Symbols};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Grounding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundingError {
    /// The program is unsafe.
    Unsafe(SafetyError),
    /// The instantiation exceeded the ground-rule budget.
    TooLarge {
        /// The configured budget.
        limit: usize,
    },
}

impl fmt::Display for GroundingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundingError::Unsafe(e) => write!(f, "{e}"),
            GroundingError::TooLarge { limit } => {
                write!(f, "grounding exceeds the budget of {limit} ground rules")
            }
        }
    }
}

impl std::error::Error for GroundingError {}

impl From<SafetyError> for GroundingError {
    fn from(e: SafetyError) -> Self {
        GroundingError::Unsafe(e)
    }
}

type Binding = BTreeMap<String, String>;

/// Evaluates the rule's disequality builtins under a (complete) binding.
fn disequalities_hold(rule: &DatalogRule, binding: &Binding) -> bool {
    fn value<'a>(t: &'a Term, binding: &'a Binding) -> &'a str {
        match t {
            Term::Const(c) => c.as_str(),
            Term::Var(v) => binding
                .get(v)
                .expect("safety guarantees disequality variables are bound"),
        }
    }
    rule.disequalities
        .iter()
        .all(|(l, r)| value(l, binding) != value(r, binding))
}

fn instantiate_atom(atom: &PredAtom, binding: &Binding) -> PredAtom {
    PredAtom {
        pred: atom.pred.clone(),
        args: atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => Term::Const(c.clone()),
                Term::Var(v) => Term::Const(
                    binding
                        .get(v)
                        .expect("safety guarantees every variable is bound")
                        .clone(),
                ),
            })
            .collect(),
    }
}

/// A fully instantiated rule, in ground-atom-name form, used as the
/// deduplication key and the bridge into `ddb_logic`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct GroundRule {
    head: Vec<String>,
    body_pos: Vec<String>,
    body_neg: Vec<String>,
}

fn instantiate_rule(rule: &DatalogRule, binding: &Binding) -> GroundRule {
    let name = |a: &PredAtom| instantiate_atom(a, binding).ground_name();
    let mut head: Vec<String> = rule.head.iter().map(name).collect();
    let mut body_pos: Vec<String> = rule.body_pos.iter().map(name).collect();
    let mut body_neg: Vec<String> = rule.body_neg.iter().map(name).collect();
    head.sort();
    head.dedup();
    body_pos.sort();
    body_pos.dedup();
    body_neg.sort();
    body_neg.dedup();
    GroundRule {
        head,
        body_pos,
        body_neg,
    }
}

fn build_database(rules: BTreeSet<GroundRule>) -> Database {
    let mut symbols = Symbols::new();
    for r in &rules {
        for name in r.head.iter().chain(&r.body_pos).chain(&r.body_neg) {
            symbols.intern(name);
        }
    }
    let mut db = Database::new(symbols);
    for r in &rules {
        let lookup = |n: &String| db.symbols().lookup(n).expect("interned above");
        let head: Vec<_> = r.head.iter().map(lookup).collect();
        let body_pos: Vec<_> = r.body_pos.iter().map(lookup).collect();
        let body_neg: Vec<_> = r.body_neg.iter().map(lookup).collect();
        db.add_rule(Rule::new(head, body_pos, body_neg));
    }
    db
}

/// **Exact** grounding: instantiate every rule over the full Herbrand
/// universe (all constants of the program). Equivalent to the non-ground
/// program under *every* semantics, at the cost of `|C|^{#vars}` instances
/// per rule. `limit` bounds the total number of ground rules.
pub fn ground_full(prog: &DatalogProgram, limit: usize) -> Result<Database, GroundingError> {
    check_program(prog)?;
    let constants: Vec<String> = prog.constants().into_iter().collect();
    let mut out: BTreeSet<GroundRule> = BTreeSet::new();
    for rule in &prog.rules {
        let vars: Vec<String> = rule.variables().into_iter().collect();
        if vars.is_empty() {
            if disequalities_hold(rule, &Binding::new()) {
                out.insert(instantiate_rule(rule, &Binding::new()));
            }
            if out.len() > limit {
                return Err(GroundingError::TooLarge { limit });
            }
            continue;
        }
        if constants.is_empty() {
            continue; // no universe to range over
        }
        let mut odometer = vec![0usize; vars.len()];
        loop {
            let binding: Binding = vars
                .iter()
                .cloned()
                .zip(odometer.iter().map(|&i| constants[i].clone()))
                .collect();
            if disequalities_hold(rule, &binding) {
                out.insert(instantiate_rule(rule, &binding));
            }
            if out.len() > limit {
                return Err(GroundingError::TooLarge { limit });
            }
            let mut k = 0;
            loop {
                if k == odometer.len() {
                    break;
                }
                odometer[k] += 1;
                if odometer[k] < constants.len() {
                    break;
                }
                odometer[k] = 0;
                k += 1;
            }
            if k == odometer.len() {
                break;
            }
        }
    }
    Ok(build_database(out))
}

/// **Intelligent (reduced) grounding**, DLV-style: instantiate rules only
/// over the *possibly-true* closure (least fixpoint of positive-body
/// joins, negation ignored), then simplify — drop negated literals whose
/// atom is not possibly true.
///
/// Sound for the supported semantics (DSM, PDSM, WFS, PWS: every
/// stable/possible model is contained in the possibly-true closure) and
/// for the minimal-model family on **positive** programs. *Not*
/// model-preserving for minimal-model semantics under negation: from
/// `p(a) ← ¬q(a)` the clause reading `p(a) ∨ q(a)` has the minimal model
/// `{q(a)}`, which reduced grounding (simplifying `¬q(a)` to true)
/// forgets — the `reduced_vs_full` tests pin both directions.
/// ```
/// use ddb_ground::{ground_reduced, parse::parse_datalog};
/// let prog = parse_datalog("edge(a,b). path(X,Y) :- edge(X,Y).").unwrap();
/// let db = ground_reduced(&prog, 1000).unwrap();
/// assert!(db.symbols().lookup("path(a,b)").is_some());
/// assert!(db.symbols().lookup("path(b,a)").is_none()); // not derivable
/// ```
pub fn ground_reduced(prog: &DatalogProgram, limit: usize) -> Result<Database, GroundingError> {
    check_program(prog)?;
    // Possibly-true ground atoms, keyed by predicate name.
    let mut possible: BTreeMap<String, BTreeSet<Vec<String>>> = BTreeMap::new();
    let mut emitted: BTreeSet<GroundRule> = BTreeSet::new();

    // Backtracking join of a rule's positive body against `possible`.
    fn join(
        body: &[PredAtom],
        idx: usize,
        binding: &mut Binding,
        possible: &BTreeMap<String, BTreeSet<Vec<String>>>,
        visit: &mut dyn FnMut(&Binding) -> Result<(), GroundingError>,
    ) -> Result<(), GroundingError> {
        if idx == body.len() {
            return visit(binding);
        }
        let atom = &body[idx];
        let Some(tuples) = possible.get(&atom.pred) else {
            return Ok(());
        };
        'tuples: for tuple in tuples {
            if tuple.len() != atom.args.len() {
                continue;
            }
            let mut added: Vec<String> = Vec::new();
            for (arg, value) in atom.args.iter().zip(tuple) {
                match arg {
                    Term::Const(c) => {
                        if c != value {
                            for v in added.drain(..) {
                                binding.remove(&v);
                            }
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => match binding.get(v) {
                        Some(bound) if bound != value => {
                            for v in added.drain(..) {
                                binding.remove(&v);
                            }
                            continue 'tuples;
                        }
                        Some(_) => {}
                        None => {
                            binding.insert(v.clone(), value.clone());
                            added.push(v.clone());
                        }
                    },
                }
            }
            join(body, idx + 1, binding, possible, visit)?;
            for v in added {
                binding.remove(&v);
            }
        }
        Ok(())
    }

    loop {
        let mut grew = false;
        for rule in &prog.rules {
            let mut new_heads: Vec<(String, Vec<String>)> = Vec::new();
            let mut new_rules: Vec<GroundRule> = Vec::new();
            {
                let mut binding = Binding::new();
                let rule_ref = rule;
                let possible_ref = &possible;
                let emitted_ref = &emitted;
                join(
                    &rule.body_pos,
                    0,
                    &mut binding,
                    possible_ref,
                    &mut |b: &Binding| {
                        if !disequalities_hold(rule_ref, b) {
                            return Ok(());
                        }
                        let ground = instantiate_rule(rule_ref, b);
                        if !emitted_ref.contains(&ground) && !new_rules.contains(&ground) {
                            for h in rule_ref.head.iter() {
                                let inst = instantiate_atom(h, b);
                                let tuple: Vec<String> = inst
                                    .args
                                    .iter()
                                    .map(|t| match t {
                                        Term::Const(c) => c.clone(),
                                        Term::Var(_) => unreachable!("instantiated"),
                                    })
                                    .collect();
                                new_heads.push((inst.pred, tuple));
                            }
                            new_rules.push(ground);
                        }
                        Ok(())
                    },
                )?;
            }
            for r in new_rules {
                emitted.insert(r);
                grew = true;
                if emitted.len() > limit {
                    return Err(GroundingError::TooLarge { limit });
                }
            }
            for (pred, tuple) in new_heads {
                possible.entry(pred).or_default().insert(tuple);
            }
        }
        if !grew {
            break;
        }
    }

    // Simplify: drop negated literals whose atom is impossible; a negated
    // literal whose atom IS possible stays.
    let is_possible = |name: &String| -> bool {
        // Re-derive (pred, tuple) from the rendered name.
        match name.find('(') {
            None => possible.get(name).is_some_and(|s| s.contains(&Vec::new())),
            Some(p) => {
                let pred = &name[..p];
                let inner = &name[p + 1..name.len() - 1];
                let tuple: Vec<String> = inner.split(',').map(str::to_owned).collect();
                possible.get(pred).is_some_and(|s| s.contains(&tuple))
            }
        }
    };
    let simplified: BTreeSet<GroundRule> = emitted
        .into_iter()
        .map(|mut r| {
            r.body_neg.retain(|g| is_possible(g));
            r
        })
        .collect();
    Ok(build_database(simplified))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_datalog;
    use ddb_models::Cost;

    #[test]
    fn grounds_reachability() {
        let prog = parse_datalog(
            "edge(a,b). edge(b,c). path(X,Y) :- edge(X,Y). \
             path(X,Y) :- edge(X,Z), path(Z,Y).",
        )
        .unwrap();
        let db = ground_reduced(&prog, 10_000).unwrap();
        // Reduced grounding derives exactly the reachable paths.
        let syms = db.symbols();
        assert!(syms.lookup("path(a,b)").is_some());
        assert!(syms.lookup("path(a,c)").is_some());
        assert!(
            syms.lookup("path(c,a)").is_none(),
            "unreachable not grounded"
        );
        // The least model contains the transitive closure.
        let mut cost = Cost::new();
        let mm = ddb_models::minimal::minimal_models(&db, &mut cost).unwrap();
        assert_eq!(mm.len(), 1);
        assert!(mm[0].contains(syms.lookup("path(a,c)").unwrap()));
    }

    #[test]
    fn full_grounding_covers_everything() {
        let prog = parse_datalog("edge(a,b). path(X,Y) :- edge(X,Y).").unwrap();
        let db = ground_full(&prog, 10_000).unwrap();
        // 2 constants → 4 instantiations of the rule + the fact.
        assert_eq!(db.len(), 5);
        assert!(db.symbols().lookup("path(b,a)").is_some());
    }

    #[test]
    fn budget_enforced() {
        let prog = parse_datalog("d(a). d(b). d(c). p(X,Y,Z) :- d(X), d(Y), d(Z).").unwrap();
        assert!(matches!(
            ground_full(&prog, 10),
            Err(GroundingError::TooLarge { .. })
        ));
        assert!(ground_full(&prog, 1000).is_ok());
    }

    #[test]
    fn unsafe_program_rejected() {
        let prog = parse_datalog("p(X).").unwrap();
        assert!(matches!(
            ground_reduced(&prog, 100),
            Err(GroundingError::Unsafe(_))
        ));
    }

    #[test]
    fn reduced_preserves_stable_models() {
        // With negation: stable models of full and reduced groundings
        // agree (modulo the vocabulary difference, compared by name).
        let prog = parse_datalog(
            "node(a). node(b). edge(a,b). \
             in(X) | out(X) :- node(X). \
             ok :- in(a), not in(b).",
        )
        .unwrap();
        let full = ground_full(&prog, 100_000).unwrap();
        let reduced = ground_reduced(&prog, 100_000).unwrap();
        let mut cost = Cost::new();
        let names =
            |db: &Database, models: Vec<ddb_logic::Interpretation>| -> BTreeSet<Vec<String>> {
                models
                    .into_iter()
                    .map(|m| {
                        let mut names: Vec<String> =
                            m.iter().map(|a| db.symbols().name(a).to_owned()).collect();
                        names.sort();
                        names
                    })
                    .collect()
            };
        let full_stable = names(&full, ddb_core::dsm::models(&full, &mut cost).unwrap());
        let reduced_stable = names(
            &reduced,
            ddb_core::dsm::models(&reduced, &mut cost).unwrap(),
        );
        assert_eq!(full_stable, reduced_stable);
    }

    #[test]
    fn reduced_preserves_minimal_models_on_positive_programs() {
        let prog = parse_datalog(
            "node(a). node(b). in(X) | out(X) :- node(X). \
             some :- in(X).",
        )
        .unwrap();
        let full = ground_full(&prog, 100_000).unwrap();
        let reduced = ground_reduced(&prog, 100_000).unwrap();
        let mut cost = Cost::new();
        let project =
            |db: &Database, models: Vec<ddb_logic::Interpretation>| -> BTreeSet<Vec<String>> {
                models
                    .into_iter()
                    .map(|m| {
                        let mut names: Vec<String> =
                            m.iter().map(|a| db.symbols().name(a).to_owned()).collect();
                        names.sort();
                        names
                    })
                    .collect()
            };
        assert_eq!(
            project(
                &full,
                ddb_models::minimal::minimal_models(&full, &mut cost).unwrap()
            ),
            project(
                &reduced,
                ddb_models::minimal::minimal_models(&reduced, &mut cost).unwrap()
            ),
        );
    }

    #[test]
    fn reduced_is_not_minimal_model_preserving_under_negation() {
        // The documented counterexample: p(a) ← ¬q(a). As a clause,
        // p(a) ∨ q(a) has minimal models {p(a)} and {q(a)}; reduced
        // grounding simplifies ¬q(a) away (q(a) underivable) and keeps
        // only {p(a)}.
        let prog = parse_datalog("p(a) :- not q(a).").unwrap();
        let full = ground_full(&prog, 100).unwrap();
        let reduced = ground_reduced(&prog, 100).unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            ddb_models::minimal::minimal_models(&full, &mut cost)
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            ddb_models::minimal::minimal_models(&reduced, &mut cost)
                .unwrap()
                .len(),
            1
        );
        // …while the stable models agree (q(a) is never stable-true).
        let full_stable = ddb_core::dsm::models(&full, &mut cost).unwrap();
        assert_eq!(full_stable.len(), 1);
        assert!(full_stable[0].contains(full.symbols().lookup("p(a)").unwrap()));
        let red_stable = ddb_core::dsm::models(&reduced, &mut cost).unwrap();
        assert_eq!(red_stable.len(), 1);
    }

    #[test]
    fn constraints_are_grounded() {
        let prog = parse_datalog(
            "node(a). node(b). edge(a,b). \
             in(X) | out(X) :- node(X). \
             :- in(X), in(Y), edge(X,Y).",
        )
        .unwrap();
        let db = ground_reduced(&prog, 10_000).unwrap();
        assert!(db.has_integrity_clauses());
        // Independent-set reading: {in(a), in(b)} is excluded.
        let mut cost = Cost::new();
        let stable = ddb_core::dsm::models(&db, &mut cost).unwrap();
        let ina = db.symbols().lookup("in(a)").unwrap();
        let inb = db.symbols().lookup("in(b)").unwrap();
        assert!(!stable.iter().any(|m| m.contains(ina) && m.contains(inb)));
        assert!(!stable.is_empty());
    }

    #[test]
    fn disequalities_filter_bindings() {
        // Proper coloring via !=: adjacent vertices must differ.
        let prog = parse_datalog(
            "node(a). node(b). edge(a,b). color(red). color(blue). \
             has(X,C) | hasnot(X,C) :- node(X), color(C). \
             :- edge(X,Y), has(X,C), has(Y,C). \
             ok(X) :- has(X,C1), has(X,C2), C1 != C2.",
        )
        .unwrap();
        let db = ground_reduced(&prog, 100_000).unwrap();
        // ok(a) exists only via two *distinct* colors.
        assert!(db.symbols().lookup("ok(a)").is_some());
        // The C1 != C2 filter prunes the C1 = C2 instantiations: every
        // ok-rule body mentions two different color atoms.
        for rule in db.rules() {
            if rule
                .head()
                .first()
                .is_some_and(|&h| db.symbols().name(h).starts_with("ok("))
            {
                assert_eq!(rule.body_pos().len(), 2, "reflexive pair must be pruned");
            }
        }
    }

    #[test]
    fn disequality_between_constants() {
        let prog = parse_datalog("p :- q, a != a. r :- q, a != b. q.").unwrap();
        let db = ground_full(&prog, 1000).unwrap();
        // a != a is statically false → the p-rule vanishes entirely;
        // a != b is statically true → the r-rule stays.
        assert!(db.symbols().lookup("p").is_none());
        assert!(db.symbols().lookup("r").is_some());
    }

    #[test]
    fn disequality_variables_must_be_safe() {
        let prog = parse_datalog(":- X != Y.").unwrap();
        assert!(matches!(
            ground_reduced(&prog, 100),
            Err(GroundingError::Unsafe(_))
        ));
    }

    #[test]
    fn full_and_reduced_agree_with_disequalities() {
        let prog = parse_datalog("d(a). d(b). d(c). pair(X,Y) :- d(X), d(Y), X != Y.").unwrap();
        let full = ground_full(&prog, 100_000).unwrap();
        let reduced = ground_reduced(&prog, 100_000).unwrap();
        // 6 ordered pairs either way.
        let count = |db: &Database| {
            db.symbols()
                .atoms()
                .filter(|&a| db.symbols().name(a).starts_with("pair("))
                .count()
        };
        assert_eq!(count(&full), 6);
        assert_eq!(count(&reduced), 6);
        assert!(full.symbols().lookup("pair(a,a)").is_none());
    }

    #[test]
    fn zero_arity_predicates() {
        let prog = parse_datalog("p :- not q. q :- not p.").unwrap();
        let db = ground_reduced(&prog, 100).unwrap();
        assert_eq!(db.num_atoms(), 2);
        let mut cost = Cost::new();
        assert_eq!(ddb_core::dsm::models(&db, &mut cost).unwrap().len(), 2);
    }

    #[test]
    fn repeated_variables_join_correctly() {
        // self(X) :- edge(X,X): only loops.
        let prog = parse_datalog("edge(a,a). edge(a,b). self(X) :- edge(X,X).").unwrap();
        let db = ground_reduced(&prog, 100).unwrap();
        assert!(db.symbols().lookup("self(a)").is_some());
        assert!(db.symbols().lookup("self(b)").is_none());
    }
}
