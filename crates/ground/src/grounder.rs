//! Grounding: from non-ground Datalog∨ to propositional [`Database`]s.

use crate::ast::{DatalogProgram, DatalogRule, PredAtom, Term};
use crate::safety::{check_program, SafetyError};
use ddb_logic::{Database, Rule, Symbols};
use ddb_obs::{budget, Interrupted};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Grounding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundingError {
    /// The program is unsafe.
    Unsafe(SafetyError),
    /// The instantiation exceeded the ground-rule budget.
    TooLarge {
        /// The configured budget.
        limit: usize,
    },
    /// An installed [`ddb_obs::Budget`] tripped mid-grounding (deadline,
    /// cancel flag, or fault injection). Grounding loops are checkpointed
    /// like the solve stack, so a deadline set before grounding governs
    /// the whole pipeline, not only SAT/fixpoint work.
    Interrupted(Interrupted),
}

impl fmt::Display for GroundingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundingError::Unsafe(e) => write!(f, "{e}"),
            GroundingError::TooLarge { limit } => {
                write!(f, "grounding exceeds the budget of {limit} ground rules")
            }
            GroundingError::Interrupted(i) => write!(f, "grounding {i}"),
        }
    }
}

impl std::error::Error for GroundingError {}

impl From<SafetyError> for GroundingError {
    fn from(e: SafetyError) -> Self {
        GroundingError::Unsafe(e)
    }
}

impl From<Interrupted> for GroundingError {
    fn from(i: Interrupted) -> Self {
        GroundingError::Interrupted(i)
    }
}

type Binding = BTreeMap<String, String>;

/// Evaluates the rule's disequality builtins under a (complete) binding.
fn disequalities_hold(rule: &DatalogRule, binding: &Binding) -> bool {
    fn value<'a>(t: &'a Term, binding: &'a Binding) -> &'a str {
        match t {
            Term::Const(c) => c.as_str(),
            Term::Var(v) => binding
                .get(v)
                .expect("safety guarantees disequality variables are bound"),
        }
    }
    rule.disequalities
        .iter()
        .all(|(l, r)| value(l, binding) != value(r, binding))
}

fn instantiate_atom(atom: &PredAtom, binding: &Binding) -> PredAtom {
    PredAtom {
        pred: atom.pred.clone(),
        args: atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => Term::Const(c.clone()),
                Term::Var(v) => Term::Const(
                    binding
                        .get(v)
                        .expect("safety guarantees every variable is bound")
                        .clone(),
                ),
            })
            .collect(),
    }
}

/// A fully instantiated rule, in ground-atom-name form, used as the
/// deduplication key and the bridge into `ddb_logic`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct GroundRule {
    head: Vec<String>,
    body_pos: Vec<String>,
    body_neg: Vec<String>,
}

fn instantiate_rule(rule: &DatalogRule, binding: &Binding) -> GroundRule {
    let name = |a: &PredAtom| instantiate_atom(a, binding).ground_name();
    let mut head: Vec<String> = rule.head.iter().map(name).collect();
    let mut body_pos: Vec<String> = rule.body_pos.iter().map(name).collect();
    let mut body_neg: Vec<String> = rule.body_neg.iter().map(name).collect();
    head.sort();
    head.dedup();
    body_pos.sort();
    body_pos.dedup();
    body_neg.sort();
    body_neg.dedup();
    GroundRule {
        head,
        body_pos,
        body_neg,
    }
}

fn build_database(rules: BTreeSet<GroundRule>) -> Database {
    let mut symbols = Symbols::new();
    for r in &rules {
        for name in r.head.iter().chain(&r.body_pos).chain(&r.body_neg) {
            symbols.intern(name);
        }
    }
    let mut db = Database::new(symbols);
    for r in &rules {
        let lookup = |n: &String| db.symbols().lookup(n).expect("interned above");
        let head: Vec<_> = r.head.iter().map(lookup).collect();
        let body_pos: Vec<_> = r.body_pos.iter().map(lookup).collect();
        let body_neg: Vec<_> = r.body_neg.iter().map(lookup).collect();
        db.add_rule(Rule::new(head, body_pos, body_neg));
    }
    db
}

/// **Exact** grounding: instantiate every rule over the full Herbrand
/// universe (all constants of the program). Equivalent to the non-ground
/// program under *every* semantics, at the cost of `|C|^{#vars}` instances
/// per rule. `limit` bounds the total number of ground rules.
pub fn ground_full(prog: &DatalogProgram, limit: usize) -> Result<Database, GroundingError> {
    check_program(prog)?;
    let constants: Vec<String> = prog.constants().into_iter().collect();
    let mut out: BTreeSet<GroundRule> = BTreeSet::new();
    for rule in &prog.rules {
        let vars: Vec<String> = rule.variables().into_iter().collect();
        if vars.is_empty() {
            if disequalities_hold(rule, &Binding::new()) {
                out.insert(instantiate_rule(rule, &Binding::new()));
            }
            if out.len() > limit {
                return Err(GroundingError::TooLarge { limit });
            }
            continue;
        }
        if constants.is_empty() {
            continue; // no universe to range over
        }
        let mut odometer = vec![0usize; vars.len()];
        loop {
            budget::checkpoint()?;
            let binding: Binding = vars
                .iter()
                .cloned()
                .zip(odometer.iter().map(|&i| constants[i].clone()))
                .collect();
            if disequalities_hold(rule, &binding) {
                out.insert(instantiate_rule(rule, &binding));
            }
            if out.len() > limit {
                return Err(GroundingError::TooLarge { limit });
            }
            let mut k = 0;
            loop {
                if k == odometer.len() {
                    break;
                }
                odometer[k] += 1;
                if odometer[k] < constants.len() {
                    break;
                }
                odometer[k] = 0;
                k += 1;
            }
            if k == odometer.len() {
                break;
            }
        }
    }
    Ok(build_database(out))
}

/// **Intelligent (reduced) grounding**, DLV-style: instantiate rules only
/// over the *possibly-true* closure (least fixpoint of positive-body
/// joins, negation ignored), then simplify — drop negated literals whose
/// atom is not possibly true.
///
/// Sound for the supported semantics (DSM, PDSM, WFS, PWS: every
/// stable/possible model is contained in the possibly-true closure) and
/// for the minimal-model family on **positive** programs. *Not*
/// model-preserving for minimal-model semantics under negation: from
/// `p(a) ← ¬q(a)` the clause reading `p(a) ∨ q(a)` has the minimal model
/// `{q(a)}`, which reduced grounding (simplifying `¬q(a)` to true)
/// forgets — the `reduced_vs_full` tests pin both directions.
/// ```
/// use ddb_ground::{ground_reduced, parse::parse_datalog};
/// let prog = parse_datalog("edge(a,b). path(X,Y) :- edge(X,Y).").unwrap();
/// let db = ground_reduced(&prog, 1000).unwrap();
/// assert!(db.symbols().lookup("path(a,b)").is_some());
/// assert!(db.symbols().lookup("path(b,a)").is_none()); // not derivable
/// ```
pub fn ground_reduced(prog: &DatalogProgram, limit: usize) -> Result<Database, GroundingError> {
    check_program(prog)?;
    // Possibly-true ground atoms, keyed by predicate name.
    let mut possible: BTreeMap<String, BTreeSet<Vec<String>>> = BTreeMap::new();
    let mut emitted: BTreeSet<GroundRule> = BTreeSet::new();

    // Backtracking join of a rule's positive body against `possible`.
    fn join(
        body: &[PredAtom],
        idx: usize,
        binding: &mut Binding,
        possible: &BTreeMap<String, BTreeSet<Vec<String>>>,
        visit: &mut dyn FnMut(&Binding) -> Result<(), GroundingError>,
    ) -> Result<(), GroundingError> {
        // One checkpoint per join node: the semi-naive closure is the
        // grounder's hot loop, so deadlines and cancel flags trip here.
        budget::checkpoint()?;
        if idx == body.len() {
            return visit(binding);
        }
        let atom = &body[idx];
        let Some(tuples) = possible.get(&atom.pred) else {
            return Ok(());
        };
        'tuples: for tuple in tuples {
            if tuple.len() != atom.args.len() {
                continue;
            }
            let mut added: Vec<String> = Vec::new();
            for (arg, value) in atom.args.iter().zip(tuple) {
                match arg {
                    Term::Const(c) => {
                        if c != value {
                            for v in added.drain(..) {
                                binding.remove(&v);
                            }
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => match binding.get(v) {
                        Some(bound) if bound != value => {
                            for v in added.drain(..) {
                                binding.remove(&v);
                            }
                            continue 'tuples;
                        }
                        Some(_) => {}
                        None => {
                            binding.insert(v.clone(), value.clone());
                            added.push(v.clone());
                        }
                    },
                }
            }
            join(body, idx + 1, binding, possible, visit)?;
            for v in added {
                binding.remove(&v);
            }
        }
        Ok(())
    }

    loop {
        let mut grew = false;
        for rule in &prog.rules {
            budget::checkpoint()?;
            let mut new_heads: Vec<(String, Vec<String>)> = Vec::new();
            let mut new_rules: Vec<GroundRule> = Vec::new();
            {
                let mut binding = Binding::new();
                let rule_ref = rule;
                let possible_ref = &possible;
                let emitted_ref = &emitted;
                join(
                    &rule.body_pos,
                    0,
                    &mut binding,
                    possible_ref,
                    &mut |b: &Binding| {
                        if !disequalities_hold(rule_ref, b) {
                            return Ok(());
                        }
                        let ground = instantiate_rule(rule_ref, b);
                        if !emitted_ref.contains(&ground) && !new_rules.contains(&ground) {
                            for h in rule_ref.head.iter() {
                                let inst = instantiate_atom(h, b);
                                let tuple: Vec<String> = inst
                                    .args
                                    .iter()
                                    .map(|t| match t {
                                        Term::Const(c) => c.clone(),
                                        Term::Var(_) => unreachable!("instantiated"),
                                    })
                                    .collect();
                                new_heads.push((inst.pred, tuple));
                            }
                            new_rules.push(ground);
                        }
                        Ok(())
                    },
                )?;
            }
            for r in new_rules {
                emitted.insert(r);
                grew = true;
                if emitted.len() > limit {
                    return Err(GroundingError::TooLarge { limit });
                }
            }
            for (pred, tuple) in new_heads {
                possible.entry(pred).or_default().insert(tuple);
            }
        }
        if !grew {
            break;
        }
    }

    // Simplify: drop negated literals whose atom is impossible; a negated
    // literal whose atom IS possible stays.
    let is_possible = |name: &String| -> bool {
        // Re-derive (pred, tuple) from the rendered name.
        match name.find('(') {
            None => possible.get(name).is_some_and(|s| s.contains(&Vec::new())),
            Some(p) => {
                let pred = &name[..p];
                let inner = &name[p + 1..name.len() - 1];
                let tuple: Vec<String> = inner.split(',').map(str::to_owned).collect();
                possible.get(pred).is_some_and(|s| s.contains(&tuple))
            }
        }
    };
    let simplified: BTreeSet<GroundRule> = emitted
        .into_iter()
        .map(|mut r| {
            r.body_neg.retain(|g| is_possible(g));
            r
        })
        .collect();
    Ok(build_database(simplified))
}

/// Per-predicate demand on first arguments, the abstraction the
/// goal-directed grounder propagates instead of full magic tuples. An
/// `open` demand means "every first argument" (used for zero-arity
/// predicates and for body positions whose first term is a variable the
/// head binding says nothing about); otherwise only tuples whose first
/// argument lies in `firsts` are demanded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct DemandSet {
    open: bool,
    firsts: BTreeSet<String>,
}

impl DemandSet {
    fn absorb(&mut self, other: &DemandSet) -> bool {
        let mut changed = false;
        if other.open && !self.open {
            self.open = true;
            changed = true;
        }
        for f in &other.firsts {
            changed |= self.firsts.insert(f.clone());
        }
        changed
    }
}

/// What a demanded head atom lets the rule assume about one atom's first
/// argument: either anything (`None`) or one of a finite constant set.
fn atom_demand(atom: &PredAtom, head_var: Option<&str>, head_vals: &DemandSet) -> DemandSet {
    match atom.args.first() {
        None => DemandSet {
            open: true,
            firsts: BTreeSet::new(),
        },
        Some(Term::Const(c)) => DemandSet {
            open: false,
            firsts: BTreeSet::from([c.clone()]),
        },
        Some(Term::Var(v)) if head_var == Some(v.as_str()) => head_vals.clone(),
        Some(Term::Var(_)) => DemandSet {
            open: true,
            firsts: BTreeSet::new(),
        },
    }
}

/// How a demand on a head atom's predicate activates its rule: not at
/// all, for every binding, or only for bindings sending one variable
/// (the head's first argument) into a finite constant set.
enum Activation {
    Inactive,
    Unrestricted,
    Restricted(String, BTreeSet<String>),
}

fn head_activation(head: &PredAtom, demand: &BTreeMap<String, DemandSet>) -> Activation {
    let Some(d) = demand.get(&head.pred) else {
        return Activation::Inactive;
    };
    match head.args.first() {
        None => Activation::Unrestricted,
        Some(Term::Const(c)) => {
            if d.open || d.firsts.contains(c) {
                Activation::Unrestricted
            } else {
                Activation::Inactive
            }
        }
        Some(Term::Var(v)) => {
            if d.open {
                Activation::Unrestricted
            } else if d.firsts.is_empty() {
                Activation::Inactive
            } else {
                Activation::Restricted(v.clone(), d.firsts.clone())
            }
        }
    }
}

/// The static demand fixpoint: which predicates (and which first
/// arguments) can reach the query top-down. Demand flows from an
/// activated head through the positive body, the negative body and the
/// disjunctive sibling heads, mirroring the demand rules of the magic
/// rewrite in `ddb-analysis`.
fn demand_fixpoint(prog: &DatalogProgram, query: &PredAtom) -> BTreeMap<String, DemandSet> {
    let mut demand: BTreeMap<String, DemandSet> = BTreeMap::new();
    let seed = match query.args.first() {
        Some(Term::Const(c)) => DemandSet {
            open: false,
            firsts: BTreeSet::from([c.clone()]),
        },
        _ => DemandSet {
            open: true,
            firsts: BTreeSet::new(),
        },
    };
    demand.entry(query.pred.clone()).or_default().absorb(&seed);
    loop {
        let mut changed = false;
        for rule in &prog.rules {
            // Constraints restrict models globally; their bodies must be
            // grounded wherever they can fire, so demand them openly as
            // soon as any of their predicates is in the demanded slice.
            if rule.head.is_empty() {
                let touches = rule
                    .body_pos
                    .iter()
                    .chain(&rule.body_neg)
                    .any(|a| demand.contains_key(&a.pred));
                if touches {
                    for a in rule.body_pos.iter().chain(&rule.body_neg) {
                        let open = DemandSet {
                            open: true,
                            firsts: BTreeSet::new(),
                        };
                        changed |= demand.entry(a.pred.clone()).or_default().absorb(&open);
                    }
                }
                continue;
            }
            for (hi, head) in rule.head.iter().enumerate() {
                let (head_var, head_vals) = match head_activation(head, &demand) {
                    Activation::Inactive => continue,
                    Activation::Unrestricted => (
                        None,
                        DemandSet {
                            open: true,
                            firsts: BTreeSet::new(),
                        },
                    ),
                    Activation::Restricted(v, firsts) => (
                        Some(v),
                        DemandSet {
                            open: false,
                            firsts,
                        },
                    ),
                };
                let hv = head_var.as_deref();
                let siblings = rule
                    .head
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != hi)
                    .map(|(_, a)| a);
                for atom in siblings.chain(&rule.body_pos).chain(&rule.body_neg) {
                    let d = atom_demand(atom, hv, &head_vals);
                    changed |= demand.entry(atom.pred.clone()).or_default().absorb(&d);
                }
            }
        }
        if !changed {
            break;
        }
    }
    demand
}

/// First-argument index key of a ground tuple (empty string for arity 0).
fn first_key(tuple: &[String]) -> String {
    tuple.first().cloned().unwrap_or_default()
}

/// **Goal-directed (magic) grounding**: like [`ground_reduced`], but only
/// rules whose heads are *demanded* by the query are instantiated, and
/// joins run against a per-predicate first-argument index of the
/// possibly-true closure. Demand is a static per-predicate
/// first-argument fixpoint: seeded by the query atom, propagated from
/// activated heads through positive bodies, negative bodies and sibling
/// heads — the grounding-side mirror of the planner's magic restriction.
///
/// The result is the demand-relevant fragment of the reduced grounding:
/// query answers agree with [`ground_reduced`] exactly when the planner
/// admits the magic route for the semantics at hand (positive programs
/// under minimal-model-determined queries unconditionally; otherwise
/// only when the fragment is split-closed). The payoff is largest when
/// the first argument is invariant through the recursion (a component
/// or chain identifier): only the demanded component is instantiated.
/// A body atom whose first argument is some *other* variable widens the
/// demand to `open` for that predicate — still sound, just no savings.
/// ```
/// use ddb_ground::{ground_magic, parse::parse_datalog};
/// let prog = parse_datalog(
///     "edge(c0,a,b). edge(c1,a,b). path(C,X,Y) :- edge(C,X,Y). \
///      path(C,X,Y) :- edge(C,X,Z), path(C,Z,Y).",
/// )
/// .unwrap();
/// let query = parse_datalog("path(c0,a,b).").unwrap().rules[0].head[0].clone();
/// let db = ground_magic(&prog, &query, 1000).unwrap();
/// assert!(db.symbols().lookup("path(c0,a,b)").is_some());
/// assert!(db.symbols().lookup("path(c1,a,b)").is_none()); // undemanded component
/// ```
pub fn ground_magic(
    prog: &DatalogProgram,
    query: &PredAtom,
    limit: usize,
) -> Result<Database, GroundingError> {
    check_program(prog)?;
    let demand = demand_fixpoint(prog, query);

    // Possibly-true ground atoms, with a first-argument index per
    // predicate (the `BTreeSet` inside keeps join order deterministic).
    let mut possible: BTreeMap<String, BTreeSet<Vec<String>>> = BTreeMap::new();
    let mut index: BTreeMap<String, BTreeMap<String, BTreeSet<Vec<String>>>> = BTreeMap::new();
    let mut emitted: BTreeSet<GroundRule> = BTreeSet::new();

    // Per-rule activation under the (static) demand: skip, run freely, or
    // run with one variable confined to a constant set.
    let activations: Vec<Activation> = prog
        .rules
        .iter()
        .map(|rule| {
            if rule.head.is_empty() {
                // Constraints fire whenever their body predicates were
                // demanded at all; the body join itself confines them to
                // the demanded closure.
                let touches = rule
                    .body_pos
                    .iter()
                    .chain(&rule.body_neg)
                    .any(|a| demand.contains_key(&a.pred));
                return if touches {
                    Activation::Unrestricted
                } else {
                    Activation::Inactive
                };
            }
            let mut restricted: Option<(String, BTreeSet<String>)> = None;
            let mut unrestricted = false;
            let mut active = false;
            for head in &rule.head {
                match head_activation(head, &demand) {
                    Activation::Inactive => {}
                    Activation::Unrestricted => {
                        active = true;
                        unrestricted = true;
                    }
                    Activation::Restricted(v, firsts) => {
                        active = true;
                        match &mut restricted {
                            None => restricted = Some((v, firsts)),
                            Some((rv, rf)) if *rv == v => rf.extend(firsts),
                            // Two heads confine different variables: the
                            // union of the two demands is not expressible
                            // as one restriction, so run the rule freely.
                            Some(_) => unrestricted = true,
                        }
                    }
                }
            }
            if !active {
                Activation::Inactive
            } else if unrestricted {
                Activation::Unrestricted
            } else {
                let (v, firsts) = restricted.expect("active restricted rule has a restriction");
                Activation::Restricted(v, firsts)
            }
        })
        .collect();

    // Backtracking join against the indexed closure. Candidate tuples for
    // an atom whose first argument is already fixed (a constant, a bound
    // variable, or the restricted variable) come from the index bucket(s)
    // instead of the whole relation.
    #[allow(clippy::too_many_arguments)]
    fn join(
        body: &[PredAtom],
        idx: usize,
        binding: &mut Binding,
        possible: &BTreeMap<String, BTreeSet<Vec<String>>>,
        index: &BTreeMap<String, BTreeMap<String, BTreeSet<Vec<String>>>>,
        restriction: Option<&(String, BTreeSet<String>)>,
        visit: &mut dyn FnMut(&Binding) -> Result<(), GroundingError>,
    ) -> Result<(), GroundingError> {
        // Checkpoint per join node, as in `ground_reduced`: deadlines and
        // cancel flags must trip inside the demand-driven closure too.
        budget::checkpoint()?;
        if idx == body.len() {
            return visit(binding);
        }
        let atom = &body[idx];
        let by_first = index.get(&atom.pred);
        let buckets: Vec<&BTreeSet<Vec<String>>> = match atom.args.first() {
            None => vec![],
            Some(Term::Const(c)) => by_first.and_then(|m| m.get(c)).into_iter().collect(),
            Some(Term::Var(v)) => match binding.get(v) {
                Some(val) => by_first.and_then(|m| m.get(val)).into_iter().collect(),
                None => match restriction {
                    Some((rv, firsts)) if rv == v => firsts
                        .iter()
                        .filter_map(|f| by_first.and_then(|m| m.get(f)))
                        .collect(),
                    _ => by_first.map(|m| m.values().collect()).unwrap_or_default(),
                },
            },
        };
        // Zero-arity atoms have no index key; fall back to the relation.
        let tuples: Box<dyn Iterator<Item = &Vec<String>>> = if atom.args.is_empty() {
            Box::new(possible.get(&atom.pred).into_iter().flatten())
        } else {
            Box::new(buckets.into_iter().flatten())
        };
        'tuples: for tuple in tuples {
            if tuple.len() != atom.args.len() {
                continue;
            }
            let mut added: Vec<String> = Vec::new();
            for (arg, value) in atom.args.iter().zip(tuple) {
                match arg {
                    Term::Const(c) => {
                        if c != value {
                            for v in added.drain(..) {
                                binding.remove(&v);
                            }
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => match binding.get(v) {
                        Some(bound) if bound != value => {
                            for v in added.drain(..) {
                                binding.remove(&v);
                            }
                            continue 'tuples;
                        }
                        Some(_) => {}
                        None => {
                            if let Some((rv, firsts)) = restriction {
                                if rv == v && !firsts.contains(value) {
                                    for v in added.drain(..) {
                                        binding.remove(&v);
                                    }
                                    continue 'tuples;
                                }
                            }
                            binding.insert(v.clone(), value.clone());
                            added.push(v.clone());
                        }
                    },
                }
            }
            join(body, idx + 1, binding, possible, index, restriction, visit)?;
            for v in added {
                binding.remove(&v);
            }
        }
        Ok(())
    }

    loop {
        let mut grew = false;
        for (rule, activation) in prog.rules.iter().zip(&activations) {
            budget::checkpoint()?;
            let restriction = match activation {
                Activation::Inactive => continue,
                Activation::Unrestricted => None,
                Activation::Restricted(v, firsts) => Some((v.clone(), firsts.clone())),
            };
            let mut new_heads: Vec<(String, Vec<String>)> = Vec::new();
            let mut new_rules: Vec<GroundRule> = Vec::new();
            {
                let mut binding = Binding::new();
                let rule_ref = rule;
                let emitted_ref = &emitted;
                join(
                    &rule.body_pos,
                    0,
                    &mut binding,
                    &possible,
                    &index,
                    restriction.as_ref(),
                    &mut |b: &Binding| {
                        if !disequalities_hold(rule_ref, b) {
                            return Ok(());
                        }
                        if let Some((rv, firsts)) = restriction.as_ref() {
                            // Safety puts every head variable in the
                            // positive body, so the binding is total here.
                            if b.get(rv).is_some_and(|val| !firsts.contains(val)) {
                                return Ok(());
                            }
                        }
                        let ground = instantiate_rule(rule_ref, b);
                        if !emitted_ref.contains(&ground) && !new_rules.contains(&ground) {
                            for h in rule_ref.head.iter() {
                                let inst = instantiate_atom(h, b);
                                let tuple: Vec<String> = inst
                                    .args
                                    .iter()
                                    .map(|t| match t {
                                        Term::Const(c) => c.clone(),
                                        Term::Var(_) => unreachable!("instantiated"),
                                    })
                                    .collect();
                                new_heads.push((inst.pred, tuple));
                            }
                            new_rules.push(ground);
                        }
                        Ok(())
                    },
                )?;
            }
            for r in new_rules {
                emitted.insert(r);
                grew = true;
                if emitted.len() > limit {
                    return Err(GroundingError::TooLarge { limit });
                }
            }
            for (pred, tuple) in new_heads {
                index
                    .entry(pred.clone())
                    .or_default()
                    .entry(first_key(&tuple))
                    .or_default()
                    .insert(tuple.clone());
                possible.entry(pred).or_default().insert(tuple);
            }
        }
        if !grew {
            break;
        }
    }

    // Negation simplification, exactly as in `ground_reduced`, against
    // the demanded closure (negative body atoms are demanded, so their
    // derivability within the fragment is fully explored).
    let is_possible = |name: &String| -> bool {
        match name.find('(') {
            None => possible.get(name).is_some_and(|s| s.contains(&Vec::new())),
            Some(p) => {
                let pred = &name[..p];
                let inner = &name[p + 1..name.len() - 1];
                let tuple: Vec<String> = inner.split(',').map(str::to_owned).collect();
                possible.get(pred).is_some_and(|s| s.contains(&tuple))
            }
        }
    };
    let simplified: BTreeSet<GroundRule> = emitted
        .into_iter()
        .map(|mut r| {
            r.body_neg.retain(|g| is_possible(g));
            r
        })
        .collect();
    Ok(build_database(simplified))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_datalog;
    use ddb_models::Cost;

    #[test]
    fn grounds_reachability() {
        let prog = parse_datalog(
            "edge(a,b). edge(b,c). path(X,Y) :- edge(X,Y). \
             path(X,Y) :- edge(X,Z), path(Z,Y).",
        )
        .unwrap();
        let db = ground_reduced(&prog, 10_000).unwrap();
        // Reduced grounding derives exactly the reachable paths.
        let syms = db.symbols();
        assert!(syms.lookup("path(a,b)").is_some());
        assert!(syms.lookup("path(a,c)").is_some());
        assert!(
            syms.lookup("path(c,a)").is_none(),
            "unreachable not grounded"
        );
        // The least model contains the transitive closure.
        let mut cost = Cost::new();
        let mm = ddb_models::minimal::minimal_models(&db, &mut cost).unwrap();
        assert_eq!(mm.len(), 1);
        assert!(mm[0].contains(syms.lookup("path(a,c)").unwrap()));
    }

    #[test]
    fn full_grounding_covers_everything() {
        let prog = parse_datalog("edge(a,b). path(X,Y) :- edge(X,Y).").unwrap();
        let db = ground_full(&prog, 10_000).unwrap();
        // 2 constants → 4 instantiations of the rule + the fact.
        assert_eq!(db.len(), 5);
        assert!(db.symbols().lookup("path(b,a)").is_some());
    }

    #[test]
    fn budget_enforced() {
        let prog = parse_datalog("d(a). d(b). d(c). p(X,Y,Z) :- d(X), d(Y), d(Z).").unwrap();
        assert!(matches!(
            ground_full(&prog, 10),
            Err(GroundingError::TooLarge { .. })
        ));
        assert!(ground_full(&prog, 1000).is_ok());
    }

    #[test]
    fn unsafe_program_rejected() {
        let prog = parse_datalog("p(X).").unwrap();
        assert!(matches!(
            ground_reduced(&prog, 100),
            Err(GroundingError::Unsafe(_))
        ));
    }

    #[test]
    fn reduced_preserves_stable_models() {
        // With negation: stable models of full and reduced groundings
        // agree (modulo the vocabulary difference, compared by name).
        let prog = parse_datalog(
            "node(a). node(b). edge(a,b). \
             in(X) | out(X) :- node(X). \
             ok :- in(a), not in(b).",
        )
        .unwrap();
        let full = ground_full(&prog, 100_000).unwrap();
        let reduced = ground_reduced(&prog, 100_000).unwrap();
        let mut cost = Cost::new();
        let names =
            |db: &Database, models: Vec<ddb_logic::Interpretation>| -> BTreeSet<Vec<String>> {
                models
                    .into_iter()
                    .map(|m| {
                        let mut names: Vec<String> =
                            m.iter().map(|a| db.symbols().name(a).to_owned()).collect();
                        names.sort();
                        names
                    })
                    .collect()
            };
        let full_stable = names(&full, ddb_core::dsm::models(&full, &mut cost).unwrap());
        let reduced_stable = names(
            &reduced,
            ddb_core::dsm::models(&reduced, &mut cost).unwrap(),
        );
        assert_eq!(full_stable, reduced_stable);
    }

    #[test]
    fn reduced_preserves_minimal_models_on_positive_programs() {
        let prog = parse_datalog(
            "node(a). node(b). in(X) | out(X) :- node(X). \
             some :- in(X).",
        )
        .unwrap();
        let full = ground_full(&prog, 100_000).unwrap();
        let reduced = ground_reduced(&prog, 100_000).unwrap();
        let mut cost = Cost::new();
        let project =
            |db: &Database, models: Vec<ddb_logic::Interpretation>| -> BTreeSet<Vec<String>> {
                models
                    .into_iter()
                    .map(|m| {
                        let mut names: Vec<String> =
                            m.iter().map(|a| db.symbols().name(a).to_owned()).collect();
                        names.sort();
                        names
                    })
                    .collect()
            };
        assert_eq!(
            project(
                &full,
                ddb_models::minimal::minimal_models(&full, &mut cost).unwrap()
            ),
            project(
                &reduced,
                ddb_models::minimal::minimal_models(&reduced, &mut cost).unwrap()
            ),
        );
    }

    #[test]
    fn reduced_is_not_minimal_model_preserving_under_negation() {
        // The documented counterexample: p(a) ← ¬q(a). As a clause,
        // p(a) ∨ q(a) has minimal models {p(a)} and {q(a)}; reduced
        // grounding simplifies ¬q(a) away (q(a) underivable) and keeps
        // only {p(a)}.
        let prog = parse_datalog("p(a) :- not q(a).").unwrap();
        let full = ground_full(&prog, 100).unwrap();
        let reduced = ground_reduced(&prog, 100).unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            ddb_models::minimal::minimal_models(&full, &mut cost)
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            ddb_models::minimal::minimal_models(&reduced, &mut cost)
                .unwrap()
                .len(),
            1
        );
        // …while the stable models agree (q(a) is never stable-true).
        let full_stable = ddb_core::dsm::models(&full, &mut cost).unwrap();
        assert_eq!(full_stable.len(), 1);
        assert!(full_stable[0].contains(full.symbols().lookup("p(a)").unwrap()));
        let red_stable = ddb_core::dsm::models(&reduced, &mut cost).unwrap();
        assert_eq!(red_stable.len(), 1);
    }

    #[test]
    fn constraints_are_grounded() {
        let prog = parse_datalog(
            "node(a). node(b). edge(a,b). \
             in(X) | out(X) :- node(X). \
             :- in(X), in(Y), edge(X,Y).",
        )
        .unwrap();
        let db = ground_reduced(&prog, 10_000).unwrap();
        assert!(db.has_integrity_clauses());
        // Independent-set reading: {in(a), in(b)} is excluded.
        let mut cost = Cost::new();
        let stable = ddb_core::dsm::models(&db, &mut cost).unwrap();
        let ina = db.symbols().lookup("in(a)").unwrap();
        let inb = db.symbols().lookup("in(b)").unwrap();
        assert!(!stable.iter().any(|m| m.contains(ina) && m.contains(inb)));
        assert!(!stable.is_empty());
    }

    #[test]
    fn disequalities_filter_bindings() {
        // Proper coloring via !=: adjacent vertices must differ.
        let prog = parse_datalog(
            "node(a). node(b). edge(a,b). color(red). color(blue). \
             has(X,C) | hasnot(X,C) :- node(X), color(C). \
             :- edge(X,Y), has(X,C), has(Y,C). \
             ok(X) :- has(X,C1), has(X,C2), C1 != C2.",
        )
        .unwrap();
        let db = ground_reduced(&prog, 100_000).unwrap();
        // ok(a) exists only via two *distinct* colors.
        assert!(db.symbols().lookup("ok(a)").is_some());
        // The C1 != C2 filter prunes the C1 = C2 instantiations: every
        // ok-rule body mentions two different color atoms.
        for rule in db.rules() {
            if rule
                .head()
                .first()
                .is_some_and(|&h| db.symbols().name(h).starts_with("ok("))
            {
                assert_eq!(rule.body_pos().len(), 2, "reflexive pair must be pruned");
            }
        }
    }

    #[test]
    fn disequality_between_constants() {
        let prog = parse_datalog("p :- q, a != a. r :- q, a != b. q.").unwrap();
        let db = ground_full(&prog, 1000).unwrap();
        // a != a is statically false → the p-rule vanishes entirely;
        // a != b is statically true → the r-rule stays.
        assert!(db.symbols().lookup("p").is_none());
        assert!(db.symbols().lookup("r").is_some());
    }

    #[test]
    fn disequality_variables_must_be_safe() {
        let prog = parse_datalog(":- X != Y.").unwrap();
        assert!(matches!(
            ground_reduced(&prog, 100),
            Err(GroundingError::Unsafe(_))
        ));
    }

    #[test]
    fn full_and_reduced_agree_with_disequalities() {
        let prog = parse_datalog("d(a). d(b). d(c). pair(X,Y) :- d(X), d(Y), X != Y.").unwrap();
        let full = ground_full(&prog, 100_000).unwrap();
        let reduced = ground_reduced(&prog, 100_000).unwrap();
        // 6 ordered pairs either way.
        let count = |db: &Database| {
            db.symbols()
                .atoms()
                .filter(|&a| db.symbols().name(a).starts_with("pair("))
                .count()
        };
        assert_eq!(count(&full), 6);
        assert_eq!(count(&reduced), 6);
        assert!(full.symbols().lookup("pair(a,a)").is_none());
    }

    #[test]
    fn zero_arity_predicates() {
        let prog = parse_datalog("p :- not q. q :- not p.").unwrap();
        let db = ground_reduced(&prog, 100).unwrap();
        assert_eq!(db.num_atoms(), 2);
        let mut cost = Cost::new();
        assert_eq!(ddb_core::dsm::models(&db, &mut cost).unwrap().len(), 2);
    }

    #[test]
    fn repeated_variables_join_correctly() {
        // self(X) :- edge(X,X): only loops.
        let prog = parse_datalog("edge(a,a). edge(a,b). self(X) :- edge(X,X).").unwrap();
        let db = ground_reduced(&prog, 100).unwrap();
        assert!(db.symbols().lookup("self(a)").is_some());
        assert!(db.symbols().lookup("self(b)").is_none());
    }

    fn query_atom(src: &str) -> PredAtom {
        parse_datalog(src).unwrap().rules[0].head[0].clone()
    }

    #[test]
    fn magic_grounding_keeps_only_the_demanded_component() {
        // Two disjoint chains; the bound query demands only the first.
        let prog = parse_datalog(
            "start(c0,n0). start(c1,n0). \
             edge(c0,n0,n1). edge(c0,n1,n2). edge(c1,n0,n1). edge(c1,n1,n2). \
             reach(C,N) :- start(C,N). \
             reach(C,Y) :- reach(C,X), edge(C,X,Y).",
        )
        .unwrap();
        let q = query_atom("reach(c0,n2).");
        let magic = ground_magic(&prog, &q, 10_000).unwrap();
        let reduced = ground_reduced(&prog, 10_000).unwrap();
        assert!(magic.symbols().lookup("reach(c0,n2)").is_some());
        assert!(magic.symbols().lookup("reach(c1,n0)").is_none());
        assert!(
            magic.len() < reduced.len(),
            "magic grounding must instantiate fewer rules ({} vs {})",
            magic.len(),
            reduced.len()
        );
        // The query answer agrees with the whole-program grounding.
        let mut cost = Cost::new();
        let mm = ddb_models::minimal::minimal_models(&magic, &mut cost).unwrap();
        let target = magic.symbols().lookup("reach(c0,n2)").unwrap();
        assert!(mm.iter().all(|m| m.contains(target)));
    }

    #[test]
    fn magic_grounding_agrees_with_reduced_on_the_query() {
        let prog = parse_datalog(
            "node(a). node(b). edge(a,b). \
             in(X) | out(X) :- node(X). \
             ok(X) :- in(X).",
        )
        .unwrap();
        let q = query_atom("ok(a).");
        let magic = ground_magic(&prog, &q, 10_000).unwrap();
        let reduced = ground_reduced(&prog, 10_000).unwrap();
        let holds = |db: &Database| {
            let a = db.symbols().lookup("ok(a)").expect("ok(a) grounded");
            ddb_models::minimal::minimal_models(db, &mut Cost::new())
                .unwrap()
                .iter()
                .all(|m| m.contains(a))
        };
        assert_eq!(holds(&magic), holds(&reduced));
    }

    #[test]
    fn magic_grounding_demands_negative_bodies() {
        // The negated atom's rules must be instantiated so the
        // negation simplification sees the same derivability facts.
        let prog =
            parse_datalog("base(a). blocked(a) :- base(a). p(X) :- base(X), not blocked(X).")
                .unwrap();
        let q = query_atom("p(a).");
        let magic = ground_magic(&prog, &q, 1000).unwrap();
        // blocked(a) is derivable, so `not blocked(a)` must survive
        // simplification (not be dropped as impossible).
        let rule = magic
            .rules()
            .iter()
            .find(|r| {
                r.head()
                    .first()
                    .is_some_and(|&h| magic.symbols().name(h) == "p(a)")
            })
            .expect("p-rule grounded");
        assert_eq!(rule.body_neg().len(), 1);
    }

    #[test]
    fn magic_grounding_keeps_constraints_on_the_slice() {
        let prog = parse_datalog("node(a). in(X) | out(X) :- node(X). :- in(a).").unwrap();
        let q = query_atom("out(a).");
        let magic = ground_magic(&prog, &q, 1000).unwrap();
        assert!(magic.has_integrity_clauses());
        let mut cost = Cost::new();
        let stable = ddb_core::dsm::models(&magic, &mut cost).unwrap();
        let out = magic.symbols().lookup("out(a)").unwrap();
        assert!(stable.iter().all(|m| m.contains(out)));
    }

    #[test]
    fn magic_grounding_with_unbound_query_matches_reduced() {
        // A zero-arity query demands everything it depends on openly;
        // the result coincides with the reduced grounding of the slice.
        let prog = parse_datalog(
            "edge(a,b). edge(b,c). path(X,Y) :- edge(X,Y). \
             path(X,Y) :- edge(X,Z), path(Z,Y). done :- path(a,c).",
        )
        .unwrap();
        let q = query_atom("done :- path(a,c).");
        let magic = ground_magic(&prog, &q, 10_000).unwrap();
        assert!(magic.symbols().lookup("done").is_some());
        assert!(magic.symbols().lookup("path(a,c)").is_some());
    }
}
