//! Property tests for the grounder: on random safe programs, the reduced
//! (intelligent) grounding must agree with the exact grounding under the
//! supported semantics, and under the minimal-model semantics for
//! positive programs. Driven by the in-repo deterministic PRNG (formerly
//! proptest).

use ddb_ground::{ground_full, ground_reduced, DatalogProgram, DatalogRule, PredAtom, Term};
use ddb_logic::rng::XorShift64Star;
use ddb_logic::Database;
use ddb_models::Cost;
use std::collections::BTreeSet;

const CONSTS: [&str; 3] = ["a", "b", "c"];
const VARS: [&str; 2] = ["X", "Y"];
const CASES: usize = 60;

fn c(i: usize) -> Term {
    Term::Const(CONSTS[i % CONSTS.len()].to_owned())
}

fn random_ground_fact(rng: &mut XorShift64Star) -> DatalogRule {
    // p/1 facts and r/2 facts.
    if rng.gen_bool(0.5) {
        DatalogRule {
            head: vec![PredAtom {
                pred: "p".into(),
                args: vec![c(rng.gen_range(0, 3))],
            }],
            body_pos: vec![],
            body_neg: vec![],
            disequalities: vec![],
        }
    } else {
        DatalogRule {
            head: vec![PredAtom {
                pred: "r".into(),
                args: vec![c(rng.gen_range(0, 3)), c(rng.gen_range(0, 3))],
            }],
            body_pos: vec![],
            body_neg: vec![],
            disequalities: vec![],
        }
    }
}

/// A safe rule: positive body fixes the variables; head and negative body
/// reuse them.
fn random_safe_rule(rng: &mut XorShift64Star, allow_neg: bool) -> DatalogRule {
    // Body: r(X,Y) or p(X); head: one or two atoms over bound vars;
    // optional negated atom over bound vars.
    let body_kind = rng.gen_range(0, 2);
    let (body_pos, bound): (Vec<PredAtom>, Vec<&str>) = if body_kind == 0 {
        (
            vec![PredAtom {
                pred: "r".into(),
                args: vec![Term::Var(VARS[0].into()), Term::Var(VARS[1].into())],
            }],
            vec![VARS[0], VARS[1]],
        )
    } else {
        (
            vec![PredAtom {
                pred: "p".into(),
                args: vec![Term::Var(VARS[0].into())],
            }],
            vec![VARS[0]],
        )
    };
    let mk_head = |k: usize| -> PredAtom {
        match k {
            0 => PredAtom {
                pred: "q".into(),
                args: vec![Term::Var(bound[0].into())],
            },
            1 => PredAtom {
                pred: "s".into(),
                args: vec![Term::Var(bound[bound.len() - 1].into())],
            },
            _ => PredAtom {
                pred: "t".into(),
                args: vec![],
            },
        }
    };
    let head: Vec<PredAtom> = (0..rng.gen_range_inclusive(1, 2))
        .map(|_| mk_head(rng.gen_range(0, 3)))
        .collect();
    let body_neg = if allow_neg && rng.gen_bool(0.5) {
        vec![PredAtom {
            pred: "q".into(),
            args: vec![Term::Var(bound[0].into())],
        }]
    } else {
        vec![]
    };
    DatalogRule {
        head,
        body_pos,
        body_neg,
        disequalities: vec![],
    }
}

fn random_program(rng: &mut XorShift64Star, allow_neg: bool) -> DatalogProgram {
    let facts: Vec<DatalogRule> = (0..rng.gen_range(1, 5))
        .map(|_| random_ground_fact(rng))
        .collect();
    let rules: Vec<DatalogRule> = (0..rng.gen_range(1, 4))
        .map(|_| random_safe_rule(rng, allow_neg))
        .collect();
    DatalogProgram {
        rules: facts.into_iter().chain(rules).collect(),
    }
}

fn named_models(db: &Database, models: Vec<ddb_logic::Interpretation>) -> BTreeSet<Vec<String>> {
    models
        .into_iter()
        .map(|m| {
            let mut names: Vec<String> =
                m.iter().map(|a| db.symbols().name(a).to_owned()).collect();
            names.sort();
            names
        })
        .collect()
}

#[test]
fn stable_models_agree_full_vs_reduced() {
    let mut rng = XorShift64Star::seed_from_u64(0x6001);
    for case in 0..CASES {
        let prog = random_program(&mut rng, true);
        let full = ground_full(&prog, 100_000).unwrap();
        let reduced = ground_reduced(&prog, 100_000).unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            named_models(&full, ddb_core::dsm::models(&full, &mut cost).unwrap()),
            named_models(
                &reduced,
                ddb_core::dsm::models(&reduced, &mut cost).unwrap()
            ),
            "case {case}"
        );
    }
}

#[test]
fn minimal_models_agree_on_positive_programs() {
    let mut rng = XorShift64Star::seed_from_u64(0x6002);
    for case in 0..CASES {
        let prog = random_program(&mut rng, false);
        let full = ground_full(&prog, 100_000).unwrap();
        let reduced = ground_reduced(&prog, 100_000).unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            named_models(
                &full,
                ddb_models::minimal::minimal_models(&full, &mut cost).unwrap()
            ),
            named_models(
                &reduced,
                ddb_models::minimal::minimal_models(&reduced, &mut cost).unwrap()
            ),
            "case {case}"
        );
    }
}

#[test]
fn possible_models_agree_on_positive_programs() {
    let mut rng = XorShift64Star::seed_from_u64(0x6003);
    for case in 0..CASES {
        let prog = random_program(&mut rng, false);
        let full = ground_full(&prog, 100_000).unwrap();
        let reduced = ground_reduced(&prog, 100_000).unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            named_models(&full, ddb_core::pws::models(&full, &mut cost).unwrap()),
            named_models(
                &reduced,
                ddb_core::pws::models(&reduced, &mut cost).unwrap()
            ),
            "case {case}"
        );
    }
}

#[test]
fn reduced_grounding_is_never_larger() {
    let mut rng = XorShift64Star::seed_from_u64(0x6004);
    for case in 0..CASES {
        let prog = random_program(&mut rng, true);
        let full = ground_full(&prog, 100_000).unwrap();
        let reduced = ground_reduced(&prog, 100_000).unwrap();
        assert!(reduced.len() <= full.len(), "case {case}");
        assert!(reduced.num_atoms() <= full.num_atoms(), "case {case}");
    }
}

#[test]
fn grounding_is_deterministic() {
    let mut rng = XorShift64Star::seed_from_u64(0x6005);
    for case in 0..CASES {
        let prog = random_program(&mut rng, true);
        let a = ground_reduced(&prog, 100_000).unwrap();
        let b = ground_reduced(&prog, 100_000).unwrap();
        assert_eq!(a.rules(), b.rules(), "case {case}");
    }
}
