//! Property tests for the grounder: on random safe programs, the reduced
//! (intelligent) grounding must agree with the exact grounding under the
//! supported semantics, and under the minimal-model semantics for
//! positive programs.

use ddb_ground::{ground_full, ground_reduced, DatalogProgram, DatalogRule, PredAtom, Term};
use ddb_logic::Database;
use ddb_models::Cost;
use proptest::prelude::*;
use std::collections::BTreeSet;

const CONSTS: [&str; 3] = ["a", "b", "c"];
const VARS: [&str; 2] = ["X", "Y"];

fn c(i: usize) -> Term {
    Term::Const(CONSTS[i % CONSTS.len()].to_owned())
}

fn arb_ground_fact() -> impl Strategy<Value = DatalogRule> {
    // p/1, q/1 facts and r/2 facts.
    prop_oneof![
        (0usize..3).prop_map(|i| DatalogRule {
            head: vec![PredAtom {
                pred: "p".into(),
                args: vec![c(i)]
            }],
            body_pos: vec![],
            body_neg: vec![],
            disequalities: vec![],
        }),
        (0usize..3, 0usize..3).prop_map(|(i, j)| DatalogRule {
            head: vec![PredAtom {
                pred: "r".into(),
                args: vec![c(i), c(j)],
            }],
            body_pos: vec![],
            body_neg: vec![],
            disequalities: vec![],
        }),
    ]
}

/// A safe rule: positive body fixes the variables; head and negative body
/// reuse them.
fn arb_safe_rule(allow_neg: bool) -> impl Strategy<Value = DatalogRule> {
    // Body: r(X,Y) or p(X); head: one or two atoms over bound vars;
    // optional negated atom over bound vars.
    let body_choice = 0usize..2;
    let head_preds = proptest::collection::vec(0usize..3, 1..=2);
    let neg = proptest::bool::ANY;
    (body_choice, head_preds, neg).prop_map(move |(body_kind, heads, use_neg)| {
        let (body_pos, bound): (Vec<PredAtom>, Vec<&str>) = if body_kind == 0 {
            (
                vec![PredAtom {
                    pred: "r".into(),
                    args: vec![Term::Var(VARS[0].into()), Term::Var(VARS[1].into())],
                }],
                vec![VARS[0], VARS[1]],
            )
        } else {
            (
                vec![PredAtom {
                    pred: "p".into(),
                    args: vec![Term::Var(VARS[0].into())],
                }],
                vec![VARS[0]],
            )
        };
        let mk_head = |k: usize| -> PredAtom {
            match k {
                0 => PredAtom {
                    pred: "q".into(),
                    args: vec![Term::Var(bound[0].into())],
                },
                1 => PredAtom {
                    pred: "s".into(),
                    args: vec![Term::Var(bound[bound.len() - 1].into())],
                },
                _ => PredAtom {
                    pred: "t".into(),
                    args: vec![],
                },
            }
        };
        let head: Vec<PredAtom> = heads.into_iter().map(mk_head).collect();
        let body_neg = if allow_neg && use_neg {
            vec![PredAtom {
                pred: "q".into(),
                args: vec![Term::Var(bound[0].into())],
            }]
        } else {
            vec![]
        };
        DatalogRule {
            head,
            body_pos,
            body_neg,
            disequalities: vec![],
        }
    })
}

fn arb_program(allow_neg: bool) -> impl Strategy<Value = DatalogProgram> {
    (
        proptest::collection::vec(arb_ground_fact(), 1..5),
        proptest::collection::vec(arb_safe_rule(allow_neg), 1..4),
    )
        .prop_map(|(facts, rules)| DatalogProgram {
            rules: facts.into_iter().chain(rules).collect(),
        })
}

fn named_models(db: &Database, models: Vec<ddb_logic::Interpretation>) -> BTreeSet<Vec<String>> {
    models
        .into_iter()
        .map(|m| {
            let mut names: Vec<String> =
                m.iter().map(|a| db.symbols().name(a).to_owned()).collect();
            names.sort();
            names
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn stable_models_agree_full_vs_reduced(prog in arb_program(true)) {
        let full = ground_full(&prog, 100_000).unwrap();
        let reduced = ground_reduced(&prog, 100_000).unwrap();
        let mut cost = Cost::new();
        prop_assert_eq!(
            named_models(&full, ddb_core::dsm::models(&full, &mut cost)),
            named_models(&reduced, ddb_core::dsm::models(&reduced, &mut cost))
        );
    }

    #[test]
    fn minimal_models_agree_on_positive_programs(prog in arb_program(false)) {
        let full = ground_full(&prog, 100_000).unwrap();
        let reduced = ground_reduced(&prog, 100_000).unwrap();
        let mut cost = Cost::new();
        prop_assert_eq!(
            named_models(&full, ddb_models::minimal::minimal_models(&full, &mut cost)),
            named_models(&reduced, ddb_models::minimal::minimal_models(&reduced, &mut cost))
        );
    }

    #[test]
    fn possible_models_agree_on_positive_programs(prog in arb_program(false)) {
        let full = ground_full(&prog, 100_000).unwrap();
        let reduced = ground_reduced(&prog, 100_000).unwrap();
        let mut cost = Cost::new();
        prop_assert_eq!(
            named_models(&full, ddb_core::pws::models(&full, &mut cost)),
            named_models(&reduced, ddb_core::pws::models(&reduced, &mut cost))
        );
    }

    #[test]
    fn reduced_grounding_is_never_larger(prog in arb_program(true)) {
        let full = ground_full(&prog, 100_000).unwrap();
        let reduced = ground_reduced(&prog, 100_000).unwrap();
        prop_assert!(reduced.len() <= full.len());
        prop_assert!(reduced.num_atoms() <= full.num_atoms());
    }

    #[test]
    fn grounding_is_deterministic(prog in arb_program(true)) {
        let a = ground_reduced(&prog, 100_000).unwrap();
        let b = ground_reduced(&prog, 100_000).unwrap();
        prop_assert_eq!(a.rules(), b.rules());
    }
}
