//! Governance of the grounding loops: an installed [`Budget`] trips
//! *during* grounding — semi-naive closure, exact instantiation, and the
//! demand-driven magic closure — not only inside SAT/fixpoint work.
//!
//! The headline is the fault-injection sweep: probe a grounding run with
//! an unlimited budget to learn its checkpoint total `K`, then re-run it
//! with `fail_after(k)` for every `k < K` and require a typed
//! [`GroundingError::Interrupted`] each time — never a panic, never a
//! wrong database.

use ddb_ground::parse::parse_datalog;
use ddb_ground::{ground_full, ground_magic, ground_reduced, GroundingError};
use ddb_obs::budget::{self, Budget};
use ddb_obs::Resource;
use ddb_workloads::structured::bound_chains;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A non-trivial recursive Datalog∨ source (several chains, real joins).
fn chains_source() -> String {
    bound_chains(3, 6).0
}

/// Checkpoints consumed by one grounding run under an unlimited budget.
fn probe<F: FnOnce()>(run: F) -> u64 {
    let guard = Budget::unlimited().install();
    run();
    let consumed = budget::consumed().expect("budget installed");
    drop(guard);
    consumed.checkpoints
}

#[test]
fn ground_reduced_counts_checkpoints() {
    let prog = parse_datalog(&chains_source()).unwrap();
    let k = probe(|| {
        ground_reduced(&prog, 1_000_000).unwrap();
    });
    assert!(k > 10, "expected a real checkpoint trail, got {k}");
}

#[test]
fn fault_injection_sweep_over_ground_reduced() {
    let prog = parse_datalog(&chains_source()).unwrap();
    let total = probe(|| {
        ground_reduced(&prog, 1_000_000).unwrap();
    });
    // Sweep a prefix densely and the rest strided, keeping the test fast
    // while still crossing every loop the grounder owns.
    let ks: Vec<u64> = (0..total.min(40)).chain((40..total).step_by(97)).collect();
    for k in ks {
        let guard = Budget::unlimited().fail_after(k).install();
        let result = ground_reduced(&prog, 1_000_000);
        drop(guard);
        match result {
            Err(GroundingError::Interrupted(i)) => {
                assert_eq!(i.resource, Resource::FaultInjection, "fail_after({k})");
            }
            other => panic!("fail_after({k}): expected Interrupted, got {other:?}"),
        }
    }
}

#[test]
fn fault_injection_sweep_over_ground_magic() {
    let prog = parse_datalog(&chains_source()).unwrap();
    let query = parse_datalog("reach(c0,n6).").unwrap().rules[0].head[0].clone();
    let total = probe(|| {
        ground_magic(&prog, &query, 1_000_000).unwrap();
    });
    assert!(total > 0, "magic grounding must checkpoint");
    let ks: Vec<u64> = (0..total.min(40)).chain((40..total).step_by(97)).collect();
    for k in ks {
        let guard = Budget::unlimited().fail_after(k).install();
        let result = ground_magic(&prog, &query, 1_000_000);
        drop(guard);
        match result {
            Err(GroundingError::Interrupted(i)) => {
                assert_eq!(i.resource, Resource::FaultInjection, "fail_after({k})");
            }
            other => panic!("fail_after({k}): expected Interrupted, got {other:?}"),
        }
    }
}

#[test]
fn fault_injection_trips_ground_full() {
    let prog = parse_datalog(&chains_source()).unwrap();
    let guard = Budget::unlimited().fail_after(0).install();
    let result = ground_full(&prog, 1_000_000);
    drop(guard);
    assert!(
        matches!(result, Err(GroundingError::Interrupted(_))),
        "got {result:?}"
    );
}

#[test]
fn cancel_flag_trips_grounding_immediately() {
    let prog = parse_datalog(&chains_source()).unwrap();
    let flag = Arc::new(AtomicBool::new(true));
    let guard = Budget::unlimited().with_cancel_flag(flag.clone()).install();
    let result = ground_reduced(&prog, 1_000_000);
    drop(guard);
    match result {
        Err(GroundingError::Interrupted(i)) => assert_eq!(i.resource, Resource::Cancelled),
        other => panic!("expected cancelled, got {other:?}"),
    }
    flag.store(false, Ordering::SeqCst);
}

#[test]
fn deadline_trips_during_grounding() {
    // A saturating workload: dense joins keep the grounder busy long
    // enough for an already-expired deadline to be observed (deadlines
    // are polled every DEADLINE_STRIDE checkpoints).
    let prog = parse_datalog(&bound_chains(6, 24).0).unwrap();
    let guard = Budget::unlimited()
        .with_timeout(std::time::Duration::from_millis(0))
        .install();
    let result = ground_reduced(&prog, 10_000_000);
    drop(guard);
    match result {
        Err(GroundingError::Interrupted(i)) => assert_eq!(i.resource, Resource::Deadline),
        other => panic!("expected deadline trip, got {other:?}"),
    }
}

#[test]
fn ungoverned_grounding_is_unchanged() {
    // No budget installed: checkpoints are free no-ops and the grounder
    // behaves exactly as before.
    let prog = parse_datalog(&chains_source()).unwrap();
    let a = ground_reduced(&prog, 1_000_000).unwrap();
    let guard = Budget::unlimited().install();
    let b = ground_reduced(&prog, 1_000_000).unwrap();
    drop(guard);
    assert_eq!(a.num_atoms(), b.num_atoms());
    assert_eq!(a.rules().len(), b.rules().len());
}
