//! Cross-check that [`ddb_logic::Database::stratification`] (which now
//! delegates to the canonical dependency-graph implementation) and a direct
//! [`DepGraph`] construction agree on every program in the corpus and on
//! random databases — the single-source-of-truth guarantee behind the
//! stratification dedupe.

use ddb_analysis::DepGraph;
use ddb_logic::rng::XorShift64Star;
use ddb_logic::{Atom, Database, Rule};

const CORPUS: &[&str] = &[
    "",
    "a.",
    "a | b.",
    "a | b. c :- a. c :- b.",
    "a. b :- a. c :- b.",
    "a :- not b. b :- not a.",
    "p :- not q. q. r :- p, not s.",
    "a | b :- not c. c :- not d.",
    "x :- x.",
    "a | b. a :- b. b :- a.",
    "alice | bob. grounded :- alice. grounded :- bob. treat :- alice, bob.",
    "a. :- a.",
    "win :- not lose. lose :- not win. ok :- win. ok :- lose.",
    "s0. s1 :- s0, not n1. n1 :- not s1. s2 :- s1, not n2. n2 :- not s2.",
];

#[test]
fn database_and_depgraph_stratifications_agree_on_corpus() {
    for src in CORPUS {
        let db = ddb_logic::parse::parse_program(src).unwrap();
        let via_db = db.stratification();
        let via_graph = DepGraph::of_database(&db).stratification();
        assert_eq!(via_db, via_graph, "diverged on {src:?}");
    }
}

#[test]
fn database_and_depgraph_stratifications_agree_on_random_dbs() {
    const N: usize = 5;
    let mut rng = XorShift64Star::seed_from_u64(0xDDB_0305);
    let mut stratified = 0;
    for _ in 0..200 {
        let mut db = Database::with_fresh_atoms(N);
        for _ in 0..rng.gen_range(0, 8) {
            let h: Vec<u32> = (0..rng.gen_range(0, 3))
                .map(|_| rng.gen_range(0, N) as u32)
                .collect();
            let bp: Vec<u32> = (0..rng.gen_range(0, 3))
                .map(|_| rng.gen_range(0, N) as u32)
                .collect();
            let bn: Vec<u32> = (0..rng.gen_range(0, 3))
                .map(|_| rng.gen_range(0, N) as u32)
                .collect();
            db.add_rule(Rule::new(
                h.into_iter().map(Atom::new),
                bp.into_iter().map(Atom::new),
                bn.into_iter().map(Atom::new),
            ));
        }
        let via_db = db.stratification();
        let via_graph = DepGraph::of_database(&db).stratification();
        assert_eq!(via_db, via_graph, "diverged on {db:?}");
        stratified += usize::from(via_db.is_some());
    }
    // The generator must exercise both outcomes for the check to mean much.
    assert!(stratified > 20, "almost nothing stratifiable");
}

#[test]
fn stratification_matches_unstratifiable_witness() {
    // `stratification()` is `None` exactly when the graph produces a
    // negative-cycle witness, and the witness really lies on a cycle
    // through a strict edge.
    for src in CORPUS {
        let db = ddb_logic::parse::parse_program(src).unwrap();
        let graph = DepGraph::of_database(&db);
        assert_eq!(
            graph.stratification().is_none(),
            graph.unstratifiable_witness().is_some(),
            "witness/stratification mismatch on {src:?}"
        );
    }
}
