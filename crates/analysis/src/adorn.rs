//! Binding-pattern (adornment) analysis over the query's sideways
//! information passing.
//!
//! Magic-set style goal-directed evaluation (Bancilhon & Ramakrishnan)
//! specializes each predicate to the *binding pattern* the query reaches it
//! with: `p^bf` means the first argument arrives bound to a query constant
//! and the second is free. The database here is already ground — atoms are
//! interned strings like `covered(gear)` — so the analysis recovers the
//! predicate/argument structure syntactically ([`split_predicate`]) and
//! computes, for every predicate backward-reachable from the query, which
//! argument positions are bound to query constants in **every** reachable
//! occurrence:
//!
//! 1. The bound-constant set `B` is the set of constants appearing in the
//!    query's own atoms.
//! 2. The reachable occurrences are exactly the atoms of the query's
//!    backward relevance slice ([`crate::relevant_slice`]) — the sideways
//!    information passing walks the same rule edges.
//! 3. Position `j` of predicate `p` is adorned `b` iff every reachable
//!    occurrence of `p` carries a constant from `B` at position `j`;
//!    otherwise `f`.
//!
//! A predicate with a free position means goal-directed evaluation cannot
//! restrict it to the query's constants — the planner surfaces this as lint
//! `DDB012`, and it is the precondition the magic-sets transform
//! ([`crate::magic`]) keys on.

use crate::slice::relevant_slice;
use ddb_logic::{Atom, Database};
use ddb_obs::json::Json;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Splits a ground atom name into its predicate and argument constants:
/// `covered(gear)` → `("covered", ["gear"])`, `p(f(a),b)` → `("p",
/// ["f(a)", "b"])` (arguments split at top-level commas only),
/// propositional `flag` → `("flag", [])`. Zero-arity `p()` yields
/// `("p", [])` as well.
pub fn split_predicate(name: &str) -> (&str, Vec<&str>) {
    let Some(open) = name.find('(') else {
        return (name, Vec::new());
    };
    if !name.ends_with(')') {
        return (name, Vec::new());
    }
    let pred = &name[..open];
    let inner = &name[open + 1..name.len() - 1];
    if inner.is_empty() {
        return (pred, Vec::new());
    }
    let mut args = Vec::new();
    let (mut depth, mut start) = (0usize, 0usize);
    for (i, c) in inner.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                args.push(inner[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    args.push(inner[start..].trim());
    (pred, args)
}

/// The adornment (binding pattern) of one backward-reachable predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredicateAdornment {
    /// Predicate name.
    pub predicate: String,
    /// Arity (0 for propositional atoms).
    pub arity: usize,
    /// One character per argument position: `b` (bound to a query
    /// constant in every reachable occurrence) or `f` (free in some
    /// occurrence). Empty for propositional atoms.
    pub pattern: String,
    /// How many reachable ground occurrences the meet ranged over.
    pub occurrences: usize,
}

impl PredicateAdornment {
    /// Whether any argument position is free.
    pub fn has_free(&self) -> bool {
        self.pattern.contains('f')
    }

    /// `predicate^pattern` display form (`covered^b`); bare predicate for
    /// propositional atoms.
    pub fn display(&self) -> String {
        if self.pattern.is_empty() {
            self.predicate.clone()
        } else {
            format!("{}^{}", self.predicate, self.pattern)
        }
    }
}

/// Adornment map for one query: per-predicate binding patterns over the
/// query's backward slice, sorted by predicate name then arity.
#[derive(Clone, Debug, Default)]
pub struct Adornments {
    /// The per-predicate patterns.
    pub predicates: Vec<PredicateAdornment>,
    /// The query's bound-constant set `B`, sorted.
    pub bound_constants: Vec<String>,
}

impl Adornments {
    /// The predicates goal-directed evaluation would leave partially
    /// unbound (adornment contains `f`).
    pub fn unbound(&self) -> impl Iterator<Item = &PredicateAdornment> {
        self.predicates.iter().filter(|p| p.has_free())
    }

    /// JSON rendering for `ddb explain --json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "bound_constants",
                Json::Arr(
                    self.bound_constants
                        .iter()
                        .map(|c| Json::Str(c.clone()))
                        .collect(),
                ),
            ),
            (
                "predicates",
                Json::Arr(
                    self.predicates
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("predicate", Json::Str(p.predicate.clone())),
                                ("arity", Json::UInt(p.arity as u64)),
                                ("pattern", Json::Str(p.pattern.clone())),
                                ("occurrences", Json::UInt(p.occurrences as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Computes the adornment map for a query over `query_atoms` (see the
/// module docs for the construction). Deterministic: iteration follows the
/// slice's sorted atom order and the output is sorted by predicate.
pub fn adorn(db: &Database, query_atoms: &[Atom]) -> Adornments {
    let mut bound: BTreeSet<&str> = BTreeSet::new();
    for &a in query_atoms {
        let (_, args) = split_predicate(db.symbols().name(a));
        bound.extend(args);
    }
    let slice = relevant_slice(db, query_atoms);
    // Meet of the binding vectors across every reachable occurrence:
    // start from all-bound and clear positions where a non-query constant
    // shows up.
    let mut meet: BTreeMap<(String, usize), (Vec<bool>, usize)> = BTreeMap::new();
    for &a in &slice.atoms {
        let (pred, args) = split_predicate(db.symbols().name(a));
        let entry = meet
            .entry((pred.to_owned(), args.len()))
            .or_insert_with(|| (vec![true; args.len()], 0));
        entry.1 += 1;
        for (j, c) in args.iter().enumerate() {
            if !bound.contains(c) {
                entry.0[j] = false;
            }
        }
    }
    Adornments {
        predicates: meet
            .into_iter()
            .map(
                |((predicate, arity), (positions, occurrences))| PredicateAdornment {
                    predicate,
                    arity,
                    pattern: positions
                        .iter()
                        .map(|&b| if b { 'b' } else { 'f' })
                        .collect(),
                    occurrences,
                },
            )
            .collect(),
        bound_constants: bound.into_iter().map(str::to_owned).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::parse_program;
    use ddb_logic::Rule;

    fn atom(db: &Database, name: &str) -> Atom {
        db.symbols()
            .atoms()
            .find(|&a| db.symbols().name(a) == name)
            .expect("atom exists")
    }

    /// Builds a ground database from (head names, positive body names)
    /// pairs — the propositional parser does not accept parenthesized
    /// ground-atom names (those are produced by the datalog grounder), so
    /// tests intern them directly.
    fn ground_db(rules: &[(&[&str], &[&str])]) -> Database {
        let mut db = Database::with_fresh_atoms(0);
        for (head, body) in rules {
            let h: Vec<Atom> = head.iter().map(|n| db.symbols_mut().intern(n)).collect();
            let b: Vec<Atom> = body.iter().map(|n| db.symbols_mut().intern(n)).collect();
            db.add_rule(Rule::new(h, b, Vec::<Atom>::new()));
        }
        db
    }

    #[test]
    fn split_predicate_shapes() {
        assert_eq!(split_predicate("flag"), ("flag", vec![]));
        assert_eq!(split_predicate("p()"), ("p", vec![]));
        assert_eq!(split_predicate("covered(gear)"), ("covered", vec!["gear"]));
        assert_eq!(split_predicate("e(a, b)"), ("e", vec!["a", "b"]));
        assert_eq!(split_predicate("p(f(a),b)"), ("p", vec!["f(a)", "b"]));
        // Malformed names degrade to propositional, never panic.
        assert_eq!(split_predicate("odd(name"), ("odd(name", vec![]));
    }

    #[test]
    fn fully_bound_chain_is_all_b() {
        let db = ground_db(&[
            (&["part(gear)"], &[]),
            (&["covered(gear)"], &["sourced(gear)", "part(gear)"]),
            (&["sourced(gear)"], &[]),
        ]);
        let ad = adorn(&db, &[atom(&db, "covered(gear)")]);
        assert_eq!(ad.bound_constants, vec!["gear".to_owned()]);
        assert!(ad.unbound().next().is_none(), "{:?}", ad.predicates);
        let covered = ad
            .predicates
            .iter()
            .find(|p| p.predicate == "covered")
            .unwrap();
        assert_eq!(covered.pattern, "b");
        assert_eq!(covered.display(), "covered^b");
    }

    #[test]
    fn free_position_detected_through_the_slice() {
        // The slice of covered(gear) pulls in part(axle) through the rule
        // body, so part's argument is not always `gear`.
        let db = ground_db(&[
            (&["part(gear)"], &[]),
            (&["part(axle)"], &[]),
            (&["covered(gear)"], &["part(gear)", "part(axle)"]),
        ]);
        let ad = adorn(&db, &[atom(&db, "covered(gear)")]);
        let part = ad
            .predicates
            .iter()
            .find(|p| p.predicate == "part")
            .unwrap();
        assert_eq!(part.pattern, "f");
        assert!(part.has_free());
        assert_eq!(ad.unbound().count(), 1);
    }

    #[test]
    fn propositional_atoms_have_empty_pattern() {
        let db = parse_program("a | b. c :- a.").unwrap();
        let ad = adorn(&db, &[atom(&db, "c")]);
        assert!(ad.bound_constants.is_empty());
        assert!(ad.predicates.iter().all(|p| p.pattern.is_empty()));
        assert!(ad.unbound().next().is_none());
        assert_eq!(ad.predicates[0].display(), ad.predicates[0].predicate);
    }

    #[test]
    fn json_renders() {
        let db = ground_db(&[
            (&["covered(gear)"], &["part(gear)"]),
            (&["part(gear)"], &[]),
        ]);
        let ad = adorn(&db, &[atom(&db, "covered(gear)")]);
        let parsed = ddb_obs::json::parse(&ad.to_json().render()).unwrap();
        assert!(parsed.get("predicates").unwrap().as_arr().unwrap().len() >= 2);
    }
}
