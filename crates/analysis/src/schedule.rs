//! Independent work scheduling: weakly-connected dependency islands.
//!
//! The splitting-set condensation ([`crate::layering`]) orders components
//! *vertically* — later levels depend on earlier ones. This module cuts
//! the orthogonal, *horizontal* direction: two atoms belong to the same
//! **island** when some chain of rules connects them, ignoring edge
//! direction (a rule couples every atom it mentions — head siblings,
//! positive and negative body, and all atoms of an integrity clause).
//! Distinct islands share no rule and no atom, so the database is their
//! disjoint union and every semantics in the paper factors over it as a
//! product: a model of `DB` is exactly a union of models, one per island,
//! and model-theoretic properties (minimality, stability, perfection,
//! the closed-world closures) are checked islandwise. Same-layer SCC
//! components that the sequential peel visits one after another therefore
//! become independent jobs for the worker pool.
//!
//! Each island is returned as a [`Slice`] that is split-closed by
//! construction, so [`crate::project_slice`] projects it to a standalone
//! sub-database directly. Atoms mentioned by no rule form rule-less
//! islands and are omitted: no rule can derive or constrain them, so they
//! cannot affect model existence or inference over the returned islands.

use crate::slice::Slice;
use ddb_logic::{Atom, Database};

/// Union-find with path halving and union by size.
struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut v: usize) -> usize {
        while self.parent[v] != v {
            self.parent[v] = self.parent[self.parent[v]];
            v = self.parent[v];
        }
        v
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

/// Decomposes `db` into its weakly-connected dependency islands, each a
/// split-closed [`Slice`] (atoms ascending, rule indices ascending),
/// ordered by smallest atom index — a deterministic job list for the
/// worker pool.
///
/// Degenerate inputs collapse to one whole-database island: a rule with
/// no atoms (the empty integrity clause — no models for any semantics)
/// cannot be attributed to any island, so no decomposition is attempted.
pub fn islands(db: &Database) -> Vec<Slice> {
    let n = db.num_atoms();
    let rules = db.rules();
    let mut dsu = Dsu::new(n);
    for r in rules.iter() {
        let mut atoms = r.atoms();
        let Some(first) = atoms.next() else {
            return vec![whole(db)];
        };
        for a in atoms {
            dsu.union(first.index(), a.index());
        }
    }
    // Island ids in order of smallest member atom.
    let mut island_of_root = vec![usize::MAX; n];
    let mut islands: Vec<Slice> = Vec::new();
    for v in 0..n {
        let root = dsu.find(v);
        if island_of_root[root] == usize::MAX {
            island_of_root[root] = islands.len();
            islands.push(Slice {
                in_slice: vec![false; n],
                atoms: Vec::new(),
                rules: Vec::new(),
                split_closed: true,
                blocking_rule: None,
            });
        }
        let island = &mut islands[island_of_root[root]];
        island.in_slice[v] = true;
        island.atoms.push(Atom::new(v as u32));
    }
    for (i, r) in rules.iter().enumerate() {
        let a = r.atoms().next().expect("empty clause handled above");
        let root = dsu.find(a.index());
        islands[island_of_root[root]].rules.push(i);
    }
    islands.retain(|island| !island.rules.is_empty());
    islands
}

fn whole(db: &Database) -> Slice {
    Slice {
        in_slice: vec![true; db.num_atoms()],
        atoms: (0..db.num_atoms() as u32).map(Atom::new).collect(),
        rules: (0..db.len()).collect(),
        split_closed: true,
        blocking_rule: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::project_slice;
    use ddb_logic::parse::{display_rule, parse_program};

    fn rendered(db: &Database, island: &Slice) -> Vec<String> {
        let (sub, _) = project_slice(db, island);
        sub.rules()
            .iter()
            .map(|r| display_rule(r, sub.symbols()))
            .collect()
    }

    #[test]
    fn disjoint_programs_split_into_islands() {
        let db = parse_program("a | b. c :- a. x | y. z :- not x. q.").unwrap();
        let parts = islands(&db);
        assert_eq!(parts.len(), 3);
        assert_eq!(rendered(&db, &parts[0]), ["a | b.", "c :- a."]);
        assert_eq!(rendered(&db, &parts[1]), ["x | y.", "z :- not x."]);
        assert_eq!(rendered(&db, &parts[2]), ["q."]);
        for p in &parts {
            assert!(p.split_closed);
        }
    }

    #[test]
    fn constraints_couple_their_atoms() {
        // Without the constraint, {a|b} and {c} are separate; the
        // constraint `:- b, c` welds them into one island.
        let db = parse_program("a | b. c. :- b, c. p.").unwrap();
        let parts = islands(&db);
        assert_eq!(parts.len(), 2);
        assert_eq!(rendered(&db, &parts[0]), ["a | b.", "c.", ":- b, c."]);
        assert_eq!(rendered(&db, &parts[1]), ["p."]);
    }

    #[test]
    fn connected_database_is_one_island() {
        let db = parse_program("a | b. c :- a. c :- b.").unwrap();
        let parts = islands(&db);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].rules, vec![0, 1, 2]);
    }

    #[test]
    fn empty_clause_collapses_to_whole_database() {
        let mut db = parse_program("a. x | y.").unwrap();
        db.add_rule(ddb_logic::Rule::integrity([], []));
        let parts = islands(&db);
        assert_eq!(parts.len(), 1, "no decomposition across an empty clause");
        assert_eq!(parts[0].rules.len(), db.len());
    }

    #[test]
    fn rule_less_atoms_join_no_island() {
        let mut db = parse_program("a. b :- a.").unwrap();
        let free = db.symbols_mut().intern("free");
        let parts = islands(&db);
        assert_eq!(parts.len(), 1);
        assert!(!parts[0].in_slice[free.index()]);
    }
}
