//! Backward relevance slicing — the least sub-database that can influence
//! a query.
//!
//! A query formula only mentions a handful of atoms; the rules that can
//! affect its truth value are the ones reachable *backwards* through the
//! dependency graph ([`ddb_logic::depgraph`]): a rule matters when its
//! head intersects the growing relevant set (then its whole head — the
//! head siblings — and its body become relevant too), and an integrity
//! clause matters as soon as any of its atoms does. The closure computed
//! by [`relevant_slice`] is exactly that least fixpoint, so by
//! construction the slice's atom set `R` is a **splitting set** in the
//! sense of Lifschitz & Turner: every rule whose head touches `R` has all
//! its atoms inside `R`.
//!
//! Whether answering the query on the slice alone is *sound* depends on
//! how the rest of the database reads `R`:
//!
//! * **Positive databases** (no negation, no integrity clauses): minimal
//!   models project, `MM(DB)|_R = MM(slice)` — the component/product
//!   argument of `ddb_models::components` extended to one-way dependence.
//!   Non-slice rules may read `R`; because their heads are disjoint from
//!   `R` and nothing prunes models, they cannot constrain it.
//! * **Split-closed slices** ([`Slice::split_closed`]): no non-slice rule
//!   mentions an atom of `R` at all, so the database is a disjoint union
//!   and every semantics factors as a product. The one correction: when
//!   the non-slice part has an empty model set, cautious inference over
//!   the whole database is vacuously true whatever the slice says.
//!
//! `crates/core`'s dispatcher checks these preconditions per semantics and
//! falls back to the generic whole-database procedure when neither holds.

use ddb_logic::{Atom, Database, Rule, Symbols};

/// The result of backward relevance slicing: which atoms and rules can
/// influence the query, and whether the slice boundary is split-closed.
#[derive(Clone, Debug)]
pub struct Slice {
    /// `in_slice[atom.index()]` — whether the atom is query-relevant.
    pub in_slice: Vec<bool>,
    /// The relevant atoms, sorted.
    pub atoms: Vec<Atom>,
    /// Indices (into `db.rules()`) of the rules in the slice, ascending.
    pub rules: Vec<usize>,
    /// Whether every non-slice rule is atom-disjoint from the slice — the
    /// Lifschitz–Turner-style condition under which the database splits
    /// into the slice and an independent top part.
    pub split_closed: bool,
    /// A non-slice rule whose body reads a slice atom, witnessing why
    /// `split_closed` failed (for diagnostics and `ddb slice` output).
    pub blocking_rule: Option<usize>,
}

impl Slice {
    /// Whether the slice contains every rule of the database (slicing
    /// found nothing to drop).
    pub fn is_whole(&self, db: &Database) -> bool {
        self.rules.len() == db.len()
    }
}

/// Computes the backward relevance slice of `db` for a query over
/// `query_atoms`: the least set `R ⊇ query_atoms` of atoms, and set of
/// rules, closed under
///
/// * `head(r) ∩ R ≠ ∅ ⟹ atoms(r) ⊆ R` (and `r` joins the slice), and
/// * `atoms(c) ∩ R ≠ ∅ ⟹ atoms(c) ⊆ R` for integrity clauses `c` (a
///   constraint touching a relevant atom prunes its models, so it must
///   ride along for the slice to be exact).
pub fn relevant_slice(db: &Database, query_atoms: &[Atom]) -> Slice {
    let n = db.num_atoms();
    let rules = db.rules();
    let mut in_slice = vec![false; n];
    for &a in query_atoms {
        in_slice[a.index()] = true;
    }
    let mut rule_in = vec![false; rules.len()];
    // Fixpoint: each pass pulls in every rule the current set triggers;
    // at most `rules.len()` productive passes.
    loop {
        let mut changed = false;
        for (i, r) in rules.iter().enumerate() {
            if rule_in[i] {
                continue;
            }
            let triggered = if r.is_integrity() {
                r.atoms().any(|a| in_slice[a.index()])
            } else {
                r.head().iter().any(|&h| in_slice[h.index()])
            };
            if triggered {
                rule_in[i] = true;
                changed = true;
                for a in r.atoms() {
                    in_slice[a.index()] = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // A non-slice rule reading a slice atom breaks the split: the top
    // part is not vocabulary-disjoint from the slice.
    let blocking_rule = rules
        .iter()
        .enumerate()
        .find(|(i, r)| !rule_in[*i] && r.atoms().any(|a| in_slice[a.index()]))
        .map(|(i, _)| i);
    Slice {
        atoms: (0..n as u32)
            .map(Atom::new)
            .filter(|a| in_slice[a.index()])
            .collect(),
        rules: (0..rules.len()).filter(|&i| rule_in[i]).collect(),
        split_closed: blocking_rule.is_none(),
        blocking_rule,
        in_slice,
    }
}

/// An atom renaming between a database and a projected sub-database.
#[derive(Clone, Debug)]
pub struct AtomMap {
    /// `to_sub[old.index()]` — the sub-database atom for each original
    /// atom, when the original atom survives the projection.
    pub to_sub: Vec<Option<Atom>>,
    /// `from_sub[new.index()]` — the original atom for each sub-database
    /// atom.
    pub from_sub: Vec<Atom>,
}

/// Projects the slice to a standalone database over a fresh vocabulary
/// containing exactly [`Slice::atoms`] (in order), with the slice's rules
/// renamed into it. Follows `ddb_models::components::project_component`.
pub fn project_slice(db: &Database, slice: &Slice) -> (Database, AtomMap) {
    project_rules(db, &slice.atoms, &slice.rules)
}

/// Projects the **non-slice** rules (the top part) to a standalone
/// database over the complement vocabulary. Only meaningful when the
/// slice is split-closed — otherwise top rules mention slice atoms and
/// this panics on the out-of-vocabulary rename.
pub fn project_top(db: &Database, slice: &Slice) -> (Database, AtomMap) {
    debug_assert!(slice.split_closed, "top projection requires a split");
    let atoms: Vec<Atom> = (0..db.num_atoms() as u32)
        .map(Atom::new)
        .filter(|a| !slice.in_slice[a.index()])
        .collect();
    let in_slice = &slice.in_slice;
    let rules: Vec<usize> = (0..db.len()).filter(|i| !slice.rules.contains(i)).collect();
    debug_assert!(rules
        .iter()
        .all(|&i| db.rules()[i].atoms().all(|a| !in_slice[a.index()])));
    project_rules(db, &atoms, &rules)
}

fn project_rules(db: &Database, atoms: &[Atom], rules: &[usize]) -> (Database, AtomMap) {
    let mut symbols = Symbols::new();
    let mut to_sub: Vec<Option<Atom>> = vec![None; db.num_atoms()];
    for (k, &a) in atoms.iter().enumerate() {
        symbols.intern(db.symbols().name(a));
        to_sub[a.index()] = Some(Atom::new(k as u32));
    }
    let mut sub = Database::new(symbols);
    for &i in rules {
        let r = &db.rules()[i];
        let map = |xs: &[Atom]| -> Vec<Atom> {
            xs.iter()
                .map(|a| to_sub[a.index()].expect("projected rule atom in vocabulary"))
                .collect()
        };
        sub.add_rule(Rule::new(
            map(r.head()),
            map(r.body_pos()),
            map(r.body_neg()),
        ));
    }
    (
        sub,
        AtomMap {
            to_sub,
            from_sub: atoms.to_vec(),
        },
    )
}

/// The *supportable* atoms of `db`: the least set `S` containing every
/// atom of every head whose positive body lies inside `S` (negation is
/// ignored — optimistically assumed to succeed, and a disjunctive fact
/// optimistically supports all its head atoms). An atom outside `S` can
/// never be derived by any semantics; a rule whose positive body leaves
/// `S` can never fire (lint `DDB009`).
pub fn supportable_atoms(db: &Database) -> Vec<bool> {
    let n = db.num_atoms();
    let mut supportable = vec![false; n];
    loop {
        let mut changed = false;
        for r in db.rules() {
            if r.is_integrity() {
                continue;
            }
            if r.body_pos().iter().all(|&b| supportable[b.index()])
                && r.head().iter().any(|&h| !supportable[h.index()])
            {
                for &h in r.head() {
                    supportable[h.index()] = true;
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    supportable
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{display_rule, parse_program};

    fn atoms_named(db: &Database, slice: &Slice) -> Vec<String> {
        slice
            .atoms
            .iter()
            .map(|&a| db.symbols().name(a).to_owned())
            .collect()
    }

    #[test]
    fn closure_pulls_whole_rules_and_constraints() {
        // Query a: rule a|b pulls in b; constraint :- b, c pulls in c;
        // rule d :- c stays out (its head is irrelevant) and blocks the
        // split by reading c.
        let db = parse_program("a | b. :- b, c. d :- c. e.").unwrap();
        let q = [db.symbols().lookup("a").unwrap()];
        let s = relevant_slice(&db, &q);
        assert_eq!(atoms_named(&db, &s), ["a", "b", "c"]);
        assert_eq!(s.rules, vec![0, 1]);
        assert!(!s.split_closed);
        assert_eq!(s.blocking_rule, Some(2));
        assert!(!s.is_whole(&db));
    }

    #[test]
    fn disjoint_blocks_are_split_closed() {
        let db = parse_program("a | b. c :- a. x | y. z :- x.").unwrap();
        let q = [db.symbols().lookup("c").unwrap()];
        let s = relevant_slice(&db, &q);
        assert_eq!(atoms_named(&db, &s), ["a", "b", "c"]);
        assert!(s.split_closed);
        let (sub, map) = project_slice(&db, &s);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.num_atoms(), 3);
        assert_eq!(display_rule(&sub.rules()[0], sub.symbols()), "a | b.");
        assert_eq!(map.from_sub.len(), 3);
        let (top, _) = project_top(&db, &s);
        assert_eq!(top.len(), 2);
        assert_eq!(top.num_atoms(), db.num_atoms() - 3);
    }

    #[test]
    fn whole_database_slice_is_trivially_split_closed() {
        let db = parse_program("a | b. c :- a. c :- b.").unwrap();
        let q = [db.symbols().lookup("c").unwrap()];
        let s = relevant_slice(&db, &q);
        assert!(s.is_whole(&db));
        assert!(s.split_closed);
        assert_eq!(s.blocking_rule, None);
    }

    #[test]
    fn negative_bodies_are_relevant() {
        let db = parse_program("a :- not b. b :- c. d.").unwrap();
        let q = [db.symbols().lookup("a").unwrap()];
        let s = relevant_slice(&db, &q);
        assert_eq!(atoms_named(&db, &s), ["a", "b", "c"]);
        assert!(s.split_closed, "d. does not read the slice");
    }

    #[test]
    fn empty_query_yields_empty_slice() {
        let db = parse_program("a | b. :- a, b.").unwrap();
        let s = relevant_slice(&db, &[]);
        assert!(s.atoms.is_empty() && s.rules.is_empty());
        assert!(s.split_closed);
    }

    #[test]
    fn supportable_ignores_negation_and_trusts_disjunction() {
        let db = parse_program("a | b. c :- a, not z. d :- e.").unwrap();
        let s = supportable_atoms(&db);
        let name = |x: &str| db.symbols().lookup(x).unwrap().index();
        assert!(s[name("a")] && s[name("b")] && s[name("c")]);
        assert!(!s[name("d")] && !s[name("e")] && !s[name("z")]);
    }
}
