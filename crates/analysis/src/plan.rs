//! The static query planner: every routing decision the dispatcher can
//! take — Horn fixpoint, HCF shift, magic-sets restriction, relevance
//! slice, splitting-set peel, island decomposition, generic oracle
//! procedure — reified in one auditable structure *before* anything runs.
//!
//! The planner is deliberately split in two layers:
//!
//! * [`decide`] — the cheap **decision kernel**: given a database, its
//!   [`Fragments`], the semantics' [`SemanticsTraits`] and a [`PlanQuery`],
//!   pick the route the dispatcher must take and hand back the route's
//!   payload (the [`Slice`], [`Peel`] or island list) so execution never
//!   recomputes it. `ddb_core::dispatch` calls this on every query; its
//!   waterfall mirrors — and now *is* — the routing policy.
//! * [`build_plan`] — the full **plan tree** for `ddb explain`: recursing
//!   through the reductions exactly as execution would (slice → inner
//!   query, peel → residual, islands → per-island existence), annotating
//!   every node with the predicted complexity class and a sound upper
//!   bound on oracle calls ([`crate::cost::oracle_call_bound`]). Because
//!   both layers call the same decision kernel on the same inputs, the
//!   predicted route always matches the executed route.
//!
//! The semantics-specific knowledge lives in [`SemanticsTraits`], filled in
//! by `ddb_core` (this crate does not know the ten semantics by name):
//! which closures are minimal-model-determined, whether the peel may cross
//! negation, whether the HCF shift applies, and the paper's complexity
//! class for the (semantics, problem) cell.
//!
//! Plan-level lints (`DDB012`–`DDB018`, see [`plan_lints`]) report
//! query-dependent findings: unbound argument positions under goal-directed
//! evaluation, predicted exponential blowup, ineffective slices, plans
//! infeasible under a declared oracle-call budget, and the magic-rewrite
//! findings (inadmissible rewrite, no-op rewrite, namespace collision).

use crate::adorn::{split_predicate, Adornments};
use crate::cost::{display_bound, oracle_call_bound};
use crate::fragments::{classify, Fragments};
use crate::lints::Diagnostic;
use crate::magic::{magic_restrict, MagicRestriction, MAGIC_PREFIX};
use crate::schedule::islands;
use crate::slice::{project_slice, project_top, relevant_slice, Slice};
use crate::splitting::{peel_with, Peel};
use ddb_logic::depgraph::DepGraph;
use ddb_logic::parse::display_rule;
use ddb_logic::{Atom, Database};
use ddb_obs::json::Json;

/// Why a query may (or may not) be answered on its relevance slice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Admission {
    /// The database is positive (no negation, no integrity clauses):
    /// answering on the slice is exact for all ten semantics.
    PositiveExact,
    /// The slice is split-closed: the database is a disjoint union of the
    /// slice and the rest, and the answer is the product of the parts
    /// (with the empty-top correction for cautious inference).
    Product,
    /// Neither precondition holds; the generic whole-database procedure
    /// must run.
    Blocked,
}

impl Admission {
    /// Kebab-case label for display and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Admission::PositiveExact => "positive-exact",
            Admission::Product => "product",
            Admission::Blocked => "blocked",
        }
    }
}

/// Decides whether a query over `slice` may be answered on the slice
/// alone. `mm_determined` says whether the query's answer is determined by
/// the minimal-model set under the semantics at hand (always true for
/// literal queries; semantics-dependent for formulas — see
/// [`SemanticsTraits::mm_determined_formulas`]).
pub fn admission(frags: &Fragments, slice: &Slice, mm_determined: bool) -> Admission {
    if frags.positive && mm_determined {
        Admission::PositiveExact
    } else if slice.split_closed {
        Admission::Product
    } else {
        Admission::Blocked
    }
}

/// The routing-relevant facts about one semantics for one problem, filled
/// in by `ddb_core` so this crate stays semantics-agnostic.
#[derive(Clone, Debug)]
pub struct SemanticsTraits {
    /// Display name (`"DSM"`, `"ECWA (=CIRC)"`, …).
    pub name: &'static str,
    /// Whether formula inference is determined by the minimal-model set
    /// (false for GCWA/CCWA, whose characteristic sets keep non-minimal
    /// models).
    pub mm_determined_formulas: bool,
    /// `Some(peel_negation)` when the splitting-set peel is sound for this
    /// semantics, `None` when it is not (PERF/ICWA).
    pub peel_negation: Option<bool>,
    /// Whether the head-cycle-free shift applies (DSM only).
    pub hcf_shift: bool,
    /// Whether the Horn collapse applies (default partition/varying
    /// structure only).
    pub horn_collapse: bool,
    /// Whether the query-directed reductions (slice / split / islands) are
    /// on the table at all: auto routing, not an inner call, default
    /// structure.
    pub reductions: bool,
    /// Whether routing is forced to the generic procedure
    /// (`RoutingMode::Generic`).
    pub generic_only: bool,
    /// The paper's complexity class for this (semantics, problem) cell.
    pub class: &'static str,
}

/// The query shape being planned (atoms only — the planner needs the
/// query's atom set and literal-ness, not its connective structure).
#[derive(Clone, Debug)]
pub enum PlanQuery {
    /// Inference of a single literal over this atom.
    Literal(Atom),
    /// Inference of a formula mentioning these atoms.
    Formula(Vec<Atom>),
    /// Model existence.
    Existence,
    /// Model enumeration (the whole vocabulary is needed; query-directed
    /// reductions never apply).
    Enumeration,
}

impl PlanQuery {
    /// The query's atoms (empty for existence/enumeration and constant
    /// formulas).
    pub fn atoms(&self) -> &[Atom] {
        match self {
            PlanQuery::Literal(a) => std::slice::from_ref(a),
            PlanQuery::Formula(atoms) => atoms,
            PlanQuery::Existence | PlanQuery::Enumeration => &[],
        }
    }

    fn is_literal(&self) -> bool {
        matches!(self, PlanQuery::Literal(_))
    }

    fn is_inference(&self) -> bool {
        matches!(self, PlanQuery::Literal(_) | PlanQuery::Formula(_))
    }
}

/// The route a plan node takes. Labels match the `route.*` observability
/// counters exactly, so a predicted route can be checked against the
/// counter the execution actually bumped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteKind {
    /// Polynomial least-model fixpoint (Horn collapse).
    Horn,
    /// Head-cycle-free shift to a normal program (DSM).
    Hcf,
    /// Magic-sets demand restriction of a bound query; recurse on the
    /// projected restriction.
    Magic,
    /// Backward relevance slice; recurse on the projected sub-database.
    Slice,
    /// Splitting-set peel; recurse on the residual program.
    Split,
    /// Weakly-connected island decomposition (existence only).
    Islands,
    /// The generic oracle-backed procedure.
    Generic,
}

impl RouteKind {
    /// The label the matching `route.<label>` counter uses.
    pub fn label(self) -> &'static str {
        match self {
            RouteKind::Horn => "horn",
            RouteKind::Hcf => "hcf",
            RouteKind::Magic => "magic",
            RouteKind::Slice => "slice",
            RouteKind::Split => "split",
            RouteKind::Islands => "islands",
            RouteKind::Generic => "generic",
        }
    }
}

/// The payload a decided route carries so execution (and the plan tree)
/// never recomputes the analysis that justified it.
#[derive(Clone, Debug)]
pub enum PlanData {
    /// No payload (Horn / HCF / generic leaves).
    Leaf,
    /// The admitted magic-sets restriction of a bound query.
    Magic {
        /// The goal-directed demand restriction (kept rules + dead rules
        /// the demand closure skipped).
        restriction: MagicRestriction,
        /// Why answering on the restriction is sound.
        admission: Admission,
    },
    /// The admitted relevance slice.
    Slice {
        /// The backward slice of the query atoms.
        slice: Slice,
        /// Why answering on the slice is sound.
        admission: Admission,
    },
    /// The splitting-set peel.
    Peel {
        /// The peel: decided atoms plus the residual program.
        peel: Peel,
    },
    /// The island decomposition.
    Islands {
        /// One split-closed slice per weakly-connected island.
        parts: Vec<Slice>,
    },
}

/// Output of the decision kernel: the route plus its payload. The
/// `slice_blocked` flag records that a proper slice existed but its
/// admission failed — execution bumps `route.slice.blocked` for it; the
/// `magic_blocked` witness does the same for `route.magic.blocked` and
/// carries the rule that blocked the rewrite's admission (lint `DDB016`).
#[derive(Clone, Debug)]
pub struct Decision {
    /// The route to take.
    pub route: RouteKind,
    /// The route's payload.
    pub data: PlanData,
    /// A proper slice existed but was not admitted.
    pub slice_blocked: bool,
    /// A proper magic restriction existed but was not admitted; carries
    /// the blocking rule's index.
    pub magic_blocked: Option<usize>,
}

/// How much of the reduction waterfall a recursive plan position may use.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// Top-level entry and slice children: the full waterfall.
    Full,
    /// The residual of an existence peel: islands may still fire, but the
    /// peel is spent and slicing needs query atoms.
    IslandsOnly,
    /// Inner calls (`no_slice` configurations): Horn / HCF / generic only.
    Tail,
}

/// The decision kernel: picks the route the dispatcher must take for
/// (`db`, `q`) under semantics `t`, with the route's payload. This is the
/// single source of truth for routing — `ddb_core::dispatch` executes
/// whatever this returns, and [`build_plan`] predicts by calling the same
/// function.
pub fn decide(db: &Database, frags: &Fragments, t: &SemanticsTraits, q: &PlanQuery) -> Decision {
    decide_scoped(db, frags, t, q, Scope::Full)
}

fn leaf(route: RouteKind, slice_blocked: bool) -> Decision {
    Decision {
        route,
        data: PlanData::Leaf,
        slice_blocked,
        magic_blocked: None,
    }
}

fn decide_scoped(
    db: &Database,
    frags: &Fragments,
    t: &SemanticsTraits,
    q: &PlanQuery,
    scope: Scope,
) -> Decision {
    if t.generic_only {
        return leaf(RouteKind::Generic, false);
    }
    if scope == Scope::IslandsOnly {
        // The residual of an existence peel: the dispatcher tries the
        // island decomposition before handing the residual to the inner
        // (tail) call, even when the residual is Horn.
        let parts = islands(db);
        if parts.len() >= 2 {
            return Decision {
                route: RouteKind::Islands,
                data: PlanData::Islands { parts },
                slice_blocked: false,
                magic_blocked: None,
            };
        }
        return decide_scoped(db, frags, t, q, Scope::Tail);
    }
    if frags.horn && t.horn_collapse {
        return leaf(RouteKind::Horn, false);
    }
    let mut slice_blocked = false;
    let mut magic_blocked: Option<usize> = None;
    if t.reductions && scope == Scope::Full {
        if q.is_inference() && !q.atoms().is_empty() {
            let mm_determined = q.is_literal() || t.mm_determined_formulas;
            // Magic-sets restriction: only for bound queries — some query
            // atom must fix argument constants, otherwise the demand
            // closure is the plain relevance slice and the rewrite adds
            // nothing (propositional databases always skip this).
            let bound_query = q
                .atoms()
                .iter()
                .any(|&a| !split_predicate(db.symbols().name(a)).1.is_empty());
            if bound_query {
                // Dead-rule pruning is sound exactly for minimal-model
                // determined answers on positive databases (see
                // `crate::magic`); elsewhere the restriction falls back to
                // the relevance closure.
                let restriction = magic_restrict(db, q.atoms(), frags.positive && mm_determined);
                if !restriction.is_whole(db) {
                    let adm = admission(frags, &restriction.slice, mm_determined);
                    if adm == Admission::Blocked {
                        magic_blocked = restriction
                            .slice
                            .blocking_rule
                            .or_else(|| restriction.dropped_dead.first().copied());
                    } else {
                        return Decision {
                            route: RouteKind::Magic,
                            data: PlanData::Magic {
                                restriction,
                                admission: adm,
                            },
                            slice_blocked: false,
                            magic_blocked: None,
                        };
                    }
                }
            }
            let slice = relevant_slice(db, q.atoms());
            if !slice.is_whole(db) {
                let adm = admission(frags, &slice, mm_determined);
                if adm == Admission::Blocked {
                    slice_blocked = true;
                } else {
                    return Decision {
                        route: RouteKind::Slice,
                        data: PlanData::Slice {
                            slice,
                            admission: adm,
                        },
                        slice_blocked: false,
                        magic_blocked,
                    };
                }
            }
        }
        if !matches!(q, PlanQuery::Enumeration) {
            if let Some(peel_negation) = t.peel_negation {
                let graph = DepGraph::of_database(db);
                let peel = peel_with(db, &graph, peel_negation);
                if peel.num_decided > 0 {
                    return Decision {
                        route: RouteKind::Split,
                        data: PlanData::Peel { peel },
                        slice_blocked,
                        magic_blocked,
                    };
                }
            }
        }
        if matches!(q, PlanQuery::Existence) {
            let parts = islands(db);
            if parts.len() >= 2 {
                return Decision {
                    route: RouteKind::Islands,
                    data: PlanData::Islands { parts },
                    slice_blocked,
                    magic_blocked,
                };
            }
        }
    }
    if t.hcf_shift && frags.head_cycle_free {
        let mut d = leaf(RouteKind::Hcf, slice_blocked);
        d.magic_blocked = magic_blocked;
        return d;
    }
    let mut d = leaf(RouteKind::Generic, slice_blocked);
    d.magic_blocked = magic_blocked;
    d
}

/// One node of the plan tree `ddb explain` prints: the decided route, the
/// sub-database's size, the predicted complexity class, a sound upper
/// bound on oracle calls for the whole subtree, and the child plans the
/// route delegates to.
#[derive(Clone, Debug)]
pub struct PlanNode {
    /// The route this node takes.
    pub route: RouteKind,
    /// Atoms in this node's (sub-)database.
    pub atoms: usize,
    /// Rules in this node's (sub-)database.
    pub rules: usize,
    /// Predicted complexity class (`"P"` on the polynomial fast paths,
    /// the paper's cell class otherwise).
    pub class: &'static str,
    /// Upper bound on NP-oracle calls for this subtree (saturating).
    pub oracle_bound: u64,
    /// Human-readable justification of the decision.
    pub detail: String,
    /// Child plans (magic/slice sub-query and product correction, peel
    /// residual, per-island existence checks).
    pub children: Vec<PlanNode>,
    /// The route's payload (what execution would consume).
    pub data: PlanData,
    /// A proper magic restriction existed at this node but was not
    /// admitted (the blocking rule's index — lint `DDB016`).
    pub magic_blocked: Option<usize>,
}

impl PlanNode {
    /// Renders the subtree as an indented text block (two spaces per
    /// level), deterministic for snapshot diffing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "{} [{} atoms, {} rules] class {}, <= {} oracle calls — {}\n",
            self.route.label(),
            self.atoms,
            self.rules,
            self.class,
            display_bound(self.oracle_bound),
            self.detail
        ));
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }

    /// JSON rendering for `ddb explain --json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("route", Json::Str(self.route.label().to_owned())),
            ("atoms", Json::UInt(self.atoms as u64)),
            ("rules", Json::UInt(self.rules as u64)),
            ("class", Json::Str(self.class.to_owned())),
            ("oracle_bound", Json::UInt(self.oracle_bound)),
            ("detail", Json::Str(self.detail.clone())),
            (
                "children",
                Json::Arr(self.children.iter().map(PlanNode::to_json).collect()),
            ),
        ])
    }
}

/// Builds the full plan tree for (`db`, `q`) under semantics `t`,
/// recursing through the reductions exactly as execution would. The root
/// route equals what [`decide`] returns on the same inputs (it *is* that
/// decision), so `ddb explain`'s prediction matches dispatch by
/// construction.
pub fn build_plan(
    db: &Database,
    frags: &Fragments,
    t: &SemanticsTraits,
    q: &PlanQuery,
) -> PlanNode {
    build(db, frags, t, q, Scope::Full)
}

fn plan_leaf(route: RouteKind, db: &Database, t: &SemanticsTraits, detail: String) -> PlanNode {
    let (class, bound) = match route {
        RouteKind::Horn => ("P", 0),
        _ => (t.class, oracle_call_bound(db.num_atoms(), db.len())),
    };
    PlanNode {
        route,
        atoms: db.num_atoms(),
        rules: db.len(),
        class,
        oracle_bound: bound,
        detail,
        children: Vec::new(),
        data: PlanData::Leaf,
        magic_blocked: None,
    }
}

fn build(
    db: &Database,
    frags: &Fragments,
    t: &SemanticsTraits,
    q: &PlanQuery,
    scope: Scope,
) -> PlanNode {
    let d = decide_scoped(db, frags, t, q, scope);
    let magic_blocked = d.magic_blocked;
    let mut node = match d.data {
        PlanData::Leaf => match d.route {
            RouteKind::Horn => plan_leaf(
                RouteKind::Horn,
                db,
                t,
                "Horn collapse: polynomial least-model fixpoint".into(),
            ),
            RouteKind::Hcf => plan_leaf(
                RouteKind::Hcf,
                db,
                t,
                "head-cycle-free: shift to a normal program, polynomial stability checks".into(),
            ),
            _ => {
                let detail = if d.slice_blocked {
                    "generic oracle procedure (a proper slice exists but its admission is blocked)"
                        .to_owned()
                } else {
                    "generic oracle procedure on the whole database".to_owned()
                };
                plan_leaf(RouteKind::Generic, db, t, detail)
            }
        },
        PlanData::Magic {
            restriction,
            admission,
        } => {
            let (sub, map) = project_slice(db, &restriction.slice);
            let sub_frags = classify(&sub);
            let sub_q = match q {
                PlanQuery::Literal(a) => PlanQuery::Literal(
                    map.to_sub[a.index()].expect("query atom is in its restriction"),
                ),
                PlanQuery::Formula(atoms) => PlanQuery::Formula(
                    atoms
                        .iter()
                        .map(|a| map.to_sub[a.index()].expect("query atom is in its restriction"))
                        .collect(),
                ),
                _ => unreachable!("magic route requires an inference query"),
            };
            let mut children = vec![build(&sub, &sub_frags, t, &sub_q, Scope::Full)];
            if admission == Admission::Product {
                let (top, _) = project_top(db, &restriction.slice);
                let top_frags = classify(&top);
                children.push(build(
                    &top,
                    &top_frags,
                    t,
                    &PlanQuery::Existence,
                    Scope::Tail,
                ));
            }
            let detail = format!(
                "magic rewrite restricts to {}/{} atoms, {}/{} rules, {} dead rule(s) skipped (admission: {})",
                restriction.slice.atoms.len(),
                db.num_atoms(),
                restriction.slice.rules.len(),
                db.len(),
                restriction.dropped_dead.len(),
                admission.label()
            );
            PlanNode {
                route: RouteKind::Magic,
                atoms: db.num_atoms(),
                rules: db.len(),
                class: t.class,
                oracle_bound: sum_bounds(&children),
                detail,
                children,
                data: PlanData::Magic {
                    restriction,
                    admission,
                },
                magic_blocked: None,
            }
        }
        PlanData::Slice { slice, admission } => {
            let (sub, map) = project_slice(db, &slice);
            let sub_frags = classify(&sub);
            let sub_q = match q {
                PlanQuery::Literal(a) => {
                    PlanQuery::Literal(map.to_sub[a.index()].expect("query atom is in its slice"))
                }
                PlanQuery::Formula(atoms) => PlanQuery::Formula(
                    atoms
                        .iter()
                        .map(|a| map.to_sub[a.index()].expect("query atom is in its slice"))
                        .collect(),
                ),
                _ => unreachable!("slice route requires an inference query"),
            };
            let mut children = vec![build(&sub, &sub_frags, t, &sub_q, Scope::Full)];
            if admission == Admission::Product {
                // A cautious `false` on the slice owes one model-existence
                // check on the independent top part.
                let (top, _) = project_top(db, &slice);
                let top_frags = classify(&top);
                children.push(build(
                    &top,
                    &top_frags,
                    t,
                    &PlanQuery::Existence,
                    Scope::Tail,
                ));
            }
            let detail = format!(
                "backward slice keeps {}/{} atoms, {}/{} rules (admission: {})",
                slice.atoms.len(),
                db.num_atoms(),
                slice.rules.len(),
                db.len(),
                admission.label()
            );
            PlanNode {
                route: RouteKind::Slice,
                atoms: db.num_atoms(),
                rules: db.len(),
                class: t.class,
                oracle_bound: sum_bounds(&children),
                detail,
                children,
                data: PlanData::Slice { slice, admission },
                magic_blocked: None,
            }
        }
        PlanData::Peel { peel } => {
            let res_frags = classify(&peel.residual);
            let (child_q, child_scope) = match q {
                PlanQuery::Literal(a) => match peel.decided[a.index()] {
                    None => (PlanQuery::Literal(*a), Scope::Tail),
                    // A decided query atom degenerates to a constant
                    // formula over the residual.
                    Some(_) => (PlanQuery::Formula(Vec::new()), Scope::Tail),
                },
                PlanQuery::Formula(atoms) => (
                    PlanQuery::Formula(
                        atoms
                            .iter()
                            .copied()
                            .filter(|a| peel.decided[a.index()].is_none())
                            .collect(),
                    ),
                    Scope::Tail,
                ),
                PlanQuery::Existence => (PlanQuery::Existence, Scope::IslandsOnly),
                PlanQuery::Enumeration => unreachable!("peel route never serves enumeration"),
            };
            let children = vec![build(&peel.residual, &res_frags, t, &child_q, child_scope)];
            let detail = format!(
                "splitting-set peel decides {} atom(s) in {} bottom component(s); recurse on the residual",
                peel.num_decided, peel.components_decided
            );
            PlanNode {
                route: RouteKind::Split,
                atoms: db.num_atoms(),
                rules: db.len(),
                class: t.class,
                oracle_bound: sum_bounds(&children),
                detail,
                children,
                data: PlanData::Peel { peel },
                magic_blocked: None,
            }
        }
        PlanData::Islands { parts } => {
            let children: Vec<PlanNode> = parts
                .iter()
                .map(|island| {
                    let (sub, _) = project_slice(db, island);
                    let sub_frags = classify(&sub);
                    build(&sub, &sub_frags, t, &PlanQuery::Existence, Scope::Tail)
                })
                .collect();
            let detail = format!(
                "{} weakly-connected islands; model existence is their conjunction",
                parts.len()
            );
            PlanNode {
                route: RouteKind::Islands,
                atoms: db.num_atoms(),
                rules: db.len(),
                class: t.class,
                oracle_bound: sum_bounds(&children),
                detail,
                children,
                data: PlanData::Islands { parts },
                magic_blocked: None,
            }
        }
    };
    node.magic_blocked = magic_blocked;
    node
}

fn sum_bounds(children: &[PlanNode]) -> u64 {
    children
        .iter()
        .fold(0u64, |acc, c| acc.saturating_add(c.oracle_bound))
}

/// Root oracle bound above which the planner warns about exponential
/// blowup (`DDB013`).
pub const EXPONENTIAL_LINT_THRESHOLD: u64 = 1 << 20;

/// The query-dependent plan lints `DDB012`–`DDB018` for one `ddb explain`
/// run over a set of per-semantics plans (`plans` pairs a display name
/// with each semantics' root node). Sorted by code, matching the
/// deterministic lint order of `ddb check`.
pub fn plan_lints(
    db: &Database,
    query_atoms: &[Atom],
    plans: &[(&str, &PlanNode)],
    adornments: &Adornments,
    oracle_budget: Option<u64>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for p in adornments.unbound() {
        out.push(Diagnostic::unbound_adornment(&p.display()));
    }
    // DDB016 — first semantics whose magic rewrite was blocked, with the
    // rule that witnesses the inadmissible boundary.
    if let Some((name, i)) = plans
        .iter()
        .find_map(|(name, p)| p.magic_blocked.map(|i| (name, i)))
    {
        out.push(Diagnostic::magic_inadmissible(
            name,
            i,
            &display_rule(&db.rules()[i], db.symbols()),
        ));
    }
    // DDB017 — a first-order (ground-atom) database queried without any
    // bound argument constants: the magic rewrite would demand everything.
    let first_order = db
        .symbols()
        .atoms()
        .any(|a| !split_predicate(db.symbols().name(a)).1.is_empty());
    if first_order && !query_atoms.is_empty() && adornments.bound_constants.is_empty() {
        out.push(Diagnostic::magic_noop());
    }
    // DDB018 — input atoms already inside the reserved magic namespace.
    for a in db.symbols().atoms() {
        let n = db.symbols().name(a);
        if n.starts_with(MAGIC_PREFIX) {
            out.push(Diagnostic::magic_collision(n));
        }
    }
    if let Some((name, plan)) = plans
        .iter()
        .find(|(_, p)| p.oracle_bound > EXPONENTIAL_LINT_THRESHOLD)
    {
        out.push(Diagnostic::exponential_plan(
            name,
            plan.oracle_bound,
            plan.atoms,
        ));
    }
    if ineffective_slice(db, query_atoms) {
        out.push(Diagnostic::ineffective_slice());
    }
    if let Some(budget) = oracle_budget {
        if let Some((name, plan)) = plans.iter().find(|(_, p)| p.oracle_bound > budget) {
            out.push(Diagnostic::infeasible_plan(name, plan.oracle_bound, budget));
        }
    }
    out.sort_by(|a, b| a.code.cmp(b.code).then(a.rule.cmp(&b.rule)));
    out
}

/// `DDB014` helper: whether the query's backward slice is the whole
/// program (slicing cannot reduce this query). Exposed separately from
/// [`plan_lints`] because it needs the raw query atoms, not the plans.
pub fn ineffective_slice(db: &Database, query_atoms: &[Atom]) -> bool {
    !query_atoms.is_empty() && db.len() > 1 && relevant_slice(db, query_atoms).is_whole(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::parse_program;
    use ddb_logic::Rule;

    /// Ground first-order-style databases (parenthesized atom names) come
    /// from the datalog grounder; tests intern them directly.
    fn ground_db(rules: &[(&[&str], &[&str], &[&str])]) -> Database {
        let mut db = Database::with_fresh_atoms(0);
        for (head, pos, neg) in rules {
            let h: Vec<Atom> = head.iter().map(|n| db.symbols_mut().intern(n)).collect();
            let p: Vec<Atom> = pos.iter().map(|n| db.symbols_mut().intern(n)).collect();
            let ng: Vec<Atom> = neg.iter().map(|n| db.symbols_mut().intern(n)).collect();
            db.add_rule(Rule::new(h, p, ng));
        }
        db
    }

    fn ground_atom(db: &Database, name: &str) -> Atom {
        db.symbols()
            .atoms()
            .find(|&a| db.symbols().name(a) == name)
            .expect("atom exists")
    }

    fn traits(class: &'static str) -> SemanticsTraits {
        SemanticsTraits {
            name: "TEST",
            mm_determined_formulas: true,
            peel_negation: Some(true),
            hcf_shift: false,
            horn_collapse: true,
            reductions: true,
            generic_only: false,
            class,
        }
    }

    #[test]
    fn horn_db_plans_horn_with_zero_bound() {
        let db = parse_program("a. b :- a.").unwrap();
        let frags = classify(&db);
        let t = traits("Πᵖ₂-complete");
        let plan = build_plan(&db, &frags, &t, &PlanQuery::Existence);
        assert_eq!(plan.route, RouteKind::Horn);
        assert_eq!(plan.oracle_bound, 0);
        assert_eq!(plan.class, "P");
        assert!(plan.children.is_empty());
    }

    #[test]
    fn slice_plan_recurses_and_sums_bounds() {
        let db = parse_program("a | b. c :- a. c :- b. x | y. z :- x.").unwrap();
        let frags = classify(&db);
        let t = traits("Πᵖ₂-complete");
        let c = db
            .symbols()
            .atoms()
            .find(|&a| db.symbols().name(a) == "c")
            .unwrap();
        let plan = build_plan(&db, &frags, &t, &PlanQuery::Formula(vec![c]));
        assert_eq!(plan.route, RouteKind::Slice);
        assert_eq!(plan.children.len(), 1, "positive-exact: no top child");
        assert_eq!(plan.oracle_bound, plan.children[0].oracle_bound);
        assert!(plan.detail.contains("positive-exact"));
        let PlanData::Slice { slice, admission } = &plan.data else {
            panic!("slice payload expected");
        };
        assert_eq!(*admission, Admission::PositiveExact);
        assert_eq!(slice.rules.len(), 3);
    }

    #[test]
    fn blocked_slice_is_flagged_and_falls_through() {
        let db = parse_program("a | b. c :- a. d :- not c. e.").unwrap();
        let frags = classify(&db);
        let mut t = traits("Πᵖ₂-complete");
        t.peel_negation = Some(true);
        let c = db
            .symbols()
            .atoms()
            .find(|&a| db.symbols().name(a) == "c")
            .unwrap();
        let d = decide(&db, &frags, &t, &PlanQuery::Formula(vec![c]));
        // `e.` peels away, so the fallthrough is the split route — with
        // the blocked slice remembered for the counter.
        assert_eq!(d.route, RouteKind::Split);
        assert!(d.slice_blocked);
    }

    #[test]
    fn existence_peel_then_islands_on_residual() {
        // The fact layer peels; the residual has two disjunctive islands.
        let db = parse_program("f. a | b :- f. x | y.").unwrap();
        let frags = classify(&db);
        let t = traits("Σᵖ₂-complete");
        let plan = build_plan(&db, &frags, &t, &PlanQuery::Existence);
        assert_eq!(plan.route, RouteKind::Split);
        assert_eq!(plan.children.len(), 1);
        let residual_plan = &plan.children[0];
        assert_eq!(residual_plan.route, RouteKind::Islands);
        assert_eq!(residual_plan.children.len(), 2);
        for island in &residual_plan.children {
            assert_eq!(island.route, RouteKind::Generic);
        }
    }

    #[test]
    fn islands_without_peel() {
        let mut t = traits("NP-complete");
        t.peel_negation = None;
        let db = parse_program("a | b. x | y.").unwrap();
        let frags = classify(&db);
        let plan = build_plan(&db, &frags, &t, &PlanQuery::Existence);
        assert_eq!(plan.route, RouteKind::Islands);
        assert_eq!(plan.children.len(), 2);
        assert_eq!(
            plan.oracle_bound,
            plan.children.iter().map(|c| c.oracle_bound).sum::<u64>()
        );
    }

    #[test]
    fn enumeration_never_slices_or_peels() {
        let db = parse_program("f. a | b :- f. x | y.").unwrap();
        let frags = classify(&db);
        let t = traits("Σᵖ₂-complete");
        let d = decide(&db, &frags, &t, &PlanQuery::Enumeration);
        assert_eq!(d.route, RouteKind::Generic);
    }

    #[test]
    fn generic_only_short_circuits() {
        let db = parse_program("a | b. x | y.").unwrap();
        let frags = classify(&db);
        let mut t = traits("NP-complete");
        t.generic_only = true;
        let d = decide(&db, &frags, &t, &PlanQuery::Existence);
        assert_eq!(d.route, RouteKind::Generic);
        assert!(!d.slice_blocked);
    }

    #[test]
    fn product_admission_adds_top_existence_child() {
        // Not positive (an integrity clause), but the slice for q is
        // split-closed: the plan owes the empty-top correction child.
        let db = parse_program("a | b. q :- a. q :- b. t. :- t.").unwrap();
        let frags = classify(&db);
        let mut t = traits("Πᵖ₂-complete");
        t.peel_negation = Some(false);
        let q = db
            .symbols()
            .atoms()
            .find(|&a| db.symbols().name(a) == "q")
            .unwrap();
        let plan = build_plan(&db, &frags, &t, &PlanQuery::Formula(vec![q]));
        assert_eq!(plan.route, RouteKind::Slice);
        let PlanData::Slice { admission, .. } = &plan.data else {
            panic!("slice payload expected");
        };
        assert_eq!(*admission, Admission::Product);
        assert_eq!(plan.children.len(), 2, "sub-query + top existence check");
    }

    #[test]
    fn render_and_json_are_deterministic() {
        let db = parse_program("a | b. c :- a. c :- b. x | y.").unwrap();
        let frags = classify(&db);
        let t = traits("Πᵖ₂-complete");
        let c = db
            .symbols()
            .atoms()
            .find(|&a| db.symbols().name(a) == "c")
            .unwrap();
        let p1 = build_plan(&db, &frags, &t, &PlanQuery::Formula(vec![c]));
        let p2 = build_plan(&db, &frags, &t, &PlanQuery::Formula(vec![c]));
        assert_eq!(p1.render(), p2.render());
        assert_eq!(p1.to_json().render(), p2.to_json().render());
        let parsed = ddb_obs::json::parse(&p1.to_json().render()).unwrap();
        assert_eq!(parsed.get("route").unwrap().as_str(), Some("slice"));
    }

    #[test]
    fn bound_query_on_a_positive_db_routes_magic() {
        // A bound literal on a positive disjunctive database: the demand
        // closure drops the unrelated island and the dead rule.
        let db = ground_db(&[
            (&["e(a,b)"], &[], &[]),
            (&["r(b)"], &["r(a)", "e(a,b)"], &[]),
            (&["r(a)"], &[], &[]),
            (&["r(b)"], &["ghost(x)"], &[]),
            (&["s(a)", "s(b)"], &[], &[]),
        ]);
        let frags = classify(&db);
        let t = traits("Πᵖ₂-complete");
        let q = PlanQuery::Literal(ground_atom(&db, "r(b)"));
        let d = decide(&db, &frags, &t, &q);
        assert_eq!(d.route, RouteKind::Magic);
        assert_eq!(d.magic_blocked, None);
        let PlanData::Magic {
            restriction,
            admission,
        } = &d.data
        else {
            panic!("magic payload expected");
        };
        assert_eq!(*admission, Admission::PositiveExact);
        assert_eq!(restriction.slice.rules, vec![0, 1, 2]);
        assert_eq!(restriction.dropped_dead, vec![3]);
        // The plan tree mirrors the decision and sums its children.
        let plan = build_plan(&db, &frags, &t, &q);
        assert_eq!(plan.route, RouteKind::Magic);
        assert!(
            plan.detail.contains("1 dead rule(s) skipped"),
            "{}",
            plan.detail
        );
        assert_eq!(plan.oracle_bound, sum_bounds(&plan.children));
        assert_eq!(plan.children.len(), 1, "positive-exact: no top child");
    }

    #[test]
    fn propositional_queries_never_route_magic() {
        let db = parse_program("a | b. c :- a. c :- b. x | y.").unwrap();
        let frags = classify(&db);
        let t = traits("Πᵖ₂-complete");
        let c = db
            .symbols()
            .atoms()
            .find(|&a| db.symbols().name(a) == "c")
            .unwrap();
        let d = decide(&db, &frags, &t, &PlanQuery::Formula(vec![c]));
        assert_eq!(d.route, RouteKind::Slice, "propositional stays on slice");
        assert_eq!(d.magic_blocked, None);
    }

    #[test]
    fn blocked_magic_restriction_carries_its_witness() {
        // Negation kills positive-exact; the non-restriction rule reading
        // `p(a)` kills the split — magic and slice both block.
        let db = ground_db(&[
            (&["p(a)", "p(b)"], &[], &[]),
            (&["q(a)"], &["p(a)"], &[]),
            (&["t(z)"], &["p(a)"], &[]),
            (&["u(z)"], &[], &["q(a)"]),
        ]);
        let frags = classify(&db);
        let mut t = traits("Πᵖ₂-complete");
        t.peel_negation = None;
        let q = PlanQuery::Literal(ground_atom(&db, "q(a)"));
        let d = decide(&db, &frags, &t, &q);
        assert_eq!(d.route, RouteKind::Generic);
        assert!(d.slice_blocked);
        assert_eq!(d.magic_blocked, Some(2));
        let plan = build_plan(&db, &frags, &t, &q);
        assert_eq!(plan.magic_blocked, Some(2));
        // DDB016 names the blocking rule; no collision, no no-op.
        let ad = crate::adorn::adorn(&db, q.atoms());
        let lints = plan_lints(&db, q.atoms(), &[("TEST", &plan)], &ad, None);
        let d16 = lints.iter().find(|d| d.code == "DDB016").expect("DDB016");
        assert_eq!(d16.rule, Some(2));
        assert!(lints.iter().all(|d| d.code != "DDB017"));
        assert!(lints.iter().all(|d| d.code != "DDB018"));
    }

    #[test]
    fn unbound_first_order_query_lints_magic_noop() {
        // `p(a)`/`p(b)` make the database first-order, but the query atom
        // `flag` binds no constants: DDB017.
        let db = ground_db(&[
            (&["p(a)"], &[], &[]),
            (&["p(b)"], &[], &[]),
            (&["flag"], &["p(a)", "p(b)"], &[]),
        ]);
        let frags = classify(&db);
        let t = traits("Πᵖ₂-complete");
        let q = PlanQuery::Literal(ground_atom(&db, "flag"));
        let plan = build_plan(&db, &frags, &t, &q);
        let ad = crate::adorn::adorn(&db, q.atoms());
        let lints = plan_lints(&db, q.atoms(), &[("TEST", &plan)], &ad, None);
        assert!(lints.iter().any(|d| d.code == "DDB017"), "{lints:?}");
    }

    #[test]
    fn magic_namespace_collision_lints_ddb018() {
        let db = ground_db(&[
            (&["magic__p(a)"], &[], &[]),
            (&["q(a)"], &["magic__p(a)"], &[]),
        ]);
        let frags = classify(&db);
        let t = traits("Πᵖ₂-complete");
        let q = PlanQuery::Literal(ground_atom(&db, "q(a)"));
        let plan = build_plan(&db, &frags, &t, &q);
        let ad = crate::adorn::adorn(&db, q.atoms());
        let lints = plan_lints(&db, q.atoms(), &[("TEST", &plan)], &ad, None);
        let d18 = lints.iter().find(|d| d.code == "DDB018").expect("DDB018");
        assert!(d18.message.contains("magic__p(a)"));
    }

    #[test]
    fn plan_lints_fire_and_sort_by_code() {
        let db = parse_program("a | b. c :- a. c :- b.").unwrap();
        let frags = classify(&db);
        let mut t = traits("Πᵖ₂-complete");
        t.reductions = false;
        let c = db
            .symbols()
            .atoms()
            .find(|&a| db.symbols().name(a) == "c")
            .unwrap();
        let plan = build_plan(&db, &frags, &t, &PlanQuery::Formula(vec![c]));
        let ad = crate::adorn::adorn(&db, &[c]);
        let lints = plan_lints(&db, &[c], &[("TEST", &plan)], &ad, Some(1));
        // Bound exceeds the budget of 1 → DDB015; the whole-program slice
        // → DDB014; small db → no DDB013.
        assert!(lints.iter().any(|d| d.code == "DDB014"));
        assert!(lints.iter().any(|d| d.code == "DDB015"));
        let codes: Vec<_> = lints.iter().map(|d| d.code).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        assert_eq!(codes, sorted);
        assert!(ineffective_slice(&db, &[c]), "whole-program slice");
    }
}
