//! Sideways-information-passing (SIP) strategy selection.
//!
//! A SIP strategy orders the positive body atoms of a rule so that each
//! atom is evaluated with as many of its arguments already bound as
//! possible: first by the bindings the rule head receives from the magic
//! guard, then by the constants earlier body atoms contribute. On the
//! ground databases this workspace analyzes every argument is a constant,
//! so "bound" means *bound to a constant the demand set already knows* —
//! the same meet the adornment analysis ([`crate::adorn()`]) computes, here
//! applied greedily per rule.
//!
//! [`choose_sip`] implements the classic greedy heuristic: repeatedly
//! pick the not-yet-placed body atom with the largest number of bound
//! arguments (ties broken by original body position, keeping the output
//! deterministic), then add its constants to the bound set. The magic
//! rewrite ([`crate::magic::rewrite`]) emits one demand rule per body
//! atom using the prefix of this order as the demand context.

use std::collections::BTreeSet;

/// Greedily orders body atoms by how many of their arguments are bound.
///
/// `bound` is the initial bound-constant set (the head's constants under
/// the magic guard); `body_args` holds, per positive body atom, its
/// argument constants as recovered by
/// [`split_predicate`](crate::adorn::split_predicate). Returns the
/// indices of `body_args` in evaluation order. After an atom is placed
/// its constants join the bound set, so later choices see the sideways
/// information it passes on.
pub fn choose_sip(bound: &BTreeSet<String>, body_args: &[Vec<String>]) -> Vec<usize> {
    let mut bound: BTreeSet<&str> = bound.iter().map(String::as_str).collect();
    let mut order = Vec::with_capacity(body_args.len());
    let mut placed = vec![false; body_args.len()];
    for _ in 0..body_args.len() {
        let mut best: Option<(usize, usize)> = None; // (bound-arg count, index)
        for (i, args) in body_args.iter().enumerate() {
            if placed[i] {
                continue;
            }
            let score = args.iter().filter(|a| bound.contains(a.as_str())).count();
            // Strict `>` keeps the earliest index on ties.
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, i));
            }
        }
        let (_, i) = best.expect("an unplaced atom remains");
        placed[i] = true;
        order.push(i);
        bound.extend(body_args[i].iter().map(String::as_str));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(xs: &[&[&str]]) -> Vec<Vec<String>> {
        xs.iter()
            .map(|a| a.iter().map(|s| (*s).to_owned()).collect())
            .collect()
    }

    fn bound(xs: &[&str]) -> BTreeSet<String> {
        xs.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn most_bound_atom_goes_first() {
        // With `a` bound, [a,b] beats [c] even though [c] comes first.
        let order = choose_sip(&bound(&["a"]), &args(&[&["c"], &["a", "b"]]));
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn sideways_information_propagates() {
        // [a,b] and [a] both have one bound argument; the earlier body
        // position wins, so [a,b] goes first and contributes `b`. That
        // lets [b] outscore [x], then [a], with [x] last.
        let order = choose_sip(
            &bound(&["a"]),
            &args(&[&["x"], &["b"], &["a", "b"], &["a"]]),
        );
        assert_eq!(order, vec![2, 1, 3, 0]);
    }

    #[test]
    fn ties_keep_body_order() {
        let order = choose_sip(&bound(&[]), &args(&[&["p"], &["q"], &["r"]]));
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn empty_body_is_fine() {
        assert!(choose_sip(&bound(&["a"]), &[]).is_empty());
    }
}
