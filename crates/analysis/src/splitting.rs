//! Bottom-up splitting evaluation over the SCC condensation.
//!
//! The dependency graph's strongly connected components form a DAG whose
//! topological levels are *splitting sets* (Lifschitz & Turner): every
//! rule's body lies at or below the level of its head, so the union of
//! the first `k` levels is closed under the rules that define it. When
//! those bottom levels are deterministic — each rule has at most one head
//! atom and negation only reaches strictly lower (already decided)
//! levels — the bottom program has a unique canonical model computable by
//! the polynomial least-fixpoint, identical for every semantics that
//! evaluates stratified prefixes bottom-up. [`peel`] solves those levels,
//! **partially evaluates** their consequences into the remaining rules,
//! and returns the smaller residual program: oracle CNFs built from the
//! residual shrink from `|DB|` to the undecided part.
//!
//! Peeling a level with negation is only exact for semantics whose
//! negation is evaluated stratum-wise (PERF, ICWA, DSM, PDSM — the
//! splitting-set theorem and the perfect-model construction); the
//! classical-CWA family (GCWA/EGCWA/CCWA/ECWA) reads `not` classically,
//! so for it callers must restrict peeling to negation-free levels
//! ([`peel_with`]'s `peel_negation` flag). Integrity clauses are checked
//! the moment all their atoms are decided; a violated one marks the whole
//! database inconsistent ([`Peel::inconsistent`]), rendered as the empty
//! clause in the residual so that every downstream procedure sees the
//! empty model set it would have seen on the full database.

use ddb_logic::depgraph::DepGraph;
use ddb_logic::{Atom, Database, Rule};

/// Topological levels of the SCC condensation (all edge kinds, so a
/// disjunctive head never straddles a level boundary).
#[derive(Clone, Debug)]
pub struct Layering {
    /// `level[atom.index()]` — the condensation level of each atom.
    pub level: Vec<usize>,
    /// Number of levels (0 for an empty vocabulary).
    pub num_levels: usize,
    /// `rule_level[i]` — the level of rule `i`: the level of its head
    /// atoms (which share an SCC), or for an integrity clause the maximum
    /// level of its atoms (the earliest point it is fully decided).
    pub rule_level: Vec<usize>,
}

/// Computes the condensation levels of `db` under `graph`: longest path
/// over the component DAG counting every edge, so a body atom sits
/// strictly below its head unless they share a component.
pub fn layering(db: &Database, graph: &DepGraph) -> Layering {
    let n = db.num_atoms();
    let sccs = graph.sccs();
    let mut comp_level = vec![0usize; sccs.num_components];
    // Component ids are topologically ordered, so one forward pass
    // relaxes the longest-path lengths correctly.
    for v in 0..n {
        for (w, _) in graph.edges_from(Atom::new(v as u32)) {
            let (cv, cw) = (sccs.comp[v], sccs.comp[w.index()]);
            if cv != cw && comp_level[cw] < comp_level[cv] + 1 {
                comp_level[cw] = comp_level[cv] + 1;
            }
        }
    }
    let level: Vec<usize> = (0..n).map(|v| comp_level[sccs.comp[v]]).collect();
    let num_levels = level.iter().map(|&l| l + 1).max().unwrap_or(0);
    let rule_level = db
        .rules()
        .iter()
        .map(|r| {
            if let Some(&h) = r.head().first() {
                level[h.index()]
            } else {
                r.atoms().map(|a| level[a.index()]).max().unwrap_or(0)
            }
        })
        .collect();
    Layering {
        level,
        num_levels,
        rule_level,
    }
}

/// The outcome of bottom-up peeling: the decided splitting set and the
/// partially evaluated residual program.
#[derive(Clone, Debug)]
pub struct Peel {
    /// `decided[atom.index()]` — `Some(value)` for atoms in the peeled
    /// components, `None` for atoms the residual still quantifies over.
    pub decided: Vec<Option<bool>>,
    /// The remaining rules over the **same vocabulary**, with decided
    /// atoms evaluated away. When `inconsistent`, this is the single
    /// empty clause (no models, for every semantics).
    pub residual: Database,
    /// How many condensation components were decided.
    pub components_decided: usize,
    /// Total number of condensation components.
    pub num_components: usize,
    /// Number of atoms decided.
    pub num_decided: usize,
    /// Whether a fully decided integrity clause was violated: the
    /// database has no models under any semantics.
    pub inconsistent: bool,
}

/// [`peel_with`] with negation peeling enabled — exact for the
/// stratum-evaluating semantics (PERF, ICWA, DSM, PDSM).
pub fn peel(db: &Database, graph: &DepGraph) -> Peel {
    peel_with(db, graph, true)
}

/// Solves the deterministic bottom components of `db`'s condensation in
/// topological order and partially evaluates the rest. A component is
/// decidable when every component it depends on is decided and every rule
/// defining it has exactly one head atom and an already-decided negative
/// body; the union of decided components is then a splitting set, and the
/// per-component least fixpoints compute its canonical (perfect) model.
///
/// With `peel_negation` false (the classical-CWA family, which reads
/// `not` as classical negation), an atom may additionally only be decided
/// if **no** rule of the database reads it under negation — the decisions
/// are then purely positive-Horn and exact classically, instead of
/// stratum-wise.
pub fn peel_with(db: &Database, graph: &DepGraph, peel_negation: bool) -> Peel {
    let n = db.num_atoms();
    let sccs = graph.sccs();
    let rules = db.rules();
    // Atoms and defining rules of each component, in topological id order.
    let mut comp_atoms: Vec<Vec<usize>> = vec![Vec::new(); sccs.num_components];
    for v in 0..n {
        comp_atoms[sccs.comp[v]].push(v);
    }
    let mut comp_rules: Vec<Vec<usize>> = vec![Vec::new(); sccs.num_components];
    for (i, r) in rules.iter().enumerate() {
        if let Some(&h) = r.head().first() {
            comp_rules[sccs.comp[h.index()]].push(i);
        }
    }
    let mut neg_read = vec![false; n];
    for r in rules {
        for &b in r.body_neg() {
            neg_read[b.index()] = true;
        }
    }
    let mut decided: Vec<Option<bool>> = vec![None; n];
    let mut components_decided = 0;
    for c in 0..sccs.num_components {
        if !peel_negation && comp_atoms[c].iter().any(|&v| neg_read[v]) {
            continue;
        }
        let deterministic = comp_rules[c].iter().all(|&i| {
            let r = &rules[i];
            r.head().len() == 1
                && r.body_neg().iter().all(|&b| decided[b.index()].is_some())
                && r.body_pos()
                    .iter()
                    .all(|&b| sccs.comp[b.index()] == c || decided[b.index()].is_some())
        });
        if !deterministic {
            continue;
        }
        // Least fixpoint of the component's (now definite) rules.
        let mut true_now = vec![false; comp_atoms[c].len()];
        let slot = |v: usize| comp_atoms[c].binary_search(&v).expect("member");
        loop {
            let mut changed = false;
            for &i in &comp_rules[c] {
                let r = &rules[i];
                let h = r.head()[0];
                if true_now[slot(h.index())] {
                    continue;
                }
                let pos_ok = r.body_pos().iter().all(|&b| {
                    decided[b.index()] == Some(true)
                        || (sccs.comp[b.index()] == c && true_now[slot(b.index())])
                });
                let neg_ok = r
                    .body_neg()
                    .iter()
                    .all(|&b| decided[b.index()] == Some(false));
                if pos_ok && neg_ok {
                    true_now[slot(h.index())] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (k, &v) in comp_atoms[c].iter().enumerate() {
            decided[v] = Some(true_now[k]);
        }
        components_decided += 1;
    }
    // Integrity clauses whose atoms are all decided are settled now; a
    // violated one ends the story for every semantics.
    let inconsistent = rules.iter().any(|r| {
        r.is_integrity()
            && r.body_pos()
                .iter()
                .all(|&b| decided[b.index()] == Some(true))
            && r.body_neg()
                .iter()
                .all(|&b| decided[b.index()] == Some(false))
    });
    // Residual: the undecided rules with decided atoms evaluated away.
    let mut residual = Database::new(db.symbols().clone());
    if inconsistent {
        residual.add_rule(Rule::integrity([], []));
    } else {
        for r in rules {
            if r.head()
                .first()
                .is_some_and(|h| decided[h.index()].is_some())
            {
                continue; // consumed by its component's fixpoint
            }
            let falsified_pos = r
                .body_pos()
                .iter()
                .any(|&b| decided[b.index()] == Some(false));
            let satisfied_neg = r
                .body_neg()
                .iter()
                .any(|&b| decided[b.index()] == Some(true));
            if falsified_pos || satisfied_neg {
                continue; // body can never hold: the rule is satisfied
            }
            let keep = |xs: &[Atom]| -> Vec<Atom> {
                xs.iter()
                    .copied()
                    .filter(|a| decided[a.index()].is_none())
                    .collect()
            };
            residual.add_rule(Rule::new(
                r.head().to_vec(),
                keep(r.body_pos()),
                keep(r.body_neg()),
            ));
        }
    }
    Peel {
        num_decided: decided.iter().filter(|d| d.is_some()).count(),
        decided,
        residual,
        components_decided,
        num_components: sccs.num_components,
        inconsistent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{display_rule, parse_program};

    fn peeled(src: &str) -> Peel {
        let db = parse_program(src).unwrap();
        peel(&db, &DepGraph::of_database(&db))
    }

    fn rendered(db: &Database) -> Vec<String> {
        db.rules()
            .iter()
            .map(|r| display_rule(r, db.symbols()))
            .collect()
    }

    #[test]
    fn horn_prefix_is_fully_decided() {
        // x0 → x1 → (a|b) → q: the two Horn components peel, the
        // disjunction and its dependents stay.
        let p = peeled("x0. x1 :- x0. a | b :- x1. q :- a. q :- b.");
        assert_eq!(p.components_decided, 2);
        assert_eq!(p.num_components, 4);
        assert_eq!(p.num_decided, 2);
        assert!(!p.inconsistent);
        assert_eq!(rendered(&p.residual), ["a | b.", "q :- a.", "q :- b."]);
    }

    #[test]
    fn disjunctive_bottom_blocks_peeling() {
        let p = peeled("a | b. c :- a.");
        assert_eq!(p.components_decided, 0);
        assert_eq!(p.residual.len(), 2);
    }

    #[test]
    fn independent_disjunction_does_not_block_other_components() {
        // The c|d fact is undecidable, but the unrelated a → b chain and
        // the constraint on it still settle.
        let p = peeled("a. b :- a. c | d. e :- c.");
        assert_eq!(p.num_decided, 2);
        assert_eq!(rendered(&p.residual), ["c | d.", "e :- c."]);
    }

    #[test]
    fn stratified_negation_peels_and_prunes_rules() {
        // b is underivable, so a fires; the rule `c :- b` dies with its
        // falsified body.
        let p = peeled("a :- not b. c :- b. d | e :- a.");
        let sym = |s: &str| p.residual.symbols().lookup(s).unwrap();
        assert_eq!(p.decided[sym("a").index()], Some(true));
        assert_eq!(p.decided[sym("b").index()], Some(false));
        assert_eq!(p.decided[sym("c").index()], Some(false));
        assert_eq!(rendered(&p.residual), ["d | e."]);
    }

    #[test]
    fn negation_peel_can_be_disabled() {
        let db = parse_program("a :- not b. d | e :- a. x.").unwrap();
        let p = peel_with(&db, &DepGraph::of_database(&db), false);
        // b is read under negation, so it must not be decided; a depends
        // on it, d|e is disjunctive — only the free fact x settles.
        assert_eq!(p.num_decided, 1);
        let x = db.symbols().lookup("x").unwrap();
        assert_eq!(p.decided[x.index()], Some(true));
        assert_eq!(p.residual.len(), 2);
    }

    #[test]
    fn violated_constraint_collapses_to_empty_clause() {
        let p = peeled("a. b :- a. :- b. c | d.");
        assert!(p.inconsistent);
        assert_eq!(p.residual.len(), 1);
        assert!(p.residual.rules()[0].is_integrity());
    }

    #[test]
    fn satisfied_constraints_are_dropped_and_open_ones_reduced() {
        // :- a, c is undecidable until c; a decides true, so the residual
        // keeps :- c.
        let p = peeled("a. c | d. :- a, c.");
        assert!(!p.inconsistent);
        assert_eq!(p.num_decided, 1);
        assert_eq!(rendered(&p.residual), ["c | d.", ":- c."]);
        // A fully decided, satisfied constraint is dropped.
        let q = peeled("a. :- a, z. c | d.");
        assert!(!q.inconsistent);
        assert_eq!(rendered(&q.residual), ["c | d."]);
    }

    #[test]
    fn unstratifiable_component_is_not_peeled() {
        let p = peeled("x. p :- not q, x. q :- not p.");
        assert_eq!(p.num_decided, 1, "x peels; the p/q loop does not");
        assert_eq!(rendered(&p.residual), ["p :- not q.", "q :- not p."]);
    }

    #[test]
    fn layering_orders_bodies_below_heads() {
        let db = parse_program("a. b :- a. c | d :- b. e :- c, d.").unwrap();
        let lay = layering(&db, &DepGraph::of_database(&db));
        let lv = |s: &str| lay.level[db.symbols().lookup(s).unwrap().index()];
        assert!(lv("a") < lv("b"));
        assert!(lv("b") < lv("c"));
        assert_eq!(lv("c"), lv("d"), "head siblings share a level");
        assert!(lv("d") < lv("e"));
        assert_eq!(lay.num_levels, 4);
    }
}
