//! Analysis-justified program transformations.
//!
//! The only transformation here today is the **shift** of Gelfond et al.:
//! a disjunctive rule `a₁ ∨ … ∨ aₙ ← B⁺ ∧ ¬B⁻` becomes the `n` normal
//! rules `aᵢ ← B⁺ ∧ ¬B⁻ ∧ ¬a₁ ∧ … ∧ ¬aᵢ₋₁ ∧ ¬aᵢ₊₁ ∧ … ∧ ¬aₙ`. The shifted
//! clauses are classically equivalent to the original (same CNF), and —
//! this is the Ben-Eliyahu & Dechter theorem the DSM fast path rests on —
//! for **head-cycle-free** databases the disjunctive stable models coincide
//! with the stable models of the shifted normal program, whose stability
//! check is polynomial.

use ddb_logic::{Atom, Database, Rule};

/// Shifts every disjunctive rule of `db` into `|head|` normal rules.
/// Horn rules and integrity clauses pass through unchanged. The result
/// shares `db`'s vocabulary.
pub fn shift(db: &Database) -> Database {
    let mut out = Database::new(db.symbols().clone());
    for rule in db.rules() {
        let head = rule.head();
        if head.len() <= 1 {
            out.add_rule(rule.clone());
            continue;
        }
        for &h in head {
            let neg: Vec<Atom> = rule
                .body_neg()
                .iter()
                .chain(head.iter().filter(|&&a| a != h))
                .copied()
                .collect();
            out.add_rule(Rule::new([h], rule.body_pos().to_vec(), neg));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{display_database, parse_program};

    #[test]
    fn horn_rules_unchanged() {
        let db = parse_program("a. b :- a. :- b, c.").unwrap();
        assert_eq!(shift(&db).rules(), db.rules());
    }

    #[test]
    fn disjunction_becomes_exclusive_choices() {
        let db = parse_program("a | b :- c, not d.").unwrap();
        let s = shift(&db);
        assert_eq!(s.len(), 2);
        let text = display_database(&s);
        assert!(text.contains("a :- c, not b, not d."));
        assert!(text.contains("b :- c, not a, not d."));
    }

    #[test]
    fn shift_is_classically_equivalent() {
        use ddb_logic::Interpretation;
        let db = parse_program("a | b | c :- d. d | e. :- a, e.").unwrap();
        let s = shift(&db);
        let n = db.num_atoms();
        for bits in 0u32..(1 << n) {
            let m = Interpretation::from_atoms(
                n,
                (0..n as u32).filter(|&i| bits >> i & 1 == 1).map(Atom::new),
            );
            assert_eq!(db.satisfied_by(&m), s.satisfied_by(&m), "at {m:?}");
        }
    }
}
