//! Magic-sets rewriting: goal-directed restriction and the guarded
//! program transform.
//!
//! The magic-sets transform (Bancilhon & Ramakrishnan) specializes a
//! program to one query: every rule is guarded by a *magic predicate*
//! recording that its head is demanded, and demand is propagated through
//! rule bodies along a sideways-information-passing order
//! ([`crate::sip`]). On the ground databases this workspace analyzes the
//! demand closure is computable statically, which yields two artifacts:
//!
//! * [`magic_restrict`] — the set of rules a magic-guarded evaluation
//!   could ever fire: the backward relevance closure of the query
//!   ([`crate::relevant_slice`]), *minus* dead rules (rules with a
//!   positive body atom outside the supportable fixpoint,
//!   [`crate::slice::supportable_atoms`]) when the caller proves dead
//!   pruning sound. Dead pruning is sound exactly for minimal-model
//!   determined answers on **positive** databases: a rule whose positive
//!   body can never be derived never fires in any minimal model. With
//!   negation a dead body atom can still flip answers through `not`, so
//!   callers must pass `prune_dead = false` there — the restriction then
//!   coincides with the relevance slice.
//! * [`rewrite`] — the rewritten program itself ([`MagicProgram`]):
//!   `magic__`-prefixed seeds for the query atoms, one guarded variant
//!   per kept rule, and demand rules for positive bodies (SIP-ordered),
//!   negative bodies and disjunctive head siblings. This is the program
//!   `ddb rewrite` prints and `ddb explain` attaches to Magic plan
//!   nodes; execution answers on the projected restriction directly,
//!   which is equivalent and keeps the solver vocabulary small.
//!
//! **Admission** is decided by the planner with the same per-semantics
//! rules as slicing ([`crate::plan::admission`]): a dropped dead rule
//! whose head is demanded always blocks the split-closure side condition
//! (its head reads into the restriction), so the product route and dead
//! pruning never combine — the only admission that ever sees a pruned
//! restriction is `PositiveExact`, which is exactly the sound case.

use crate::adorn::split_predicate;
use crate::sip::choose_sip;
use crate::slice::{relevant_slice, supportable_atoms, Slice};
use ddb_logic::{Atom, Database};
use ddb_obs::json::Json;
use std::collections::BTreeSet;

/// The prefix of the reserved magic-predicate namespace. Atom names in
/// the *input* database starting with this prefix collide with the
/// rewrite's fresh predicates (lint `DDB018`).
pub const MAGIC_PREFIX: &str = "magic__";

/// The goal-directed restriction of a database to one query: which rules
/// a magic-guarded evaluation can fire, plus the dead rules the demand
/// closure skipped.
#[derive(Clone, Debug)]
pub struct MagicRestriction {
    /// The kept atoms and rules, with split-closure data computed against
    /// **all** non-kept rules (dropped dead rules included, so a pruned
    /// restriction is never reported split-closed when its boundary
    /// leaks).
    pub slice: Slice,
    /// Rules inside the backward relevance closure that were dropped as
    /// dead (positive body outside the supportable fixpoint), ascending.
    /// Empty unless `prune_dead` was set.
    pub dropped_dead: Vec<usize>,
}

impl MagicRestriction {
    /// Whether the restriction keeps every rule (the rewrite would guard
    /// the whole program — a no-op as a reduction).
    pub fn is_whole(&self, db: &Database) -> bool {
        self.slice.is_whole(db)
    }
}

/// Computes the magic restriction of `db` for a query over `query_atoms`.
///
/// Without dead pruning this is exactly [`relevant_slice`]. With
/// `prune_dead`, rules whose positive body leaves the supportable
/// fixpoint are excluded from the closure — their atoms do not propagate
/// demand — and recorded in [`MagicRestriction::dropped_dead`] when the
/// final demand set reaches their head. Callers must only set
/// `prune_dead` when dead pruning is sound for the answers they need
/// (positive database, minimal-model determined query — see the module
/// docs).
pub fn magic_restrict(db: &Database, query_atoms: &[Atom], prune_dead: bool) -> MagicRestriction {
    if !prune_dead {
        return MagicRestriction {
            slice: relevant_slice(db, query_atoms),
            dropped_dead: Vec::new(),
        };
    }
    let supportable = supportable_atoms(db);
    let rules = db.rules();
    let dead: Vec<bool> = rules
        .iter()
        .map(|r| !r.is_integrity() && r.body_pos().iter().any(|&b| !supportable[b.index()]))
        .collect();
    let n = db.num_atoms();
    let mut in_slice = vec![false; n];
    for &a in query_atoms {
        in_slice[a.index()] = true;
    }
    let mut rule_in = vec![false; rules.len()];
    // Same least fixpoint as `relevant_slice`, except dead rules never
    // join and never propagate demand into their bodies.
    loop {
        let mut changed = false;
        for (i, r) in rules.iter().enumerate() {
            if rule_in[i] || dead[i] {
                continue;
            }
            let triggered = if r.is_integrity() {
                r.atoms().any(|a| in_slice[a.index()])
            } else {
                r.head().iter().any(|&h| in_slice[h.index()])
            };
            if triggered {
                rule_in[i] = true;
                changed = true;
                for a in r.atoms() {
                    in_slice[a.index()] = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let dropped_dead: Vec<usize> = (0..rules.len())
        .filter(|&i| dead[i] && rules[i].head().iter().any(|&h| in_slice[h.index()]))
        .collect();
    // Split-closure is judged against *every* non-kept rule: a dropped
    // dead rule with a demanded head reads the restriction, so pruning
    // and the product correction can never combine.
    let blocking_rule = rules
        .iter()
        .enumerate()
        .find(|(i, r)| !rule_in[*i] && r.atoms().any(|a| in_slice[a.index()]))
        .map(|(i, _)| i);
    MagicRestriction {
        slice: Slice {
            atoms: (0..n as u32)
                .map(Atom::new)
                .filter(|a| in_slice[a.index()])
                .collect(),
            rules: (0..rules.len()).filter(|&i| rule_in[i]).collect(),
            split_closed: blocking_rule.is_none(),
            blocking_rule,
            in_slice,
        },
        dropped_dead,
    }
}

/// The rewritten (magic-guarded) program, rendered as source lines.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// Seed facts `magic__q.`, one per query atom, in query order.
    pub seeds: Vec<String>,
    /// The guarded rule variants and demand rules, in kept-rule order;
    /// within one source rule: the guarded variant, positive-body demand
    /// rules in SIP order, negative-body demand rules, then sibling-head
    /// demand rules.
    pub rules: Vec<String>,
    /// Input atom names that already live in the `magic__` namespace
    /// (lint `DDB018`), sorted.
    pub collisions: Vec<String>,
}

impl MagicProgram {
    /// The whole rewritten program as source text, seeds first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in self.seeds.iter().chain(self.rules.iter()) {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// JSON rendering for `ddb rewrite --json` / `ddb explain --json`.
    pub fn to_json(&self) -> Json {
        let arr = |xs: &[String]| Json::Arr(xs.iter().map(|s| Json::Str(s.clone())).collect());
        Json::obj([
            ("seeds", arr(&self.seeds)),
            ("rules", arr(&self.rules)),
            ("collisions", arr(&self.collisions)),
        ])
    }
}

/// Emits the magic-guarded rewrite of the kept rules of `restriction`
/// for a query over `query_atoms`. Deterministic: kept rules ascending,
/// demand rules in SIP order within each rule.
pub fn rewrite(
    db: &Database,
    query_atoms: &[Atom],
    restriction: &MagicRestriction,
) -> MagicProgram {
    let name = |a: Atom| db.symbols().name(a);
    let seeds = query_atoms
        .iter()
        .map(|&q| format!("{MAGIC_PREFIX}{}.", name(q)))
        .collect();
    let mut rules = Vec::new();
    for &i in &restriction.slice.rules {
        let r = &db.rules()[i];
        let pos: Vec<&str> = r.body_pos().iter().map(|&b| name(b)).collect();
        let neg: Vec<&str> = r.body_neg().iter().map(|&b| name(b)).collect();
        if r.is_integrity() {
            // Constraints are copied verbatim: they prune, not derive, so
            // demand does not guard them.
            rules.push(render_rule(&[], &pos, &neg));
            continue;
        }
        let heads: Vec<&str> = r.head().iter().map(|&h| name(h)).collect();
        let guard = format!("{MAGIC_PREFIX}{}", heads[0]);
        let bound: BTreeSet<String> = split_predicate(heads[0])
            .1
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let body_args: Vec<Vec<String>> = pos
            .iter()
            .map(|b| {
                split_predicate(b)
                    .1
                    .iter()
                    .map(|s| (*s).to_owned())
                    .collect()
            })
            .collect();
        let order = choose_sip(&bound, &body_args);
        let sip_pos: Vec<&str> = order.iter().map(|&j| pos[j]).collect();
        // The guarded variant: original heads, the magic guard, then the
        // positive body in SIP order and the negative body.
        let mut guarded_body: Vec<&str> = vec![guard.as_str()];
        guarded_body.extend(&sip_pos);
        rules.push(render_rule(&heads, &guarded_body, &neg));
        // Demand for each positive body atom under the SIP prefix that
        // precedes it.
        for (j, &b) in sip_pos.iter().enumerate() {
            let mut body: Vec<&str> = vec![guard.as_str()];
            body.extend(&sip_pos[..j]);
            rules.push(render_demand(b, &body));
        }
        // Negated atoms are demanded once the whole positive body is
        // available (they are evaluated last).
        for &b in &neg {
            let mut body: Vec<&str> = vec![guard.as_str()];
            body.extend(&sip_pos);
            rules.push(render_demand(b, &body));
        }
        // Demanding one head of a disjunctive rule demands its siblings:
        // the rule can establish the query head by establishing a sibling
        // in some models.
        for &h in &heads[1..] {
            rules.push(render_demand(h, &[guard.as_str()]));
        }
    }
    let mut collisions: Vec<String> = db
        .symbols()
        .atoms()
        .map(name)
        .filter(|n| n.starts_with(MAGIC_PREFIX))
        .map(str::to_owned)
        .collect();
    collisions.sort();
    MagicProgram {
        seeds,
        rules,
        collisions,
    }
}

/// Renders `head1 | head2 :- body1, body2, not neg1.` with the usual
/// degenerate forms (facts, constraints).
fn render_rule(heads: &[&str], body_pos: &[&str], body_neg: &[&str]) -> String {
    let mut out = String::new();
    out.push_str(&heads.join(" | "));
    if !body_pos.is_empty() || !body_neg.is_empty() {
        if !heads.is_empty() {
            out.push(' ');
        }
        out.push_str(":- ");
        let body: Vec<String> = body_pos
            .iter()
            .map(|b| (*b).to_owned())
            .chain(body_neg.iter().map(|b| format!("not {b}")))
            .collect();
        out.push_str(&body.join(", "));
    }
    out.push('.');
    out
}

fn render_demand(target: &str, body: &[&str]) -> String {
    let head = format!("{MAGIC_PREFIX}{target}");
    render_rule(&[head.as_str()], body, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::Rule;

    fn atom(db: &Database, name: &str) -> Atom {
        db.symbols()
            .atoms()
            .find(|&a| db.symbols().name(a) == name)
            .expect("atom exists")
    }

    /// Ground databases with parenthesized atom names come from the
    /// datalog grounder, not the propositional parser, so tests intern
    /// them directly.
    fn ground_db(rules: &[(&[&str], &[&str])]) -> Database {
        let mut db = Database::with_fresh_atoms(0);
        for (head, body) in rules {
            let h: Vec<Atom> = head.iter().map(|n| db.symbols_mut().intern(n)).collect();
            let b: Vec<Atom> = body.iter().map(|n| db.symbols_mut().intern(n)).collect();
            db.add_rule(Rule::new(h, b, Vec::<Atom>::new()));
        }
        db
    }

    #[test]
    fn restriction_without_pruning_is_the_relevance_slice() {
        let db = ground_db(&[
            (&["e(a,b)"], &[]),
            (&["r(b)"], &["e(a,b)", "r(a)"]),
            (&["r(a)"], &[]),
            (&["q(z)"], &[]),
        ]);
        let q = [atom(&db, "r(b)")];
        let m = magic_restrict(&db, &q, false);
        let s = relevant_slice(&db, &q);
        assert_eq!(m.slice.rules, s.rules);
        assert_eq!(m.slice.atoms, s.atoms);
        assert!(m.dropped_dead.is_empty());
        assert_eq!(m.slice.rules, vec![0, 1, 2]);
        assert!(!m.is_whole(&db));
    }

    #[test]
    fn dead_rules_are_pruned_and_block_the_split() {
        // Rule 1 demands r(b) but its body atom ghost(x) is unsupportable,
        // so it can never fire: pruning keeps the restriction to the fact.
        let db = ground_db(&[
            (&["r(b)"], &[]),
            (&["r(b)"], &["ghost(x)"]),
            (&["q(z)"], &[]),
        ]);
        let q = [atom(&db, "r(b)")];
        let m = magic_restrict(&db, &q, true);
        assert_eq!(m.slice.rules, vec![0]);
        assert_eq!(m.dropped_dead, vec![1]);
        // The dropped rule's head reads the restriction, so it must not
        // be reported split-closed (product would be unsound here).
        assert!(!m.slice.split_closed);
        assert_eq!(m.slice.blocking_rule, Some(1));
        // ghost(x) never joined the demand set.
        assert!(!m.slice.in_slice[atom(&db, "ghost(x)").index()]);
    }

    #[test]
    fn pruning_beats_the_plain_slice() {
        // The relevance slice chases the dead rule's body; the magic
        // restriction does not.
        let db = ground_db(&[
            (&["r(b)"], &[]),
            (&["r(b)"], &["ghost(x)"]),
            (&["ghost(x)"], &["ghost(y)"]),
        ]);
        let q = [atom(&db, "r(b)")];
        let plain = relevant_slice(&db, &q);
        let m = magic_restrict(&db, &q, true);
        assert_eq!(plain.rules, vec![0, 1, 2]);
        assert_eq!(m.slice.rules, vec![0]);
        assert!(m.slice.rules.len() < plain.rules.len());
    }

    #[test]
    fn rewrite_emits_seeds_guards_and_demands() {
        let db = ground_db(&[
            (&["e(a,b)"], &[]),
            (&["r(b)"], &["r(a)", "e(a,b)"]),
            (&["r(a)"], &[]),
        ]);
        let q = [atom(&db, "r(b)")];
        let m = magic_restrict(&db, &q, true);
        let p = rewrite(&db, &q, &m);
        assert_eq!(p.seeds, vec!["magic__r(b)."]);
        assert!(p.collisions.is_empty());
        // Rule 0 (the fact e(a,b)) gets a guarded variant and no demands.
        assert!(p.rules.contains(&"e(a,b) :- magic__e(a,b).".to_owned()));
        // Rule 1: guarded variant with the SIP order (e(a,b) shares the
        // bound constant b with the head, so it goes first), demand for
        // e(a,b) from the bare guard, demand for r(a) after e(a,b).
        assert!(
            p.rules
                .contains(&"r(b) :- magic__r(b), e(a,b), r(a).".to_owned()),
            "{:?}",
            p.rules
        );
        assert!(p
            .rules
            .contains(&"magic__e(a,b) :- magic__r(b).".to_owned()));
        assert!(p
            .rules
            .contains(&"magic__r(a) :- magic__r(b), e(a,b).".to_owned()));
        let text = p.render();
        assert!(text.starts_with("magic__r(b).\n"), "{text}");
    }

    #[test]
    fn disjunctive_heads_demand_their_siblings() {
        let db = ground_db(&[(&["p(a)", "p(b)"], &[]), (&["q(a)"], &["p(a)"])]);
        let q = [atom(&db, "q(a)")];
        let m = magic_restrict(&db, &q, true);
        let p = rewrite(&db, &q, &m);
        assert!(
            p.rules.contains(&"p(a) | p(b) :- magic__p(a).".to_owned()),
            "{:?}",
            p.rules
        );
        assert!(p.rules.contains(&"magic__p(b) :- magic__p(a).".to_owned()));
    }

    #[test]
    fn existing_magic_names_are_collisions() {
        let db = ground_db(&[(&["magic__p(a)"], &[]), (&["q(a)"], &["magic__p(a)"])]);
        let q = [atom(&db, "q(a)")];
        let m = magic_restrict(&db, &q, true);
        let p = rewrite(&db, &q, &m);
        assert_eq!(p.collisions, vec!["magic__p(a)".to_owned()]);
    }
}
