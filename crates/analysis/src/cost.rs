//! Static cost estimation for the query planner.
//!
//! Two estimators feed [`crate::plan`]:
//!
//! * [`DomainEstimate`] — a per-predicate *domain/cardinality* summary of
//!   the ground database: how many ground atoms each predicate symbol
//!   contributes, how many distinct constants appear, and the Cartesian
//!   bound `|constants|^arity` each predicate could reach if its arguments
//!   ranged freely. The propositional substrate keeps ground atom names
//!   verbatim (`covered(gear)`), so the predicate structure is recovered
//!   syntactically by [`crate::adorn::split_predicate`].
//! * [`oracle_call_bound`] — a sound upper bound on the number of NP-oracle
//!   (SAT) calls the generic route can spend on a database with `atoms`
//!   atoms and `rules` rules. Every generic procedure in the paper walks
//!   candidate (partial) interpretations with per-candidate polynomial
//!   work: over `n` atoms there are at most `2^n` two-valued candidates and
//!   at most `3^n ≤ 4^n = 2^(2n)` three-valued ones (PDSM), and each
//!   candidate costs at most `O(atoms + rules)` oracle calls for the
//!   minimality/stability counterexample loops. The bound
//!   `(atoms + rules + 2) · 2^(2·atoms)` therefore dominates all ten
//!   semantics at once; it saturates at `u64::MAX` instead of overflowing.
//!
//! These are *bounds*, not predictions of typical cost — the audit mode of
//! `ddb explain --execute` checks `observed ≤ bound`, and the benchmark
//! group `T1-planning` records the observed/bound ratio.

use crate::adorn::split_predicate;
use ddb_logic::Database;
use ddb_obs::json::Json;
use std::collections::BTreeMap;

/// Cardinality summary for one predicate symbol of the ground database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredicateCard {
    /// Predicate name (the full atom name for propositional atoms).
    pub predicate: String,
    /// Arity recovered from the ground atom names (0 for propositional
    /// atoms and explicit zero-arity atoms `p()`).
    pub arity: usize,
    /// Number of distinct ground atoms of this predicate in the database.
    pub ground_atoms: usize,
    /// The Cartesian bound `|constants|^arity` (saturating): how many
    /// ground atoms the predicate could have over the database's constant
    /// domain. Equals 1 for propositional atoms.
    pub domain_bound: u64,
}

/// Domain/cardinality estimate for a whole database: the per-predicate
/// table plus global totals, computed once per plan.
#[derive(Clone, Debug, Default)]
pub struct DomainEstimate {
    /// Per-predicate cardinalities, sorted by predicate name then arity
    /// (deterministic for snapshot tests).
    pub predicates: Vec<PredicateCard>,
    /// Distinct constants appearing as ground-atom arguments.
    pub num_constants: usize,
    /// Total ground atoms in the vocabulary.
    pub num_atoms: usize,
    /// Total rules.
    pub num_rules: usize,
    /// Rules with two or more head atoms (each doubles the candidate space
    /// the oracle procedures may have to cover).
    pub disjunctive_rules: usize,
    /// Widest rule head.
    pub max_head_width: usize,
}

impl DomainEstimate {
    /// Computes the estimate for `db` from its symbol table and rules.
    pub fn of(db: &Database) -> Self {
        let mut constants: Vec<&str> = Vec::new();
        let mut per: BTreeMap<(String, usize), usize> = BTreeMap::new();
        for a in db.symbols().atoms() {
            let (pred, args) = split_predicate(db.symbols().name(a));
            for c in &args {
                constants.push(c);
            }
            *per.entry((pred.to_owned(), args.len())).or_insert(0) += 1;
        }
        constants.sort_unstable();
        constants.dedup();
        let num_constants = constants.len();
        let predicates = per
            .into_iter()
            .map(|((predicate, arity), ground_atoms)| PredicateCard {
                predicate,
                arity,
                ground_atoms,
                domain_bound: sat_pow(num_constants as u64, arity as u32),
            })
            .collect();
        let (mut disjunctive_rules, mut max_head_width) = (0, 0);
        for r in db.rules() {
            if r.head().len() >= 2 {
                disjunctive_rules += 1;
            }
            max_head_width = max_head_width.max(r.head().len());
        }
        DomainEstimate {
            predicates,
            num_constants,
            num_atoms: db.num_atoms(),
            num_rules: db.len(),
            disjunctive_rules,
            max_head_width,
        }
    }

    /// JSON rendering for `ddb explain --json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("num_constants", Json::UInt(self.num_constants as u64)),
            ("num_atoms", Json::UInt(self.num_atoms as u64)),
            ("num_rules", Json::UInt(self.num_rules as u64)),
            (
                "disjunctive_rules",
                Json::UInt(self.disjunctive_rules as u64),
            ),
            ("max_head_width", Json::UInt(self.max_head_width as u64)),
            (
                "predicates",
                Json::Arr(
                    self.predicates
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("predicate", Json::Str(p.predicate.clone())),
                                ("arity", Json::UInt(p.arity as u64)),
                                ("ground_atoms", Json::UInt(p.ground_atoms as u64)),
                                ("domain_bound", Json::UInt(p.domain_bound)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// `base^exp` saturating at `u64::MAX`.
fn sat_pow(base: u64, exp: u32) -> u64 {
    let mut out: u64 = 1;
    for _ in 0..exp {
        out = out.saturating_mul(base.max(1));
    }
    out
}

/// Human-readable form of a (possibly saturated) oracle-call bound.
pub fn display_bound(bound: u64) -> String {
    if bound == u64::MAX {
        ">=2^63".to_owned()
    } else {
        bound.to_string()
    }
}

/// Sound upper bound on NP-oracle (SAT) calls for the generic route over a
/// database with `atoms` atoms and `rules` rules (see the module docs for
/// the derivation). Saturates at `u64::MAX`.
pub fn oracle_call_bound(atoms: usize, rules: usize) -> u64 {
    let poly = (atoms as u64)
        .saturating_add(rules as u64)
        .saturating_add(2);
    let shift = 2usize.saturating_mul(atoms);
    if shift >= 63 {
        return u64::MAX;
    }
    poly.saturating_mul(1u64 << shift)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::parse_program;
    use ddb_logic::{Atom, Rule};

    /// Interns ground-atom names directly (the propositional parser does
    /// not accept parenthesized names — the datalog grounder makes them).
    fn ground_db(rules: &[(&[&str], &[&str])]) -> Database {
        let mut db = Database::with_fresh_atoms(0);
        for (head, body) in rules {
            let h: Vec<Atom> = head.iter().map(|n| db.symbols_mut().intern(n)).collect();
            let b: Vec<Atom> = body.iter().map(|n| db.symbols_mut().intern(n)).collect();
            db.add_rule(Rule::new(h, b, Vec::<Atom>::new()));
        }
        db
    }

    #[test]
    fn domain_estimate_recovers_predicates() {
        let db = ground_db(&[
            (&["part(gear)"], &[]),
            (&["part(axle)"], &[]),
            (&["covered(gear)"], &["part(gear)"]),
            (&["flag"], &[]),
        ]);
        let d = DomainEstimate::of(&db);
        assert_eq!(d.num_constants, 2, "gear, axle");
        let part = d.predicates.iter().find(|p| p.predicate == "part").unwrap();
        assert_eq!((part.arity, part.ground_atoms), (1, 2));
        assert_eq!(part.domain_bound, 2);
        let flag = d.predicates.iter().find(|p| p.predicate == "flag").unwrap();
        assert_eq!((flag.arity, flag.domain_bound), (0, 1));
        assert_eq!(d.num_rules, 4);
        assert_eq!(d.disjunctive_rules, 0);
        assert_eq!(d.max_head_width, 1);
    }

    #[test]
    fn disjunctive_rules_counted() {
        let db = parse_program("a | b. c | d | e :- a.").unwrap();
        let d = DomainEstimate::of(&db);
        assert_eq!(d.disjunctive_rules, 2);
        assert_eq!(d.max_head_width, 3);
    }

    #[test]
    fn oracle_bound_is_monotone_and_saturates() {
        assert!(oracle_call_bound(0, 0) >= 1);
        assert!(oracle_call_bound(3, 5) < oracle_call_bound(4, 5));
        assert!(oracle_call_bound(3, 5) < oracle_call_bound(3, 6));
        assert_eq!(oracle_call_bound(40, 10), u64::MAX);
        // Base 4 in the atom count: dominates PDSM's 3^n candidate space.
        assert!(oracle_call_bound(10, 0) >= 3u64.pow(10));
    }

    #[test]
    fn estimate_json_round_trips() {
        let db = ground_db(&[(&["p(a, b)"], &[]), (&["q"], &["p(a, b)"])]);
        let doc = DomainEstimate::of(&db).to_json().render();
        let parsed = ddb_obs::json::parse(&doc).unwrap();
        assert_eq!(
            parsed.get("num_constants").and_then(|j| j.as_u64()),
            Some(2)
        );
    }
}
