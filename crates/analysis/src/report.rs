//! The analysis report: everything the static analyzer knows about a
//! database, bundled for consumers (dispatch routing, `ddb check`).

use crate::fragments::Fragments;
use crate::lints::{lint, Diagnostic, Severity};
use ddb_logic::depgraph::DepGraph;
use ddb_logic::{Atom, Database};
use ddb_obs::json::Json;
use std::fmt::Write as _;

/// The result of statically analyzing a [`Database`]: fragment flags, the
/// stratification (when one exists), and the lint findings.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Which syntactic fragments the database falls in.
    pub fragments: Fragments,
    /// The stratification, lowest stratum first, if the database is
    /// stratifiable.
    pub strata: Option<Vec<Vec<Atom>>>,
    /// Lint findings, in the deterministic emission order (by code, then
    /// by rule index — see [`lint`]).
    pub diagnostics: Vec<Diagnostic>,
}

/// Runs the full static analysis: dependency graph, fragment
/// classification, stratification, and the lint pass. Bumps the
/// `analysis.runs` counter.
pub fn analyze(db: &Database) -> AnalysisReport {
    let _span = ddb_obs::span("analysis.analyze");
    ddb_obs::counter_bump("analysis.runs", 1);
    let graph = DepGraph::of_database(db);
    let fragments = Fragments::of(db, &graph);
    AnalysisReport {
        fragments,
        strata: graph.stratification(),
        diagnostics: lint(db, &graph),
    }
}

impl AnalysisReport {
    /// Whether any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Machine-readable rendering (the `ddb check --json` contract).
    pub fn to_json(&self, db: &Database) -> Json {
        let strata = match &self.strata {
            None => Json::Null,
            Some(strata) => Json::Arr(
                strata
                    .iter()
                    .map(|s| {
                        Json::Arr(
                            s.iter()
                                .map(|&a| Json::Str(db.symbols().name(a).to_owned()))
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        };
        Json::obj([
            ("atoms", Json::UInt(db.num_atoms() as u64)),
            ("rules", Json::UInt(db.len() as u64)),
            ("fragments", self.fragments.to_json()),
            ("strata", strata),
            (
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
            ("errors", Json::UInt(self.count(Severity::Error) as u64)),
            ("warnings", Json::UInt(self.count(Severity::Warning) as u64)),
        ])
    }

    /// Human-readable rendering (the `ddb check` default output).
    pub fn render(&self, db: &Database) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} atoms, {} rules", db.num_atoms(), db.len());
        let names = self.fragments.names();
        let _ = writeln!(
            out,
            "class: {:?}; fragments: {}",
            self.fragments.class,
            if names.is_empty() {
                "(none)".to_owned()
            } else {
                names.join(", ")
            }
        );
        if let Some(strata) = &self.strata {
            let _ = writeln!(out, "stratification: {} stratum/strata", strata.len());
        }
        if self.diagnostics.is_empty() {
            let _ = writeln!(out, "no findings");
        } else {
            for d in &self.diagnostics {
                let _ = writeln!(out, "{d}");
            }
            let _ = writeln!(
                out,
                "{} error(s), {} warning(s), {} note(s)",
                self.count(Severity::Error),
                self.count(Severity::Warning),
                self.count(Severity::Info),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::parse_program;

    #[test]
    fn report_on_clean_positive_db() {
        let db = parse_program("a | b. g :- a. g :- b.").unwrap();
        let r = analyze(&db);
        assert!(r.fragments.positive && !r.has_errors());
        assert_eq!(r.strata.as_ref().unwrap().len(), 1);
        let j = r.to_json(&db);
        assert_eq!(j.get("errors").unwrap().as_u64(), Some(0));
        assert!(
            j.get("fragments")
                .unwrap()
                .get("positive")
                .unwrap()
                .as_bool()
                == Some(true)
        );
        assert!(r.render(&db).contains("no findings"));
    }

    #[test]
    fn report_carries_errors() {
        let db = parse_program("a. :- a.").unwrap();
        let r = analyze(&db);
        assert!(r.has_errors());
        assert!(r.render(&db).contains("error[DDB006]"));
        let j = r.to_json(&db);
        assert_eq!(j.get("errors").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn unstratifiable_db_has_no_strata_and_a_warning() {
        let db = parse_program("a :- not b. b :- not a.").unwrap();
        let r = analyze(&db);
        assert!(r.strata.is_none());
        // DDB007 (unstratifiable) plus DDB011 (the loop spans two
        // positive layers, so splitting cannot decompose it).
        assert_eq!(r.count(Severity::Warning), 2);
        assert!(r.diagnostics.iter().any(|d| d.code == "DDB011"));
        assert_eq!(r.to_json(&db).get("strata"), Some(&Json::Null));
    }
}
