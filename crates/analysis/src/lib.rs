//! # ddb-analysis — static analysis for disjunctive databases
//!
//! This crate analyzes a [`Database`](ddb_logic::Database) *before* any
//! solver runs, so that dispatch can route easy fragments to polynomial
//! algorithms and `ddb check` can refuse malformed inputs with real
//! diagnostics:
//!
//! * the atom-level **dependency graph** with positive/negative edge
//!   labels and Tarjan SCC decomposition — re-exported from
//!   [`ddb_logic::depgraph`], which is the single canonical home of the
//!   stratification algorithm (`Database::stratification` delegates
//!   there, and so does this crate; Cargo's acyclic crate graph is why
//!   the algorithm lives in the substrate);
//! * a **fragment classifier** ([`Fragments`]) detecting Horn, definite,
//!   positive, deductive, stratified, head-cycle-free and tight databases;
//! * a **lint pass** ([`lint`]) emitting structured [`Diagnostic`]s with
//!   stable codes and severities (catalog in `docs/ANALYSIS.md`);
//! * the **shift** transformation ([`shift`]) that turns head-cycle-free
//!   disjunctive databases into equivalent normal programs;
//! * **query-relevant slicing** ([`relevant_slice`]): the least
//!   sub-database that can influence a query formula, with the
//!   splitting-set closure check that decides when answering on the slice
//!   is exact;
//! * **bottom-up splitting evaluation** ([`peel`]): solve the
//!   deterministic bottom levels of the SCC condensation and partially
//!   evaluate their consequences into a smaller residual program;
//! * the **static query planner** ([`plan`]): the routing decision kernel
//!   ([`decide`]) dispatch executes, and the full predicted plan tree
//!   ([`build_plan`]) `ddb explain` prints, with binding-pattern
//!   adornments ([`adorn()`]) and the domain/cost estimators ([`cost`])
//!   feeding its class and oracle-call bounds;
//! * the **magic-sets rewrite** ([`magic`]): the goal-directed demand
//!   restriction ([`magic_restrict`]) the planner routes bound queries
//!   through, with SIP strategy selection ([`sip`]) and the guarded
//!   program transform ([`magic::rewrite`]) `ddb rewrite` prints;
//! * an [`AnalysisReport`] bundling all of the above ([`analyze`]).

pub mod adorn;
pub mod cost;
pub mod fragments;
pub mod lints;
pub mod magic;
pub mod plan;
pub mod report;
pub mod schedule;
pub mod sip;
pub mod slice;
pub mod splitting;
pub mod transform;

pub use adorn::{adorn, Adornments, PredicateAdornment};
pub use cost::{oracle_call_bound, DomainEstimate};
pub use ddb_logic::depgraph::{DepGraph, EdgeKind, Sccs};
pub use fragments::{classify, Fragments};
pub use lints::{lint, Diagnostic, Severity};
pub use magic::{magic_restrict, MagicProgram, MagicRestriction, MAGIC_PREFIX};
pub use plan::{
    admission, build_plan, decide, plan_lints, Admission, Decision, PlanData, PlanNode, PlanQuery,
    RouteKind, SemanticsTraits,
};
pub use report::{analyze, AnalysisReport};
pub use schedule::islands;
pub use slice::{project_slice, project_top, relevant_slice, AtomMap, Slice};
pub use splitting::{layering, peel, peel_with, Layering, Peel};
pub use transform::shift;
