//! Structured diagnostics and the lint pass.
//!
//! Every problem the analyzer can point at is a [`Diagnostic`] with a
//! stable code, a severity, and — where one exists — the index and rendered
//! text of the offending rule. The catalog (see `docs/ANALYSIS.md`):
//!
//! | code   | severity | meaning                                         |
//! |--------|----------|-------------------------------------------------|
//! | DDB001 | error    | unsafe rule (variable outside the positive body) |
//! | DDB002 | warning  | duplicate rule                                  |
//! | DDB003 | warning  | tautological or never-firing rule               |
//! | DDB004 | warning  | rule classically subsumed by another rule       |
//! | DDB005 | info     | atom occurs in bodies but in no head            |
//! | DDB006 | error    | integrity clause violated on its face           |
//! | DDB007 | warning  | unstratifiable negation (PERF/ICWA unsupported) |
//! | DDB008 | error    | partition/varying set names an unknown atom     |
//! | DDB009 | warning  | dead rule (a positive body atom is underivable) |
//! | DDB010 | warning  | rule subsumed after closed-world simplification |
//! | DDB011 | warning  | negative loop spans several positive layers     |
//! | DDB012 | info     | unbound argument under goal-directed evaluation |
//! | DDB013 | warning  | planned route has an exponential oracle bound   |
//! | DDB014 | info     | ineffective slice: query slice = whole program  |
//! | DDB015 | warning  | plan infeasible under the oracle-call budget    |
//! | DDB016 | info     | magic rewrite inadmissible for this semantics   |
//! | DDB017 | info     | unbound adornment makes the magic rewrite a no-op |
//! | DDB018 | warning  | atom collides with the `magic__` namespace      |
//!
//! `DDB001`–`DDB011` come from the database-level [`lint`] pass;
//! `DDB012`–`DDB018` are query-dependent and emitted by the planner
//! ([`crate::plan::plan_lints`]) for `ddb explain`.
//!
//! Diagnostics are emitted in a fully deterministic order: sorted by code,
//! then by source position (rule index), so CI diffs and plan snapshots
//! are stable across runs and thread counts.

use ddb_logic::depgraph::{DepGraph, EdgeKind};
use ddb_logic::parse::display_rule;
use ddb_logic::{Atom, Database, Rule};
use ddb_obs::json::Json;
use std::collections::HashMap;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Severity {
    /// Advisory: something worth knowing, never a failure.
    Info,
    /// Suspicious but well-defined input; fails under `--strict`.
    Warning,
    /// The input is malformed or self-contradictory; non-zero exit.
    Error,
}

impl Severity {
    /// Lower-case label for rendering (`error`, `warning`, `info`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding of the lint pass: a coded, severity-tagged message anchored
/// (when possible) to a rule of the database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`DDB001` …).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Index of the offending rule in `db.rules()`, when the diagnostic
    /// points at one.
    pub rule: Option<usize>,
    /// Rendered text of the offending rule, for display without the
    /// database at hand.
    pub snippet: Option<String>,
}

impl Diagnostic {
    fn on_rule(
        code: &'static str,
        severity: Severity,
        message: String,
        db: &Database,
        index: usize,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            message,
            rule: Some(index),
            snippet: Some(display_rule(&db.rules()[index], db.symbols())),
        }
    }

    /// `DDB001` — an unsafe Datalog rule: `variable` does not occur in the
    /// positive body of rule `rule_index` (rendered as `rule_text`). Used
    /// by the grounder's safety check.
    pub fn unsafe_rule(rule_index: usize, variable: &str, rule_text: &str) -> Self {
        Diagnostic {
            code: "DDB001",
            severity: Severity::Error,
            message: format!(
                "unsafe variable `{variable}`: every variable must occur in the rule's positive body"
            ),
            rule: Some(rule_index),
            snippet: Some(rule_text.to_owned()),
        }
    }

    /// `DDB008` — a CCWA/ECWA partition or ICWA varying set mentions an
    /// atom that is not in the database's vocabulary.
    pub fn unknown_atom(role: &str, name: &str) -> Self {
        Diagnostic {
            code: "DDB008",
            severity: Severity::Error,
            message: format!("{role} mentions unknown atom `{name}`"),
            rule: None,
            snippet: None,
        }
    }

    /// `DDB012` — goal-directed evaluation reaches a predicate with an
    /// argument position not bound by the query's constants (shown as an
    /// adornment like `part^f`).
    pub fn unbound_adornment(display: &str) -> Self {
        Diagnostic {
            code: "DDB012",
            severity: Severity::Info,
            message: format!(
                "goal-directed evaluation leaves `{display}` partially unbound: some argument positions are not fixed by the query's constants"
            ),
            rule: None,
            snippet: None,
        }
    }

    /// `DDB013` — the planned route's oracle-call bound is exponential in
    /// the database size.
    pub fn exponential_plan(semantics: &str, bound: u64, atoms: usize) -> Self {
        Diagnostic {
            code: "DDB013",
            severity: Severity::Warning,
            message: format!(
                "predicted exponential blowup: the {semantics} plan admits up to {} oracle calls over {atoms} atoms",
                crate::cost::display_bound(bound)
            ),
            rule: None,
            snippet: None,
        }
    }

    /// `DDB014` — the query's backward slice is the whole program, so
    /// slicing cannot reduce this query.
    pub fn ineffective_slice() -> Self {
        Diagnostic {
            code: "DDB014",
            severity: Severity::Info,
            message:
                "ineffective slice: the query's backward slice is the whole program, so slicing cannot reduce it"
                    .into(),
            rule: None,
            snippet: None,
        }
    }

    /// `DDB015` — the plan's oracle-call bound exceeds the declared
    /// `--max-oracle-calls` budget.
    pub fn infeasible_plan(semantics: &str, bound: u64, budget: u64) -> Self {
        Diagnostic {
            code: "DDB015",
            severity: Severity::Warning,
            message: format!(
                "plan infeasible under the oracle budget: the {semantics} plan admits up to {} oracle calls but --max-oracle-calls is {budget}",
                crate::cost::display_bound(bound)
            ),
            rule: None,
            snippet: None,
        }
    }

    /// `DDB016` — the magic-sets rewrite found a proper restriction but
    /// the admission analysis rejects it for this semantics; the blocking
    /// rule witnesses why the restriction boundary is not exact.
    pub fn magic_inadmissible(semantics: &str, rule_index: usize, rule_text: &str) -> Self {
        Diagnostic {
            code: "DDB016",
            severity: Severity::Info,
            message: format!(
                "magic rewrite inadmissible under {semantics}: the restriction is not answer-preserving for this semantics, so the query falls back to a wider route"
            ),
            rule: Some(rule_index),
            snippet: Some(rule_text.to_owned()),
        }
    }

    /// `DDB017` — the query binds no argument constants, so every
    /// predicate is adorned all-free and the magic rewrite degenerates to
    /// guarding the whole program.
    pub fn magic_noop() -> Self {
        Diagnostic {
            code: "DDB017",
            severity: Severity::Info,
            message:
                "unbound adornment: the query fixes no argument constants, so the magic rewrite demands every rule and cannot reduce the grounding"
                    .into(),
            rule: None,
            snippet: None,
        }
    }

    /// `DDB018` — an input atom already lives in the reserved `magic__`
    /// namespace, so the rewrite's fresh predicates could capture it.
    pub fn magic_collision(name: &str) -> Self {
        Diagnostic {
            code: "DDB018",
            severity: Severity::Warning,
            message: format!(
                "atom `{name}` collides with the reserved `magic__` predicate namespace used by the magic-sets rewrite"
            ),
            rule: None,
            snippet: None,
        }
    }

    /// JSON rendering.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("code", Json::Str(self.code.to_owned())),
            ("severity", Json::Str(self.severity.label().to_owned())),
            ("message", Json::Str(self.message.clone())),
            (
                "rule",
                match self.rule {
                    Some(i) => Json::UInt(i as u64),
                    None => Json::Null,
                },
            ),
            (
                "snippet",
                match &self.snippet {
                    Some(s) => Json::Str(s.clone()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity.label(), self.code)?;
        if let Some(i) = self.rule {
            write!(f, " rule {i}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(s) = &self.snippet {
            write!(f, "  `{s}`")?;
        }
        Ok(())
    }
}

/// Whether two sorted atom slices intersect.
fn intersects(a: &[Atom], b: &[Atom]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Whether sorted `a` is a subset of sorted `b`.
fn subset(a: &[Atom], b: &[Atom]) -> bool {
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// Rule `s` subsumes rule `r` iff the clause of `s` is a sub-clause of the
/// clause of `r`: `head(s) ⊆ head(r)`, `body⁺(s) ⊆ body⁺(r)`,
/// `body⁻(s) ⊆ body⁻(r)`.
fn subsumes(s: &Rule, r: &Rule) -> bool {
    subset(s.head(), r.head())
        && subset(s.body_pos(), r.body_pos())
        && subset(s.body_neg(), r.body_neg())
}

/// Runs the full lint pass over `db` and its dependency graph.
pub fn lint(db: &Database, graph: &DepGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let rules = db.rules();

    // DDB002 — duplicates. Rules compare structurally (sorted, deduped), so
    // exact equality is the right notion.
    let mut first_seen: HashMap<&Rule, usize> = HashMap::new();
    let mut duplicate = vec![false; rules.len()];
    for (i, r) in rules.iter().enumerate() {
        match first_seen.get(r) {
            Some(&j) => {
                duplicate[i] = true;
                out.push(Diagnostic::on_rule(
                    "DDB002",
                    Severity::Warning,
                    format!("duplicate of rule {j}"),
                    db,
                    i,
                ));
            }
            None => {
                first_seen.insert(r, i);
            }
        }
    }

    // DDB003 — tautological (`a` in head and positive body: the clause
    // contains `a ∨ ¬a`) or never-firing (`a` both positive and negated in
    // the body) rules.
    for (i, r) in rules.iter().enumerate() {
        if intersects(r.head(), r.body_pos()) {
            out.push(Diagnostic::on_rule(
                "DDB003",
                Severity::Warning,
                "tautological rule: a head atom also occurs in the positive body (the clause contains a ∨ ¬a)".into(),
                db,
                i,
            ));
        } else if intersects(r.body_pos(), r.body_neg()) {
            out.push(Diagnostic::on_rule(
                "DDB003",
                Severity::Warning,
                "rule can never fire: an atom occurs both positively and under negation in the body".into(),
                db,
                i,
            ));
        }
    }

    // DDB004 — classical subsumption (reported once per subsumed rule;
    // duplicates already have their own code).
    let mut subsumed = vec![false; rules.len()];
    for (i, r) in rules.iter().enumerate() {
        if duplicate[i] {
            continue;
        }
        if let Some(j) = rules.iter().position(|s| s != r && subsumes(s, r)) {
            subsumed[i] = true;
            out.push(Diagnostic::on_rule(
                "DDB004",
                Severity::Warning,
                format!(
                    "classically subsumed by rule {j} (`{}`); note subsumption is not equivalence-preserving under stable-model semantics",
                    display_rule(&rules[j], db.symbols())
                ),
                db,
                i,
            ));
        }
    }

    // DDB005 — atoms that occur somewhere but never in a head: no rule can
    // ever derive them, so they are false in every minimal model. Info
    // only: `a :- not b.`-style "input" atoms are a common idiom.
    let n = db.num_atoms();
    let mut in_head = vec![false; n];
    let mut occurs = vec![false; n];
    for r in rules {
        for &h in r.head() {
            in_head[h.index()] = true;
            occurs[h.index()] = true;
        }
        for &b in r.body_pos().iter().chain(r.body_neg()) {
            occurs[b.index()] = true;
        }
    }
    for a in db.symbols().atoms() {
        if occurs[a.index()] && !in_head[a.index()] {
            out.push(Diagnostic {
                code: "DDB005",
                severity: Severity::Info,
                message: format!(
                    "atom `{}` occurs in rule bodies but in no head: it is never derivable and false under every CWA semantics",
                    db.symbols().name(a)
                ),
                rule: None,
                snippet: None,
            });
        }
    }

    // DDB006 — integrity clauses violated on syntactic grounds alone: an
    // empty body (always violated), or a purely positive body consisting
    // entirely of unconditional atomic facts.
    let mut fact_atoms = vec![false; n];
    for r in rules {
        if r.is_fact() && r.head().len() == 1 {
            fact_atoms[r.head()[0].index()] = true;
        }
    }
    for (i, r) in rules.iter().enumerate() {
        if !r.is_integrity() {
            continue;
        }
        if r.body_pos().is_empty() && r.body_neg().is_empty() {
            out.push(Diagnostic::on_rule(
                "DDB006",
                Severity::Error,
                "integrity clause with empty body: the database is unsatisfiable".into(),
                db,
                i,
            ));
        } else if r.body_neg().is_empty()
            && !r.body_pos().is_empty()
            && r.body_pos().iter().all(|&a| fact_atoms[a.index()])
        {
            out.push(Diagnostic::on_rule(
                "DDB006",
                Severity::Error,
                "integrity clause violated by the facts alone: every body atom is an unconditional fact".into(),
                db,
                i,
            ));
        }
    }

    // DDB009 — dead rules: a positive body atom outside the supportable
    // fixpoint can never be derived under any semantics, so the rule can
    // never fire (the query-slicing analysis would drop it from every
    // slice). Distinct from DDB005 (which points at the atom, not the
    // rules it kills) and from DDB003 (syntactic self-blocking).
    let supportable = crate::slice::supportable_atoms(db);
    for (i, r) in rules.iter().enumerate() {
        if r.is_integrity() {
            continue;
        }
        if let Some(&dead) = r.body_pos().iter().find(|&&b| !supportable[b.index()]) {
            out.push(Diagnostic::on_rule(
                "DDB009",
                Severity::Warning,
                format!(
                    "dead rule: positive body atom `{}` can never be derived, so the rule never fires",
                    db.symbols().name(dead)
                ),
                db,
                i,
            ));
        }
    }

    // DDB010 — subsumption that only appears after the closed-world
    // simplification: dropping never-derivable negative body atoms
    // (`not u` with `u` unsupportable holds in every characteristic
    // model). Only reported when the simplification did something — plain
    // classical subsumption is DDB004.
    let simplified: Vec<Rule> = rules
        .iter()
        .map(|r| {
            Rule::new(
                r.head().to_vec(),
                r.body_pos().to_vec(),
                r.body_neg()
                    .iter()
                    .copied()
                    .filter(|b| supportable[b.index()])
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    for (i, r) in rules.iter().enumerate() {
        if r.is_integrity() || duplicate[i] || subsumed[i] {
            continue;
        }
        if let Some(j) = (0..rules.len()).find(|&j| {
            j != i
                && !rules[j].is_integrity()
                && subsumes(&simplified[j], &simplified[i])
                && !subsumes(&rules[j], r)
                // Tie-break equal simplifications: keep the rule that is
                // classically stronger and flag the other one.
                && !subsumes(r, &rules[j])
        }) {
            out.push(Diagnostic::on_rule(
                "DDB010",
                Severity::Warning,
                format!(
                    "subsumed under the closed-world reading: dropping never-derivable negated body atoms leaves this rule subsumed by rule {j} (`{}`)",
                    display_rule(&rules[j], db.symbols())
                ),
                db,
                i,
            ));
        }
    }

    // DDB011 — an unstratifiable negative loop that spans several
    // *positive* layers: not only is the database unstratifiable
    // (DDB007), but no splitting set can separate the loop's strata, so
    // the bottom-up splitting evaluation cannot decompose it.
    let all = graph.sccs();
    let positive = graph.positive_sccs();
    let mut flagged = vec![false; all.num_components];
    for v in 0..n {
        let a = Atom::new(v as u32);
        for (w, kind) in graph.edges_from(a) {
            let c = all.comp[v];
            if kind != EdgeKind::Negative || all.comp[w.index()] != c || flagged[c] {
                continue;
            }
            let mut pos_comps: Vec<usize> = (0..n)
                .filter(|&u| all.comp[u] == c)
                .map(|u| positive.comp[u])
                .collect();
            pos_comps.sort_unstable();
            pos_comps.dedup();
            if pos_comps.len() < 2 {
                continue;
            }
            flagged[c] = true;
            let mut names: Vec<&str> = (0..n)
                .filter(|&u| all.comp[u] == c)
                .map(|u| db.symbols().name(Atom::new(u as u32)))
                .collect();
            const SHOW: usize = 8;
            let extra = names.len().saturating_sub(SHOW);
            names.truncate(SHOW);
            let mut shown = names.join(", ");
            if extra > 0 {
                shown.push_str(&format!(", … ({extra} more)"));
            }
            out.push(Diagnostic {
                code: "DDB011",
                severity: Severity::Warning,
                message: format!(
                    "unsplittable negative loop: {{{shown}}} recurses through negation across {} positive layers, so no splitting set can decompose it",
                    pos_comps.len()
                ),
                rule: None,
                snippet: None,
            });
        }
    }

    // DDB007 — unstratifiable negation, with the witnessing component.
    if let Some(cycle) = graph.unstratifiable_witness() {
        let mut names: Vec<&str> = cycle.iter().map(|&a| db.symbols().name(a)).collect();
        const SHOW: usize = 8;
        let extra = names.len().saturating_sub(SHOW);
        names.truncate(SHOW);
        let mut shown = names.join(", ");
        if extra > 0 {
            shown.push_str(&format!(", … ({extra} more)"));
        }
        out.push(Diagnostic {
            code: "DDB007",
            severity: Severity::Warning,
            message: format!(
                "negation recurses through {{{shown}}}: the database is unstratifiable, so PERF and ICWA will report Unsupported"
            ),
            rule: None,
            snippet: None,
        });
    }

    // Fully deterministic emission order: by code, then by source
    // position (rule index; unanchored diagnostics sort before anchored
    // ones of the same code). Codes are assigned in ascending severity
    // waves, so errors still read out first within their numeric block,
    // and — unlike a severity-first sort — the order is a pure function
    // of the (code, rule) pairs, stable for CI diffs and snapshots.
    out.sort_by(|a, b| a.code.cmp(b.code).then(a.rule.cmp(&b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::parse_program;

    fn lints(src: &str) -> Vec<Diagnostic> {
        let db = parse_program(src).unwrap();
        lint(&db, &DepGraph::of_database(&db))
    }

    fn codes(src: &str) -> Vec<&'static str> {
        lints(src).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_has_no_lints() {
        assert!(codes("a | b. grounded :- a. grounded :- b.").is_empty());
    }

    #[test]
    fn duplicate_rule_flagged_once() {
        let ds = lints("a :- b. b. a :- b.");
        let dups: Vec<_> = ds.iter().filter(|d| d.code == "DDB002").collect();
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].rule, Some(2));
        assert_eq!(dups[0].severity, Severity::Warning);
    }

    #[test]
    fn tautology_and_never_firing() {
        // `a` is also underivable here, so the dead-rule lint fires too.
        assert_eq!(codes("a | b :- a."), vec!["DDB003", "DDB009"]);
        // c :- b, not b: never fires. b is underivable too (info).
        let ds = lints("c :- b, not b.");
        assert!(ds.iter().any(|d| d.code == "DDB003"));
        assert!(ds.iter().any(|d| d.code == "DDB005"));
        assert!(ds.iter().any(|d| d.code == "DDB009"));
    }

    #[test]
    fn subsumption() {
        // a. subsumes a | b :- c.
        let ds = lints("a. a | b :- c.");
        let sub: Vec<_> = ds.iter().filter(|d| d.code == "DDB004").collect();
        assert_eq!(sub.len(), 1);
        assert_eq!(sub[0].rule, Some(1));
        // No subsumption between incomparable rules.
        assert!(codes("a :- b. b :- a.").iter().all(|&c| c != "DDB004"));
    }

    #[test]
    fn underivable_atom_is_info() {
        let ds = lints("a :- not input.");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "DDB005");
        assert_eq!(ds[0].severity, Severity::Info);
        assert!(ds[0].message.contains("input"));
    }

    #[test]
    fn facially_violated_constraints() {
        let ds = lints("a. b. :- a, b.");
        assert!(ds
            .iter()
            .any(|d| d.code == "DDB006" && d.severity == Severity::Error));
        // Conditional fact does not trigger it.
        assert!(lints("a. b :- a. :- a, b.")
            .iter()
            .all(|d| d.code != "DDB006"));
    }

    #[test]
    fn unstratifiable_warning_names_cycle() {
        let ds = lints("p :- not q. q :- not p.");
        let w = ds.iter().find(|d| d.code == "DDB007").unwrap();
        assert!(w.message.contains('p') && w.message.contains('q'));
        assert!(w.message.contains("PERF"));
    }

    #[test]
    fn dead_rule_flagged_with_the_underivable_atom() {
        // e is underivable, so `d :- e.` is dead; the supportable
        // fixpoint trusts disjunctive facts and negation optimistically.
        let ds = lints("a | b. c :- a, not z. d :- e.");
        let dead: Vec<_> = ds.iter().filter(|d| d.code == "DDB009").collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].rule, Some(2));
        assert!(dead[0].message.contains('e'));
        assert_eq!(dead[0].severity, Severity::Warning);
        // A derivable chain stays clean.
        assert!(codes("a. b :- a. c :- b.").is_empty());
    }

    #[test]
    fn closed_world_subsumption() {
        // u is underivable, so rule 0 simplifies to `a :- b.`, which
        // subsumes rule 1. Classical subsumption (DDB004) does not apply
        // because {u} ⊄ {c}.
        let ds = lints("a :- b, not u. a :- b, not c. b. c :- b.");
        assert!(ds.iter().all(|d| d.code != "DDB004"));
        let sub: Vec<_> = ds.iter().filter(|d| d.code == "DDB010").collect();
        assert_eq!(sub.len(), 1);
        assert_eq!(sub[0].rule, Some(1));
        assert!(sub[0].message.contains("rule 0"));
        // With u derivable the rules are genuinely incomparable: no lint.
        let ds = lints("a :- b, not u. a :- b, not c. b. c :- b. u :- b.");
        assert!(ds.iter().all(|d| d.code != "DDB010"));
        // Plain classical subsumption stays DDB004, not DDB010.
        let ds = lints("a :- b. a :- b, not u. b.");
        assert!(ds.iter().any(|d| d.code == "DDB004" && d.rule == Some(1)));
        assert!(ds.iter().all(|d| d.code != "DDB010"));
    }

    #[test]
    fn unsplittable_negative_loop_spans_layers() {
        // p/q negate each other across two positive layers.
        let ds = lints("p :- not q. q :- not p.");
        let w = ds.iter().find(|d| d.code == "DDB011").unwrap();
        assert!(w.message.contains('p') && w.message.contains('q'));
        assert!(w.message.contains("2 positive layers"));
        // A self-loop `a :- not a.` is unstratifiable (DDB007) but spans a
        // single positive layer: DDB011 stays quiet.
        let ds = lints("a :- not a.");
        assert!(ds.iter().any(|d| d.code == "DDB007"));
        assert!(ds.iter().all(|d| d.code != "DDB011"));
    }

    #[test]
    fn emission_order_is_code_then_position() {
        // Deterministic order contract: (code, rule) ascending, severity
        // playing no part. `a. a. :- a.` yields DDB002 (rule 1) before
        // DDB006 (rule 2) even though DDB006 is the error.
        let ds = lints("a. a. :- a.");
        assert!(ds.len() >= 2);
        assert_eq!((ds[0].code, ds[0].rule), ("DDB002", Some(1)));
        assert_eq!((ds[1].code, ds[1].rule), ("DDB006", Some(2)));
        // And the order is a sorted sequence of (code, rule) keys on a
        // program that trips many codes at once.
        let ds = lints("a | b :- a. a. a. :- a. d :- e.");
        let keys: Vec<_> = ds.iter().map(|d| (d.code, d.rule)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "emission order must be (code, rule) sorted");
    }

    #[test]
    fn planner_lint_constructors() {
        let d = Diagnostic::unbound_adornment("part^f");
        assert_eq!((d.code, d.severity), ("DDB012", Severity::Info));
        assert!(d.message.contains("part^f"));
        let d = Diagnostic::exponential_plan("DSM", u64::MAX, 40);
        assert_eq!((d.code, d.severity), ("DDB013", Severity::Warning));
        assert!(d.message.contains(">=2^63"));
        let d = Diagnostic::ineffective_slice();
        assert_eq!((d.code, d.severity), ("DDB014", Severity::Info));
        let d = Diagnostic::infeasible_plan("GCWA", 4096, 100);
        assert_eq!((d.code, d.severity), ("DDB015", Severity::Warning));
        assert!(d.message.contains("4096") && d.message.contains("100"));
        let d = Diagnostic::magic_inadmissible("GCWA", 2, "d :- c.");
        assert_eq!((d.code, d.severity), ("DDB016", Severity::Info));
        assert_eq!(d.rule, Some(2));
        assert_eq!(d.snippet.as_deref(), Some("d :- c."));
        assert!(d.message.contains("GCWA"));
        let d = Diagnostic::magic_noop();
        assert_eq!((d.code, d.severity), ("DDB017", Severity::Info));
        let d = Diagnostic::magic_collision("magic__p(a)");
        assert_eq!((d.code, d.severity), ("DDB018", Severity::Warning));
        assert!(d.message.contains("magic__p(a)"));
    }

    #[test]
    fn empty_body_constraint_is_error() {
        let mut db = ddb_logic::Database::with_fresh_atoms(1);
        db.add_rule(ddb_logic::Rule::integrity([], []));
        let ds = lint(&db, &DepGraph::of_database(&db));
        assert!(ds
            .iter()
            .any(|d| d.code == "DDB006" && d.message.contains("empty body")));
    }

    #[test]
    fn constructors() {
        let d = Diagnostic::unsafe_rule(3, "X", "p(X).");
        assert_eq!(d.code, "DDB001");
        assert_eq!(d.rule, Some(3));
        assert!(d.to_json().get("severity").unwrap().as_str() == Some("error"));
        let u = Diagnostic::unknown_atom("partition P", "zz");
        assert_eq!(u.code, "DDB008");
        assert!(u.message.contains("zz"));
    }
}
