//! Fragment classification: which syntactic fragments a database falls in.
//!
//! The paper's complexity tables are not uniformly hard — entire rows
//! collapse to "in P" or O(1) on fragments. Recognizing the fragment is the
//! cheap, polynomial step that unlocks the cheap algorithm, so every flag
//! here is computable in time linear in the database plus one SCC
//! decomposition of its dependency graph.
//!
//! The fragments form a lattice (arrows are inclusions):
//!
//! ```text
//! definite ⊂ Horn ⊂ deductive ⊃ positive
//! positive ⊂ deductive ⊂ stratified ⊂ normal        (DbClass chain)
//! tight ⊂ head-cycle-free                            (on the positive graph)
//! ```

use ddb_logic::depgraph::DepGraph;
use ddb_logic::{Database, DbClass};
use ddb_obs::json::Json;

/// The syntactic fragments a database belongs to. Flags are not mutually
/// exclusive — a definite database is also Horn, deductive, stratified,
/// head-cycle-free and tight.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fragments {
    /// The most specific [`DbClass`] (the paper's chain
    /// Positive ⊂ Deductive ⊂ Stratified ⊂ Normal).
    pub class: DbClass,
    /// Every rule has at most one head atom and no negation (integrity
    /// clauses allowed). Horn databases have a least model computable by a
    /// polynomial fixpoint, collapsing all ten semantics.
    pub horn: bool,
    /// Every rule has exactly one head atom and no negation — Horn without
    /// integrity clauses, so the database is always consistent.
    pub definite: bool,
    /// No negation and no integrity clauses (the class of Table 1).
    pub positive: bool,
    /// No negation (`DB ⊆ C⁺`); integrity clauses allowed.
    pub deductive: bool,
    /// The database has a stratification (negation does not recurse).
    pub stratified: bool,
    /// No rule has two head atoms in the same strongly connected component
    /// of the positive dependency graph (Ben-Eliyahu & Dechter). For HCF
    /// databases DSM coincides with the stable models of the *shifted*
    /// normal program, making the stability check polynomial.
    pub head_cycle_free: bool,
    /// The positive dependency graph is acyclic (Fages): completion and
    /// stable semantics coincide.
    pub tight: bool,
}

impl Fragments {
    /// Computes all fragment flags from the database and its dependency
    /// graph.
    pub fn of(db: &Database, graph: &DepGraph) -> Self {
        let horn = db.is_horn();
        let definite = horn && !db.has_integrity_clauses();
        let positive = db.is_positive();
        let deductive = !db.has_negation();
        let stratified = deductive || graph.stratification().is_some();
        let pos_sccs = graph.positive_sccs();
        let head_cycle_free = db.rules().iter().all(|r| {
            let head = r.head();
            head.len() < 2
                || head
                    .iter()
                    .enumerate()
                    .all(|(i, &a)| head[i + 1..].iter().all(|&b| !pos_sccs.same(a, b)))
        });
        let tight = pos_sccs.sizes().iter().all(|&s| s == 1)
            && db
                .symbols()
                .atoms()
                .all(|a| !graph.has_positive_self_loop(a));
        Fragments {
            class: if deductive {
                if db.has_integrity_clauses() {
                    DbClass::Deductive
                } else {
                    DbClass::Positive
                }
            } else if stratified {
                DbClass::Stratified
            } else {
                DbClass::Normal
            },
            horn,
            definite,
            positive,
            deductive,
            stratified,
            head_cycle_free,
            tight,
        }
    }

    /// The names of the fragments that hold, for human-facing output.
    pub fn names(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for (flag, name) in [
            (self.definite, "definite"),
            (self.horn, "horn"),
            (self.positive, "positive"),
            (self.deductive, "deductive"),
            (self.stratified, "stratified"),
            (self.head_cycle_free, "head-cycle-free"),
            (self.tight, "tight"),
        ] {
            if flag {
                out.push(name);
            }
        }
        out
    }

    /// JSON rendering: the class plus one boolean per fragment.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("class", Json::Str(format!("{:?}", self.class))),
            ("horn", Json::Bool(self.horn)),
            ("definite", Json::Bool(self.definite)),
            ("positive", Json::Bool(self.positive)),
            ("deductive", Json::Bool(self.deductive)),
            ("stratified", Json::Bool(self.stratified)),
            ("head_cycle_free", Json::Bool(self.head_cycle_free)),
            ("tight", Json::Bool(self.tight)),
        ])
    }
}

/// Convenience: classify `db` without keeping the graph around.
pub fn classify(db: &Database) -> Fragments {
    Fragments::of(db, &DepGraph::of_database(db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::parse_program;

    fn frags(src: &str) -> Fragments {
        classify(&parse_program(src).unwrap())
    }

    #[test]
    fn definite_implies_everything() {
        let f = frags("a. b :- a. c :- a, b.");
        assert!(f.definite && f.horn && f.positive && f.deductive);
        assert!(f.stratified && f.head_cycle_free && f.tight);
        assert_eq!(f.class, DbClass::Positive);
    }

    #[test]
    fn integrity_clause_breaks_definite_not_horn() {
        let f = frags("a. :- a, b.");
        assert!(f.horn && !f.definite);
        assert_eq!(f.class, DbClass::Deductive);
    }

    #[test]
    fn disjunction_breaks_horn_keeps_hcf() {
        let f = frags("a | b. c :- a.");
        assert!(!f.horn && f.positive && f.head_cycle_free && f.tight);
    }

    #[test]
    fn head_cycle_detected() {
        // a ∨ b with a ← b and b ← a: both head atoms in one positive SCC.
        let f = frags("a | b. a :- b. b :- a.");
        assert!(!f.head_cycle_free);
        assert!(!f.tight);
        // Cycle through heads of *different* rules stays HCF.
        let g = frags("a | b :- c. c :- b.");
        assert!(g.head_cycle_free && !g.tight);
    }

    #[test]
    fn self_loop_breaks_tightness_only() {
        let f = frags("a :- a.");
        assert!(f.head_cycle_free && !f.tight && f.horn);
    }

    #[test]
    fn negation_classes() {
        assert_eq!(frags("b :- not a.").class, DbClass::Stratified);
        assert_eq!(frags("a :- not b. b :- not a.").class, DbClass::Normal);
        assert!(!frags("a :- not b. b :- not a.").stratified);
    }
}
