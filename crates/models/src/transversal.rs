//! Minimal hypergraph transversals (Berge's algorithm) — the
//! combinatorial core of EGCWA's *derived integrity clauses*.
//!
//! EGCWA augments a database with every subset-minimal integrity clause
//! `← a₁ ∧ … ∧ aₙ` that holds in all minimal models, i.e. every minimal
//! set `S` of atoms such that **no** minimal model contains all of `S`.
//! Since `S ⊈ M ⟺ S ∩ (V ∖ M) ≠ ∅`, these are exactly the **minimal
//! transversals** (hitting sets) of the hypergraph
//! `{V ∖ M : M ∈ MM(DB)}` — a classical dualization problem.
//!
//! [`minimal_transversals`] implements Berge's incremental algorithm:
//! process edges one at a time, crossing the current transversal set with
//! the new edge and pruning non-minimal results. Worst-case output (and
//! intermediate) size is exponential — inherent, since the number of
//! minimal transversals can be — so a `cap` bounds the work.

use ddb_logic::{Atom, Interpretation};
use ddb_obs::budget::{self, Governed};

/// Computes all minimal transversals of the hypergraph `edges` over a
/// vocabulary of `num_atoms` atoms. Every edge must be non-empty (an
/// empty edge admits no transversal — the function returns `Ok(None)` in
/// that case, matching "no transversal exists"). Returns `Ok(None)` also
/// if more than `cap` sets would be kept at any point, and `Err` when the
/// installed [`ddb_obs::Budget`] trips: each kept transversal is one
/// governance checkpoint, so deadlines interrupt the (worst-case
/// exponential) crossing even below the cap.
///
/// Output sets are sorted and pairwise incomparable (an antichain).
pub fn minimal_transversals(
    num_atoms: usize,
    edges: &[Interpretation],
    cap: usize,
) -> Governed<Option<Vec<Interpretation>>> {
    if edges.iter().any(Interpretation::is_empty_set) {
        return Ok(None);
    }
    // Start with the single empty transversal.
    let mut current: Vec<Interpretation> = vec![Interpretation::empty(num_atoms)];
    for edge in edges {
        let mut next: Vec<Interpretation> = Vec::new();
        // Transversals already hitting the edge survive unchanged.
        let (hitting, missing): (Vec<_>, Vec<_>) = current
            .into_iter()
            .partition(|t| t.iter().any(|a| edge.contains(a)));
        next.extend(hitting);
        // The rest get extended by every vertex of the new edge…
        for t in &missing {
            for v in edge.iter() {
                let mut ext = t.clone();
                ext.insert(v);
                // …kept only if not dominated by a surviving transversal.
                if !next.iter().any(|s| s.is_subset(&ext)) {
                    budget::checkpoint().map_err(|e| {
                        e.with_partial(format!("{} transversal(s) kept", next.len()))
                    })?;
                    // Extensions of different missing transversals can
                    // dominate each other; prune both directions.
                    next.retain(|s| !ext.is_subset(s));
                    next.push(ext);
                    if next.len() > cap {
                        return Ok(None);
                    }
                }
            }
        }
        current = next;
    }
    current.sort();
    Ok(Some(current))
}

/// Brute-force reference: all minimal hitting sets by subset enumeration
/// (≤ 20 atoms; used by tests).
pub fn minimal_transversals_brute(
    num_atoms: usize,
    edges: &[Interpretation],
) -> Option<Vec<Interpretation>> {
    if edges.iter().any(Interpretation::is_empty_set) {
        return None;
    }
    assert!(num_atoms <= 20);
    let hits = |s: &Interpretation| edges.iter().all(|e| e.iter().any(|a| s.contains(a)));
    let mut all: Vec<Interpretation> = Vec::new();
    for bits in 0u64..1 << num_atoms {
        let s = Interpretation::from_atoms(
            num_atoms,
            (0..num_atoms)
                .filter(|&i| bits >> i & 1 == 1)
                .map(|i| Atom::new(i as u32)),
        );
        if hits(&s) {
            all.push(s);
        }
    }
    let minimal: Vec<Interpretation> = all
        .iter()
        .filter(|s| !all.iter().any(|s2| s2.is_proper_subset(s)))
        .cloned()
        .collect();
    Some(minimal)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(n: usize, atoms: &[u32]) -> Interpretation {
        Interpretation::from_atoms(n, atoms.iter().map(|&i| Atom::new(i)))
    }

    #[test]
    fn single_edge() {
        let edges = vec![edge(3, &[0, 2])];
        let t = minimal_transversals(3, &edges, 100).unwrap().unwrap();
        assert_eq!(t, vec![edge(3, &[0]), edge(3, &[2])]);
    }

    #[test]
    fn crossing_two_edges() {
        // Edges {0,1}, {2}: transversals {0,2}, {1,2}.
        let edges = vec![edge(3, &[0, 1]), edge(3, &[2])];
        let t = minimal_transversals(3, &edges, 100).unwrap().unwrap();
        assert_eq!(t, vec![edge(3, &[0, 2]), edge(3, &[1, 2])]);
    }

    #[test]
    fn overlap_collapses() {
        // Edges {0,1}, {1,2}: minimal transversals {1}, {0,2}.
        let edges = vec![edge(3, &[0, 1]), edge(3, &[1, 2])];
        let t = minimal_transversals(3, &edges, 100).unwrap().unwrap();
        // Sorted by bitset words: {1} (=0b010) before {0,2} (=0b101).
        assert_eq!(t, vec![edge(3, &[1]), edge(3, &[0, 2])]);
    }

    #[test]
    fn empty_edge_means_none() {
        let edges = vec![edge(2, &[0]), edge(2, &[])];
        assert!(minimal_transversals(2, &edges, 100).unwrap().is_none());
    }

    #[test]
    fn no_edges_gives_empty_transversal() {
        let t = minimal_transversals(3, &[], 100).unwrap().unwrap();
        assert_eq!(t, vec![Interpretation::empty(3)]);
    }

    #[test]
    fn cap_triggers() {
        // n disjoint 2-edges → 2^n transversals.
        let edges: Vec<Interpretation> = (0..6).map(|i| edge(12, &[2 * i, 2 * i + 1])).collect();
        assert!(minimal_transversals(12, &edges, 10).unwrap().is_none());
        let t = minimal_transversals(12, &edges, 100).unwrap().unwrap();
        assert_eq!(t.len(), 64);
    }

    #[test]
    fn matches_brute_on_random_hypergraphs() {
        let mut state = 0x123456789ABCDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..40 {
            let n = 6;
            let m = (next() % 5 + 1) as usize;
            let edges: Vec<Interpretation> = (0..m)
                .map(|_| {
                    let mut e = Interpretation::empty(n);
                    let width = next() % 3 + 1;
                    for _ in 0..width {
                        e.insert(Atom::new((next() % n as u64) as u32));
                    }
                    e
                })
                .collect();
            assert_eq!(
                minimal_transversals(n, &edges, 100_000).unwrap(),
                minimal_transversals_brute(n, &edges),
                "round {round}: {edges:?}"
            );
        }
    }
}
