//! Vocabulary partitions ⟨P;Q;Z⟩ for careful/extended closed-world
//! reasoning and circumscription.

use ddb_logic::{Atom, Interpretation};

/// A partition ⟨P;Q;Z⟩ of the vocabulary:
///
/// * `P` — atoms to *minimize*;
/// * `Q` — atoms held *fixed*;
/// * `Z` — atoms allowed to *vary* freely.
///
/// The induced preorder on models is `M′ ≤ M` iff `M′ ∩ Q = M ∩ Q` and
/// `M′ ∩ P ⊆ M ∩ P` (the `Z` parts are unconstrained); the ⟨P;Z⟩-minimal
/// models `MM(DB; P; Z)` are the models with no strictly smaller model.
/// GCWA/EGCWA arise as the special case `P = V`, `Q = Z = ∅`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Partition {
    p: Interpretation,
    q: Interpretation,
    z: Interpretation,
}

impl Partition {
    /// Builds a partition from three disjoint masks covering the
    /// vocabulary.
    ///
    /// # Panics
    /// Panics if the masks overlap or do not cover all atoms.
    pub fn new(p: Interpretation, q: Interpretation, z: Interpretation) -> Self {
        let n = p.num_atoms();
        assert_eq!(q.num_atoms(), n, "mask sizes differ");
        assert_eq!(z.num_atoms(), n, "mask sizes differ");
        let mut union = p.clone();
        union.union_with(&q);
        union.union_with(&z);
        assert_eq!(
            union.count(),
            p.count() + q.count() + z.count(),
            "partition masks must be pairwise disjoint"
        );
        assert_eq!(union.count(), n, "partition must cover the vocabulary");
        Partition { p, q, z }
    }

    /// The GCWA partition: minimize everything (`P = V`).
    pub fn minimize_all(num_atoms: usize) -> Self {
        Partition {
            p: Interpretation::full(num_atoms),
            q: Interpretation::empty(num_atoms),
            z: Interpretation::empty(num_atoms),
        }
    }

    /// Builds a partition from explicit atom lists (`P`, `Q`; everything
    /// else goes to `Z`).
    pub fn from_p_q(
        num_atoms: usize,
        p: impl IntoIterator<Item = Atom>,
        q: impl IntoIterator<Item = Atom>,
    ) -> Self {
        let p = Interpretation::from_atoms(num_atoms, p);
        let q = Interpretation::from_atoms(num_atoms, q);
        let mut overlap = p.clone();
        overlap.intersect_with(&q);
        assert!(overlap.is_empty_set(), "P and Q must be disjoint");
        let mut z = Interpretation::full(num_atoms);
        z.difference_with(&p);
        z.difference_with(&q);
        Partition { p, q, z }
    }

    /// The minimized atoms `P`.
    pub fn p(&self) -> &Interpretation {
        &self.p
    }

    /// The fixed atoms `Q`.
    pub fn q(&self) -> &Interpretation {
        &self.q
    }

    /// The varying atoms `Z`.
    pub fn z(&self) -> &Interpretation {
        &self.z
    }

    /// Number of atoms in the vocabulary.
    pub fn num_atoms(&self) -> usize {
        self.p.num_atoms()
    }

    /// Whether `a ≤ b` in the induced preorder: equal on `Q` and
    /// `a ∩ P ⊆ b ∩ P`.
    pub fn le(&self, a: &Interpretation, b: &Interpretation) -> bool {
        a.agrees_within(b, &self.q) && a.is_subset_within(b, &self.p)
    }

    /// Whether `a < b`: `a ≤ b` and they differ on `P`.
    pub fn lt(&self, a: &Interpretation, b: &Interpretation) -> bool {
        self.le(a, b) && !a.agrees_within(b, &self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interp(n: usize, atoms: &[u32]) -> Interpretation {
        Interpretation::from_atoms(n, atoms.iter().map(|&i| Atom::new(i)))
    }

    #[test]
    fn minimize_all_orders_by_subset() {
        let part = Partition::minimize_all(4);
        let a = interp(4, &[0]);
        let b = interp(4, &[0, 1]);
        assert!(part.le(&a, &b));
        assert!(part.lt(&a, &b));
        assert!(!part.lt(&a, &a));
        assert!(!part.le(&b, &a));
    }

    #[test]
    fn q_must_agree() {
        // P = {0}, Q = {1}, Z = {2}.
        let part = Partition::from_p_q(3, [Atom::new(0)], [Atom::new(1)]);
        let a = interp(3, &[1]);
        let b = interp(3, &[0, 1, 2]);
        assert!(part.le(&a, &b)); // agree on Q={1}, ∅ ⊆ {0} on P, Z free
        assert!(part.lt(&a, &b));
        let c = interp(3, &[0]); // differs from a on Q
        assert!(!part.le(&c, &b) || part.le(&c, &b)); // c vs b: Q: c∌1, b∋1 → not ≤
        assert!(!part.le(&c, &b));
    }

    #[test]
    fn z_is_ignored() {
        let part = Partition::from_p_q(3, [Atom::new(0)], [Atom::new(1)]);
        let a = interp(3, &[2]);
        let b = interp(3, &[]);
        // Same Q (∅), same P (∅), different Z: equal in the preorder.
        assert!(part.le(&a, &b) && part.le(&b, &a));
        assert!(!part.lt(&a, &b));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_masks_rejected() {
        let p = interp(2, &[0]);
        let q = interp(2, &[0]);
        let z = interp(2, &[1]);
        let _ = Partition::new(p, q, z);
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn non_covering_masks_rejected() {
        let p = interp(2, &[0]);
        let q = interp(2, &[]);
        let z = interp(2, &[]);
        let _ = Partition::new(p, q, z);
    }
}
