//! The Πᵖ₂ workhorse: inference in all ⟨P;Z⟩-minimal models.
//!
//! `MM(DB;P;Z) ⊨ F` is the paper's central upper-bound pattern (GCWA,
//! EGCWA, CCWA, ECWA/CIRC, ICWA and — via reducts — DSM all bottom out
//! here). We implement it as a counterexample-guided abstraction refinement
//! (CEGAR) loop over the NP oracle:
//!
//! 1. *Guess* a candidate countermodel `M ⊨ DB ∧ ¬F` (one SAT call; if none
//!    exists, `F` holds in every model, a fortiori in every minimal one).
//! 2. *Minimize* `M` within `DB` to a ⟨P;Z⟩-minimal `M*` (shrink loop).
//! 3. Since ⟨P;Z⟩-minimality depends only on the `P`- and `Q`-parts of a
//!    model, ask whether *any* model with `M*`'s exact ⟨P,Q⟩-signature
//!    falsifies `F` (one SAT call). If yes — that model is a genuine
//!    minimal countermodel: answer **no**.
//! 4. Otherwise *refine*: block every candidate whose `Q`-part equals and
//!    whose `P`-part dominates `M*`'s. No true countermodel is lost: a
//!    ⟨P;Z⟩-minimal countermodel `X` caught by the block would satisfy
//!    `X∩Q = M*∩Q` and `X∩P ⊇ M*∩P`; minimality of both forces
//!    `X∩P = M*∩P`, i.e. `X` has the signature just proven to admit no
//!    countermodel — contradiction. The current candidate is always
//!    blocked, so the loop terminates.
//!
//! The candidate count ([`crate::Cost::candidates`]) is the number of CEGAR
//! rounds — the quantity that blows up exactly on Πᵖ₂-hard instances,
//! which the benchmark harness measures. Each round is additionally one
//! governance checkpoint, so a deadline or cancellation budget interrupts
//! the loop between rounds even when individual oracle calls are cheap.

use crate::classical::project;
use crate::minimal::Minimizer;
use crate::{Cost, Partition};
use ddb_logic::cnf::CnfBuilder;
use ddb_logic::{Database, Formula, Interpretation, Literal};
use ddb_obs::budget::{self, Governed};
use ddb_sat::Solver;

/// Whether `F` holds in every ⟨P;Z⟩-minimal model of `DB`
/// (`MM(DB;P;Z) ⊨ F`). Vacuously true when `DB` is unsatisfiable.
/// `Err` when the installed [`ddb_obs::Budget`] trips mid-search.
///
/// ```
/// use ddb_logic::parse::{parse_formula, parse_program};
/// use ddb_models::{circumscribe, Cost, Partition};
/// let db = parse_program("a | b. c :- a, b.").unwrap();
/// let part = Partition::minimize_all(db.num_atoms());
/// let not_c = parse_formula("!c", db.symbols()).unwrap();
/// let mut cost = Cost::new();
/// assert!(circumscribe::holds_in_all_pz_minimal_models(&db, &part, &not_c, &mut cost).unwrap());
/// ```
pub fn holds_in_all_pz_minimal_models(
    db: &Database,
    part: &Partition,
    f: &Formula,
    cost: &mut Cost,
) -> Governed<bool> {
    let _span = ddb_obs::span("models.circ.holds_in_all");
    let n = db.num_atoms();
    // Candidate source: DB ∧ ¬F (Tseitin over an extended vocabulary).
    let mut b = CnfBuilder::new(n);
    b.add_database(db);
    b.assert_formula(&f.clone().negated());
    let counterexample_cnf = b.finish();
    let mut candidates = Solver::from_cnf(&counterexample_cnf);
    candidates.ensure_vars(counterexample_cnf.num_vars.max(n));
    let mut minimizer = Minimizer::new(db, part.clone());

    // `candidates` is absorbed exactly once, after the loop exits (Ok or
    // interrupted), so its statistics are never double-counted.
    let mut run = |cost: &mut Cost, candidates: &mut Solver| -> Governed<bool> {
        loop {
            budget::checkpoint()?;
            let _round = ddb_obs::hist_span("cegar.round", "cegar.round.ns");
            if !candidates.solve()?.is_sat() {
                return Ok(true);
            }
            cost.candidates += 1;
            ddb_obs::counter_bump("models.circ.candidates", 1);
            let m = project(&candidates.model(), n);
            debug_assert!(db.satisfied_by(&m));
            debug_assert!(!f.eval(&m));
            let minimal = minimizer.minimize(&m, cost)?;

            // Signature check: some model with M*'s ⟨P,Q⟩-signature ⊨ ¬F?
            let same_signature =
                minimal.agrees_within(&m, part.p()) && minimal.agrees_within(&m, part.q());
            if same_signature {
                // M itself is ⟨P;Z⟩-minimal and falsifies F.
                return Ok(false);
            }
            let mut check = Solver::from_cnf(&counterexample_cnf);
            check.ensure_vars(counterexample_cnf.num_vars.max(n));
            for a in part.p().iter().chain(part.q().iter()) {
                check.add_clause(&[Literal::with_sign(a, minimal.contains(a))]);
            }
            let counter_result = check.solve();
            cost.absorb(&check);
            if counter_result?.is_sat() {
                return Ok(false);
            }

            // Refine: block the dominated cone of M*'s signature.
            let mut blocking: Vec<Literal> = Vec::new();
            for a in part.q().iter() {
                blocking.push(Literal::with_sign(a, !minimal.contains(a)));
            }
            for a in part.p().iter() {
                if minimal.contains(a) {
                    blocking.push(a.neg());
                }
            }
            if blocking.is_empty() || !candidates.add_clause(&blocking) {
                return Ok(true);
            }
        }
    };
    let result = run(cost, &mut candidates);
    cost.absorb(&candidates);
    result
}

/// Whether `F` holds in every (subset-)minimal model (`MM(DB) ⊨ F`).
pub fn holds_in_all_minimal_models(db: &Database, f: &Formula, cost: &mut Cost) -> Governed<bool> {
    holds_in_all_pz_minimal_models(db, &Partition::minimize_all(db.num_atoms()), f, cost)
}

/// Whether some ⟨P;Z⟩-minimal model satisfies `F` (the Σᵖ₂ dual).
pub fn exists_pz_minimal_model_satisfying(
    db: &Database,
    part: &Partition,
    f: &Formula,
    cost: &mut Cost,
) -> Governed<bool> {
    Ok(!holds_in_all_pz_minimal_models(
        db,
        part,
        &f.clone().negated(),
        cost,
    )?)
}

/// Returns a ⟨P;Z⟩-minimal model satisfying `F`, if one exists.
///
/// Same CEGAR loop as [`holds_in_all_pz_minimal_models`] (searching for a
/// countermodel of `¬F`), but materializing the witness.
pub fn find_pz_minimal_model_satisfying(
    db: &Database,
    part: &Partition,
    f: &Formula,
    cost: &mut Cost,
) -> Governed<Option<Interpretation>> {
    let _span = ddb_obs::span("models.circ.find_model");
    let n = db.num_atoms();
    let mut b = CnfBuilder::new(n);
    b.add_database(db);
    b.assert_formula(f);
    let cnf = b.finish();
    let mut candidates = Solver::from_cnf(&cnf);
    candidates.ensure_vars(cnf.num_vars.max(n));
    let mut minimizer = Minimizer::new(db, part.clone());

    let mut run = |cost: &mut Cost, candidates: &mut Solver| -> Governed<Option<Interpretation>> {
        loop {
            budget::checkpoint()?;
            let _round = ddb_obs::hist_span("cegar.round", "cegar.round.ns");
            if !candidates.solve()?.is_sat() {
                return Ok(None);
            }
            cost.candidates += 1;
            ddb_obs::counter_bump("models.circ.candidates", 1);
            let m = project(&candidates.model(), n);
            let minimal = minimizer.minimize(&m, cost)?;
            let same_signature =
                minimal.agrees_within(&m, part.p()) && minimal.agrees_within(&m, part.q());
            if same_signature {
                return Ok(Some(m));
            }
            let mut check = Solver::from_cnf(&cnf);
            check.ensure_vars(cnf.num_vars.max(n));
            for a in part.p().iter().chain(part.q().iter()) {
                check.add_clause(&[Literal::with_sign(a, minimal.contains(a))]);
            }
            let witness_result = check.solve();
            cost.absorb(&check);
            if witness_result?.is_sat() {
                let witness = project(&check.model(), n);
                return Ok(Some(witness));
            }

            let mut blocking: Vec<Literal> = Vec::new();
            for a in part.q().iter() {
                blocking.push(Literal::with_sign(a, !minimal.contains(a)));
            }
            for a in part.p().iter() {
                if minimal.contains(a) {
                    blocking.push(a.neg());
                }
            }
            if blocking.is_empty() || !candidates.add_clause(&blocking) {
                return Ok(None);
            }
        }
    };
    let result = run(cost, &mut candidates);
    cost.absorb(&candidates);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal::is_pz_minimal_model;
    use ddb_logic::parse::{parse_formula, parse_program};

    #[test]
    fn gcwa_style_negative_inference() {
        // a ∨ b: minimal models {a},{b}; c is false in both.
        let db = parse_program("a | b. c :- a, b.").unwrap();
        let f = parse_formula("!c", db.symbols()).unwrap();
        let mut cost = Cost::new();
        assert!(holds_in_all_minimal_models(&db, &f, &mut cost).unwrap());
        // But a is not false in all minimal models, nor true in all.
        let fa = parse_formula("a", db.symbols()).unwrap();
        let nfa = parse_formula("!a", db.symbols()).unwrap();
        assert!(!holds_in_all_minimal_models(&db, &fa, &mut cost).unwrap());
        assert!(!holds_in_all_minimal_models(&db, &nfa, &mut cost).unwrap());
        // The disjunction itself holds.
        let ab = parse_formula("a | b", db.symbols()).unwrap();
        assert!(holds_in_all_minimal_models(&db, &ab, &mut cost).unwrap());
    }

    #[test]
    fn unsat_db_vacuous() {
        let db = parse_program("a. :- a.").unwrap();
        let f = parse_formula("false", db.symbols()).unwrap();
        let mut cost = Cost::new();
        assert!(holds_in_all_minimal_models(&db, &f, &mut cost).unwrap());
    }

    #[test]
    fn matches_enumeration_reference() {
        // Cross-check CEGAR against explicit minimal-model enumeration.
        let db = parse_program("a | b. b | c. :- a, c. d :- b.").unwrap();
        let mut cost = Cost::new();
        let mm = crate::minimal::minimal_models(&db, &mut cost).unwrap();
        assert!(!mm.is_empty());
        for text in ["a", "!a", "b", "d", "b & d", "a | c", "!(a & c)", "b -> d"] {
            let f = parse_formula(text, db.symbols()).unwrap();
            let expected = mm.iter().all(|m| f.eval(m));
            let got = holds_in_all_minimal_models(&db, &f, &mut cost).unwrap();
            assert_eq!(got, expected, "formula {text}");
        }
    }

    #[test]
    fn pz_inference_with_partition() {
        // P={a}, Q={b}, Z={c}: DB = a ∨ b ∨ c.
        let db = parse_program("a | b | c.").unwrap();
        let syms = db.symbols();
        let part = Partition::from_p_q(3, [syms.lookup("a").unwrap()], [syms.lookup("b").unwrap()]);
        let mut cost = Cost::new();
        // ¬a holds in all ⟨P;Z⟩-minimal models: for any Q-part, a model
        // with a=false exists (choose c or b true), so no minimal model has a.
        let na = parse_formula("!a", syms).unwrap();
        assert!(holds_in_all_pz_minimal_models(&db, &part, &na, &mut cost).unwrap());
        // But ¬c does not (e.g. {c} is minimal).
        let nc = parse_formula("!c", syms).unwrap();
        assert!(!holds_in_all_pz_minimal_models(&db, &part, &nc, &mut cost).unwrap());
    }

    #[test]
    fn find_witness_is_minimal_and_satisfying() {
        let db = parse_program("a | b. b | c.").unwrap();
        let part = Partition::minimize_all(3);
        let f = parse_formula("b", db.symbols()).unwrap();
        let mut cost = Cost::new();
        let w = find_pz_minimal_model_satisfying(&db, &part, &f, &mut cost)
            .unwrap()
            .expect("witness");
        assert!(f.eval(&w));
        assert!(is_pz_minimal_model(&db, &w, &part, &mut cost).unwrap());
        // No minimal model satisfies a ∧ c (minimal models are {b}, {a,c}...
        // wait: {a,c} is a model; is it minimal? {b} ⊄ {a,c}; {a} misses
        // b|c... {c} misses a|b; so yes {a,c} is minimal and satisfies a ∧ c.
        let g = parse_formula("a & c", db.symbols()).unwrap();
        assert!(find_pz_minimal_model_satisfying(&db, &part, &g, &mut cost)
            .unwrap()
            .is_some());
        // But nothing satisfies a ∧ ¬a.
        let h = parse_formula("a & !a", db.symbols()).unwrap();
        assert!(find_pz_minimal_model_satisfying(&db, &part, &h, &mut cost)
            .unwrap()
            .is_none());
    }

    #[test]
    fn exists_dual() {
        let db = parse_program("a | b.").unwrap();
        let part = Partition::minimize_all(2);
        let fa = parse_formula("a", db.symbols()).unwrap();
        let mut cost = Cost::new();
        assert!(exists_pz_minimal_model_satisfying(&db, &part, &fa, &mut cost).unwrap());
        let fab = parse_formula("a & b", db.symbols()).unwrap();
        assert!(!exists_pz_minimal_model_satisfying(&db, &part, &fab, &mut cost).unwrap());
    }

    #[test]
    fn candidates_counted() {
        let db = parse_program("a | b. c | d.").unwrap();
        let f = parse_formula("a & c", db.symbols()).unwrap();
        let mut cost = Cost::new();
        holds_in_all_minimal_models(&db, &f, &mut cost).unwrap();
        assert!(cost.candidates >= 1);
    }

    #[test]
    fn fault_injection_interrupts_cegar() {
        let db = parse_program("a | b. c | d.").unwrap();
        let f = parse_formula("a & c", db.symbols()).unwrap();
        let mut cost = Cost::new();
        let _g = ddb_obs::Budget::unlimited().fail_after(0).install();
        assert!(holds_in_all_minimal_models(&db, &f, &mut cost).is_err());
    }
}
