//! Minimal and ⟨P;Z⟩-minimal models.
//!
//! The coNP subproblem "is M a (⟨P;Z⟩-)minimal model of DB?" is a single
//! SAT call ([`shrink_step`] finding a strictly smaller model, or failing).
//! Minimization ([`minimize`]) is the classical shrink loop: at most `|P|`
//! oracle calls, each strictly decreasing `|M ∩ P|`. Enumeration
//! ([`minimal_models`]) interleaves candidate search, minimization and
//! blocking clauses; each round emits a *new* minimal model, so the total
//! oracle bill is `O(#minimal-models · |V|)` — exponential only when the
//! answer itself is.

use crate::classical::project;
use crate::{Cost, Partition};
use ddb_logic::cnf::database_to_cnf;
use ddb_logic::{Database, Interpretation, Literal};
use ddb_obs::{Governed, Interrupted};
use ddb_sat::Solver;

/// An incremental ⟨P;Z⟩-minimizer: one CDCL solver shared across shrink
/// steps (and across candidates, when held by a CEGAR loop), with the
/// per-step constraints expressed as assumptions plus activation-literal
/// clauses. Compared to building a fresh solver per step this keeps the
/// learnt clauses, which the `minimization: incremental vs fresh` ablation
/// bench quantifies.
///
/// Per step: the `Q`-part and the excluded `P`-atoms become assumptions;
/// the "drop at least one `P`-atom of `M`" disjunction is added once as a
/// clause guarded by a fresh activation variable that is only assumed in
/// this step (later steps leave it unassigned, deactivating the clause).
pub struct Minimizer {
    solver: Solver,
    part: Partition,
    num_atoms: usize,
    next_activation: u32,
}

impl Minimizer {
    /// Builds the minimizer for `db` under `part` (one CNF construction).
    pub fn new(db: &Database, part: Partition) -> Self {
        let n = db.num_atoms();
        let mut solver = Solver::from_cnf(&database_to_cnf(db));
        solver.ensure_vars(n);
        Minimizer {
            solver,
            part,
            num_atoms: n,
            next_activation: n as u32,
        }
    }

    /// The partition this minimizer works under.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// One shrink step (one SAT call): a model strictly below `m`, or
    /// `None` if `m` is ⟨P;Z⟩-minimal.
    pub fn shrink_step(
        &mut self,
        m: &Interpretation,
        cost: &mut Cost,
    ) -> Governed<Option<Interpretation>> {
        let mut flip: Vec<Literal> = self
            .part
            .p()
            .iter()
            .filter(|&a| m.contains(a))
            .map(|a| a.neg())
            .collect();
        if flip.is_empty() {
            return Ok(None);
        }
        let act = ddb_logic::Atom::new(self.next_activation);
        self.next_activation += 1;
        self.solver.ensure_vars(self.next_activation as usize);
        flip.push(act.neg());
        self.solver.add_clause(&flip);

        let mut assumptions: Vec<Literal> = vec![act.pos()];
        for a in self.part.q().iter() {
            assumptions.push(Literal::with_sign(a, m.contains(a)));
        }
        for a in self.part.p().iter() {
            if !m.contains(a) {
                assumptions.push(a.neg());
            }
        }
        ddb_obs::counter_bump("models.minimal.shrink_steps", 1);
        let before = self.solver.stats();
        let result = self.solver.solve_with_assumptions(&assumptions);
        let after = self.solver.stats();
        cost.peak_clauses = cost.peak_clauses.max(after.max_clauses);
        cost.sat_calls += after.solves - before.solves;
        cost.decisions += after.decisions - before.decisions;
        cost.conflicts += after.conflicts - before.conflicts;
        cost.propagations += after.propagations - before.propagations;
        let sat = result?.is_sat();
        Ok(sat.then(|| project(&self.solver.model(), self.num_atoms)))
    }

    /// Minimizes `m` to a ⟨P;Z⟩-minimal model below it (shrink loop).
    /// Runs under a `models.minimize` trace span; the per-call wall time
    /// lands in the `models.minimize.ns` histogram.
    pub fn minimize(&mut self, m: &Interpretation, cost: &mut Cost) -> Governed<Interpretation> {
        let _t = ddb_obs::hist_span("models.minimize", "models.minimize.ns");
        let mut current = m.clone();
        while let Some(smaller) = self.shrink_step(&current, cost)? {
            debug_assert!(self.part.lt(&smaller, &current));
            current = smaller;
        }
        Ok(current)
    }
}

/// One ⟨P;Z⟩-shrink step: finds a model `M′ ⊨ DB` with `M′ < M` in the
/// partition preorder (same `Q`-part, strictly smaller `P`-part, free `Z`),
/// or `None` if `M` is ⟨P;Z⟩-minimal. Exactly one SAT call.
///
/// `m` must be a model of `db`.
pub fn shrink_step(
    db: &Database,
    m: &Interpretation,
    part: &Partition,
    cost: &mut Cost,
) -> Governed<Option<Interpretation>> {
    debug_assert!(db.satisfied_by(m), "shrink_step requires a model");
    ddb_obs::counter_bump("models.minimal.shrink_steps", 1);
    let n = db.num_atoms();
    let mut solver = Solver::from_cnf(&database_to_cnf(db));
    solver.ensure_vars(n);
    // Fix the Q-part, forbid P-atoms outside M, require some P-atom of M to
    // be dropped. Z is unconstrained.
    let mut flip: Vec<Literal> = Vec::new();
    for a in part.q().iter() {
        solver.add_clause(&[Literal::with_sign(a, m.contains(a))]);
    }
    for a in part.p().iter() {
        if m.contains(a) {
            flip.push(a.neg());
        } else {
            solver.add_clause(&[a.neg()]);
        }
    }
    if flip.is_empty() {
        // M ∩ P = ∅: nothing to shrink; M is trivially ⟨P;Z⟩-minimal.
        return Ok(None);
    }
    solver.add_clause(&flip);
    let solved = solver.solve();
    cost.absorb(&solver);
    let sat = solved?.is_sat();
    Ok(sat.then(|| project(&solver.model(), n)))
}

/// Whether `m` is a ⟨P;Z⟩-minimal model of `db` (model check + one oracle
/// call).
pub fn is_pz_minimal_model(
    db: &Database,
    m: &Interpretation,
    part: &Partition,
    cost: &mut Cost,
) -> Governed<bool> {
    ddb_obs::counter_bump("models.minimal.checks", 1);
    Ok(db.satisfied_by(m) && shrink_step(db, m, part, cost)?.is_none())
}

/// Whether `m` is a (subset-)minimal model of `db`.
pub fn is_minimal_model(db: &Database, m: &Interpretation, cost: &mut Cost) -> Governed<bool> {
    is_pz_minimal_model(db, m, &Partition::minimize_all(db.num_atoms()), cost)
}

/// Minimizes a model to a ⟨P;Z⟩-minimal model below it (shrink loop,
/// ≤ `|P|+1` oracle calls, one incremental solver).
pub fn pz_minimize(
    db: &Database,
    m: &Interpretation,
    part: &Partition,
    cost: &mut Cost,
) -> Governed<Interpretation> {
    Minimizer::new(db, part.clone()).minimize(m, cost)
}

/// Like [`pz_minimize`] but rebuilding a fresh solver for every shrink
/// step — kept as the ablation baseline for the incremental
/// [`Minimizer`].
pub fn pz_minimize_fresh(
    db: &Database,
    m: &Interpretation,
    part: &Partition,
    cost: &mut Cost,
) -> Governed<Interpretation> {
    let mut current = m.clone();
    while let Some(smaller) = shrink_step(db, &current, part, cost)? {
        debug_assert!(part.lt(&smaller, &current), "shrink must strictly descend");
        current = smaller;
    }
    Ok(current)
}

/// Minimizes a model to a subset-minimal model below it.
pub fn minimize(db: &Database, m: &Interpretation, cost: &mut Cost) -> Governed<Interpretation> {
    pz_minimize(db, m, &Partition::minimize_all(db.num_atoms()), cost)
}

/// Finds some minimal model of `db`, or `None` if unsatisfiable.
pub fn some_minimal_model(db: &Database, cost: &mut Cost) -> Governed<Option<Interpretation>> {
    match crate::classical::some_model(db, cost)? {
        Some(m) => Ok(Some(minimize(db, &m, cost)?)),
        None => Ok(None),
    }
}

/// Enumerates all (subset-)minimal models `MM(DB)`, sorted.
///
/// ```
/// use ddb_logic::parse::parse_program;
/// use ddb_models::{minimal, Cost};
/// let db = parse_program("a | b. c :- a.").unwrap();
/// let mut cost = Cost::new();
/// let mm = minimal::minimal_models(&db, &mut cost)?;
/// assert_eq!(mm.len(), 2); // {a,c} and {b}
/// for m in &mm {
///     assert!(minimal::is_minimal_model(&db, m, &mut cost)?);
/// }
/// # Ok::<(), ddb_obs::Interrupted>(())
/// ```
///
/// Candidate search and blocking happen in one incremental solver; each
/// discovered minimal model `M` is blocked with the clause `⋁_{x∈M} ¬x`,
/// which excludes exactly the supersets of `M` — sound because distinct
/// minimal models are never ⊆-comparable, and complete because every model
/// above a *new* minimal model survives blocking of the old ones.
/// Minimization runs against `DB` alone (fresh solver) so blocking clauses
/// cannot strand it at a non-minimal point.
pub fn minimal_models(db: &Database, cost: &mut Cost) -> Governed<Vec<Interpretation>> {
    let (out, interrupted) = minimal_models_partial(db, cost);
    match interrupted {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Like [`minimal_models`], but an exhausted budget yields the models
/// verified before the trip instead of discarding them. Every returned
/// interpretation is a genuine minimal model — the enumerator only
/// pushes fully minimized candidates — the set is just not known to be
/// complete unless the second component is `None`.
pub fn minimal_models_partial(
    db: &Database,
    cost: &mut Cost,
) -> (Vec<Interpretation>, Option<Interrupted>) {
    let _span = ddb_obs::span("models.minimal.enumerate");
    let n = db.num_atoms();
    let mut candidates = Solver::from_cnf(&database_to_cnf(db));
    candidates.ensure_vars(n);
    let mut out = Vec::new();
    let interrupted = loop {
        let sat = match candidates.solve() {
            Ok(r) => r.is_sat(),
            Err(e) => break Some(e),
        };
        if !sat {
            break None;
        }
        let candidate = project(&candidates.model(), n);
        let minimal = match minimize(db, &candidate, cost) {
            Ok(m) => m,
            Err(e) => break Some(e),
        };
        debug_assert!(
            !out.contains(&minimal),
            "enumeration must not repeat minimal models"
        );
        let blocking: Vec<Literal> = minimal.iter().map(|a| a.neg()).collect();
        out.push(minimal);
        if blocking.is_empty() || !candidates.add_clause(&blocking) {
            break None; // the empty model is minimal (blocks everything above it)
        }
    };
    cost.absorb(&candidates);
    out.sort();
    let interrupted =
        interrupted.map(|e| e.with_partial(format!("{} minimal model(s) found", out.len())));
    (out, interrupted)
}

/// Enumerates all ⟨P;Z⟩-minimal models `MM(DB; P; Z)`, sorted.
///
/// Works by enumerating minimal *⟨P,Q⟩-signatures* with blocking clauses
/// (minimality depends only on the `P`- and `Q`-parts), then expanding each
/// signature to all of its `Z`-completions that are models. Exponential in
/// the worst case — the callers that only need *inference* use the CEGAR
/// loop in [`crate::circumscribe`] instead.
///
/// One incremental expander is shared across all signatures: the clauses
/// fixing a signature's `P`/`Q`-parts — and its `Z`-blocking clauses —
/// are guarded by a per-signature activation literal that is only assumed
/// while that signature expands, so later signatures deactivate them but
/// inherit every learnt clause (same trick as [`Minimizer`]). The oracle
/// *call* count is identical to the fresh-solver baseline
/// ([`pz_minimal_models_fresh`]); only the work per call shrinks.
pub fn pz_minimal_models(
    db: &Database,
    part: &Partition,
    cost: &mut Cost,
) -> Governed<Vec<Interpretation>> {
    let _span = ddb_obs::span("models.minimal.enumerate_pz");
    let n = db.num_atoms();
    let mut candidates = Solver::from_cnf(&database_to_cnf(db));
    candidates.ensure_vars(n);
    let mut expander = Solver::from_cnf(&database_to_cnf(db));
    expander.ensure_vars(n);
    let mut next_activation = n as u32;
    let mut out: Vec<Interpretation> = Vec::new();
    let mut run = || -> Governed<()> {
        loop {
            if !candidates.solve()?.is_sat() {
                return Ok(());
            }
            let candidate = project(&candidates.model(), n);
            let minimal = pz_minimize(db, &candidate, part, cost)?;
            // Expand the signature to all Z-completions (each is
            // ⟨P;Z⟩-minimal: minimality only constrains the P- and Q-parts).
            let act = ddb_logic::Atom::new(next_activation);
            next_activation += 1;
            expander.ensure_vars(next_activation as usize);
            for a in part.p().iter().chain(part.q().iter()) {
                expander.add_clause(&[act.neg(), Literal::with_sign(a, minimal.contains(a))]);
            }
            loop {
                // Propagation-only exhaustion check first: where the
                // fresh baseline's `add_clause` detected "no further
                // completion" via level-0 units, the guarded encoding
                // shows the same conflict under the assumption — caught
                // here without a counted oracle call.
                if expander.refuted_by_propagation(&[act.pos()])
                    || !expander.solve_with_assumptions(&[act.pos()])?.is_sat()
                {
                    break;
                }
                let model = project(&expander.model(), n);
                let mut blocking: Vec<Literal> = part
                    .z()
                    .iter()
                    .map(|a| Literal::with_sign(a, !model.contains(a)))
                    .collect();
                out.push(model);
                if blocking.is_empty() {
                    break; // Z = ∅: a signature has exactly one completion
                }
                blocking.push(act.neg());
                if !expander.add_clause(&blocking) {
                    break;
                }
            }
            // Block the whole signature cone: no future candidate with the
            // same Q-part may dominate this P-part.
            let mut blocking: Vec<Literal> = Vec::new();
            for a in part.q().iter() {
                blocking.push(Literal::with_sign(a, !minimal.contains(a)));
            }
            for a in part.p().iter() {
                if minimal.contains(a) {
                    blocking.push(a.neg());
                }
            }
            if blocking.is_empty() || !candidates.add_clause(&blocking) {
                return Ok(());
            }
        }
    };
    let result = run();
    cost.absorb(&candidates);
    cost.absorb(&expander);
    result.map_err(|e| e.with_partial(format!("{} ⟨P;Z⟩-minimal model(s) found", out.len())))?;
    out.sort();
    out.dedup();
    Ok(out)
}

/// Like [`pz_minimal_models`] but rebuilding a fresh expander solver for
/// every signature — kept as the ablation baseline the incremental
/// enumerator is measured against (the `minimization: incremental vs
/// fresh` family of benches, and the oracle-count non-regression test).
pub fn pz_minimal_models_fresh(
    db: &Database,
    part: &Partition,
    cost: &mut Cost,
) -> Governed<Vec<Interpretation>> {
    let _span = ddb_obs::span("models.minimal.enumerate_pz");
    let n = db.num_atoms();
    let mut candidates = Solver::from_cnf(&database_to_cnf(db));
    candidates.ensure_vars(n);
    let mut out: Vec<Interpretation> = Vec::new();
    let mut run = || -> Governed<()> {
        loop {
            if !candidates.solve()?.is_sat() {
                return Ok(());
            }
            let candidate = project(&candidates.model(), n);
            let minimal = pz_minimize(db, &candidate, part, cost)?;
            let mut expander = Solver::from_cnf(&database_to_cnf(db));
            expander.ensure_vars(n);
            for a in part.p().iter().chain(part.q().iter()) {
                expander.add_clause(&[Literal::with_sign(a, minimal.contains(a))]);
            }
            let expansion = loop {
                match expander.solve() {
                    Ok(r) if !r.is_sat() => break Ok(()),
                    Ok(_) => {}
                    Err(e) => break Err(e),
                }
                let model = project(&expander.model(), n);
                let blocking: Vec<Literal> = part
                    .z()
                    .iter()
                    .map(|a| Literal::with_sign(a, !model.contains(a)))
                    .collect();
                out.push(model);
                if blocking.is_empty() || !expander.add_clause(&blocking) {
                    break Ok(());
                }
            };
            cost.absorb(&expander);
            expansion?;
            let mut blocking: Vec<Literal> = Vec::new();
            for a in part.q().iter() {
                blocking.push(Literal::with_sign(a, !minimal.contains(a)));
            }
            for a in part.p().iter() {
                if minimal.contains(a) {
                    blocking.push(a.neg());
                }
            }
            if blocking.is_empty() || !candidates.add_clause(&blocking) {
                return Ok(());
            }
        }
    };
    let result = run();
    cost.absorb(&candidates);
    result.map_err(|e| e.with_partial(format!("{} ⟨P;Z⟩-minimal model(s) found", out.len())))?;
    out.sort();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::parse_program;
    use ddb_logic::Atom;

    fn interp(n: usize, atoms: &[u32]) -> Interpretation {
        Interpretation::from_atoms(n, atoms.iter().map(|&i| Atom::new(i)))
    }

    #[test]
    fn minimal_models_of_disjunction() {
        let db = parse_program("a | b.").unwrap();
        let mut cost = Cost::new();
        let mm = minimal_models(&db, &mut cost).unwrap();
        assert_eq!(mm, vec![interp(2, &[0]), interp(2, &[1])]);
    }

    #[test]
    fn minimize_reaches_a_minimal_model() {
        let db = parse_program("a | b. c :- a.").unwrap();
        let mut cost = Cost::new();
        let full = interp(3, &[0, 1, 2]);
        assert!(db.satisfied_by(&full));
        let m = minimize(&db, &full, &mut cost).unwrap();
        assert!(is_minimal_model(&db, &m, &mut cost).unwrap());
        assert!(m.is_subset(&full));
    }

    #[test]
    fn is_minimal_rejects_non_models_and_non_minimal() {
        let db = parse_program("a | b.").unwrap();
        let mut cost = Cost::new();
        assert!(!is_minimal_model(&db, &interp(2, &[]), &mut cost).unwrap()); // not a model
        assert!(!is_minimal_model(&db, &interp(2, &[0, 1]), &mut cost).unwrap()); // not minimal
        assert!(is_minimal_model(&db, &interp(2, &[0]), &mut cost).unwrap());
    }

    #[test]
    fn empty_db_has_empty_minimal_model() {
        let db = parse_program("a :- b.").unwrap();
        let mut cost = Cost::new();
        let mm = minimal_models(&db, &mut cost).unwrap();
        assert_eq!(mm, vec![interp(2, &[])]);
    }

    #[test]
    fn unsat_db_has_no_minimal_models() {
        let db = parse_program("a. :- a.").unwrap();
        let mut cost = Cost::new();
        assert!(minimal_models(&db, &mut cost).unwrap().is_empty());
        assert!(some_minimal_model(&db, &mut cost).unwrap().is_none());
    }

    #[test]
    fn integrity_clauses_shape_minimal_models() {
        // a ∨ b, ← a: only {b} is minimal.
        let db = parse_program("a | b. :- a.").unwrap();
        let mut cost = Cost::new();
        let mm = minimal_models(&db, &mut cost).unwrap();
        assert_eq!(mm, vec![interp(2, &[1])]);
    }

    #[test]
    fn facts_force_atoms() {
        let db = parse_program("a. b | c :- a.").unwrap();
        let mut cost = Cost::new();
        let mm = minimal_models(&db, &mut cost).unwrap();
        assert_eq!(mm.len(), 2);
        for m in &mm {
            assert!(m.contains(Atom::new(0)));
            assert_eq!(m.count(), 2);
        }
    }

    #[test]
    fn pz_minimality_with_fixed_and_varying() {
        // Vocabulary a(P), b(Q), c(Z); DB: a ∨ b ∨ c.
        let db = parse_program("a | b | c.").unwrap();
        let syms = db.symbols();
        let part = Partition::from_p_q(3, [syms.lookup("a").unwrap()], [syms.lookup("b").unwrap()]);
        let mut cost = Cost::new();
        // {a} with Q-part ∅: {c} has same Q-part, smaller P-part → not minimal.
        assert!(!is_pz_minimal_model(&db, &interp(3, &[0]), &part, &mut cost).unwrap());
        // {c}: P-part empty → minimal.
        assert!(is_pz_minimal_model(&db, &interp(3, &[2]), &part, &mut cost).unwrap());
        // {b}: P-part empty → minimal (Q fixed at {b}).
        assert!(is_pz_minimal_model(&db, &interp(3, &[1]), &part, &mut cost).unwrap());
    }

    #[test]
    fn pz_minimal_models_enumeration_matches_definition() {
        let db = parse_program("a | b | c. c :- a.").unwrap();
        let syms = db.symbols();
        let part = Partition::from_p_q(3, [syms.lookup("a").unwrap()], [syms.lookup("b").unwrap()]);
        let mut cost = Cost::new();
        let got = pz_minimal_models(&db, &part, &mut cost).unwrap();
        // Reference: filter all models by pairwise lt.
        let all = crate::classical::all_models(&db, &mut cost).unwrap();
        let expected: Vec<Interpretation> = all
            .iter()
            .filter(|m| !all.iter().any(|m2| part.lt(m2, m)))
            .cloned()
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn incremental_minimizer_reaches_minimal_models() {
        let db = parse_program("a | b. b | c. d :- a, c. e | f :- d.").unwrap();
        let part = Partition::minimize_all(db.num_atoms());
        let mut minimizer = Minimizer::new(&db, part.clone());
        let mut cost = Cost::new();
        // From several starting models, the incremental minimizer must
        // land on a minimal model below the start — sharing one solver
        // across all calls.
        let full = Interpretation::full(db.num_atoms());
        for start in [full.clone(), interp(6, &[0, 2, 3, 4]), interp(6, &[1, 2])] {
            if !db.satisfied_by(&start) {
                continue;
            }
            let m = minimizer.minimize(&start, &mut cost).unwrap();
            assert!(m.is_subset(&start));
            assert!(
                is_minimal_model(&db, &m, &mut cost).unwrap(),
                "from {start:?}"
            );
        }
        assert!(cost.sat_calls > 0);
    }

    #[test]
    fn incremental_and_fresh_agree_on_minimality() {
        // The two strategies may land on different minimal models, but
        // both results must be minimal and ≤ the start.
        let db = parse_program("a | b | c. d :- a. :- b, d.").unwrap();
        let part = Partition::minimize_all(db.num_atoms());
        let mut cost = Cost::new();
        let start = crate::classical::some_model(&db, &mut cost)
            .unwrap()
            .unwrap();
        let inc = pz_minimize(&db, &start, &part, &mut cost).unwrap();
        let fresh = pz_minimize_fresh(&db, &start, &part, &mut cost).unwrap();
        assert!(is_pz_minimal_model(&db, &inc, &part, &mut cost).unwrap());
        assert!(is_pz_minimal_model(&db, &fresh, &part, &mut cost).unwrap());
        assert!(part.le(&inc, &start) && part.le(&fresh, &start));
    }

    #[test]
    fn minimizer_with_partition_respects_q() {
        let db = parse_program("a | b | c.").unwrap();
        let syms = db.symbols();
        let part = Partition::from_p_q(3, [syms.lookup("a").unwrap()], [syms.lookup("b").unwrap()]);
        let mut minimizer = Minimizer::new(&db, part.clone());
        let mut cost = Cost::new();
        let start = interp(3, &[0, 1]); // {a, b}
        let m = minimizer.minimize(&start, &mut cost).unwrap();
        // Q-part ({b}) preserved; P-part shrunk to ∅ (c or b covers the
        // disjunction).
        assert!(m.contains(syms.lookup("b").unwrap()));
        assert!(!m.contains(syms.lookup("a").unwrap()));
        assert!(is_pz_minimal_model(&db, &m, &part, &mut cost).unwrap());
    }

    #[test]
    fn minimal_models_cost_accounted() {
        let db = parse_program("a | b.").unwrap();
        let mut cost = Cost::new();
        minimal_models(&db, &mut cost).unwrap();
        assert!(cost.sat_calls > 0);
    }
}
