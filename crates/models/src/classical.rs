//! Classical (NP/coNP-level) reasoning: satisfiability, model finding and
//! entailment for disjunctive databases.
//!
//! Every function is budget-governed: a tripped [`ddb_obs::Budget`]
//! surfaces as `Err(`[`Interrupted`](ddb_obs::Interrupted)`)` from the
//! underlying oracle call and propagates out with `?`.

use crate::Cost;
use ddb_logic::cnf::{database_to_cnf, CnfBuilder};
use ddb_logic::{Database, Formula, Interpretation, Literal};
use ddb_obs::Governed;
use ddb_sat::{enumerate_models, Solver};

/// Finds some classical model of `DB` (one NP-oracle call), or `None` if
/// the database is unsatisfiable.
pub fn some_model(db: &Database, cost: &mut Cost) -> Governed<Option<Interpretation>> {
    some_model_with(db, &[], cost)
}

/// Finds some model of `DB ∧ extra` (units), projected to the database
/// vocabulary.
pub fn some_model_with(
    db: &Database,
    extra: &[Literal],
    cost: &mut Cost,
) -> Governed<Option<Interpretation>> {
    let mut solver = Solver::from_cnf(&database_to_cnf(db));
    solver.ensure_vars(db.num_atoms());
    let result = solver.solve_with_assumptions(extra);
    cost.absorb(&solver);
    let sat = result?.is_sat();
    Ok(sat.then(|| project(&solver.model(), db.num_atoms())))
}

/// Whether `DB` is classically satisfiable.
pub fn is_satisfiable(db: &Database, cost: &mut Cost) -> Governed<bool> {
    Ok(some_model(db, cost)?.is_some())
}

/// Classical entailment `DB ∪ units ⊨ F`: one coNP check
/// (`DB ∧ units ∧ ¬F` unsatisfiable).
pub fn entails(db: &Database, units: &[Literal], f: &Formula, cost: &mut Cost) -> Governed<bool> {
    let mut b = CnfBuilder::new(db.num_atoms());
    b.add_database(db);
    for &l in units {
        b.add_clause(vec![l]);
    }
    b.assert_formula(&f.clone().negated());
    let mut solver = Solver::from_cnf(&b.finish());
    let result = solver.solve();
    cost.absorb(&solver);
    Ok(!result?.is_sat())
}

/// Enumerates every classical model of `DB` (exponentially many in the
/// worst case — intended for reference computations and tests).
pub fn all_models(db: &Database, cost: &mut Cost) -> Governed<Vec<Interpretation>> {
    ddb_obs::counter_bump("models.classical.enumerations", 1);
    let cnf = database_to_cnf(db);
    let mut out = Vec::new();
    let mut calls = 0u64;
    let result = enumerate_models(&cnf, db.num_atoms(), |m| {
        calls += 1;
        out.push(m.clone());
        true
    });
    cost.sat_calls += calls + 1; // final UNSAT call
    result?;
    out.sort();
    Ok(out)
}

pub(crate) fn project(m: &Interpretation, n: usize) -> Interpretation {
    let mut out = Interpretation::empty(n);
    for a in m.iter() {
        if a.index() < n {
            out.insert(a);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::parse_formula;
    use ddb_logic::parse::parse_program;

    #[test]
    fn some_model_of_disjunction() {
        let db = parse_program("a | b.").unwrap();
        let mut cost = Cost::new();
        let m = some_model(&db, &mut cost).unwrap().expect("satisfiable");
        assert!(db.satisfied_by(&m));
        assert!(cost.sat_calls >= 1);
    }

    #[test]
    fn unsat_database() {
        let db = parse_program("a. :- a.").unwrap();
        let mut cost = Cost::new();
        assert!(!is_satisfiable(&db, &mut cost).unwrap());
    }

    #[test]
    fn entailment() {
        let db = parse_program("a | b. :- a.").unwrap();
        let mut cost = Cost::new();
        let f = parse_formula("b", db.symbols()).unwrap();
        assert!(entails(&db, &[], &f, &mut cost).unwrap());
        let g = parse_formula("a", db.symbols()).unwrap();
        assert!(!entails(&db, &[], &g, &mut cost).unwrap());
    }

    #[test]
    fn entailment_with_units() {
        let db = parse_program("c :- a, b.").unwrap();
        let syms = db.symbols();
        let (a, b) = (syms.lookup("a").unwrap(), syms.lookup("b").unwrap());
        let f = parse_formula("c", syms).unwrap();
        let mut cost = Cost::new();
        assert!(!entails(&db, &[], &f, &mut cost).unwrap());
        assert!(entails(&db, &[a.pos(), b.pos()], &f, &mut cost).unwrap());
    }

    #[test]
    fn all_models_of_small_db() {
        let db = parse_program("a | b. :- a, b.").unwrap();
        let mut cost = Cost::new();
        let models = all_models(&db, &mut cost).unwrap();
        assert_eq!(models.len(), 2); // {a}, {b}
        for m in &models {
            assert!(db.satisfied_by(m));
            assert_eq!(m.count(), 1);
        }
    }

    #[test]
    fn inconsistent_entails_everything() {
        let db = parse_program("a. :- a.").unwrap();
        let f = parse_formula("false", db.symbols()).unwrap();
        let mut cost = Cost::new();
        assert!(entails(&db, &[], &f, &mut cost).unwrap());
    }

    #[test]
    fn oracle_budget_interrupts_model_search() {
        let db = parse_program("a | b. b | c.").unwrap();
        let mut cost = Cost::new();
        let _g = ddb_obs::Budget::unlimited()
            .with_max_oracle_calls(0)
            .install();
        assert!(some_model(&db, &mut cost).is_err());
    }
}
