//! Fixpoint machinery for the Disjunctive Database Rule (DDR / WGCWA).
//!
//! Ross & Topor's DDR adds `¬x` for every atom `x` that does not occur in
//! `T_DB ↑ ω`, the least fixpoint of the disjunctive consequence operator
//! over *model states* (sets of atomic disjunctions). Two implementations:
//!
//! * [`active_atoms`] — the polynomial-time closure that computes exactly
//!   the set of atoms occurring in `T_DB ↑ ω` *without* materializing the
//!   disjunctions. An atom is **active** iff it appears in the head of a
//!   (non-integrity) rule whose positive body atoms are all active. The
//!   equivalence with "occurs in `T_DB ↑ ω`" is proved by a two-way
//!   induction (see the function docs) and cross-checked in tests against
//!   the explicit fixpoint. This procedure is the reason DDR literal
//!   inference on positive databases is **in P** (Chan) — the only
//!   tractable cells of Table 1.
//! * [`model_state`] — the explicit (worst-case exponential) fixpoint over
//!   disjunctions with subsumption, kept as an executable specification.

use ddb_logic::{Atom, Database, Interpretation};
use ddb_obs::budget::{self, Governed};

/// Computes the atoms occurring in `T_DB ↑ ω` in time `O(Σ rule sizes)`.
///
/// Correctness: let `A` be the least set closed under "head atoms of a rule
/// whose positive body lies in `A` are in `A`".
///
/// * (`A` ⊆ atoms of `T↑ω`) If every body atom `bᵢ` of a rule occurs in
///   some derivable disjunction `Cᵢ`, hyperresolving the rule against
///   `C₁ … Cₖ` derives `head ∨ ⋁ᵢ(Cᵢ∖{bᵢ})`, in which every head atom
///   occurs.
/// * (atoms of `T↑ω` ⊆ `A`) By induction on the derivation of a
///   disjunction `D`: `D = head ∨ ⋁ᵢ(Cᵢ∖{bᵢ})` with each `Cᵢ` derivable;
///   by induction every atom of each `Cᵢ` is in `A`, in particular each
///   `bᵢ`, hence the head atoms are in `A`; the remaining atoms of `D` come
///   from the `Cᵢ` and are in `A` already.
///
/// Rules with negated body atoms are not part of the DDR fixpoint (DDR is
/// a semantics for *deductive* databases, `DB ⊆ C⁺`); this function panics
/// if it meets one. Integrity clauses are skipped — they have no head to
/// derive (Chan's Example 3.1 shows DDR deliberately ignores them).
pub fn active_atoms(db: &Database) -> Interpretation {
    assert!(
        !db.has_negation(),
        "the DDR fixpoint is defined for databases without negation"
    );
    let n = db.num_atoms();
    let mut active = Interpretation::empty(n);
    // Worklist propagation: count unsatisfied body atoms per rule.
    let rules: Vec<usize> = (0..db.rules().len())
        .filter(|&i| !db.rules()[i].is_integrity())
        .collect();
    let mut missing: Vec<usize> = rules
        .iter()
        .map(|&i| db.rules()[i].body_pos().len())
        .collect();
    // For each atom, the rules (indices into `rules`) whose body mentions it.
    let mut watchers: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (k, &i) in rules.iter().enumerate() {
        for &b in db.rules()[i].body_pos() {
            watchers[b.index()].push(k as u32);
        }
    }
    let mut queue: Vec<Atom> = Vec::new();
    let fire = |k: usize, active: &mut Interpretation, queue: &mut Vec<Atom>| {
        for &h in db.rules()[rules[k]].head() {
            if !active.contains(h) {
                active.insert(h);
                queue.push(h);
            }
        }
    };
    for (k, &m) in missing.iter().enumerate() {
        if m == 0 {
            fire(k, &mut active, &mut queue);
        }
    }
    while let Some(a) = queue.pop() {
        // Clone the watcher list indices to appease the borrow checker; the
        // lists are small and visited once per atom activation.
        let ws = std::mem::take(&mut watchers[a.index()]);
        for &k in &ws {
            let k = k as usize;
            missing[k] -= 1;
            if missing[k] == 0 {
                fire(k, &mut active, &mut queue);
            }
        }
    }
    active
}

/// One step of an activation proof: `atom` is activated by rule
/// `rule_index`, whose positive body atoms were all activated by earlier
/// steps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofStep {
    /// The newly activated atom (a member of the rule's head).
    pub atom: Atom,
    /// Index into `db.rules()` of the activating rule.
    pub rule_index: usize,
    /// The rule's positive body (all proved by earlier steps).
    pub body: Vec<Atom>,
}

/// Produces a checkable proof that `target` occurs in `T_DB ↑ ω` — a
/// sequence of [`ProofStep`]s in dependency order ending with `target` —
/// or `None` if the atom is inactive (i.e. DDR infers its negation).
///
/// The proof certifies the hyperresolution derivation sketched in
/// [`active_atoms`]'s correctness argument; `verify_proof` (used by the
/// tests) replays it independently.
pub fn activation_proof(db: &Database, target: Atom) -> Option<Vec<ProofStep>> {
    assert!(
        !db.has_negation(),
        "the DDR fixpoint is defined for databases without negation"
    );
    let n = db.num_atoms();
    // Forward pass: record, for each atom, the rule that first activates
    // it.
    let mut activator: Vec<Option<usize>> = vec![None; n];
    let mut active = Interpretation::empty(n);
    loop {
        let mut changed = false;
        for (ri, rule) in db.rules().iter().enumerate() {
            if rule.is_integrity() || !rule.body_pos().iter().all(|&b| active.contains(b)) {
                continue;
            }
            for &h in rule.head() {
                if !active.contains(h) {
                    active.insert(h);
                    activator[h.index()] = Some(ri);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    if !active.contains(target) {
        return None;
    }
    // Backward pass: collect the needed steps, then order by dependency
    // (DFS post-order over the activator graph — acyclic because each
    // atom's activating rule only uses atoms activated strictly earlier
    // in the forward pass... not exactly: within one sweep a rule can use
    // atoms activated the same round. Use recursion with a visited set —
    // the activator assignment is well-founded by construction of the
    // first-activation order).
    let mut steps: Vec<ProofStep> = Vec::new();
    let mut done = Interpretation::empty(n);
    let mut stack: Vec<(Atom, bool)> = vec![(target, false)];
    let mut in_progress = Interpretation::empty(n);
    while let Some((a, expanded)) = stack.pop() {
        if done.contains(a) {
            continue;
        }
        let ri = activator[a.index()].expect("active atoms have activators");
        if expanded {
            done.insert(a);
            steps.push(ProofStep {
                atom: a,
                rule_index: ri,
                body: db.rules()[ri].body_pos().to_vec(),
            });
            continue;
        }
        if in_progress.contains(a) {
            // Already queued for completion via another parent (diamond
            // dependency): its `(a, true)` entry is on the stack.
            continue;
        }
        in_progress.insert(a);
        stack.push((a, true));
        for &b in db.rules()[ri].body_pos() {
            if !done.contains(b) {
                stack.push((b, false));
            }
        }
    }
    Some(steps)
}

/// Replays an activation proof independently: every step's rule must
/// carry the atom in its head and have its body established by earlier
/// steps; the last step must prove `target`.
pub fn verify_proof(db: &Database, target: Atom, proof: &[ProofStep]) -> bool {
    let mut established = Interpretation::empty(db.num_atoms());
    for step in proof {
        let Some(rule) = db.rules().get(step.rule_index) else {
            return false;
        };
        if rule.is_integrity() || !rule.head().contains(&step.atom) {
            return false;
        }
        if rule.body_pos() != step.body.as_slice() {
            return false;
        }
        if !step.body.iter().all(|&b| established.contains(b)) {
            return false;
        }
        established.insert(step.atom);
    }
    established.contains(target)
}

/// A derivable atomic disjunction (sorted, deduplicated atom list).
pub type Disjunction = Vec<Atom>;

/// Explicitly computes the model state `T_DB ↑ ω`: *all* derivable atomic
/// disjunctions (deduplicated, **not** subsumption-reduced — DDR's
/// negation rule asks whether an atom occurs in *any* derivable
/// disjunction, and a subsumed disjunction still witnesses occurrence;
/// this is exactly what makes Chan's Example 3.1 tick, where the subsumed
/// `c ∨ a ∨ b` keeps `c` occurring although the integrity clause makes `c`
/// unsatisfiable). Worst-case exponential; enumeration stops and returns
/// `Ok(None)` if more than `cap` disjunctions would be kept, and `Err`
/// when the installed [`ddb_obs::Budget`] trips — each kept disjunction
/// is one governance checkpoint. Used as an executable specification to
/// validate [`active_atoms`], and by the DDR ablation bench.
pub fn model_state(db: &Database, cap: usize) -> Governed<Option<Vec<Disjunction>>> {
    assert!(
        !db.has_negation(),
        "the DDR fixpoint is defined for databases without negation"
    );
    let mut state: Vec<Disjunction> = Vec::new();
    loop {
        let mut new_any = false;
        let mut derived: Vec<Disjunction> = Vec::new();
        for rule in db.rules() {
            if rule.is_integrity() {
                continue;
            }
            // Choose, for each body atom, a disjunction containing it.
            let choices: Vec<Vec<usize>> = rule
                .body_pos()
                .iter()
                .map(|&b| {
                    (0..state.len())
                        .filter(|&i| state[i].binary_search(&b).is_ok())
                        .collect::<Vec<usize>>()
                })
                .collect();
            if choices.iter().any(Vec::is_empty) {
                continue;
            }
            // Cartesian product over choices.
            let mut indices = vec![0usize; choices.len()];
            loop {
                let mut d: Disjunction = rule.head().to_vec();
                for (slot, &which) in indices.iter().enumerate() {
                    let b = rule.body_pos()[slot];
                    for &a in &state[choices[slot][which]] {
                        if a != b {
                            d.push(a);
                        }
                    }
                }
                d.sort_unstable();
                d.dedup();
                derived.push(d);
                // Advance the odometer.
                let mut slot = 0;
                loop {
                    if slot == indices.len() {
                        break;
                    }
                    indices[slot] += 1;
                    if indices[slot] < choices[slot].len() {
                        break;
                    }
                    indices[slot] = 0;
                    slot += 1;
                }
                if slot == indices.len() {
                    break;
                }
            }
        }
        for d in derived {
            if state.contains(&d) {
                continue;
            }
            budget::checkpoint()
                .map_err(|e| e.with_partial(format!("{} disjunction(s) derived", state.len())))?;
            state.push(d);
            new_any = true;
            if state.len() > cap {
                return Ok(None);
            }
        }
        if !new_any {
            break;
        }
    }
    state.sort();
    Ok(Some(state))
}

/// The atoms occurring in a model state.
pub fn atoms_of_state(state: &[Disjunction], num_atoms: usize) -> Interpretation {
    let mut out = Interpretation::empty(num_atoms);
    for d in state {
        for &a in d {
            out.insert(a);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::parse_program;

    fn atoms(db: &Database, names: &[&str]) -> Interpretation {
        Interpretation::from_atoms(
            db.num_atoms(),
            names.iter().map(|n| db.symbols().lookup(n).unwrap()),
        )
    }

    #[test]
    fn facts_are_active() {
        let db = parse_program("a | b. c :- a.").unwrap();
        let active = active_atoms(&db);
        assert_eq!(active, atoms(&db, &["a", "b", "c"]));
    }

    #[test]
    fn unreachable_heads_inactive() {
        let db = parse_program("a. c :- b.").unwrap();
        let active = active_atoms(&db);
        assert_eq!(active, atoms(&db, &["a"]));
    }

    #[test]
    fn disjunctive_propagation() {
        // a ∨ b. c :- b. — b occurs in a derivable disjunction, so c does.
        let db = parse_program("a | b. c :- b.").unwrap();
        let active = active_atoms(&db);
        assert_eq!(active, atoms(&db, &["a", "b", "c"]));
    }

    #[test]
    fn integrity_clauses_ignored() {
        let db = parse_program("a. :- a.").unwrap();
        // DDR ignores the integrity clause in the fixpoint: a stays active.
        let active = active_atoms(&db);
        assert_eq!(active, atoms(&db, &["a"]));
    }

    #[test]
    fn chan_example_3_1() {
        // DB = {a ∨ b, ← a ∧ b, c ← a ∧ b}: hyperresolution derives
        // c ∨ a ∨ b, so c *occurs* in T↑ω and DDR does NOT infer ¬c —
        // even though the integrity clause makes c unsatisfiable. This is
        // the paper's Example 3.1 (DDR ignores integrity clauses).
        let db = parse_program("a | b. :- a, b. c :- a, b.").unwrap();
        let active = active_atoms(&db);
        assert_eq!(active, atoms(&db, &["a", "b", "c"]));
        let state = model_state(&db, 100).unwrap().unwrap();
        assert_eq!(atoms_of_state(&state, db.num_atoms()), active);
        let (a, b, c) = (
            db.symbols().lookup("a").unwrap(),
            db.symbols().lookup("b").unwrap(),
            db.symbols().lookup("c").unwrap(),
        );
        assert!(state.contains(&vec![a, b]));
        assert!(state.contains(&vec![a, b, c]));
    }

    #[test]
    fn body_needs_each_atom_covered() {
        // c needs both a and b active; only a is.
        let db = parse_program("a. c :- a, b.").unwrap();
        let active = active_atoms(&db);
        assert_eq!(active, atoms(&db, &["a"]));
    }

    #[test]
    fn model_state_resolution() {
        // a ∨ b. c :- a. — resolving gives c ∨ b.
        let db = parse_program("a | b. c :- a.").unwrap();
        let state = model_state(&db, 100).unwrap().unwrap();
        let a = db.symbols().lookup("a").unwrap();
        let b = db.symbols().lookup("b").unwrap();
        let c = db.symbols().lookup("c").unwrap();
        assert!(state.contains(&vec![a, b]));
        let mut cb = vec![b, c];
        cb.sort_unstable();
        assert!(state.contains(&cb));
    }

    #[test]
    fn model_state_keeps_subsumed_disjunctions() {
        // a ∨ b and a are both derivable; occurrence semantics means both
        // stay in the state (b occurs, so DDR will not infer ¬b here).
        let db = parse_program("a | b. a.").unwrap();
        let state = model_state(&db, 100).unwrap().unwrap();
        let a = db.symbols().lookup("a").unwrap();
        let b = db.symbols().lookup("b").unwrap();
        assert!(state.contains(&vec![a]));
        assert!(state.contains(&vec![a, b]));
        assert!(active_atoms(&db).contains(b));
    }

    #[test]
    fn state_atoms_equal_active_atoms() {
        for src in [
            "a | b. c :- a. d :- c, b. e :- x.",
            "a. b. c | d :- a, b. e :- c. f :- e, d.",
            "p | q | r. s :- p, q. t :- s, r. u :- v.",
        ] {
            let db = parse_program(src).unwrap();
            let state = model_state(&db, 10_000).unwrap().unwrap();
            assert_eq!(
                atoms_of_state(&state, db.num_atoms()),
                active_atoms(&db),
                "program: {src}"
            );
        }
    }

    #[test]
    fn activation_proofs_verify() {
        for src in [
            "a | b. c :- a. d :- c, b. e :- x.",
            "a. b. c | d :- a, b. e :- c. f :- e, d.",
            "p | q | r. s :- p, q. t :- s, r.",
            "x0. x1 :- x0. x2 :- x1. x3 :- x2, x0.",
        ] {
            let db = parse_program(src).unwrap();
            let active = active_atoms(&db);
            for i in 0..db.num_atoms() {
                let a = ddb_logic::Atom::new(i as u32);
                match activation_proof(&db, a) {
                    Some(proof) => {
                        assert!(active.contains(a), "{src}: proof for inactive atom");
                        assert!(verify_proof(&db, a, &proof), "{src}: invalid proof");
                        assert_eq!(proof.last().map(|s| s.atom), Some(a));
                    }
                    None => assert!(!active.contains(a), "{src}: missing proof"),
                }
            }
        }
    }

    #[test]
    fn diamond_dependencies_proved_once() {
        // d needs b and c, both need a: the proof must establish a once
        // and stay verifiable.
        let db = parse_program("a. b :- a. c :- a. d :- b, c.").unwrap();
        let d = db.symbols().lookup("d").unwrap();
        let proof = activation_proof(&db, d).unwrap();
        assert!(verify_proof(&db, d, &proof));
        let a_steps = proof
            .iter()
            .filter(|s| s.atom == db.symbols().lookup("a").unwrap())
            .count();
        assert_eq!(a_steps, 1);
    }

    #[test]
    fn verify_rejects_corrupted_proofs() {
        let db = parse_program("a. b :- a.").unwrap();
        let b = db.symbols().lookup("b").unwrap();
        let mut proof = activation_proof(&db, b).unwrap();
        // Drop the first step: b's body is no longer established.
        proof.remove(0);
        assert!(!verify_proof(&db, b, &proof));
    }

    #[test]
    fn cap_returns_none() {
        // Chain of disjunctions that multiplies states.
        let db =
            parse_program("a0 | b0. a1 | b1. a2 | b2. c :- a0, a1, a2. d :- b0, b1, b2.").unwrap();
        assert!(model_state(&db, 1).unwrap().is_none());
        assert!(model_state(&db, 10_000).unwrap().is_some());
    }

    #[test]
    #[should_panic(expected = "without negation")]
    fn negation_rejected() {
        let db = parse_program("a :- not b.").unwrap();
        let _ = active_atoms(&db);
    }
}
