//! Oracle-cost accounting.

use ddb_sat::Solver;

/// Accounting record for the oracle usage of a decision procedure.
///
/// The paper's upper bounds are statements about *how many* oracle calls a
/// polynomial-time procedure needs (e.g. `P^{Σᵖ₂}[O(log n)]` = logarithmically
/// many Σᵖ₂-oracle calls). Every procedure in this workspace threads a
/// `Cost` through and bumps:
///
/// * [`Cost::sat_calls`] — invocations of the NP oracle (one CDCL `solve`);
/// * [`Cost::candidates`] — candidate models examined by CEGAR loops (a
///   proxy for Σᵖ₂-oracle invocations: each candidate round is one
///   guess-and-check);
/// * conflict/decision/propagation totals aggregated from the solvers.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cost {
    /// NP-oracle (SAT solver) invocations.
    pub sat_calls: u64,
    /// Candidate models examined by counterexample-guided loops.
    pub candidates: u64,
    /// Aggregated SAT decisions.
    pub decisions: u64,
    /// Aggregated SAT conflicts.
    pub conflicts: u64,
    /// Aggregated SAT propagations.
    pub propagations: u64,
    /// High-water mark of clauses resident in any absorbed solver — a
    /// gauge (merged via `max`, not summed).
    pub peak_clauses: u64,
}

impl Cost {
    /// A fresh zeroed cost record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs the statistics of a finished solver.
    pub fn absorb(&mut self, solver: &Solver) {
        let s = solver.stats();
        self.sat_calls += s.solves;
        self.decisions += s.decisions;
        self.conflicts += s.conflicts;
        self.propagations += s.propagations;
        self.peak_clauses = self.peak_clauses.max(s.max_clauses);
    }

    /// Adds another cost record into this one.
    pub fn merge(&mut self, other: &Cost) {
        self.sat_calls += other.sat_calls;
        self.candidates += other.candidates;
        self.decisions += other.decisions;
        self.conflicts += other.conflicts;
        self.propagations += other.propagations;
        self.peak_clauses = self.peak_clauses.max(other.peak_clauses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_and_merge() {
        let mut solver = Solver::new();
        solver.ensure_vars(1);
        solver.solve().unwrap();
        solver.solve().unwrap();
        let mut c = Cost::new();
        c.absorb(&solver);
        assert_eq!(c.sat_calls, 2);
        let mut d = Cost::new();
        d.candidates = 3;
        d.merge(&c);
        assert_eq!(d.sat_calls, 2);
        assert_eq!(d.candidates, 3);
    }
}
