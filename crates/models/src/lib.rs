//! # ddb-models — the model-theoretic engine
//!
//! Every semantics in the paper is characterized model-theoretically, in
//! terms of classical models `M(DB)`, minimal models `MM(DB)` and
//! ⟨P;Z⟩-minimal models `MM(DB;P;Z)` (partition ⟨P;Q;Z⟩ of the vocabulary:
//! minimize `P`, fix `Q`, let `Z` vary). This crate implements those
//! notions as *decision procedures around the SAT oracle*, mirroring the
//! upper-bound proofs of the paper:
//!
//! * [`classical`] — satisfiability, model checking and clausal entailment
//!   (the NP/coNP layer);
//! * [`minimal`] — minimal-model checking (one oracle call — the coNP
//!   subproblem), shrink-loop minimization, and minimal-model enumeration
//!   with blocking clauses;
//! * [`circumscribe`] — the Πᵖ₂ workhorse: "does formula F hold in every
//!   ⟨P;Z⟩-minimal model?", implemented as a counterexample-guided
//!   (CEGAR) loop whose soundness argument is spelled out in the module;
//! * [`fixpoint`] — the polynomial `T_DB`-based machinery for DDR/WGCWA:
//!   the *active-atom closure* (linear-time) and, as a cross-check, the
//!   explicit (worst-case exponential) fixpoint over atomic disjunctions;
//! * [`brute`] — a brute-force reference engine over all `2^|V|`
//!   interpretations, used by the test suite to validate every oracle-based
//!   procedure on small vocabularies.
//!
//! All procedures account their oracle usage in a [`Cost`], which the
//! benchmark harness reports to make the paper's oracle-bounded upper
//! bounds observable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod circumscribe;
pub mod classical;
pub mod components;
mod cost;
pub mod fixpoint;
pub mod minimal;
mod partition;
pub mod transversal;

pub use cost::Cost;
pub use partition::Partition;
