//! Brute-force reference engine.
//!
//! Everything here enumerates all `2^|V|` interpretations. The test suites
//! of `ddb-models` and `ddb-core` validate every oracle-based procedure
//! against these definitions on small vocabularies; nothing outside tests
//! and cross-check benches should call into this module.

use crate::Partition;
use ddb_logic::{Atom, Database, Formula, Interpretation};

const MAX_BRUTE_ATOMS: usize = 24;

/// Iterates over all interpretations of an `n`-atom vocabulary.
pub fn all_interpretations(n: usize) -> impl Iterator<Item = Interpretation> {
    assert!(
        n <= MAX_BRUTE_ATOMS,
        "brute force is capped at {MAX_BRUTE_ATOMS} atoms"
    );
    (0u64..1 << n).map(move |bits| {
        Interpretation::from_atoms(
            n,
            (0..n)
                .filter(|&i| bits >> i & 1 == 1)
                .map(|i| Atom::new(i as u32)),
        )
    })
}

/// All classical models `M(DB)`, sorted.
pub fn models(db: &Database) -> Vec<Interpretation> {
    all_interpretations(db.num_atoms())
        .filter(|m| db.satisfied_by(m))
        .collect()
}

/// All (subset-)minimal models `MM(DB)`, by definition.
pub fn minimal_models(db: &Database) -> Vec<Interpretation> {
    let ms = models(db);
    ms.iter()
        .filter(|m| !ms.iter().any(|m2| m2.is_proper_subset(m)))
        .cloned()
        .collect()
}

/// All ⟨P;Z⟩-minimal models `MM(DB;P;Z)`, by definition.
pub fn pz_minimal_models(db: &Database, part: &Partition) -> Vec<Interpretation> {
    let ms = models(db);
    ms.iter()
        .filter(|m| !ms.iter().any(|m2| part.lt(m2, m)))
        .cloned()
        .collect()
}

/// Whether `F` holds in every model of a given collection.
pub fn holds_in_all(models: &[Interpretation], f: &Formula) -> bool {
    models.iter().all(|m| f.eval(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cost;
    use ddb_logic::parse::{parse_formula, parse_program};

    #[test]
    fn brute_models_match_sat_engine() {
        let db = parse_program("a | b. c :- a. :- b, c.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            models(&db),
            crate::classical::all_models(&db, &mut cost).unwrap()
        );
    }

    #[test]
    fn brute_minimal_matches_sat_engine() {
        let db = parse_program("a | b. b | c. d :- a, c.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            minimal_models(&db),
            crate::minimal::minimal_models(&db, &mut cost).unwrap()
        );
    }

    #[test]
    fn brute_pz_matches_sat_engine() {
        let db = parse_program("a | b | c. b :- a.").unwrap();
        let syms = db.symbols();
        let part = Partition::from_p_q(3, [syms.lookup("a").unwrap()], [syms.lookup("c").unwrap()]);
        let mut cost = Cost::new();
        assert_eq!(
            pz_minimal_models(&db, &part),
            crate::minimal::pz_minimal_models(&db, &part, &mut cost).unwrap()
        );
    }

    #[test]
    fn holds_in_all_brute() {
        let db = parse_program("a | b.").unwrap();
        let f = parse_formula("a | b", db.symbols()).unwrap();
        assert!(holds_in_all(&minimal_models(&db), &f));
        let g = parse_formula("a", db.symbols()).unwrap();
        assert!(!holds_in_all(&minimal_models(&db), &g));
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn cap_enforced() {
        let _ = all_interpretations(30).count();
    }
}
