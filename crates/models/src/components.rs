//! Component decomposition: a database over syntactically disconnected
//! atom sets is a disjoint union, and its (minimal) models are the
//! cartesian products of the components' — so counting is a *product of
//! small counts* instead of an enumeration of the (exponential) product.
//!
//! The decomposition is exact for minimal models: minimality of a product
//! is componentwise (shrinking one component leaves the others models),
//! and an unsatisfiable component annihilates the product. The
//! `componentwise-vs-direct` ablation bench quantifies the win on
//! disjoint unions.

use crate::{minimal, Cost};
use ddb_logic::{Atom, Database, Interpretation, Rule, Symbols};
use ddb_obs::Governed;

/// Connected components of the co-occurrence graph (two atoms are
/// adjacent when some rule mentions both). Atoms mentioned by no rule
/// form singleton components. Components are returned sorted by smallest
/// member.
pub fn atom_components(db: &Database) -> Vec<Vec<Atom>> {
    let n = db.num_atoms();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for rule in db.rules() {
        let mut iter = rule.atoms();
        if let Some(first) = iter.next() {
            let r0 = find(&mut parent, first.index() as u32);
            for a in iter {
                let r = find(&mut parent, a.index() as u32);
                parent[r as usize] = r0;
                // Keep r0 canonical.
            }
        }
    }
    let mut groups: std::collections::BTreeMap<u32, Vec<Atom>> = Default::default();
    for i in 0..n as u32 {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(Atom::new(i));
    }
    groups.into_values().collect()
}

/// Extracts the sub-database induced by one component: a fresh database
/// whose atom `k` is `component[k]` of the original.
pub fn project_component(db: &Database, component: &[Atom]) -> Database {
    let mut symbols = Symbols::new();
    let mut index_of = std::collections::BTreeMap::new();
    for (k, &a) in component.iter().enumerate() {
        symbols.intern(db.symbols().name(a));
        index_of.insert(a, Atom::new(k as u32));
    }
    let mut sub = Database::new(symbols);
    for rule in db.rules() {
        // A rule belongs to exactly one component (all its atoms are
        // connected through it).
        let belongs = rule
            .atoms()
            .next()
            .is_some_and(|a| index_of.contains_key(&a));
        if !belongs {
            continue;
        }
        let map = |atoms: &[Atom]| -> Vec<Atom> { atoms.iter().map(|a| index_of[a]).collect() };
        sub.add_rule(Rule::new(
            map(rule.head()),
            map(rule.body_pos()),
            map(rule.body_neg()),
        ));
    }
    sub
}

/// Whether the database contains an atom-free rule — the empty clause,
/// which belongs to no component and falsifies everything.
fn has_empty_clause(db: &Database) -> bool {
    db.rules().iter().any(|r| r.atoms().next().is_none())
}

/// Counts the minimal models as a product over components (saturating at
/// `u128::MAX`). Exponentially faster than enumerating `MM(DB)` when the
/// database splits.
pub fn count_minimal_models(db: &Database, cost: &mut Cost) -> Governed<u128> {
    if has_empty_clause(db) {
        return Ok(0);
    }
    let mut total: u128 = 1;
    for component in atom_components(db) {
        let sub = project_component(db, &component);
        if sub.is_empty() {
            continue; // isolated atoms: unique minimal assignment (all false)
        }
        let count = minimal::minimal_models(&sub, cost)?.len() as u128;
        if count == 0 {
            return Ok(0);
        }
        total = total.saturating_mul(count);
    }
    Ok(total)
}

/// Enumerates `MM(DB)` by componentwise products — same output as
/// [`crate::minimal::minimal_models`], assembled from per-component
/// enumerations.
pub fn minimal_models_componentwise(
    db: &Database,
    cost: &mut Cost,
) -> Governed<Vec<Interpretation>> {
    if has_empty_clause(db) {
        return Ok(Vec::new());
    }
    let n = db.num_atoms();
    let mut product: Vec<Interpretation> = vec![Interpretation::empty(n)];
    for component in atom_components(db) {
        let sub = project_component(db, &component);
        if sub.is_empty() {
            continue;
        }
        let local = minimal::minimal_models(&sub, cost)?;
        if local.is_empty() {
            return Ok(Vec::new());
        }
        let mut next = Vec::with_capacity(product.len() * local.len());
        for base in &product {
            for m in &local {
                let mut combined = base.clone();
                for k in m.iter() {
                    combined.insert(component[k.index()]);
                }
                next.push(combined);
            }
        }
        product = next;
    }
    product.sort();
    Ok(product)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::parse_program;

    #[test]
    fn components_found() {
        let db = parse_program("a | b. c :- d. e.").unwrap();
        let comps = atom_components(&db);
        // {a,b}, {c,d}, {e}.
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].len(), 2);
        assert_eq!(comps[1].len(), 2);
        assert_eq!(comps[2].len(), 1);
    }

    #[test]
    fn isolated_atoms_are_singletons() {
        let mut db = ddb_logic::Database::with_fresh_atoms(3);
        db.add_rule(ddb_logic::Rule::fact([Atom::new(0)]));
        let comps = atom_components(&db);
        assert_eq!(comps.len(), 3);
    }

    #[test]
    fn counting_is_a_product() {
        // Three disjoint disjunctions: 2 × 2 × 2 minimal models.
        let db = parse_program("a | b. c | d. e | f.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(count_minimal_models(&db, &mut cost).unwrap(), 8);
    }

    #[test]
    fn unsat_component_annihilates() {
        let db = parse_program("a | b. c. :- c.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(count_minimal_models(&db, &mut cost).unwrap(), 0);
    }

    #[test]
    fn componentwise_enumeration_matches_direct() {
        for src in [
            "a | b. c | d. e :- f.",
            "a | b. b | c. x | y. z :- x, y.",
            "p. q :- not p. r | s :- not t.",
            "a.",
        ] {
            let db = parse_program(src).unwrap();
            let mut cost = Cost::new();
            assert_eq!(
                minimal_models_componentwise(&db, &mut cost).unwrap(),
                minimal::minimal_models(&db, &mut cost).unwrap(),
                "{src}"
            );
        }
    }

    #[test]
    fn count_matches_enumeration_on_random_dbs() {
        use ddb_logic::Rule;
        // Deterministic pseudo-random split databases.
        let mut state = 0xFEED_FACE_CAFEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..20 {
            let n = 8;
            let mut db = ddb_logic::Database::with_fresh_atoms(n);
            // Rules confined to halves → at least two components.
            for _ in 0..5 {
                let half = (next() % 2) as u32 * 4;
                let a = Atom::new(half + (next() % 4) as u32);
                let b = Atom::new(half + (next() % 4) as u32);
                let c = Atom::new(half + (next() % 4) as u32);
                db.add_rule(Rule::new([a, b], [c], []));
            }
            let mut cost = Cost::new();
            let direct = minimal::minimal_models(&db, &mut cost).unwrap().len() as u128;
            assert_eq!(
                count_minimal_models(&db, &mut cost).unwrap(),
                direct,
                "round {round}"
            );
        }
    }

    #[test]
    fn empty_clause_annihilates() {
        // The empty clause (constructible via Rule::new, not the parser)
        // mentions no atoms, so it lives in no component — both entry
        // points must still report unsatisfiability.
        let mut db = ddb_logic::Database::with_fresh_atoms(2);
        db.add_rule(ddb_logic::Rule::fact([Atom::new(0), Atom::new(1)]));
        db.add_rule(ddb_logic::Rule::new([], [], []));
        let mut cost = Cost::new();
        assert_eq!(count_minimal_models(&db, &mut cost).unwrap(), 0);
        assert!(minimal_models_componentwise(&db, &mut cost)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn project_component_keeps_names() {
        let db = parse_program("alice | bob. carol :- dave.").unwrap();
        let comps = atom_components(&db);
        let sub = project_component(&db, &comps[0]);
        assert_eq!(sub.num_atoms(), 2);
        assert!(sub.symbols().lookup("alice").is_some());
        assert!(sub.symbols().lookup("carol").is_none());
        assert_eq!(sub.len(), 1);
    }
}
