//! Property-based cross-checks: every oracle-based procedure in
//! `ddb-models` must agree with the brute-force definitions on random
//! small databases.

use ddb_logic::{Atom, Database, Formula, Rule};
use ddb_models::{brute, circumscribe, classical, fixpoint, minimal, Cost, Partition};
use proptest::prelude::*;

const N: usize = 5;

/// Random rule over `N` atoms. `allow_neg`/`allow_integrity` gate the
/// syntactic class.
fn arb_rule(allow_neg: bool, allow_integrity: bool) -> impl Strategy<Value = Rule> {
    let head = proptest::collection::vec(0u32..N as u32, usize::from(!allow_integrity)..=2);
    let body_pos = proptest::collection::vec(0u32..N as u32, 0..=2);
    let body_neg = proptest::collection::vec(0u32..N as u32, 0..=(2 * usize::from(allow_neg)));
    (head, body_pos, body_neg).prop_map(|(h, bp, bn)| {
        Rule::new(
            h.into_iter().map(Atom::new),
            bp.into_iter().map(Atom::new),
            bn.into_iter().map(Atom::new),
        )
    })
}

fn arb_db(allow_neg: bool, allow_integrity: bool) -> impl Strategy<Value = Database> {
    proptest::collection::vec(arb_rule(allow_neg, allow_integrity), 0..8).prop_map(|rules| {
        let mut db = Database::with_fresh_atoms(N);
        for r in rules {
            db.add_rule(r);
        }
        db
    })
}

/// Random formula of depth ≤ 3 over the first `N` atoms.
fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (0u32..N as u32).prop_map(|i| Formula::Atom(Atom::new(i))),
        Just(Formula::True),
        Just(Formula::False),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.negated()),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Formula::And),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Formula::Or),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.iff(b)),
        ]
    })
}

/// Random partition of the `N` atoms into P/Q/Z.
fn arb_partition() -> impl Strategy<Value = Partition> {
    proptest::collection::vec(0u8..3, N).prop_map(|assignment| {
        let p = (0..N)
            .filter(|&i| assignment[i] == 0)
            .map(|i| Atom::new(i as u32));
        let q = (0..N)
            .filter(|&i| assignment[i] == 1)
            .map(|i| Atom::new(i as u32));
        Partition::from_p_q(N, p, q)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn sat_models_match_brute(db in arb_db(true, true)) {
        let mut cost = Cost::new();
        prop_assert_eq!(classical::all_models(&db, &mut cost), brute::models(&db));
    }

    #[test]
    fn minimal_models_match_brute(db in arb_db(true, true)) {
        let mut cost = Cost::new();
        prop_assert_eq!(
            minimal::minimal_models(&db, &mut cost),
            brute::minimal_models(&db)
        );
    }

    #[test]
    fn pz_minimal_models_match_brute(db in arb_db(true, true), part in arb_partition()) {
        let mut cost = Cost::new();
        prop_assert_eq!(
            minimal::pz_minimal_models(&db, &part, &mut cost),
            brute::pz_minimal_models(&db, &part)
        );
    }

    #[test]
    fn minimize_lands_on_brute_minimal(db in arb_db(true, true)) {
        let mut cost = Cost::new();
        if let Some(m) = classical::some_model(&db, &mut cost) {
            let minimal = minimal::minimize(&db, &m, &mut cost);
            prop_assert!(brute::minimal_models(&db).contains(&minimal));
            prop_assert!(minimal.is_subset(&m));
        }
    }

    #[test]
    fn cegar_matches_brute(db in arb_db(true, true), f in arb_formula()) {
        let mut cost = Cost::new();
        let expected = brute::holds_in_all(&brute::minimal_models(&db), &f);
        prop_assert_eq!(
            circumscribe::holds_in_all_minimal_models(&db, &f, &mut cost),
            expected
        );
    }

    #[test]
    fn cegar_pz_matches_brute(db in arb_db(true, true), f in arb_formula(), part in arb_partition()) {
        let mut cost = Cost::new();
        let expected = brute::holds_in_all(&brute::pz_minimal_models(&db, &part), &f);
        prop_assert_eq!(
            circumscribe::holds_in_all_pz_minimal_models(&db, &part, &f, &mut cost),
            expected
        );
    }

    #[test]
    fn cegar_witness_is_sound_and_complete(db in arb_db(true, true), f in arb_formula(), part in arb_partition()) {
        let mut cost = Cost::new();
        let witness = circumscribe::find_pz_minimal_model_satisfying(&db, &part, &f, &mut cost);
        let reference = brute::pz_minimal_models(&db, &part);
        match witness {
            Some(w) => {
                prop_assert!(f.eval(&w));
                prop_assert!(reference.contains(&w));
            }
            None => prop_assert!(!reference.iter().any(|m| f.eval(m))),
        }
    }

    #[test]
    fn active_atoms_match_explicit_fixpoint(db in arb_db(false, true)) {
        // Positive databases only (DDR's domain). Cap generously; the
        // random instances are tiny.
        if let Some(state) = fixpoint::model_state(&db, 50_000) {
            prop_assert_eq!(
                fixpoint::atoms_of_state(&state, db.num_atoms()),
                fixpoint::active_atoms(&db)
            );
        }
    }

    #[test]
    fn entailment_matches_brute(db in arb_db(true, true), f in arb_formula()) {
        let mut cost = Cost::new();
        let expected = brute::holds_in_all(&brute::models(&db), &f);
        prop_assert_eq!(classical::entails(&db, &[], &f, &mut cost), expected);
    }

    #[test]
    fn componentwise_enumeration_matches_direct(db in arb_db(true, true)) {
        let mut cost = Cost::new();
        let direct = minimal::minimal_models(&db, &mut cost);
        prop_assert_eq!(
            ddb_models::components::minimal_models_componentwise(&db, &mut cost),
            direct.clone()
        );
        prop_assert_eq!(
            ddb_models::components::count_minimal_models(&db, &mut cost),
            direct.len() as u128
        );
    }
}
