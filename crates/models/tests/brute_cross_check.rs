//! Randomized cross-checks: every oracle-based procedure in `ddb-models`
//! must agree with the brute-force definitions on random small databases.
//! Driven by the in-repo deterministic PRNG (formerly proptest).

use ddb_logic::rng::XorShift64Star;
use ddb_logic::{Atom, Database, Formula, Rule};
use ddb_models::{brute, circumscribe, classical, fixpoint, minimal, Cost, Partition};

const N: usize = 5;
const CASES: usize = 150;

/// Random rule over `N` atoms. `allow_neg`/`allow_integrity` gate the
/// syntactic class.
fn random_rule(rng: &mut XorShift64Star, allow_neg: bool, allow_integrity: bool) -> Rule {
    let lo = usize::from(!allow_integrity);
    let h: Vec<u32> = (0..rng.gen_range_inclusive(lo, 2))
        .map(|_| rng.gen_range(0, N) as u32)
        .collect();
    let bp: Vec<u32> = (0..rng.gen_range_inclusive(0, 2))
        .map(|_| rng.gen_range(0, N) as u32)
        .collect();
    let bn: Vec<u32> = (0..rng.gen_range_inclusive(0, 2 * usize::from(allow_neg)))
        .map(|_| rng.gen_range(0, N) as u32)
        .collect();
    Rule::new(
        h.into_iter().map(Atom::new),
        bp.into_iter().map(Atom::new),
        bn.into_iter().map(Atom::new),
    )
}

fn random_db(rng: &mut XorShift64Star, allow_neg: bool, allow_integrity: bool) -> Database {
    let mut db = Database::with_fresh_atoms(N);
    for _ in 0..rng.gen_range(0, 8) {
        db.add_rule(random_rule(rng, allow_neg, allow_integrity));
    }
    db
}

/// Random formula of depth ≤ 3 over the first `N` atoms.
fn random_formula(rng: &mut XorShift64Star, depth: usize) -> Formula {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0, 7) {
            0..=4 => Formula::Atom(Atom::new(rng.gen_range(0, N) as u32)),
            5 => Formula::True,
            _ => Formula::False,
        };
    }
    match rng.gen_range(0, 5) {
        0 => random_formula(rng, depth - 1).negated(),
        1 => Formula::And(
            (0..rng.gen_range_inclusive(1, 2))
                .map(|_| random_formula(rng, depth - 1))
                .collect(),
        ),
        2 => Formula::Or(
            (0..rng.gen_range_inclusive(1, 2))
                .map(|_| random_formula(rng, depth - 1))
                .collect(),
        ),
        3 => random_formula(rng, depth - 1).implies(random_formula(rng, depth - 1)),
        _ => random_formula(rng, depth - 1).iff(random_formula(rng, depth - 1)),
    }
}

/// Random partition of the `N` atoms into P/Q/Z.
fn random_partition(rng: &mut XorShift64Star) -> Partition {
    let assignment: Vec<u8> = (0..N).map(|_| rng.gen_range(0, 3) as u8).collect();
    let p = (0..N)
        .filter(|&i| assignment[i] == 0)
        .map(|i| Atom::new(i as u32));
    let q = (0..N)
        .filter(|&i| assignment[i] == 1)
        .map(|i| Atom::new(i as u32));
    Partition::from_p_q(N, p, q)
}

#[test]
fn sat_models_match_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0xB01);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let mut cost = Cost::new();
        assert_eq!(
            classical::all_models(&db, &mut cost).unwrap(),
            brute::models(&db),
            "case {case}"
        );
    }
}

#[test]
fn minimal_models_match_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0xB02);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let mut cost = Cost::new();
        assert_eq!(
            minimal::minimal_models(&db, &mut cost).unwrap(),
            brute::minimal_models(&db),
            "case {case}"
        );
    }
}

#[test]
fn pz_minimal_models_match_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0xB03);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let part = random_partition(&mut rng);
        let mut cost = Cost::new();
        assert_eq!(
            minimal::pz_minimal_models(&db, &part, &mut cost).unwrap(),
            brute::pz_minimal_models(&db, &part),
            "case {case}"
        );
    }
}

#[test]
fn incremental_pz_enumeration_never_costs_more_oracle_calls() {
    // The incremental expander (one solver, activation-guarded signature
    // clauses) must return the same model sets as the fresh-solver
    // baseline at the same oracle-call count — learnt clauses may only
    // cheapen the calls, never add or change them.
    let mut rng = XorShift64Star::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let part = random_partition(&mut rng);
        let mut inc_cost = Cost::new();
        let inc = minimal::pz_minimal_models(&db, &part, &mut inc_cost).unwrap();
        let mut fresh_cost = Cost::new();
        let fresh = minimal::pz_minimal_models_fresh(&db, &part, &mut fresh_cost).unwrap();
        assert_eq!(inc, fresh, "case {case}");
        assert!(
            inc_cost.sat_calls <= fresh_cost.sat_calls,
            "case {case}: incremental used {} oracle calls, fresh used {}",
            inc_cost.sat_calls,
            fresh_cost.sat_calls
        );
    }
}

#[test]
fn minimize_lands_on_brute_minimal() {
    let mut rng = XorShift64Star::seed_from_u64(0xB04);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let mut cost = Cost::new();
        if let Some(m) = classical::some_model(&db, &mut cost).unwrap() {
            let minimal = minimal::minimize(&db, &m, &mut cost).unwrap();
            assert!(brute::minimal_models(&db).contains(&minimal), "case {case}");
            assert!(minimal.is_subset(&m), "case {case}");
        }
    }
}

#[test]
fn cegar_matches_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0xB05);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let f = random_formula(&mut rng, 3);
        let mut cost = Cost::new();
        let expected = brute::holds_in_all(&brute::minimal_models(&db), &f);
        assert_eq!(
            circumscribe::holds_in_all_minimal_models(&db, &f, &mut cost).unwrap(),
            expected,
            "case {case}"
        );
    }
}

#[test]
fn cegar_pz_matches_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0xB06);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let f = random_formula(&mut rng, 3);
        let part = random_partition(&mut rng);
        let mut cost = Cost::new();
        let expected = brute::holds_in_all(&brute::pz_minimal_models(&db, &part), &f);
        assert_eq!(
            circumscribe::holds_in_all_pz_minimal_models(&db, &part, &f, &mut cost).unwrap(),
            expected,
            "case {case}"
        );
    }
}

#[test]
fn cegar_witness_is_sound_and_complete() {
    let mut rng = XorShift64Star::seed_from_u64(0xB07);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let f = random_formula(&mut rng, 3);
        let part = random_partition(&mut rng);
        let mut cost = Cost::new();
        let witness =
            circumscribe::find_pz_minimal_model_satisfying(&db, &part, &f, &mut cost).unwrap();
        let reference = brute::pz_minimal_models(&db, &part);
        match witness {
            Some(w) => {
                assert!(f.eval(&w), "case {case}");
                assert!(reference.contains(&w), "case {case}");
            }
            None => assert!(!reference.iter().any(|m| f.eval(m)), "case {case}"),
        }
    }
}

#[test]
fn active_atoms_match_explicit_fixpoint() {
    let mut rng = XorShift64Star::seed_from_u64(0xB08);
    for case in 0..CASES {
        // Positive databases only (DDR's domain). Cap generously; the
        // random instances are tiny.
        let db = random_db(&mut rng, false, true);
        if let Some(state) = fixpoint::model_state(&db, 50_000).unwrap() {
            assert_eq!(
                fixpoint::atoms_of_state(&state, db.num_atoms()),
                fixpoint::active_atoms(&db),
                "case {case}"
            );
        }
    }
}

#[test]
fn entailment_matches_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0xB09);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let f = random_formula(&mut rng, 3);
        let mut cost = Cost::new();
        let expected = brute::holds_in_all(&brute::models(&db), &f);
        assert_eq!(
            classical::entails(&db, &[], &f, &mut cost).unwrap(),
            expected,
            "case {case}"
        );
    }
}

#[test]
fn componentwise_enumeration_matches_direct() {
    let mut rng = XorShift64Star::seed_from_u64(0xB0A);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let mut cost = Cost::new();
        let direct = minimal::minimal_models(&db, &mut cost).unwrap();
        assert_eq!(
            ddb_models::components::minimal_models_componentwise(&db, &mut cost).unwrap(),
            direct.clone(),
            "case {case}"
        );
        assert_eq!(
            ddb_models::components::count_minimal_models(&db, &mut cost).unwrap(),
            direct.len() as u128,
            "case {case}"
        );
    }
}
