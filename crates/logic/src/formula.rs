//! Propositional formulas — the objects of the paper's *formula inference*
//! problem.

use crate::{Atom, Interpretation, PartialInterpretation, TruthValue};

/// A propositional formula over a vocabulary of atoms.
///
/// Built by the combinators below ([`Formula::and`], [`Formula::or`], …) or
/// parsed from text via [`crate::parse::parse_formula`]. Evaluation is
/// two-valued ([`Formula::eval`]) or three-valued ([`Formula::eval3`],
/// Kleene strong connectives, used for PDSM formula inference).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// The constant ⊤.
    True,
    /// The constant ⊥.
    False,
    /// An atomic proposition.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction (`And([])` is ⊤).
    And(Vec<Formula>),
    /// N-ary disjunction (`Or([])` is ⊥).
    Or(Vec<Formula>),
    /// Implication `lhs → rhs`.
    Implies(Box<Formula>, Box<Formula>),
    /// Equivalence `lhs ↔ rhs`.
    Iff(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// The atomic formula for `atom`.
    pub fn atom(atom: Atom) -> Self {
        Formula::Atom(atom)
    }

    /// A literal: `atom` if `positive`, else `¬atom`.
    pub fn literal(atom: Atom, positive: bool) -> Self {
        if positive {
            Formula::Atom(atom)
        } else {
            Formula::Atom(atom).negated()
        }
    }

    /// Negation of `self`.
    pub fn negated(self) -> Self {
        Formula::Not(Box::new(self))
    }

    /// Conjunction of `parts`.
    pub fn and(parts: impl IntoIterator<Item = Formula>) -> Self {
        Formula::And(parts.into_iter().collect())
    }

    /// Disjunction of `parts`.
    pub fn or(parts: impl IntoIterator<Item = Formula>) -> Self {
        Formula::Or(parts.into_iter().collect())
    }

    /// Implication `self → rhs`.
    pub fn implies(self, rhs: Formula) -> Self {
        Formula::Implies(Box::new(self), Box::new(rhs))
    }

    /// Equivalence `self ↔ rhs`.
    pub fn iff(self, rhs: Formula) -> Self {
        Formula::Iff(Box::new(self), Box::new(rhs))
    }

    /// Two-valued evaluation under `m`.
    pub fn eval(&self, m: &Interpretation) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(a) => m.contains(*a),
            Formula::Not(f) => !f.eval(m),
            Formula::And(fs) => fs.iter().all(|f| f.eval(m)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(m)),
            Formula::Implies(l, r) => !l.eval(m) || r.eval(m),
            Formula::Iff(l, r) => l.eval(m) == r.eval(m),
        }
    }

    /// Three-valued (strong Kleene) evaluation under `p`. Implication is
    /// material (`¬l ∨ r`) and `Iff` is the conjunction of both material
    /// implications, matching the convention for formula inference under
    /// PDSM.
    pub fn eval3(&self, p: &PartialInterpretation) -> TruthValue {
        match self {
            Formula::True => TruthValue::True,
            Formula::False => TruthValue::False,
            Formula::Atom(a) => p.value(*a),
            Formula::Not(f) => f.eval3(p).not(),
            Formula::And(fs) => fs
                .iter()
                .map(|f| f.eval3(p))
                .fold(TruthValue::True, TruthValue::and),
            Formula::Or(fs) => fs
                .iter()
                .map(|f| f.eval3(p))
                .fold(TruthValue::False, TruthValue::or),
            Formula::Implies(l, r) => l.eval3(p).not().or(r.eval3(p)),
            Formula::Iff(l, r) => {
                let (lv, rv) = (l.eval3(p), r.eval3(p));
                lv.not().or(rv).and(rv.not().or(lv))
            }
        }
    }

    /// Replaces every atomic leaf by `sub(atom)`, leaving the connective
    /// structure untouched — the substitution primitive behind query-slice
    /// renaming (atom ↦ renamed atom) and splitting-set partial evaluation
    /// (decided atom ↦ ⊤/⊥).
    pub fn map_atoms(&self, sub: &mut impl FnMut(Atom) -> Formula) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => sub(*a),
            Formula::Not(f) => f.map_atoms(sub).negated(),
            Formula::And(fs) => Formula::And(fs.iter().map(|f| f.map_atoms(sub)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|f| f.map_atoms(sub)).collect()),
            Formula::Implies(l, r) => l.map_atoms(sub).implies(r.map_atoms(sub)),
            Formula::Iff(l, r) => l.map_atoms(sub).iff(r.map_atoms(sub)),
        }
    }

    /// Collects the atoms occurring in the formula into `out` (deduplicated
    /// by the caller if needed).
    pub fn collect_atoms(&self, out: &mut Vec<Atom>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => out.push(*a),
            Formula::Not(f) => f.collect_atoms(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_atoms(out);
                }
            }
            Formula::Implies(l, r) | Formula::Iff(l, r) => {
                l.collect_atoms(out);
                r.collect_atoms(out);
            }
        }
    }

    /// The set of distinct atoms occurring in the formula, sorted.
    pub fn atoms(&self) -> Vec<Atom> {
        let mut v = Vec::new();
        self.collect_atoms(&mut v);
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Structural size (number of AST nodes) — used for workload reporting.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Implies(l, r) | Formula::Iff(l, r) => 1 + l.size() + r.size(),
        }
    }

    /// Negation normal form: pushes negations to the atoms and eliminates
    /// `Implies`/`Iff`. The result contains only `And`, `Or`, literals and
    /// constants.
    pub fn to_nnf(&self) -> Formula {
        self.nnf(false)
    }

    /// Semantic-preserving simplification: constant folding
    /// (`⊤ ∧ F ↦ F`, `⊥ ∨ F ↦ F`, short-circuits), double-negation
    /// elimination, flattening of nested `And`/`Or`, and collapsing of
    /// single-element connectives. Linear in the formula size; the result
    /// never contains `True`/`False` except as the whole formula.
    pub fn simplify(&self) -> Formula {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => self.clone(),
            Formula::Not(g) => match g.simplify() {
                Formula::True => Formula::False,
                Formula::False => Formula::True,
                Formula::Not(inner) => *inner,
                other => other.negated(),
            },
            Formula::And(fs) => {
                let mut parts = Vec::new();
                for g in fs {
                    match g.simplify() {
                        Formula::True => {}
                        Formula::False => return Formula::False,
                        Formula::And(inner) => parts.extend(inner),
                        other => parts.push(other),
                    }
                }
                match parts.len() {
                    0 => Formula::True,
                    1 => parts.pop().expect("one element"),
                    _ => Formula::And(parts),
                }
            }
            Formula::Or(fs) => {
                let mut parts = Vec::new();
                for g in fs {
                    match g.simplify() {
                        Formula::False => {}
                        Formula::True => return Formula::True,
                        Formula::Or(inner) => parts.extend(inner),
                        other => parts.push(other),
                    }
                }
                match parts.len() {
                    0 => Formula::False,
                    1 => parts.pop().expect("one element"),
                    _ => Formula::Or(parts),
                }
            }
            Formula::Implies(l, r) => match (l.simplify(), r.simplify()) {
                (Formula::False, _) | (_, Formula::True) => Formula::True,
                (Formula::True, rr) => rr,
                (ll, Formula::False) => Formula::Not(Box::new(ll)).simplify(),
                (ll, rr) => ll.implies(rr),
            },
            Formula::Iff(l, r) => match (l.simplify(), r.simplify()) {
                (Formula::True, g) | (g, Formula::True) => g,
                (Formula::False, g) | (g, Formula::False) => Formula::Not(Box::new(g)).simplify(),
                (ll, rr) => ll.iff(rr),
            },
        }
    }

    fn nnf(&self, negate: bool) -> Formula {
        match (self, negate) {
            (Formula::True, false) | (Formula::False, true) => Formula::True,
            (Formula::True, true) | (Formula::False, false) => Formula::False,
            (Formula::Atom(a), false) => Formula::Atom(*a),
            (Formula::Atom(a), true) => Formula::Atom(*a).negated(),
            (Formula::Not(f), n) => f.nnf(!n),
            (Formula::And(fs), false) => Formula::And(fs.iter().map(|f| f.nnf(false)).collect()),
            (Formula::And(fs), true) => Formula::Or(fs.iter().map(|f| f.nnf(true)).collect()),
            (Formula::Or(fs), false) => Formula::Or(fs.iter().map(|f| f.nnf(false)).collect()),
            (Formula::Or(fs), true) => Formula::And(fs.iter().map(|f| f.nnf(true)).collect()),
            (Formula::Implies(l, r), false) => Formula::Or(vec![l.nnf(true), r.nnf(false)]),
            (Formula::Implies(l, r), true) => Formula::And(vec![l.nnf(false), r.nnf(true)]),
            (Formula::Iff(l, r), false) => Formula::And(vec![
                Formula::Or(vec![l.nnf(true), r.nnf(false)]),
                Formula::Or(vec![r.nnf(true), l.nnf(false)]),
            ]),
            (Formula::Iff(l, r), true) => Formula::Or(vec![
                Formula::And(vec![l.nnf(false), r.nnf(true)]),
                Formula::And(vec![r.nnf(false), l.nnf(true)]),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> Atom {
        Atom::new(i)
    }

    fn m(n: usize, atoms: &[u32]) -> Interpretation {
        Interpretation::from_atoms(n, atoms.iter().map(|&i| Atom::new(i)))
    }

    #[test]
    fn eval_connectives() {
        let f = Formula::atom(a(0)).implies(Formula::or([
            Formula::atom(a(1)),
            Formula::atom(a(2)).negated(),
        ]));
        assert!(f.eval(&m(3, &[]))); // antecedent false
        assert!(f.eval(&m(3, &[0, 1])));
        assert!(f.eval(&m(3, &[0]))); // ¬x2 true
        assert!(!f.eval(&m(3, &[0, 2])));
    }

    #[test]
    fn iff_eval() {
        let f = Formula::atom(a(0)).iff(Formula::atom(a(1)));
        assert!(f.eval(&m(2, &[])));
        assert!(f.eval(&m(2, &[0, 1])));
        assert!(!f.eval(&m(2, &[0])));
    }

    #[test]
    fn empty_and_or() {
        let e = Interpretation::empty(0);
        assert!(Formula::and([]).eval(&e));
        assert!(!Formula::or([]).eval(&e));
    }

    #[test]
    fn map_atoms_substitutes_leaves() {
        let f = Formula::atom(a(0)).implies(Formula::or([
            Formula::atom(a(1)).negated(),
            Formula::atom(a(0)),
        ]));
        let g = f.map_atoms(&mut |x| {
            if x == a(0) {
                Formula::True
            } else {
                Formula::atom(x)
            }
        });
        // a₀ ↦ ⊤: ⊤ → (¬a₁ ∨ ⊤) ≡ ⊤.
        assert_eq!(g.simplify(), Formula::True);
        // Identity substitution is structural identity.
        assert_eq!(f.map_atoms(&mut Formula::atom), f);
    }

    #[test]
    fn atoms_sorted_dedup() {
        let f = Formula::and([
            Formula::atom(a(3)),
            Formula::atom(a(1)).negated(),
            Formula::atom(a(3)),
        ]);
        assert_eq!(f.atoms(), vec![a(1), a(3)]);
    }

    #[test]
    fn nnf_preserves_semantics_exhaustively() {
        // Check NNF equivalence over all models for a formula with every
        // connective.
        let f = Formula::Iff(
            Box::new(Formula::atom(a(0)).implies(Formula::atom(a(1)))),
            Box::new(Formula::and([
                Formula::atom(a(2)),
                Formula::or([Formula::atom(a(0)).negated(), Formula::atom(a(1))]),
            ])),
        )
        .negated();
        let g = f.to_nnf();
        for bits in 0u32..8 {
            let model =
                Interpretation::from_atoms(3, (0..3).filter(|&i| bits >> i & 1 == 1).map(a));
            assert_eq!(f.eval(&model), g.eval(&model), "model {model:?}");
        }
        // NNF has no Implies/Iff/non-atomic Not.
        fn check_nnf(f: &Formula) {
            match f {
                Formula::Implies(..) | Formula::Iff(..) => panic!("not NNF"),
                Formula::Not(inner) => assert!(matches!(**inner, Formula::Atom(_))),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(check_nnf),
                _ => {}
            }
        }
        check_nnf(&g);
    }

    #[test]
    fn simplify_constant_folding() {
        // ⊤ ∧ (a ∨ ⊥) simplifies to a.
        let f = Formula::and([
            Formula::True,
            Formula::or([Formula::atom(a(0)), Formula::False]),
        ]);
        assert_eq!(f.simplify(), Formula::atom(a(0)));
        // ⊥ → x is ⊤; x → ⊥ is ¬x.
        assert_eq!(
            Formula::False.implies(Formula::atom(a(0))).simplify(),
            Formula::True
        );
        assert_eq!(
            Formula::atom(a(0)).implies(Formula::False).simplify(),
            Formula::atom(a(0)).negated()
        );
        // ¬¬x is x; x ↔ ⊤ is x.
        assert_eq!(
            Formula::atom(a(0)).negated().negated().simplify(),
            Formula::atom(a(0))
        );
        assert_eq!(
            Formula::atom(a(0)).iff(Formula::True).simplify(),
            Formula::atom(a(0))
        );
    }

    #[test]
    fn simplify_flattens_nested_connectives() {
        let f = Formula::and([
            Formula::and([Formula::atom(a(0)), Formula::atom(a(1))]),
            Formula::atom(a(2)),
        ]);
        assert_eq!(
            f.simplify(),
            Formula::and([
                Formula::atom(a(0)),
                Formula::atom(a(1)),
                Formula::atom(a(2))
            ])
        );
    }

    #[test]
    fn simplify_preserves_semantics_exhaustively() {
        let candidates = [
            Formula::Iff(
                Box::new(Formula::and([Formula::True, Formula::atom(a(0))])),
                Box::new(Formula::or([Formula::False, Formula::atom(a(1)).negated()])),
            ),
            Formula::atom(a(0))
                .implies(Formula::and([Formula::atom(a(1)), Formula::False]))
                .negated(),
            Formula::or([
                Formula::and([]),
                Formula::atom(a(2)),
                Formula::or([Formula::atom(a(0)), Formula::atom(a(1))]),
            ]),
        ];
        for f in &candidates {
            let g = f.simplify();
            assert!(g.size() <= f.size());
            for bits in 0u32..8 {
                let m =
                    Interpretation::from_atoms(3, (0..3u32).filter(|&i| bits >> i & 1 == 1).map(a));
                assert_eq!(f.eval(&m), g.eval(&m), "{f:?} vs {g:?}");
            }
        }
    }

    #[test]
    fn eval3_matches_eval_on_total() {
        let f = Formula::Iff(
            Box::new(Formula::atom(a(0))),
            Box::new(Formula::atom(a(1)).implies(Formula::atom(a(2)).negated())),
        );
        for bits in 0u32..8 {
            let model =
                Interpretation::from_atoms(3, (0..3).filter(|&i| bits >> i & 1 == 1).map(a));
            let p = PartialInterpretation::from_total(&model);
            let expected = if f.eval(&model) {
                TruthValue::True
            } else {
                TruthValue::False
            };
            assert_eq!(f.eval3(&p), expected);
        }
    }

    #[test]
    fn eval3_undefined_propagation() {
        let mut p = PartialInterpretation::undefined(2);
        let f = Formula::or([Formula::atom(a(0)), Formula::atom(a(1))]);
        assert_eq!(f.eval3(&p), TruthValue::Undefined);
        p.set(a(0), TruthValue::True);
        assert_eq!(f.eval3(&p), TruthValue::True); // strong Kleene: 1 ∨ ½ = 1
    }
}
