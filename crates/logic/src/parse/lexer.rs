//! Tokenizer shared by the program and formula parsers.

use std::fmt;

/// A lexical token with its byte offset (for error reporting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token kinds of the concrete syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum TokenKind {
    /// An identifier (atom name) or keyword (`not`, `v`, `true`, `false`).
    Ident(String),
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `|`
    Pipe,
    /// `:-`
    Arrow,
    /// `~` or `!`
    Bang,
    /// `&`
    Amp,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `->`
    Implies,
    /// `<->`
    Iff,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::Arrow => write!(f, "`:-`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Implies => write!(f, "`->`"),
            TokenKind::Iff => write!(f, "`<->`"),
        }
    }
}

/// Tokenizes `src`; returns the token list or an (offset, message) error.
pub(crate) fn tokenize(src: &str) -> Result<Vec<Token>, (usize, String)> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: i,
                });
                i += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: i,
                });
                i += 1;
            }
            b'|' => {
                tokens.push(Token {
                    kind: TokenKind::Pipe,
                    offset: i,
                });
                i += 1;
            }
            b'~' | b'!' => {
                tokens.push(Token {
                    kind: TokenKind::Bang,
                    offset: i,
                });
                i += 1;
            }
            b'&' => {
                tokens.push(Token {
                    kind: TokenKind::Amp,
                    offset: i,
                });
                i += 1;
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: i,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: i,
                });
                i += 1;
            }
            b':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    tokens.push(Token {
                        kind: TokenKind::Arrow,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err((i, "expected `:-`".to_owned()));
                }
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Implies,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err((i, "expected `->`".to_owned()));
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'-') && bytes.get(i + 2) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Iff,
                        offset: i,
                    });
                    i += 3;
                } else {
                    return Err((i, "expected `<->`".to_owned()));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'\'')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_owned()),
                    offset: start,
                });
            }
            other => {
                return Err((i, format!("unexpected character `{}`", other as char)));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_rule() {
        let toks = tokenize("a|b :- c, not d.").unwrap();
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        use TokenKind::*;
        assert_eq!(
            kinds,
            vec![
                &Ident("a".into()),
                &Pipe,
                &Ident("b".into()),
                &Arrow,
                &Ident("c".into()),
                &Comma,
                &Ident("not".into()),
                &Ident("d".into()),
                &Dot
            ]
        );
    }

    #[test]
    fn tokenizes_formula_operators() {
        let toks = tokenize("a -> b <-> !c & d").unwrap();
        use TokenKind::*;
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &Ident("a".into()),
                &Implies,
                &Ident("b".into()),
                &Iff,
                &Bang,
                &Ident("c".into()),
                &Amp,
                &Ident("d".into())
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("a. % comment with : - symbols\nb.").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn error_on_stray_colon() {
        assert!(tokenize("a : b").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("  ab cd").unwrap();
        assert_eq!(toks[0].offset, 2);
        assert_eq!(toks[1].offset, 5);
    }
}
