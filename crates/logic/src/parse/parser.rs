//! Recursive-descent parsers for programs and formulas.

use super::lexer::{tokenize, Token, TokenKind};
use crate::{Database, Formula, Rule, Symbols};
use std::fmt;

/// A parse error with byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error occurred.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum nesting the formula parser accepts. The parser is recursive
/// descent, so an unbounded run of `!`, `(`, or `->` in untrusted input
/// (the server's wire `formula` field) would otherwise overflow the
/// stack — an abort no `catch_unwind` fence contains. Real queries nest
/// a handful of levels; 64 is far past anything legitimate while keeping
/// worst-case native stack use small even in debug builds.
const MAX_FORMULA_DEPTH: usize = 64;

struct Cursor {
    tokens: Vec<Token>,
    pos: usize,
    end: usize,
    depth: usize,
}

impl Cursor {
    fn new(tokens: Vec<Token>, src_len: usize) -> Self {
        Cursor {
            tokens,
            pos: 0,
            end: src_len,
            depth: 0,
        }
    }

    /// Bumps the nesting depth on entering a stack-growing production;
    /// the matching `ascend` runs on successful exit (errors abort the
    /// whole parse, so an unbalanced counter never outlives it).
    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_FORMULA_DEPTH {
            Err(self.error(format!(
                "formula nesting deeper than {MAX_FORMULA_DEPTH} levels"
            )))
        } else {
            Ok(())
        }
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.end, |t| t.offset)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {kind}, found {}",
                self.peek()
                    .map_or("end of input".to_owned(), |k| k.to_string())
            )))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            offset: self.offset(),
            message,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }
}

/// Parses a program into a [`Database`] with a fresh vocabulary containing
/// exactly the atoms mentioned, in order of first occurrence.
pub fn parse_program(src: &str) -> Result<Database, ParseError> {
    let tokens = tokenize(src).map_err(|(offset, message)| ParseError { offset, message })?;
    let mut cur = Cursor::new(tokens, src.len());
    let mut symbols = Symbols::new();
    let mut rules = Vec::new();

    while !cur.at_end() {
        rules.push(parse_rule(&mut cur, &mut symbols)?);
    }

    let mut db = Database::new(symbols);
    for r in rules {
        db.add_rule(r);
    }
    Ok(db)
}

/// An atom name in a program: an identifier, optionally absorbing a
/// balanced ground argument list (`covered(gear)`) into the interned
/// key — the same convention the formula parser and the grounder use,
/// so structured databases round-trip through program text.
fn atom_name(cur: &mut Cursor) -> Result<String, ParseError> {
    let mut name = ident(cur)?;
    if cur.peek() == Some(&TokenKind::LParen) {
        name.push_str(&ground_args(cur)?);
    }
    Ok(name)
}

fn ident(cur: &mut Cursor) -> Result<String, ParseError> {
    match cur.bump() {
        Some(TokenKind::Ident(s)) => Ok(s),
        Some(other) => Err(ParseError {
            offset: cur.tokens[cur.pos - 1].offset,
            message: format!("expected atom name, found {other}"),
        }),
        None => Err(cur.error("expected atom name, found end of input".into())),
    }
}

fn parse_rule(cur: &mut Cursor, symbols: &mut Symbols) -> Result<Rule, ParseError> {
    let mut head = Vec::new();
    // Head: either empty (integrity clause, starts with `:-`) or atoms
    // separated by `|` (or the keyword `v`).
    if cur.peek() != Some(&TokenKind::Arrow) {
        loop {
            let name = atom_name(cur)?;
            if name == "not" {
                return Err(cur.error("`not` is not allowed in rule heads".into()));
            }
            head.push(symbols.intern(&name));
            if cur.eat(&TokenKind::Pipe) {
                continue;
            }
            if let Some(TokenKind::Ident(s)) = cur.peek() {
                if s == "v" {
                    cur.bump();
                    continue;
                }
            }
            break;
        }
    }
    let mut body_pos = Vec::new();
    let mut body_neg = Vec::new();
    if cur.eat(&TokenKind::Arrow) {
        loop {
            let mut negated = cur.eat(&TokenKind::Bang);
            if !negated {
                if let Some(TokenKind::Ident(s)) = cur.peek() {
                    if s == "not" {
                        cur.bump();
                        negated = true;
                    }
                }
            }
            let name = atom_name(cur)?;
            let atom = symbols.intern(&name);
            if negated {
                body_neg.push(atom);
            } else {
                body_pos.push(atom);
            }
            if !cur.eat(&TokenKind::Comma) {
                break;
            }
        }
    }
    if head.is_empty() && body_pos.is_empty() && body_neg.is_empty() {
        return Err(cur.error("empty clause".into()));
    }
    cur.expect(&TokenKind::Dot)?;
    Ok(Rule::new(head, body_pos, body_neg))
}

/// Parses a formula over an existing vocabulary. Unknown atom names are an
/// error (inference queries must stay within the database's vocabulary).
pub fn parse_formula(src: &str, symbols: &Symbols) -> Result<Formula, ParseError> {
    let tokens = tokenize(src).map_err(|(offset, message)| ParseError { offset, message })?;
    let mut cur = Cursor::new(tokens, src.len());
    let f = parse_iff(&mut cur, symbols)?;
    if !cur.at_end() {
        return Err(cur.error("trailing input after formula".into()));
    }
    Ok(f)
}

fn parse_iff(cur: &mut Cursor, symbols: &Symbols) -> Result<Formula, ParseError> {
    let mut f = parse_implies(cur, symbols)?;
    while cur.eat(&TokenKind::Iff) {
        let rhs = parse_implies(cur, symbols)?;
        f = f.iff(rhs);
    }
    Ok(f)
}

fn parse_implies(cur: &mut Cursor, symbols: &Symbols) -> Result<Formula, ParseError> {
    let lhs = parse_or(cur, symbols)?;
    if cur.eat(&TokenKind::Implies) {
        // Right-associative: each `->` adds a native stack frame, so it
        // counts against the nesting cap like `(` and `!` do.
        cur.descend()?;
        let rhs = parse_implies(cur, symbols)?;
        cur.ascend();
        Ok(lhs.implies(rhs))
    } else {
        Ok(lhs)
    }
}

fn parse_or(cur: &mut Cursor, symbols: &Symbols) -> Result<Formula, ParseError> {
    let mut parts = vec![parse_and(cur, symbols)?];
    while cur.eat(&TokenKind::Pipe) {
        parts.push(parse_and(cur, symbols)?);
    }
    Ok(if parts.len() == 1 {
        parts.pop().expect("one element")
    } else {
        Formula::Or(parts)
    })
}

fn parse_and(cur: &mut Cursor, symbols: &Symbols) -> Result<Formula, ParseError> {
    let mut parts = vec![parse_unary(cur, symbols)?];
    while cur.eat(&TokenKind::Amp) {
        parts.push(parse_unary(cur, symbols)?);
    }
    Ok(if parts.len() == 1 {
        parts.pop().expect("one element")
    } else {
        Formula::And(parts)
    })
}

/// Depth-guarded entry for the recursion hub: `!`/`not` recurse here
/// directly and `(` re-enters the whole precedence chain, so counting
/// every entry bounds the native stack for all three.
fn parse_unary(cur: &mut Cursor, symbols: &Symbols) -> Result<Formula, ParseError> {
    cur.descend()?;
    let f = parse_unary_inner(cur, symbols)?;
    cur.ascend();
    Ok(f)
}

fn parse_unary_inner(cur: &mut Cursor, symbols: &Symbols) -> Result<Formula, ParseError> {
    if cur.eat(&TokenKind::Bang) {
        return Ok(parse_unary(cur, symbols)?.negated());
    }
    if cur.eat(&TokenKind::LParen) {
        let f = parse_iff(cur, symbols)?;
        cur.expect(&TokenKind::RParen)?;
        return Ok(f);
    }
    let offset = cur.offset();
    match cur.bump() {
        Some(TokenKind::Ident(name)) => match name.as_str() {
            "true" => Ok(Formula::True),
            "false" => Ok(Formula::False),
            "not" => Ok(parse_unary(cur, symbols)?.negated()),
            _ => {
                // Datalog ground atoms (`covered(gear)`, `sourced(g,acme)`)
                // are interned by the grounder with their argument tuple in
                // the symbol name; an identifier directly followed by `(`
                // absorbs the argument list into the lookup key, rendered
                // the way the grounder names atoms (no spaces).
                let mut key = name;
                if cur.peek() == Some(&TokenKind::LParen) {
                    key.push_str(&ground_args(cur)?);
                }
                symbols.lookup(&key).map(Formula::Atom).ok_or(ParseError {
                    offset,
                    message: format!("unknown atom `{key}` (not in the database's vocabulary)"),
                })
            }
        },
        other => Err(ParseError {
            offset,
            message: format!(
                "expected formula, found {}",
                other.map_or("end of input".to_owned(), |k| k.to_string())
            ),
        }),
    }
}

/// Consumes a balanced `( ... )` token run — identifiers, commas, and
/// nested parentheses — and renders it without whitespace, matching the
/// grounder's atom-naming convention.
fn ground_args(cur: &mut Cursor) -> Result<String, ParseError> {
    let mut out = String::new();
    let mut depth = 0usize;
    loop {
        match cur.bump() {
            Some(TokenKind::LParen) => {
                depth += 1;
                out.push('(');
            }
            Some(TokenKind::RParen) => {
                depth -= 1;
                out.push(')');
                if depth == 0 {
                    return Ok(out);
                }
            }
            Some(TokenKind::Ident(s)) => out.push_str(&s),
            Some(TokenKind::Comma) => out.push(','),
            Some(other) => {
                return Err(ParseError {
                    offset: cur.tokens[cur.pos - 1].offset,
                    message: format!("unexpected {other} in atom arguments"),
                })
            }
            None => return Err(cur.error("unterminated atom argument list".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpretation;

    #[test]
    fn parse_facts_and_rules() {
        let db = parse_program("a | b. c :- a, not b. :- a, c.").unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.num_atoms(), 3);
        let r = &db.rules()[1];
        assert_eq!(r.head().len(), 1);
        assert_eq!(r.body_pos().len(), 1);
        assert_eq!(r.body_neg().len(), 1);
        assert!(db.rules()[2].is_integrity());
    }

    #[test]
    fn v_keyword_as_disjunction() {
        let db = parse_program("a v b v c.").unwrap();
        assert_eq!(db.rules()[0].head().len(), 3);
    }

    #[test]
    fn tilde_as_negation() {
        let db = parse_program("a :- ~b.").unwrap();
        assert_eq!(db.rules()[0].body_neg().len(), 1);
    }

    #[test]
    fn rejects_not_in_head() {
        assert!(parse_program("not a.").is_err());
    }

    #[test]
    fn rejects_missing_dot() {
        assert!(parse_program("a | b").is_err());
    }

    #[test]
    fn rejects_empty_clause() {
        assert!(parse_program(":- .").is_err());
    }

    #[test]
    fn atoms_in_first_occurrence_order() {
        let db = parse_program("b :- a. c.").unwrap();
        assert_eq!(db.symbols().name(crate::Atom::new(0)), "b");
        assert_eq!(db.symbols().name(crate::Atom::new(1)), "a");
        assert_eq!(db.symbols().name(crate::Atom::new(2)), "c");
    }

    #[test]
    fn formula_precedence() {
        let db = parse_program("a. b. c.").unwrap();
        let f = parse_formula("!a & b | c", db.symbols()).unwrap();
        // Means ((!a & b) | c).
        let m = |atoms: &[u32]| {
            Interpretation::from_atoms(3, atoms.iter().map(|&i| crate::Atom::new(i)))
        };
        assert!(f.eval(&m(&[1])));
        assert!(f.eval(&m(&[2])));
        assert!(f.eval(&m(&[0, 2])));
        assert!(!f.eval(&m(&[0, 1])));
    }

    #[test]
    fn implies_right_associative() {
        let db = parse_program("a. b. c.").unwrap();
        let f = parse_formula("a -> b -> c", db.symbols()).unwrap();
        // a -> (b -> c): false only when a ∧ b ∧ ¬c.
        let m = |atoms: &[u32]| {
            Interpretation::from_atoms(3, atoms.iter().map(|&i| crate::Atom::new(i)))
        };
        assert!(!f.eval(&m(&[0, 1])));
        assert!(f.eval(&m(&[0])));
        assert!(f.eval(&m(&[1])));
    }

    #[test]
    fn formula_rejects_unknown_atom() {
        let db = parse_program("a.").unwrap();
        let err = parse_formula("a & zz", db.symbols()).unwrap_err();
        assert!(err.message.contains("zz"));
    }

    #[test]
    fn formula_constants() {
        let db = parse_program("a.").unwrap();
        let f = parse_formula("true -> (a | false)", db.symbols()).unwrap();
        assert!(f.eval(&Interpretation::from_atoms(1, [crate::Atom::new(0)])));
        assert!(!f.eval(&Interpretation::empty(1)));
    }

    #[test]
    fn formula_reads_datalog_ground_atoms() {
        let mut sy = Symbols::new();
        sy.intern("covered(gear)");
        sy.intern("sourced(gear,acme)");
        let f = parse_formula("covered(gear) & !sourced(gear, acme)", &sy).unwrap();
        assert_eq!(f.atoms().len(), 2);
        // Unknown predicate tuples report the full reconstructed key.
        let err = parse_formula("covered(axle)", &sy).unwrap_err();
        assert!(err.message.contains("covered(axle)"));
        // Grouping parens after an operator are still grouping.
        assert!(parse_formula("covered(gear) & (covered(gear))", &sy).is_ok());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let db = parse_program("a.").unwrap();
        assert!(parse_formula("a a", db.symbols()).is_err());
    }

    #[test]
    fn deep_formula_nesting_is_an_error_not_a_stack_overflow() {
        // A hostile client can put 100KB of nesting operators in the wire
        // `formula` field; each shape must come back as a parse error.
        let db = parse_program("a.").unwrap();
        for src in [
            format!("{}a{}", "(".repeat(100_000), ")".repeat(100_000)),
            format!("{}a", "!".repeat(100_000)),
            format!("{}a", "not ".repeat(100_000)),
            format!("a{}", " -> a".repeat(100_000)),
        ] {
            let err = parse_formula(&src, db.symbols()).unwrap_err();
            assert!(err.message.contains("nesting"), "{err}");
        }
        // Moderate nesting still parses.
        let ok = format!("{}a{}", "(".repeat(32), ")".repeat(32));
        assert!(parse_formula(&ok, db.symbols()).is_ok());
        let ok = format!("{}a", "!".repeat(32));
        assert!(parse_formula(&ok, db.symbols()).is_ok());
    }
}
