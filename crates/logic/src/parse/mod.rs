//! Concrete syntax for databases and formulas.
//!
//! # Program syntax
//!
//! A program is a sequence of clauses terminated by `.`:
//!
//! ```text
//! % disjunctive fact
//! a | b.
//! % rule with negation ("not" or "~")
//! c :- a, not b.
//! % integrity clause (empty head)
//! :- a, c.
//! ```
//!
//! `|` (or `v` as a keyword) separates head atoms; `,` separates body
//! literals; `%` starts a line comment.
//!
//! # Formula syntax
//!
//! ```text
//! a & (b | !c) -> d <-> e
//! ```
//!
//! Precedence (tightest first): `!`, `&`, `|`, `->` (right-associative),
//! `<->`. Constants `true` and `false` are recognized.

mod lexer;
mod parser;

pub use parser::{parse_formula, parse_program, ParseError};

use crate::{Database, Formula, Rule, Symbols};
use std::fmt::Write as _;

/// Renders a rule in program syntax using the names in `symbols`.
pub fn display_rule(rule: &Rule, symbols: &Symbols) -> String {
    let mut s = String::new();
    let head: Vec<&str> = rule.head().iter().map(|&a| symbols.name(a)).collect();
    s.push_str(&head.join(" | "));
    if !rule.is_fact() {
        if !head.is_empty() {
            s.push(' ');
        }
        s.push_str(":- ");
        let mut parts: Vec<String> = rule
            .body_pos()
            .iter()
            .map(|&a| symbols.name(a).to_owned())
            .collect();
        parts.extend(
            rule.body_neg()
                .iter()
                .map(|&a| format!("not {}", symbols.name(a))),
        );
        s.push_str(&parts.join(", "));
    }
    s.push('.');
    s
}

/// Renders a whole database in program syntax, one rule per line.
pub fn display_database(db: &Database) -> String {
    let mut s = String::new();
    for rule in db.rules() {
        let _ = writeln!(s, "{}", display_rule(rule, db.symbols()));
    }
    s
}

/// Renders a formula in formula syntax using the names in `symbols`.
pub fn display_formula(f: &Formula, symbols: &Symbols) -> String {
    type Renderer<'a> = Box<dyn Fn(&mut String) + 'a>;
    fn go(f: &Formula, symbols: &Symbols, out: &mut String, prec: u8) {
        // Precedence levels: 0 iff, 1 implies, 2 or, 3 and, 4 not/atom.
        let (level, render): (u8, Renderer<'_>) = match f {
            Formula::True => (4, Box::new(|o: &mut String| o.push_str("true"))),
            Formula::False => (4, Box::new(|o: &mut String| o.push_str("false"))),
            Formula::Atom(a) => {
                let name = symbols.name(*a);
                (4, Box::new(move |o: &mut String| o.push_str(name)))
            }
            Formula::Not(g) => (
                4,
                Box::new(move |o: &mut String| {
                    o.push('!');
                    go(g, symbols, o, 5);
                }),
            ),
            Formula::And(fs) => (
                3,
                Box::new(move |o: &mut String| {
                    if fs.is_empty() {
                        o.push_str("true");
                        return;
                    }
                    for (i, g) in fs.iter().enumerate() {
                        if i > 0 {
                            o.push_str(" & ");
                        }
                        go(g, symbols, o, 4);
                    }
                }),
            ),
            Formula::Or(fs) => (
                2,
                Box::new(move |o: &mut String| {
                    if fs.is_empty() {
                        o.push_str("false");
                        return;
                    }
                    for (i, g) in fs.iter().enumerate() {
                        if i > 0 {
                            o.push_str(" | ");
                        }
                        go(g, symbols, o, 3);
                    }
                }),
            ),
            Formula::Implies(l, r) => (
                1,
                Box::new(move |o: &mut String| {
                    go(l, symbols, o, 2);
                    o.push_str(" -> ");
                    go(r, symbols, o, 1);
                }),
            ),
            Formula::Iff(l, r) => (
                0,
                Box::new(move |o: &mut String| {
                    go(l, symbols, o, 1);
                    o.push_str(" <-> ");
                    go(r, symbols, o, 1);
                }),
            ),
        };
        if level < prec {
            out.push('(');
            render(out);
            out.push(')');
        } else {
            render(out);
        }
    }
    let mut s = String::new();
    go(f, symbols, &mut s, 0);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_through_parser() {
        let db = parse_program("a | b. c :- a, not b. :- a, c.").unwrap();
        let text = display_database(&db);
        let db2 = parse_program(&text).unwrap();
        assert_eq!(db.rules(), db2.rules());
    }

    #[test]
    fn formula_display_roundtrip() {
        let db = parse_program("a. b. c. d.").unwrap();
        let f = parse_formula("a & (b | !c) -> d <-> a", db.symbols()).unwrap();
        let text = display_formula(&f, db.symbols());
        let f2 = parse_formula(&text, db.symbols()).unwrap();
        // Semantic equality: same truth table.
        use crate::Interpretation;
        for bits in 0u32..16 {
            let m = Interpretation::from_atoms(
                4,
                (0..4u32)
                    .filter(|&i| bits >> i & 1 == 1)
                    .map(crate::Atom::new),
            );
            assert_eq!(f.eval(&m), f2.eval(&m));
        }
    }
}
