//! The vocabulary: a string ↔ [`Atom`] interner.

use crate::Atom;
use std::collections::HashMap;
use std::fmt;

/// The vocabulary `V` of a propositional database: an interner mapping
/// variable names to dense [`Atom`] indices and back.
///
/// The paper works with a finite set `V` of propositional variables; all
/// interpretations and partitions in this workspace are defined relative to
/// the `Symbols` table they were built against. Atoms are handed out in
/// insertion order, so index `i` always names the `i`-th distinct variable
/// interned.
#[derive(Clone, Default)]
pub struct Symbols {
    names: Vec<String>,
    index: HashMap<String, Atom>,
}

impl Symbols {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing atom if already present.
    pub fn intern(&mut self, name: &str) -> Atom {
        if let Some(&a) = self.index.get(name) {
            return a;
        }
        let a =
            Atom::new(u32::try_from(self.names.len()).expect("vocabulary exceeds u32::MAX atoms"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), a);
        a
    }

    /// Looks up an existing atom by name without interning.
    pub fn lookup(&self, name: &str) -> Option<Atom> {
        self.index.get(name).copied()
    }

    /// The name of `atom`.
    ///
    /// # Panics
    /// Panics if `atom` was not interned in this table.
    pub fn name(&self, atom: Atom) -> &str {
        &self.names[atom.index()]
    }

    /// Number of interned atoms (`|V|`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all atoms in index order.
    pub fn atoms(&self) -> impl Iterator<Item = Atom> + '_ {
        (0..self.names.len()).map(|i| Atom::new(i as u32))
    }

    /// Creates `n` atoms named `x0..x{n-1}` — convenient for generated
    /// workloads and tests.
    pub fn fresh(n: usize) -> Self {
        let mut s = Self::new();
        for i in 0..n {
            s.intern(&format!("x{i}"));
        }
        s
    }

    /// Interns a fresh atom with a name guaranteed not to collide with any
    /// existing one (used by reductions that extend a vocabulary).
    pub fn fresh_atom(&mut self, hint: &str) -> Atom {
        if self.lookup(hint).is_none() {
            return self.intern(hint);
        }
        let mut i = 0usize;
        loop {
            let candidate = format!("{hint}_{i}");
            if self.lookup(&candidate).is_none() {
                return self.intern(&candidate);
            }
            i += 1;
        }
    }
}

impl fmt::Debug for Symbols {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Symbols").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut s = Symbols::new();
        let a = s.intern("a");
        let b = s.intern("b");
        assert_eq!(s.intern("a"), a);
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn name_roundtrip() {
        let mut s = Symbols::new();
        let a = s.intern("hello");
        assert_eq!(s.name(a), "hello");
        assert_eq!(s.lookup("hello"), Some(a));
        assert_eq!(s.lookup("world"), None);
    }

    #[test]
    fn atoms_are_dense_in_insertion_order() {
        let s = Symbols::fresh(5);
        let idx: Vec<usize> = s.atoms().map(|a| a.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.name(Atom::new(3)), "x3");
    }

    #[test]
    fn fresh_atom_avoids_collisions() {
        let mut s = Symbols::fresh(2);
        let g = s.fresh_atom("x1");
        assert_ne!(s.name(g), "x1");
        assert_eq!(s.lookup(s.name(g)), Some(g));
    }
}
