//! Three-valued (partial) interpretations, used by the partial disjunctive
//! stable model semantics (PDSM).

use crate::{Atom, Interpretation};
use std::cmp::Ordering;
use std::fmt;

/// A truth value in Przymusinski's three-valued logic: true (1), undefined
/// (½), or false (0).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum TruthValue {
    /// Truth value 0.
    False,
    /// Truth value ½ ("undefined").
    Undefined,
    /// Truth value 1.
    True,
}

impl TruthValue {
    /// Numeric value ×2 (0, 1, 2) — handy for min/max comparisons.
    #[inline]
    pub fn rank(self) -> u8 {
        match self {
            TruthValue::False => 0,
            TruthValue::Undefined => 1,
            TruthValue::True => 2,
        }
    }

    /// Three-valued negation: ¬1 = 0, ¬½ = ½, ¬0 = 1.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            TruthValue::False => TruthValue::True,
            TruthValue::Undefined => TruthValue::Undefined,
            TruthValue::True => TruthValue::False,
        }
    }

    /// Three-valued conjunction (minimum).
    #[inline]
    pub fn and(self, other: Self) -> Self {
        if self.rank() <= other.rank() {
            self
        } else {
            other
        }
    }

    /// Three-valued disjunction (maximum).
    #[inline]
    pub fn or(self, other: Self) -> Self {
        if self.rank() >= other.rank() {
            self
        } else {
            other
        }
    }
}

/// A partial (three-valued) interpretation: a pair ⟨T, F⟩ of disjoint sets of
/// atoms that are true resp. false; everything else is undefined (½).
///
/// Two-valued interpretations embed as ⟨M, V∖M⟩; see
/// [`PartialInterpretation::from_total`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PartialInterpretation {
    true_set: Interpretation,
    false_set: Interpretation,
}

impl PartialInterpretation {
    /// The everywhere-undefined interpretation over `num_atoms` atoms.
    pub fn undefined(num_atoms: usize) -> Self {
        PartialInterpretation {
            true_set: Interpretation::empty(num_atoms),
            false_set: Interpretation::empty(num_atoms),
        }
    }

    /// Builds ⟨T, F⟩ from explicit sets.
    ///
    /// # Panics
    /// Panics if the sets overlap (an atom cannot be both true and false).
    pub fn new(true_set: Interpretation, false_set: Interpretation) -> Self {
        let mut overlap = true_set.clone();
        overlap.intersect_with(&false_set);
        assert!(
            overlap.is_empty_set(),
            "true and false sets of a partial interpretation must be disjoint"
        );
        PartialInterpretation {
            true_set,
            false_set,
        }
    }

    /// Embeds a total interpretation: true atoms map to 1, the rest to 0.
    pub fn from_total(m: &Interpretation) -> Self {
        let mut false_set = Interpretation::full(m.num_atoms());
        false_set.difference_with(m);
        PartialInterpretation {
            true_set: m.clone(),
            false_set,
        }
    }

    /// Number of atoms in the underlying vocabulary.
    pub fn num_atoms(&self) -> usize {
        self.true_set.num_atoms()
    }

    /// The truth value of `atom`.
    #[inline]
    pub fn value(&self, atom: Atom) -> TruthValue {
        if self.true_set.contains(atom) {
            TruthValue::True
        } else if self.false_set.contains(atom) {
            TruthValue::False
        } else {
            TruthValue::Undefined
        }
    }

    /// Assigns `value` to `atom`.
    pub fn set(&mut self, atom: Atom, value: TruthValue) {
        match value {
            TruthValue::True => {
                self.true_set.insert(atom);
                self.false_set.remove(atom);
            }
            TruthValue::False => {
                self.true_set.remove(atom);
                self.false_set.insert(atom);
            }
            TruthValue::Undefined => {
                self.true_set.remove(atom);
                self.false_set.remove(atom);
            }
        }
    }

    /// The set of true atoms `T`.
    pub fn true_set(&self) -> &Interpretation {
        &self.true_set
    }

    /// The set of false atoms `F`.
    pub fn false_set(&self) -> &Interpretation {
        &self.false_set
    }

    /// Whether every atom is decided (no ½ values) — i.e. the interpretation
    /// is total.
    pub fn is_total(&self) -> bool {
        self.true_set.count() + self.false_set.count() == self.num_atoms()
    }

    /// Converts a total partial interpretation into its set of true atoms.
    ///
    /// # Panics
    /// Panics if some atom is undefined.
    pub fn to_total(&self) -> Interpretation {
        assert!(self.is_total(), "interpretation has undefined atoms");
        self.true_set.clone()
    }

    /// The *truth ordering* used for minimality of partial models:
    /// `self ≤ other` iff every atom's value under `self` is ≤ its value
    /// under `other` (0 ≤ ½ ≤ 1). Returns `None` for incomparable pairs.
    ///
    /// Equivalently: `self.T ⊆ other.T` and `self.F ⊇ other.F`.
    pub fn truth_cmp(&self, other: &Self) -> Option<Ordering> {
        let le =
            self.true_set.is_subset(&other.true_set) && other.false_set.is_subset(&self.false_set);
        let ge =
            other.true_set.is_subset(&self.true_set) && self.false_set.is_subset(&other.false_set);
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

impl fmt::Debug for PartialInterpretation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨T={:?}, F={:?}⟩", self.true_set, self.false_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atoms(v: &[u32]) -> Vec<Atom> {
        v.iter().map(|&i| Atom::new(i)).collect()
    }

    #[test]
    fn truth_value_lattice() {
        use TruthValue::*;
        assert_eq!(True.not(), False);
        assert_eq!(Undefined.not(), Undefined);
        assert_eq!(True.and(Undefined), Undefined);
        assert_eq!(False.and(Undefined), False);
        assert_eq!(True.or(Undefined), True);
        assert_eq!(False.or(Undefined), Undefined);
    }

    #[test]
    fn set_and_value() {
        let mut p = PartialInterpretation::undefined(4);
        let a = Atom::new(2);
        assert_eq!(p.value(a), TruthValue::Undefined);
        p.set(a, TruthValue::True);
        assert_eq!(p.value(a), TruthValue::True);
        p.set(a, TruthValue::False);
        assert_eq!(p.value(a), TruthValue::False);
        p.set(a, TruthValue::Undefined);
        assert_eq!(p.value(a), TruthValue::Undefined);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_sets_rejected() {
        let t = Interpretation::from_atoms(3, atoms(&[0]));
        let f = Interpretation::from_atoms(3, atoms(&[0, 1]));
        let _ = PartialInterpretation::new(t, f);
    }

    #[test]
    fn total_embedding_roundtrip() {
        let m = Interpretation::from_atoms(5, atoms(&[0, 3]));
        let p = PartialInterpretation::from_total(&m);
        assert!(p.is_total());
        assert_eq!(p.to_total(), m);
        assert_eq!(p.value(Atom::new(0)), TruthValue::True);
        assert_eq!(p.value(Atom::new(1)), TruthValue::False);
    }

    #[test]
    fn truth_ordering() {
        use Ordering::*;
        // p: x0=1, x1=0 ; q: x0=1, x1=½ — p ≤ q? p.T={0}⊆{0}=q.T and q.F=∅⊆{1}=p.F → p ≤ q.
        let p = PartialInterpretation::new(
            Interpretation::from_atoms(2, atoms(&[0])),
            Interpretation::from_atoms(2, atoms(&[1])),
        );
        let q = PartialInterpretation::new(
            Interpretation::from_atoms(2, atoms(&[0])),
            Interpretation::empty(2),
        );
        assert_eq!(p.truth_cmp(&q), Some(Less));
        assert_eq!(q.truth_cmp(&p), Some(Greater));
        assert_eq!(p.truth_cmp(&p), Some(Equal));
        // Incomparable: r has x0=0, x1=1.
        let r = PartialInterpretation::new(
            Interpretation::from_atoms(2, atoms(&[1])),
            Interpretation::from_atoms(2, atoms(&[0])),
        );
        assert_eq!(p.truth_cmp(&r), None);
    }
}
