//! Disjunctive databases and their syntactic classification.

use crate::{Atom, Interpretation, Rule, Symbols};
use std::fmt;

/// The paper's syntactic classes of propositional disjunctive databases,
/// following the classification of Fernandez & Minker \[9\]:
///
/// * **Positive** — no negation *and* no integrity clauses (the class of
///   Table 1);
/// * **Deductive** (DDDB) — `DB ⊆ C⁺`: no negation, but integrity clauses
///   are allowed;
/// * **Stratified** (DSDB) — negation allowed, but stratifiable;
/// * **Normal** (DNDB) — arbitrary.
///
/// Classes are nested: `Positive ⊂ Deductive ⊂ Stratified ⊂ Normal`
/// (every positive database is trivially stratified). [`Database::class`]
/// returns the *most specific* class.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DbClass {
    /// No negation, no integrity clauses (Table 1 databases).
    Positive,
    /// No negation; integrity clauses allowed (`DB ⊆ C⁺`).
    Deductive,
    /// Stratifiable w.r.t. negation.
    Stratified,
    /// Arbitrary (unstratifiable) normal database.
    Normal,
}

/// A propositional disjunctive database: a finite set of [`Rule`]s over a
/// vocabulary ([`Symbols`]).
///
/// The database owns its vocabulary. Atoms of rules must have been interned
/// in that vocabulary; [`Database::add_rule`] enforces this.
#[derive(Clone)]
pub struct Database {
    symbols: Symbols,
    rules: Vec<Rule>,
}

impl Database {
    /// Creates an empty database over `symbols`.
    pub fn new(symbols: Symbols) -> Self {
        Database {
            symbols,
            rules: Vec::new(),
        }
    }

    /// Creates an empty database over a fresh vocabulary `x0 … x{n-1}`.
    pub fn with_fresh_atoms(n: usize) -> Self {
        Self::new(Symbols::fresh(n))
    }

    /// Adds a rule.
    ///
    /// # Panics
    /// Panics if the rule mentions an atom outside the vocabulary.
    pub fn add_rule(&mut self, rule: Rule) {
        if let Some(max) = rule.max_atom() {
            assert!(
                max.index() < self.symbols.len(),
                "rule mentions atom {} outside vocabulary of size {}",
                max.index(),
                self.symbols.len()
            );
        }
        self.rules.push(rule);
    }

    /// The rules of the database.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The vocabulary.
    pub fn symbols(&self) -> &Symbols {
        &self.symbols
    }

    /// Mutable access to the vocabulary (for reductions that extend it).
    pub fn symbols_mut(&mut self) -> &mut Symbols {
        &mut self.symbols
    }

    /// `|V|` — the size of the vocabulary.
    pub fn num_atoms(&self) -> usize {
        self.symbols.len()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the database has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Whether any rule uses negation.
    pub fn has_negation(&self) -> bool {
        self.rules.iter().any(|r| !r.is_positive())
    }

    /// Whether any rule is an integrity clause (empty head).
    pub fn has_integrity_clauses(&self) -> bool {
        self.rules.iter().any(|r| r.is_integrity())
    }

    /// Whether the database is positive in the sense of Table 1: no
    /// negation and no integrity clauses.
    pub fn is_positive(&self) -> bool {
        !self.has_negation() && !self.has_integrity_clauses()
    }

    /// Whether every rule is Horn.
    pub fn is_horn(&self) -> bool {
        self.rules.iter().all(|r| r.is_horn())
    }

    /// The most specific syntactic class of this database.
    pub fn class(&self) -> DbClass {
        if !self.has_negation() {
            if self.has_integrity_clauses() {
                DbClass::Deductive
            } else {
                DbClass::Positive
            }
        } else if self.stratification().is_some() {
            DbClass::Stratified
        } else {
            DbClass::Normal
        }
    }

    /// Whether `m ⊨ DB` (every rule satisfied).
    pub fn satisfied_by(&self, m: &Interpretation) -> bool {
        self.rules.iter().all(|r| r.satisfied_by(m))
    }

    /// Computes a stratification `⟨S₁, …, S_r⟩` of the vocabulary, if one
    /// exists.
    ///
    /// A stratification assigns each atom a stratum such that for every
    /// non-integrity rule `H ← B⁺ ∧ ¬B⁻`:
    ///
    /// * all atoms of `H` share one stratum `s`;
    /// * every atom of `B⁺` has stratum ≤ `s`;
    /// * every atom of `B⁻` has stratum < `s` (negation must not recurse).
    ///
    /// Integrity clauses impose no constraint (the usual convention —
    /// constraints only prune models). Returns the strata as consecutive
    /// groups of atoms, lowest first; atoms not occurring in any rule go to
    /// stratum 0. Returns `None` iff the database is unstratifiable.
    ///
    /// This is a thin delegate to the canonical implementation in
    /// [`crate::depgraph`]: the dependency graph with weak (≤) and strict
    /// (<) edges is contracted to strongly connected components, the
    /// database is unstratifiable iff a strict edge lies inside a
    /// component, and stratum numbers are longest strict-edge counts over
    /// the condensation.
    pub fn stratification(&self) -> Option<Vec<Vec<Atom>>> {
        crate::depgraph::stratification(self)
    }

    /// Splits the database along a stratification: `layers[i]` contains the
    /// rules whose head belongs to stratum `i` (`DBᵢ` in the paper's ICWA
    /// machinery). Integrity clauses are placed in the stratum of their
    /// highest body atom. Delegates to [`crate::depgraph::layers`].
    pub fn layers(&self, strata: &[Vec<Atom>]) -> Vec<Vec<Rule>> {
        crate::depgraph::layers(self, strata)
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Database({} atoms, {} rules):",
            self.num_atoms(),
            self.len()
        )?;
        for r in &self.rules {
            writeln!(f, "  {}", crate::parse::display_rule(r, &self.symbols))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(n: usize, rules: Vec<Rule>) -> Database {
        let mut d = Database::with_fresh_atoms(n);
        for r in rules {
            d.add_rule(r);
        }
        d
    }

    fn a(i: u32) -> Atom {
        Atom::new(i)
    }

    #[test]
    fn classification_positive() {
        let d = db(2, vec![Rule::fact([a(0), a(1)])]);
        assert_eq!(d.class(), DbClass::Positive);
        assert!(d.is_positive());
    }

    #[test]
    fn classification_deductive() {
        let d = db(2, vec![Rule::fact([a(0)]), Rule::integrity([a(1)], [])]);
        assert_eq!(d.class(), DbClass::Deductive);
        assert!(!d.is_positive());
        assert!(!d.has_negation());
    }

    #[test]
    fn classification_stratified() {
        // b ← ¬a : stratified, a below b.
        let d = db(2, vec![Rule::new([a(1)], [], [a(0)])]);
        assert_eq!(d.class(), DbClass::Stratified);
        let strata = d.stratification().unwrap();
        assert_eq!(strata.len(), 2);
        assert!(strata[0].contains(&a(0)));
        assert!(strata[1].contains(&a(1)));
    }

    #[test]
    fn classification_normal() {
        // a ← ¬b ; b ← ¬a : the classic unstratifiable loop.
        let d = db(
            2,
            vec![Rule::new([a(0)], [], [a(1)]), Rule::new([a(1)], [], [a(0)])],
        );
        assert_eq!(d.class(), DbClass::Normal);
        assert!(d.stratification().is_none());
    }

    #[test]
    fn positive_recursion_is_stratified() {
        // a ← b ; b ← a : positive loop, one stratum.
        let d = db(
            2,
            vec![Rule::new([a(0)], [a(1)], []), Rule::new([a(1)], [a(0)], [])],
        );
        let strata = d.stratification().unwrap();
        assert_eq!(strata.len(), 1);
    }

    #[test]
    fn negative_self_loop_unstratifiable() {
        // a ← ¬a.
        let d = db(1, vec![Rule::new([a(0)], [], [a(0)])]);
        assert!(d.stratification().is_none());
    }

    #[test]
    fn disjunctive_head_shares_stratum() {
        // a ∨ b ← ¬c ; c has to be strictly below both a and b.
        let d = db(3, vec![Rule::new([a(0), a(1)], [], [a(2)])]);
        let strata = d.stratification().unwrap();
        assert_eq!(strata.len(), 2);
        assert!(strata[0].contains(&a(2)));
        assert!(strata[1].contains(&a(0)) && strata[1].contains(&a(1)));
    }

    #[test]
    fn head_sharing_forces_unstratifiability() {
        // a ∨ b ← ¬c ; c ← a : then c < a (strict) but a,b in one stratum
        // and c ≥ a via second rule ⇒ cycle with strict edge.
        let d = db(
            3,
            vec![
                Rule::new([a(0), a(1)], [], [a(2)]),
                Rule::new([a(2)], [a(0)], []),
            ],
        );
        assert!(d.stratification().is_none());
    }

    #[test]
    fn chain_gets_increasing_strata() {
        // x1 ← ¬x0 ; x2 ← ¬x1 ; x3 ← ¬x2.
        let d = db(
            4,
            vec![
                Rule::new([a(1)], [], [a(0)]),
                Rule::new([a(2)], [], [a(1)]),
                Rule::new([a(3)], [], [a(2)]),
            ],
        );
        let strata = d.stratification().unwrap();
        assert_eq!(strata.len(), 4);
        for (i, stratum) in strata.iter().enumerate() {
            assert_eq!(*stratum, vec![a(i as u32)]);
        }
    }

    #[test]
    fn layers_follow_head_strata() {
        let d = db(
            3,
            vec![
                Rule::fact([a(0)]),
                Rule::new([a(1)], [], [a(0)]),
                Rule::integrity([a(1)], []),
            ],
        );
        let strata = d.stratification().unwrap();
        let layers = d.layers(&strata);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].len(), 1); // fact about x0
        assert_eq!(layers[1].len(), 2); // rule for x1 + integrity clause on x1
    }

    #[test]
    fn model_check() {
        // a ∨ b. ; ← a ∧ b.
        let d = db(
            2,
            vec![Rule::fact([a(0), a(1)]), Rule::integrity([a(0), a(1)], [])],
        );
        let m_a = Interpretation::from_atoms(2, [a(0)]);
        let m_ab = Interpretation::from_atoms(2, [a(0), a(1)]);
        let m_none = Interpretation::empty(2);
        assert!(d.satisfied_by(&m_a));
        assert!(!d.satisfied_by(&m_ab));
        assert!(!d.satisfied_by(&m_none));
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn out_of_vocabulary_rule_rejected() {
        let mut d = Database::with_fresh_atoms(1);
        d.add_rule(Rule::fact([a(5)]));
    }
}
