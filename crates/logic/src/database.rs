//! Disjunctive databases and their syntactic classification.

use crate::{Atom, Interpretation, Rule, Symbols};
use std::fmt;

/// The paper's syntactic classes of propositional disjunctive databases,
/// following the classification of Fernandez & Minker \[9\]:
///
/// * **Positive** — no negation *and* no integrity clauses (the class of
///   Table 1);
/// * **Deductive** (DDDB) — `DB ⊆ C⁺`: no negation, but integrity clauses
///   are allowed;
/// * **Stratified** (DSDB) — negation allowed, but stratifiable;
/// * **Normal** (DNDB) — arbitrary.
///
/// Classes are nested: `Positive ⊂ Deductive ⊂ Stratified ⊂ Normal`
/// (every positive database is trivially stratified). [`Database::class`]
/// returns the *most specific* class.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DbClass {
    /// No negation, no integrity clauses (Table 1 databases).
    Positive,
    /// No negation; integrity clauses allowed (`DB ⊆ C⁺`).
    Deductive,
    /// Stratifiable w.r.t. negation.
    Stratified,
    /// Arbitrary (unstratifiable) normal database.
    Normal,
}

/// A propositional disjunctive database: a finite set of [`Rule`]s over a
/// vocabulary ([`Symbols`]).
///
/// The database owns its vocabulary. Atoms of rules must have been interned
/// in that vocabulary; [`Database::add_rule`] enforces this.
#[derive(Clone)]
pub struct Database {
    symbols: Symbols,
    rules: Vec<Rule>,
}

impl Database {
    /// Creates an empty database over `symbols`.
    pub fn new(symbols: Symbols) -> Self {
        Database {
            symbols,
            rules: Vec::new(),
        }
    }

    /// Creates an empty database over a fresh vocabulary `x0 … x{n-1}`.
    pub fn with_fresh_atoms(n: usize) -> Self {
        Self::new(Symbols::fresh(n))
    }

    /// Adds a rule.
    ///
    /// # Panics
    /// Panics if the rule mentions an atom outside the vocabulary.
    pub fn add_rule(&mut self, rule: Rule) {
        if let Some(max) = rule.max_atom() {
            assert!(
                max.index() < self.symbols.len(),
                "rule mentions atom {} outside vocabulary of size {}",
                max.index(),
                self.symbols.len()
            );
        }
        self.rules.push(rule);
    }

    /// The rules of the database.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The vocabulary.
    pub fn symbols(&self) -> &Symbols {
        &self.symbols
    }

    /// Mutable access to the vocabulary (for reductions that extend it).
    pub fn symbols_mut(&mut self) -> &mut Symbols {
        &mut self.symbols
    }

    /// `|V|` — the size of the vocabulary.
    pub fn num_atoms(&self) -> usize {
        self.symbols.len()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the database has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Whether any rule uses negation.
    pub fn has_negation(&self) -> bool {
        self.rules.iter().any(|r| !r.is_positive())
    }

    /// Whether any rule is an integrity clause (empty head).
    pub fn has_integrity_clauses(&self) -> bool {
        self.rules.iter().any(|r| r.is_integrity())
    }

    /// Whether the database is positive in the sense of Table 1: no
    /// negation and no integrity clauses.
    pub fn is_positive(&self) -> bool {
        !self.has_negation() && !self.has_integrity_clauses()
    }

    /// Whether every rule is Horn.
    pub fn is_horn(&self) -> bool {
        self.rules.iter().all(|r| r.is_horn())
    }

    /// The most specific syntactic class of this database.
    pub fn class(&self) -> DbClass {
        if !self.has_negation() {
            if self.has_integrity_clauses() {
                DbClass::Deductive
            } else {
                DbClass::Positive
            }
        } else if self.stratification().is_some() {
            DbClass::Stratified
        } else {
            DbClass::Normal
        }
    }

    /// Whether `m ⊨ DB` (every rule satisfied).
    pub fn satisfied_by(&self, m: &Interpretation) -> bool {
        self.rules.iter().all(|r| r.satisfied_by(m))
    }

    /// Computes a stratification `⟨S₁, …, S_r⟩` of the vocabulary, if one
    /// exists.
    ///
    /// A stratification assigns each atom a stratum such that for every
    /// non-integrity rule `H ← B⁺ ∧ ¬B⁻`:
    ///
    /// * all atoms of `H` share one stratum `s`;
    /// * every atom of `B⁺` has stratum ≤ `s`;
    /// * every atom of `B⁻` has stratum < `s` (negation must not recurse).
    ///
    /// Integrity clauses impose no constraint (the usual convention —
    /// constraints only prune models). Returns the strata as consecutive
    /// groups of atoms, lowest first; atoms not occurring in any rule go to
    /// stratum 0. Returns `None` iff the database is unstratifiable.
    ///
    /// The algorithm builds the dependency graph with weak (≤) and strict
    /// (<) edges, contracts strongly connected components, and fails iff a
    /// strict edge lies inside a component; stratum numbers are longest
    /// strict-edge counts over the condensation.
    pub fn stratification(&self) -> Option<Vec<Vec<Atom>>> {
        let n = self.num_atoms();
        // Edges: (from, to, strict). Constraint: stratum(to) ≥ stratum(from),
        // strict ⇒ stratum(to) > stratum(from).
        let mut adj: Vec<Vec<(u32, bool)>> = vec![Vec::new(); n];
        let mut radj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let add_edge = |adj: &mut Vec<Vec<(u32, bool)>>,
                        radj: &mut Vec<Vec<u32>>,
                        from: Atom,
                        to: Atom,
                        strict: bool| {
            adj[from.index()].push((to.index() as u32, strict));
            radj[to.index()].push(from.index() as u32);
        };
        for rule in &self.rules {
            if rule.is_integrity() {
                continue;
            }
            let head = rule.head();
            // Head atoms must share a stratum: cycle of weak edges.
            for w in head.windows(2) {
                add_edge(&mut adj, &mut radj, w[0], w[1], false);
                add_edge(&mut adj, &mut radj, w[1], w[0], false);
            }
            let h0 = head[0];
            for &b in rule.body_pos() {
                add_edge(&mut adj, &mut radj, b, h0, false);
            }
            for &c in rule.body_neg() {
                add_edge(&mut adj, &mut radj, c, h0, true);
            }
        }

        // Tarjan-free SCC via Kosaraju (iterative) — deterministic order.
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] {
                continue;
            }
            // Iterative post-order DFS.
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            seen[start] = true;
            while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                if *i < adj[v].len() {
                    let (w, _) = adj[v][*i];
                    *i += 1;
                    let w = w as usize;
                    if !seen[w] {
                        seen[w] = true;
                        stack.push((w, 0));
                    }
                } else {
                    order.push(v);
                    stack.pop();
                }
            }
        }
        let mut comp = vec![usize::MAX; n];
        let mut num_comps = 0;
        for &start in order.iter().rev() {
            if comp[start] != usize::MAX {
                continue;
            }
            let c = num_comps;
            num_comps += 1;
            let mut stack = vec![start];
            comp[start] = c;
            while let Some(v) = stack.pop() {
                for &w in &radj[v] {
                    let w = w as usize;
                    if comp[w] == usize::MAX {
                        comp[w] = c;
                        stack.push(w);
                    }
                }
            }
        }

        // Strict edge within a component ⇒ unstratifiable.
        for v in 0..n {
            for &(w, strict) in &adj[v] {
                if strict && comp[v] == comp[w as usize] {
                    return None;
                }
            }
        }

        // Longest path by strict-edge count over the condensation (which is
        // a DAG). Components are numbered in reverse topological order by
        // Kosaraju, i.e. comp 0 has no incoming edges from other comps...
        // safer: do a DP over atoms in condensation topological order.
        let mut level = vec![0usize; num_comps];
        // Kosaraju assigns component ids in topological order of the
        // condensation (sources first), so a forward pass relaxes correctly.
        let mut comp_edges: Vec<Vec<(usize, bool)>> = vec![Vec::new(); num_comps];
        for v in 0..n {
            for &(w, strict) in &adj[v] {
                let (cv, cw) = (comp[v], comp[w as usize]);
                if cv != cw {
                    comp_edges[cv].push((cw, strict));
                }
            }
        }
        for c in 0..num_comps {
            let lc = level[c];
            for &(d, strict) in &comp_edges[c] {
                debug_assert!(d > c, "component ids must be topologically ordered");
                let need = lc + usize::from(strict);
                if level[d] < need {
                    level[d] = need;
                }
            }
        }

        let max_level = level.iter().copied().max().unwrap_or(0);
        let mut strata: Vec<Vec<Atom>> = vec![Vec::new(); max_level + 1];
        for v in 0..n {
            strata[level[comp[v]]].push(Atom::new(v as u32));
        }
        // Drop trailing empty strata but keep at least one stratum for a
        // non-empty vocabulary.
        while strata.len() > 1 && strata.last().is_some_and(Vec::is_empty) {
            strata.pop();
        }
        Some(strata)
    }

    /// Splits the database along a stratification: `layers[i]` contains the
    /// rules whose head belongs to stratum `i` (`DBᵢ` in the paper's ICWA
    /// machinery). Integrity clauses are placed in the stratum of their
    /// highest body atom.
    pub fn layers(&self, strata: &[Vec<Atom>]) -> Vec<Vec<Rule>> {
        let n = self.num_atoms();
        let mut stratum_of = vec![0usize; n];
        for (i, s) in strata.iter().enumerate() {
            for &a in s {
                stratum_of[a.index()] = i;
            }
        }
        let mut layers: Vec<Vec<Rule>> = vec![Vec::new(); strata.len()];
        for rule in &self.rules {
            let s = if let Some(&h) = rule.head().first() {
                stratum_of[h.index()]
            } else {
                rule.atoms()
                    .map(|a| stratum_of[a.index()])
                    .max()
                    .unwrap_or(0)
            };
            layers[s].push(rule.clone());
        }
        layers
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Database({} atoms, {} rules):",
            self.num_atoms(),
            self.len()
        )?;
        for r in &self.rules {
            writeln!(f, "  {}", crate::parse::display_rule(r, &self.symbols))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(n: usize, rules: Vec<Rule>) -> Database {
        let mut d = Database::with_fresh_atoms(n);
        for r in rules {
            d.add_rule(r);
        }
        d
    }

    fn a(i: u32) -> Atom {
        Atom::new(i)
    }

    #[test]
    fn classification_positive() {
        let d = db(2, vec![Rule::fact([a(0), a(1)])]);
        assert_eq!(d.class(), DbClass::Positive);
        assert!(d.is_positive());
    }

    #[test]
    fn classification_deductive() {
        let d = db(2, vec![Rule::fact([a(0)]), Rule::integrity([a(1)], [])]);
        assert_eq!(d.class(), DbClass::Deductive);
        assert!(!d.is_positive());
        assert!(!d.has_negation());
    }

    #[test]
    fn classification_stratified() {
        // b ← ¬a : stratified, a below b.
        let d = db(2, vec![Rule::new([a(1)], [], [a(0)])]);
        assert_eq!(d.class(), DbClass::Stratified);
        let strata = d.stratification().unwrap();
        assert_eq!(strata.len(), 2);
        assert!(strata[0].contains(&a(0)));
        assert!(strata[1].contains(&a(1)));
    }

    #[test]
    fn classification_normal() {
        // a ← ¬b ; b ← ¬a : the classic unstratifiable loop.
        let d = db(
            2,
            vec![Rule::new([a(0)], [], [a(1)]), Rule::new([a(1)], [], [a(0)])],
        );
        assert_eq!(d.class(), DbClass::Normal);
        assert!(d.stratification().is_none());
    }

    #[test]
    fn positive_recursion_is_stratified() {
        // a ← b ; b ← a : positive loop, one stratum.
        let d = db(
            2,
            vec![Rule::new([a(0)], [a(1)], []), Rule::new([a(1)], [a(0)], [])],
        );
        let strata = d.stratification().unwrap();
        assert_eq!(strata.len(), 1);
    }

    #[test]
    fn negative_self_loop_unstratifiable() {
        // a ← ¬a.
        let d = db(1, vec![Rule::new([a(0)], [], [a(0)])]);
        assert!(d.stratification().is_none());
    }

    #[test]
    fn disjunctive_head_shares_stratum() {
        // a ∨ b ← ¬c ; c has to be strictly below both a and b.
        let d = db(3, vec![Rule::new([a(0), a(1)], [], [a(2)])]);
        let strata = d.stratification().unwrap();
        assert_eq!(strata.len(), 2);
        assert!(strata[0].contains(&a(2)));
        assert!(strata[1].contains(&a(0)) && strata[1].contains(&a(1)));
    }

    #[test]
    fn head_sharing_forces_unstratifiability() {
        // a ∨ b ← ¬c ; c ← a : then c < a (strict) but a,b in one stratum
        // and c ≥ a via second rule ⇒ cycle with strict edge.
        let d = db(
            3,
            vec![
                Rule::new([a(0), a(1)], [], [a(2)]),
                Rule::new([a(2)], [a(0)], []),
            ],
        );
        assert!(d.stratification().is_none());
    }

    #[test]
    fn chain_gets_increasing_strata() {
        // x1 ← ¬x0 ; x2 ← ¬x1 ; x3 ← ¬x2.
        let d = db(
            4,
            vec![
                Rule::new([a(1)], [], [a(0)]),
                Rule::new([a(2)], [], [a(1)]),
                Rule::new([a(3)], [], [a(2)]),
            ],
        );
        let strata = d.stratification().unwrap();
        assert_eq!(strata.len(), 4);
        for (i, stratum) in strata.iter().enumerate() {
            assert_eq!(*stratum, vec![a(i as u32)]);
        }
    }

    #[test]
    fn layers_follow_head_strata() {
        let d = db(
            3,
            vec![
                Rule::fact([a(0)]),
                Rule::new([a(1)], [], [a(0)]),
                Rule::integrity([a(1)], []),
            ],
        );
        let strata = d.stratification().unwrap();
        let layers = d.layers(&strata);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].len(), 1); // fact about x0
        assert_eq!(layers[1].len(), 2); // rule for x1 + integrity clause on x1
    }

    #[test]
    fn model_check() {
        // a ∨ b. ; ← a ∧ b.
        let d = db(
            2,
            vec![Rule::fact([a(0), a(1)]), Rule::integrity([a(0), a(1)], [])],
        );
        let m_a = Interpretation::from_atoms(2, [a(0)]);
        let m_ab = Interpretation::from_atoms(2, [a(0), a(1)]);
        let m_none = Interpretation::empty(2);
        assert!(d.satisfied_by(&m_a));
        assert!(!d.satisfied_by(&m_ab));
        assert!(!d.satisfied_by(&m_none));
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn out_of_vocabulary_rule_rejected() {
        let mut d = Database::with_fresh_atoms(1);
        d.add_rule(Rule::fact([a(5)]));
    }
}
