//! A small deterministic pseudo-random number generator (xorshift64*),
//! replacing the external `rand` dependency so the workspace builds with no
//! registry access.
//!
//! The generator is Marsaglia's xorshift64* — a 64-bit xorshift state
//! followed by a multiplicative scramble. It is emphatically **not**
//! cryptographic; it exists to drive workload generation and randomized
//! tests, where the requirements are determinism across platforms, a full
//! 2⁶⁴−1 period, and reasonable equidistribution. Seeds are pre-mixed with
//! splitmix64 so that small consecutive seeds (0, 1, 2, …) yield unrelated
//! streams.

/// Deterministic xorshift64* PRNG.
///
/// ```
/// use ddb_logic::rng::XorShift64Star;
/// let mut a = XorShift64Star::seed_from_u64(42);
/// let mut b = XorShift64Star::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

/// One round of splitmix64: mixes a seed into a well-distributed state.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl XorShift64Star {
    /// Create a generator from a seed. Any seed is valid; equal seeds give
    /// equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 maps exactly one input to 0; nudge that case since a
        // zero xorshift state is a fixed point.
        let mixed = splitmix64(seed);
        XorShift64Star {
            state: if mixed == 0 {
                0x2545_F491_4F6C_DD1D
            } else {
                mixed
            },
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in the half-open range `[lo, hi)`. Panics if the
    /// range is empty, matching `rand`'s `gen_range` contract.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range called with empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        // Debiased multiply-shift (Lemire): rejection keeps uniformity.
        let threshold = span.wrapping_neg() % span;
        loop {
            let r = self.next_u64();
            let (hi128, lo128) = {
                let wide = (r as u128) * (span as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo128 >= threshold {
                return lo + hi128 as usize;
            }
        }
    }

    /// Uniform integer in the closed range `[lo, hi]`.
    pub fn gen_range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "gen_range_inclusive with empty range {lo}..={hi}");
        if lo == 0 && hi == usize::MAX {
            return self.next_u64() as usize;
        }
        self.gen_range(lo, hi + 1)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64Star::seed_from_u64(7);
        let mut b = XorShift64Star::seed_from_u64(7);
        let mut c = XorShift64Star::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all_values() {
        let mut rng = XorShift64Star::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(10, 15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all range values reachable");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = XorShift64Star::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits} of 10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.1)));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = XorShift64Star::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = XorShift64Star::seed_from_u64(0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }
}
