//! Atom-level dependency graphs — the canonical home of the
//! stratification algorithm and the substrate for static analysis.
//!
//! Every syntactic analysis of a disjunctive database (stratifiability,
//! head-cycle-freeness, tightness, lint passes) is a question about the
//! same object: the directed graph whose nodes are the atoms of the
//! vocabulary and whose edges record how rules make atoms depend on one
//! another. This module builds that graph once, with labelled edges, and
//! derives everything else from its strongly connected components:
//!
//! * [`EdgeKind::Positive`] — `b → h` for `b` in the positive body and `h`
//!   in the head (weak: `stratum(h) ≥ stratum(b)`);
//! * [`EdgeKind::Negative`] — `c → h` for `c` under negation in the body
//!   (strict: `stratum(h) > stratum(c)`);
//! * [`EdgeKind::HeadSibling`] — weak two-way coupling between atoms that
//!   share a rule head (a disjunctive head lives in one stratum).
//!
//! [`Database::stratification`](crate::Database::stratification) and
//! [`Database::layers`](crate::Database::layers) are thin delegates to
//! [`stratification`] and [`layers`] here; the `ddb-analysis` crate builds
//! its fragment classifier and report on the same graph, so there is a
//! single canonical implementation. (Cargo's acyclic crate graph is why
//! the algorithm lives in this substrate crate rather than in
//! `ddb-analysis` itself: `Database` must be able to call it.)

use crate::{Atom, Database, Rule};

/// How one atom depends on another in the dependency graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum EdgeKind {
    /// Weak coupling between two atoms appearing together in a rule head.
    HeadSibling,
    /// The source occurs in the positive body of a rule with the target in
    /// its head (weak edge).
    Positive,
    /// The source occurs under negation in the body of a rule with the
    /// target in its head (strict edge: negation must not recurse).
    Negative,
}

/// The atom-level dependency graph of a database.
#[derive(Clone, Debug)]
pub struct DepGraph {
    num_atoms: usize,
    adj: Vec<Vec<(u32, EdgeKind)>>,
}

/// A strongly-connected-component decomposition of a [`DepGraph`]
/// (restricted to some edge kinds).
///
/// Component ids are assigned in **topological order of the condensation**:
/// every edge between distinct components goes from a lower id to a higher
/// id. Level computations can therefore relax components in id order.
#[derive(Clone, Debug)]
pub struct Sccs {
    /// `comp[atom.index()]` — the component id of each atom.
    pub comp: Vec<usize>,
    /// Number of components.
    pub num_components: usize,
}

impl Sccs {
    /// Whether two atoms lie in the same strongly connected component.
    pub fn same(&self, a: Atom, b: Atom) -> bool {
        self.comp[a.index()] == self.comp[b.index()]
    }

    /// Size of each component, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_components];
        for &c in &self.comp {
            sizes[c] += 1;
        }
        sizes
    }
}

impl DepGraph {
    /// Builds the dependency graph of `db`. Integrity clauses contribute no
    /// edges (the usual convention: constraints only prune models, they do
    /// not define atoms).
    pub fn of_database(db: &Database) -> Self {
        let n = db.num_atoms();
        let mut adj: Vec<Vec<(u32, EdgeKind)>> = vec![Vec::new(); n];
        for rule in db.rules() {
            if rule.is_integrity() {
                continue;
            }
            let head = rule.head();
            for w in head.windows(2) {
                adj[w[0].index()].push((w[1].index() as u32, EdgeKind::HeadSibling));
                adj[w[1].index()].push((w[0].index() as u32, EdgeKind::HeadSibling));
            }
            for &h in head {
                for &b in rule.body_pos() {
                    adj[b.index()].push((h.index() as u32, EdgeKind::Positive));
                }
                for &c in rule.body_neg() {
                    adj[c.index()].push((h.index() as u32, EdgeKind::Negative));
                }
            }
        }
        DepGraph { num_atoms: n, adj }
    }

    /// Number of atoms (nodes).
    pub fn num_atoms(&self) -> usize {
        self.num_atoms
    }

    /// The labelled out-edges of an atom.
    pub fn edges_from(&self, a: Atom) -> impl Iterator<Item = (Atom, EdgeKind)> + '_ {
        self.adj[a.index()]
            .iter()
            .map(|&(to, kind)| (Atom::new(to), kind))
    }

    /// Whether the graph has a positive self-loop at `a` (an atom depending
    /// positively on itself, `a ← a ∧ …`).
    pub fn has_positive_self_loop(&self, a: Atom) -> bool {
        self.adj[a.index()]
            .iter()
            .any(|&(to, kind)| kind == EdgeKind::Positive && to as usize == a.index())
    }

    /// Strongly connected components over the edges selected by `keep`
    /// (iterative Tarjan; component ids in topological order of the
    /// condensation).
    pub fn sccs_filtered(&self, keep: impl Fn(EdgeKind) -> bool) -> Sccs {
        let n = self.num_atoms;
        const UNVISITED: usize = usize::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut comp = vec![UNVISITED; n];
        let mut next_index = 0usize;
        let mut num_components = 0usize;
        // Explicit DFS frames: (node, next edge position).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != UNVISITED {
                continue;
            }
            frames.push((start, 0));
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            while let Some(&mut (v, ref mut i)) = frames.last_mut() {
                let mut advanced = false;
                while *i < self.adj[v].len() {
                    let (w, kind) = self.adj[v][*i];
                    *i += 1;
                    if !keep(kind) {
                        continue;
                    }
                    let w = w as usize;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                        advanced = true;
                        break;
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                }
                if advanced {
                    continue;
                }
                // v is fully expanded: close its component if it is a root.
                if lowlink[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = num_components;
                        if w == v {
                            break;
                        }
                    }
                    num_components += 1;
                }
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
            }
        }
        // Tarjan emits components in reverse topological order (sinks
        // first); flip ids so edges go from lower to higher component id.
        for c in comp.iter_mut() {
            *c = num_components - 1 - *c;
        }
        Sccs {
            comp,
            num_components,
        }
    }

    /// SCCs over all edges (the graph used by stratification).
    pub fn sccs(&self) -> Sccs {
        self.sccs_filtered(|_| true)
    }

    /// SCCs of the **positive dependency graph** (positive edges only —
    /// no head-sibling coupling, no negation). This is the graph behind
    /// head-cycle-freeness and tightness.
    pub fn positive_sccs(&self) -> Sccs {
        self.sccs_filtered(|k| k == EdgeKind::Positive)
    }

    /// An atom cycle witnessing unstratifiability: the members of a
    /// strongly connected component that contains a negative edge, or
    /// `None` if the database is stratifiable.
    pub fn unstratifiable_witness(&self) -> Option<Vec<Atom>> {
        let sccs = self.sccs();
        for v in 0..self.num_atoms {
            for &(w, kind) in &self.adj[v] {
                if kind == EdgeKind::Negative && sccs.comp[v] == sccs.comp[w as usize] {
                    let c = sccs.comp[v];
                    return Some(
                        (0..self.num_atoms)
                            .filter(|&u| sccs.comp[u] == c)
                            .map(|u| Atom::new(u as u32))
                            .collect(),
                    );
                }
            }
        }
        None
    }

    /// Computes a stratification of the graph, if one exists — see
    /// [`Database::stratification`](crate::Database::stratification) for
    /// the contract. Strata are the longest strict-edge distances over the
    /// condensation.
    pub fn stratification(&self) -> Option<Vec<Vec<Atom>>> {
        let n = self.num_atoms;
        let sccs = self.sccs();
        // A strict edge within a component ⇒ unstratifiable.
        for v in 0..n {
            for &(w, kind) in &self.adj[v] {
                if kind == EdgeKind::Negative && sccs.comp[v] == sccs.comp[w as usize] {
                    return None;
                }
            }
        }
        // Longest path by strict-edge count over the condensation (a DAG
        // with component ids in topological order, so a forward pass
        // relaxes correctly).
        let mut level = vec![0usize; sccs.num_components];
        let mut comp_edges: Vec<Vec<(usize, bool)>> = vec![Vec::new(); sccs.num_components];
        for v in 0..n {
            for &(w, kind) in &self.adj[v] {
                let (cv, cw) = (sccs.comp[v], sccs.comp[w as usize]);
                if cv != cw {
                    comp_edges[cv].push((cw, kind == EdgeKind::Negative));
                }
            }
        }
        for c in 0..sccs.num_components {
            let lc = level[c];
            for &(d, strict) in &comp_edges[c] {
                debug_assert!(d > c, "component ids must be topologically ordered");
                let need = lc + usize::from(strict);
                if level[d] < need {
                    level[d] = need;
                }
            }
        }
        let max_level = level.iter().copied().max().unwrap_or(0);
        let mut strata: Vec<Vec<Atom>> = vec![Vec::new(); max_level + 1];
        for v in 0..n {
            strata[level[sccs.comp[v]]].push(Atom::new(v as u32));
        }
        // Drop trailing empty strata but keep at least one stratum for a
        // non-empty vocabulary.
        while strata.len() > 1 && strata.last().is_some_and(Vec::is_empty) {
            strata.pop();
        }
        Some(strata)
    }
}

/// The canonical stratification algorithm:
/// [`Database::stratification`](crate::Database::stratification) delegates
/// here, as does the `ddb-analysis` report.
pub fn stratification(db: &Database) -> Option<Vec<Vec<Atom>>> {
    DepGraph::of_database(db).stratification()
}

/// The canonical layering algorithm:
/// [`Database::layers`](crate::Database::layers) delegates here. `layers[i]`
/// contains the rules whose head belongs to stratum `i`; integrity clauses
/// go to the stratum of their highest body atom.
pub fn layers(db: &Database, strata: &[Vec<Atom>]) -> Vec<Vec<Rule>> {
    let n = db.num_atoms();
    let mut stratum_of = vec![0usize; n];
    for (i, s) in strata.iter().enumerate() {
        for &a in s {
            stratum_of[a.index()] = i;
        }
    }
    let mut layers: Vec<Vec<Rule>> = vec![Vec::new(); strata.len()];
    for rule in db.rules() {
        let s = if let Some(&h) = rule.head().first() {
            stratum_of[h.index()]
        } else {
            rule.atoms()
                .map(|a| stratum_of[a.index()])
                .max()
                .unwrap_or(0)
        };
        layers[s].push(rule.clone());
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(n: usize, rules: Vec<Rule>) -> Database {
        let mut d = Database::with_fresh_atoms(n);
        for r in rules {
            d.add_rule(r);
        }
        d
    }

    fn a(i: u32) -> Atom {
        Atom::new(i)
    }

    #[test]
    fn positive_sccs_ignore_head_siblings_and_negation() {
        // a ∨ b ← ¬c: the only edges are head-sibling (a↔b) and negative
        // (c→a, c→b); the positive graph is edgeless.
        let d = db(3, vec![Rule::new([a(0), a(1)], [], [a(2)])]);
        let g = DepGraph::of_database(&d);
        let pos = g.positive_sccs();
        assert_eq!(pos.num_components, 3);
        let all = g.sccs();
        assert!(all.same(a(0), a(1)), "head siblings share a component");
        assert!(!all.same(a(0), a(2)));
    }

    #[test]
    fn positive_cycle_detected() {
        // a ← b; b ← a.
        let d = db(
            2,
            vec![Rule::new([a(0)], [a(1)], []), Rule::new([a(1)], [a(0)], [])],
        );
        let g = DepGraph::of_database(&d);
        assert_eq!(g.positive_sccs().num_components, 1);
    }

    #[test]
    fn positive_self_loop() {
        let d = db(2, vec![Rule::new([a(0)], [a(0)], [])]);
        let g = DepGraph::of_database(&d);
        assert!(g.has_positive_self_loop(a(0)));
        assert!(!g.has_positive_self_loop(a(1)));
    }

    #[test]
    fn component_ids_topological() {
        // Chain x0 → x1 → x2 (positive): component ids must increase along
        // edges.
        let d = db(
            3,
            vec![Rule::new([a(1)], [a(0)], []), Rule::new([a(2)], [a(1)], [])],
        );
        let sccs = DepGraph::of_database(&d).sccs();
        assert!(sccs.comp[0] < sccs.comp[1]);
        assert!(sccs.comp[1] < sccs.comp[2]);
    }

    #[test]
    fn unstratifiable_witness_names_the_cycle() {
        // a ← ¬b; b ← ¬a plus an unrelated atom c.
        let d = db(
            3,
            vec![Rule::new([a(0)], [], [a(1)]), Rule::new([a(1)], [], [a(0)])],
        );
        let g = DepGraph::of_database(&d);
        let cycle = g.unstratifiable_witness().unwrap();
        assert!(cycle.contains(&a(0)) && cycle.contains(&a(1)));
        assert!(!cycle.contains(&a(2)));
        assert!(g.stratification().is_none());
    }

    #[test]
    fn stratifiable_graph_has_no_witness() {
        let d = db(2, vec![Rule::new([a(1)], [], [a(0)])]);
        let g = DepGraph::of_database(&d);
        assert!(g.unstratifiable_witness().is_none());
        assert_eq!(g.stratification().unwrap().len(), 2);
    }

    #[test]
    fn sizes_partition_the_vocabulary() {
        let d = db(
            4,
            vec![
                Rule::new([a(0)], [a(1)], []),
                Rule::new([a(1)], [a(0)], []),
                Rule::new([a(2)], [a(1)], []),
            ],
        );
        let sccs = DepGraph::of_database(&d).sccs();
        let sizes = sccs.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 4);
        assert!(sizes.contains(&2)); // the {x0, x1} loop
    }
}
