//! Clausal form and the Tseitin transformation — the bridge from rules and
//! formulas to the SAT substrate.
//!
//! The central type is [`CnfBuilder`], which accumulates CNF clauses over an
//! extended vocabulary: the first `n` variables are the database's atoms,
//! and Tseitin definition variables are appended after them. The SAT crate
//! consumes the resulting [`Cnf`] directly.

use crate::{Atom, Database, Formula, Interpretation, Literal, Rule};

/// A CNF clause: a disjunction of literals.
pub type Clause = Vec<Literal>;

/// A CNF formula over `num_vars` variables (database atoms first, then any
/// auxiliary Tseitin variables).
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    /// Total number of variables, including auxiliaries.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

/// Incremental CNF construction with Tseitin support.
///
/// ```
/// use ddb_logic::{cnf::CnfBuilder, Atom, Formula};
/// let mut b = CnfBuilder::new(2);
/// let f = Formula::atom(Atom::new(0)).implies(Formula::atom(Atom::new(1)));
/// b.assert_formula(&f);
/// let cnf = b.finish();
/// assert_eq!(cnf.clauses, vec![vec![Atom::new(0).neg(), Atom::new(1).pos()]]);
/// ```
#[derive(Clone, Debug)]
pub struct CnfBuilder {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl CnfBuilder {
    /// Starts a builder whose first `num_atoms` variables are the database
    /// atoms.
    pub fn new(num_atoms: usize) -> Self {
        CnfBuilder {
            num_vars: num_atoms,
            clauses: Vec::new(),
        }
    }

    /// Current number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Allocates a fresh auxiliary variable.
    pub fn fresh_var(&mut self) -> Atom {
        let a = Atom::new(self.num_vars as u32);
        self.num_vars += 1;
        a
    }

    /// Adds a raw clause.
    pub fn add_clause(&mut self, clause: Clause) {
        debug_assert!(clause.iter().all(|l| l.atom().index() < self.num_vars));
        self.clauses.push(clause);
    }

    /// Adds a unit clause.
    pub fn assert_literal(&mut self, lit: Literal) {
        self.add_clause(vec![lit]);
    }

    /// Adds the clause corresponding to a database rule:
    /// `head ∨ ¬body⁺ ∨ body⁻`.
    pub fn add_rule(&mut self, rule: &Rule) {
        let clause: Clause = rule
            .head()
            .iter()
            .map(|&a| a.pos())
            .chain(rule.body_pos().iter().map(|&a| a.neg()))
            .chain(rule.body_neg().iter().map(|&a| a.pos()))
            .collect();
        self.add_clause(clause);
    }

    /// Adds all rules of `db`.
    pub fn add_database(&mut self, db: &Database) {
        for rule in db.rules() {
            self.add_rule(rule);
        }
    }

    /// Tseitin-encodes `f`, returning a literal `ℓ` such that the added
    /// clauses force `ℓ ↔ f` in every satisfying assignment.
    ///
    /// Auxiliary variables are introduced for compound subformulas;
    /// constants and literals are returned directly without auxiliaries.
    /// To force `f` itself, use [`CnfBuilder::assert_formula`].
    pub fn define_formula(&mut self, f: &Formula) -> Literal {
        match f {
            Formula::True => {
                // A fresh variable forced true.
                let v = self.fresh_var();
                self.assert_literal(v.pos());
                v.pos()
            }
            Formula::False => {
                let v = self.fresh_var();
                self.assert_literal(v.neg());
                v.pos()
            }
            Formula::Atom(a) => a.pos(),
            Formula::Not(g) => self.define_formula(g).complement(),
            Formula::And(fs) => {
                let lits: Vec<Literal> = fs.iter().map(|g| self.define_formula(g)).collect();
                if lits.len() == 1 {
                    return lits[0];
                }
                let v = self.fresh_var();
                // v → each lit ; (all lits) → v.
                for &l in &lits {
                    self.add_clause(vec![v.neg(), l]);
                }
                let mut back: Clause = lits.iter().map(|l| l.complement()).collect();
                back.push(v.pos());
                self.add_clause(back);
                v.pos()
            }
            Formula::Or(fs) => {
                let lits: Vec<Literal> = fs.iter().map(|g| self.define_formula(g)).collect();
                if lits.len() == 1 {
                    return lits[0];
                }
                let v = self.fresh_var();
                // each lit → v ; v → some lit.
                for &l in &lits {
                    self.add_clause(vec![l.complement(), v.pos()]);
                }
                let mut fwd: Clause = lits.clone();
                fwd.push(v.neg());
                self.add_clause(fwd);
                v.pos()
            }
            Formula::Implies(l, r) => {
                let f2 = Formula::Or(vec![(**l).clone().negated(), (**r).clone()]);
                self.define_formula(&f2)
            }
            Formula::Iff(l, r) => {
                let ll = self.define_formula(l);
                let rr = self.define_formula(r);
                let v = self.fresh_var();
                // v ↔ (ll ↔ rr)
                self.add_clause(vec![v.neg(), ll.complement(), rr]);
                self.add_clause(vec![v.neg(), ll, rr.complement()]);
                self.add_clause(vec![v.pos(), ll, rr]);
                self.add_clause(vec![v.pos(), ll.complement(), rr.complement()]);
                v.pos()
            }
        }
    }

    /// Asserts that `f` holds. Simple shapes (constants, literals, clauses,
    /// conjunctions of clauses) are encoded without auxiliary variables.
    pub fn assert_formula(&mut self, f: &Formula) {
        // Flatten ¬, →, ↔ first; then conjunctions become separate asserts
        // and disjunctions of literals become plain clauses.
        let nnf = f.to_nnf();
        self.assert_nnf(&nnf);
    }

    fn assert_nnf(&mut self, f: &Formula) {
        match f {
            Formula::True => {}
            Formula::False => self.add_clause(Vec::new()),
            Formula::Atom(a) => self.assert_literal(a.pos()),
            Formula::Not(g) => match **g {
                Formula::Atom(a) => self.assert_literal(a.neg()),
                _ => unreachable!("NNF negations are atomic"),
            },
            Formula::And(fs) => {
                for g in fs {
                    self.assert_nnf(g);
                }
            }
            Formula::Or(fs) => {
                // If all disjuncts are literals, emit one clause; otherwise
                // Tseitin the compound disjuncts.
                let mut clause = Vec::with_capacity(fs.len());
                for g in fs {
                    match g {
                        Formula::Atom(a) => clause.push(a.pos()),
                        Formula::Not(inner) => match **inner {
                            Formula::Atom(a) => clause.push(a.neg()),
                            _ => unreachable!("NNF negations are atomic"),
                        },
                        Formula::True => return, // trivially satisfied
                        Formula::False => {}
                        compound => clause.push(self.define_formula(compound)),
                    }
                }
                self.add_clause(clause);
            }
            Formula::Implies(..) | Formula::Iff(..) => {
                unreachable!("NNF contains no Implies/Iff")
            }
        }
    }

    /// Finishes, yielding the accumulated CNF.
    pub fn finish(self) -> Cnf {
        Cnf {
            num_vars: self.num_vars,
            clauses: self.clauses,
        }
    }
}

impl Cnf {
    /// Whether `m` (over at least `num_vars` variables) satisfies every
    /// clause. Used by tests and the brute-force reference engine.
    pub fn satisfied_by(&self, m: &Interpretation) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|&l| m.satisfies(l)))
    }
}

/// Converts a database directly to CNF (no auxiliary variables needed:
/// rules already are clauses).
pub fn database_to_cnf(db: &Database) -> Cnf {
    let mut b = CnfBuilder::new(db.num_atoms());
    b.add_database(db);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartialInterpretation;

    fn a(i: u32) -> Atom {
        Atom::new(i)
    }

    /// Exhaustively checks that the Tseitin encoding of `f` over `n` atoms
    /// is satisfiable-extendable exactly on the models of `f`.
    fn check_equisat(f: &Formula, n: usize) {
        let mut b = CnfBuilder::new(n);
        b.assert_formula(f);
        let cnf = b.finish();
        let aux = cnf.num_vars - n;
        for bits in 0u64..1 << n {
            let base: Vec<Atom> = (0..n)
                .filter(|&i| bits >> i & 1 == 1)
                .map(|i| a(i as u32))
                .collect();
            let expected = f.eval(&Interpretation::from_atoms(n, base.iter().copied()));
            // Does some extension to the aux vars satisfy the CNF?
            let mut any = false;
            for aux_bits in 0u64..1 << aux {
                let mut m = Interpretation::from_atoms(cnf.num_vars, base.iter().copied());
                for j in 0..aux {
                    if aux_bits >> j & 1 == 1 {
                        m.insert(a((n + j) as u32));
                    }
                }
                if cnf.satisfied_by(&m) {
                    any = true;
                    break;
                }
            }
            assert_eq!(any, expected, "bits {bits:b} of {f:?}");
        }
    }

    #[test]
    fn rule_to_clause() {
        let mut b = CnfBuilder::new(4);
        b.add_rule(&Rule::new([a(0), a(1)], [a(2)], [a(3)]));
        let cnf = b.finish();
        assert_eq!(
            cnf.clauses,
            vec![vec![a(0).pos(), a(1).pos(), a(2).neg(), a(3).pos()]]
        );
    }

    #[test]
    fn integrity_clause_to_clause() {
        let mut b = CnfBuilder::new(2);
        b.add_rule(&Rule::integrity([a(0)], [a(1)]));
        let cnf = b.finish();
        assert_eq!(cnf.clauses, vec![vec![a(0).neg(), a(1).pos()]]);
    }

    #[test]
    fn assert_clause_shape_has_no_aux() {
        let f = Formula::or([
            Formula::atom(a(0)),
            Formula::atom(a(1)).negated(),
            Formula::atom(a(2)),
        ]);
        let mut b = CnfBuilder::new(3);
        b.assert_formula(&f);
        let cnf = b.finish();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 1);
    }

    #[test]
    fn tseitin_equisat_implies() {
        check_equisat(&Formula::atom(a(0)).implies(Formula::atom(a(1))), 2);
    }

    #[test]
    fn tseitin_equisat_iff_nested() {
        let f = Formula::Iff(
            Box::new(Formula::and([Formula::atom(a(0)), Formula::atom(a(1))])),
            Box::new(Formula::or([
                Formula::atom(a(2)),
                Formula::atom(a(0)).negated(),
            ])),
        );
        check_equisat(&f, 3);
    }

    #[test]
    fn tseitin_equisat_negated_compound() {
        let f = Formula::and([
            Formula::or([Formula::atom(a(0)), Formula::atom(a(1))]),
            Formula::atom(a(2)),
        ])
        .negated();
        check_equisat(&f, 3);
    }

    #[test]
    fn tseitin_constants() {
        check_equisat(&Formula::True, 1);
        let f = Formula::or([Formula::False, Formula::atom(a(0))]);
        check_equisat(&f, 1);
    }

    #[test]
    fn assert_false_gives_empty_clause() {
        let mut b = CnfBuilder::new(0);
        b.assert_formula(&Formula::False);
        let cnf = b.finish();
        assert!(cnf.clauses.iter().any(Vec::is_empty));
    }

    #[test]
    fn database_to_cnf_models_match() {
        // a ∨ b ; ← a ∧ b — CNF models are exactly the DB models.
        let mut db = Database::with_fresh_atoms(2);
        db.add_rule(Rule::fact([a(0), a(1)]));
        db.add_rule(Rule::integrity([a(0), a(1)], []));
        let cnf = database_to_cnf(&db);
        for bits in 0u32..4 {
            let m = Interpretation::from_atoms(2, (0..2).filter(|&i| bits >> i & 1 == 1).map(a));
            assert_eq!(cnf.satisfied_by(&m), db.satisfied_by(&m));
        }
    }

    #[test]
    fn three_valued_not_used_here_but_consistent() {
        // Smoke test: rules as clauses agree with Formula encoding on totals.
        let rule = Rule::new([a(0)], [a(1)], [a(2)]);
        let as_formula = Formula::and([Formula::atom(a(1)), Formula::atom(a(2)).negated()])
            .implies(Formula::atom(a(0)));
        for bits in 0u32..8 {
            let m = Interpretation::from_atoms(3, (0..3).filter(|&i| bits >> i & 1 == 1).map(a));
            assert_eq!(rule.satisfied_by(&m), as_formula.eval(&m));
            let p = PartialInterpretation::from_total(&m);
            assert_eq!(rule.value3(&p), rule.satisfied_by(&m));
        }
    }
}
