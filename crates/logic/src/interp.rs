//! Two-valued interpretations as fixed-width bitsets.

use crate::{Atom, Literal};
use std::fmt;

const BITS: usize = 64;

/// A two-valued interpretation over a vocabulary of `n` atoms, identified
/// with the set of atoms it makes true (the paper's Herbrand-style
/// convention: a model *is* a set of atoms).
///
/// Backed by a `Vec<u64>` bitset sized to the vocabulary, so subset tests —
/// the hot operation of minimal-model reasoning — are word-parallel.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interpretation {
    words: Vec<u64>,
    num_atoms: usize,
}

impl Interpretation {
    /// The empty interpretation (all atoms false) over `num_atoms` atoms.
    pub fn empty(num_atoms: usize) -> Self {
        Interpretation {
            words: vec![0; num_atoms.div_ceil(BITS)],
            num_atoms,
        }
    }

    /// The full interpretation (all atoms true) over `num_atoms` atoms.
    pub fn full(num_atoms: usize) -> Self {
        let mut i = Self::empty(num_atoms);
        for a in 0..num_atoms {
            i.insert(Atom::new(a as u32));
        }
        i
    }

    /// Builds an interpretation from the atoms it makes true.
    pub fn from_atoms(num_atoms: usize, atoms: impl IntoIterator<Item = Atom>) -> Self {
        let mut i = Self::empty(num_atoms);
        for a in atoms {
            i.insert(a);
        }
        i
    }

    /// Number of atoms in the vocabulary this interpretation ranges over.
    pub fn num_atoms(&self) -> usize {
        self.num_atoms
    }

    /// Whether `atom` is true.
    #[inline]
    pub fn contains(&self, atom: Atom) -> bool {
        let i = atom.index();
        debug_assert!(i < self.num_atoms);
        self.words[i / BITS] >> (i % BITS) & 1 == 1
    }

    /// Whether `lit` is satisfied.
    #[inline]
    pub fn satisfies(&self, lit: Literal) -> bool {
        self.contains(lit.atom()) == lit.is_positive()
    }

    /// Makes `atom` true.
    #[inline]
    pub fn insert(&mut self, atom: Atom) {
        let i = atom.index();
        debug_assert!(i < self.num_atoms);
        self.words[i / BITS] |= 1 << (i % BITS);
    }

    /// Makes `atom` false.
    #[inline]
    pub fn remove(&mut self, atom: Atom) {
        let i = atom.index();
        debug_assert!(i < self.num_atoms);
        self.words[i / BITS] &= !(1 << (i % BITS));
    }

    /// Sets `atom` to `value`.
    #[inline]
    pub fn set(&mut self, atom: Atom, value: bool) {
        if value {
            self.insert(atom)
        } else {
            self.remove(atom)
        }
    }

    /// Number of true atoms.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no atom is true.
    pub fn is_empty_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ⊆ other` (as sets of true atoms).
    pub fn is_subset(&self, other: &Self) -> bool {
        debug_assert_eq!(self.num_atoms, other.num_atoms);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & !b == 0)
    }

    /// `self ⊂ other` (proper subset).
    pub fn is_proper_subset(&self, other: &Self) -> bool {
        self.is_subset(other) && self != other
    }

    /// `self ⊆ other` restricted to the atoms in `mask`:
    /// `self ∩ mask ⊆ other ∩ mask`.
    pub fn is_subset_within(&self, other: &Self, mask: &Self) -> bool {
        debug_assert_eq!(self.num_atoms, other.num_atoms);
        debug_assert_eq!(self.num_atoms, mask.num_atoms);
        self.words
            .iter()
            .zip(&other.words)
            .zip(&mask.words)
            .all(|((&a, &b), &m)| a & m & !b == 0)
    }

    /// Whether `self` and `other` agree on every atom of `mask`.
    pub fn agrees_within(&self, other: &Self, mask: &Self) -> bool {
        debug_assert_eq!(self.num_atoms, other.num_atoms);
        self.words
            .iter()
            .zip(&other.words)
            .zip(&mask.words)
            .all(|((&a, &b), &m)| (a ^ b) & m == 0)
    }

    /// Iterates over the true atoms in index order.
    pub fn iter(&self) -> impl Iterator<Item = Atom> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(Atom::new((wi * BITS + tz) as u32))
                }
            })
        })
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Self) {
        debug_assert_eq!(self.num_atoms, other.num_atoms);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &Self) {
        debug_assert_eq!(self.num_atoms, other.num_atoms);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place set difference (`self ∖ other`).
    pub fn difference_with(&mut self, other: &Self) {
        debug_assert_eq!(self.num_atoms, other.num_atoms);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns the set of atoms in `self` but not `other`.
    pub fn difference(&self, other: &Self) -> Self {
        let mut d = self.clone();
        d.difference_with(other);
        d
    }
}

impl fmt::Debug for Interpretation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, a) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "v{}", a.index())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interp(n: usize, atoms: &[u32]) -> Interpretation {
        Interpretation::from_atoms(n, atoms.iter().map(|&i| Atom::new(i)))
    }

    #[test]
    fn insert_remove_contains() {
        let mut m = Interpretation::empty(100);
        let a = Atom::new(64);
        assert!(!m.contains(a));
        m.insert(a);
        assert!(m.contains(a));
        m.remove(a);
        assert!(!m.contains(a));
    }

    #[test]
    fn satisfies_respects_sign() {
        let m = interp(4, &[1]);
        assert!(m.satisfies(Atom::new(1).pos()));
        assert!(!m.satisfies(Atom::new(1).neg()));
        assert!(m.satisfies(Atom::new(2).neg()));
        assert!(!m.satisfies(Atom::new(2).pos()));
    }

    #[test]
    fn subset_relations() {
        let a = interp(10, &[1, 3]);
        let b = interp(10, &[1, 3, 5]);
        assert!(a.is_subset(&b));
        assert!(a.is_proper_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(!a.is_proper_subset(&a));
    }

    #[test]
    fn subset_within_mask() {
        let a = interp(10, &[1, 7]);
        let b = interp(10, &[1, 3]);
        let mask = interp(10, &[1, 3]);
        // a ∩ mask = {1} ⊆ {1,3} = b ∩ mask, even though a ⊄ b globally.
        assert!(a.is_subset_within(&b, &mask));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn agrees_within_mask() {
        let a = interp(10, &[1, 7]);
        let b = interp(10, &[1, 8]);
        let z = interp(10, &[7, 8]);
        let q = interp(10, &[1, 2]);
        assert!(a.agrees_within(&b, &q));
        assert!(!a.agrees_within(&b, &z));
    }

    #[test]
    fn iter_yields_sorted_atoms() {
        let m = interp(200, &[0, 63, 64, 65, 199]);
        let got: Vec<usize> = m.iter().map(|a| a.index()).collect();
        assert_eq!(got, vec![0, 63, 64, 65, 199]);
        assert_eq!(m.count(), 5);
    }

    #[test]
    fn set_algebra() {
        let mut a = interp(10, &[1, 2, 3]);
        let b = interp(10, &[2, 3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, interp(10, &[1, 2, 3, 4]));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, interp(10, &[2, 3]));
        a.difference_with(&b);
        assert_eq!(a, interp(10, &[1]));
    }

    #[test]
    fn full_and_empty() {
        let f = Interpretation::full(70);
        assert_eq!(f.count(), 70);
        assert!(Interpretation::empty(70).is_empty_set());
        assert!(Interpretation::empty(70).is_subset(&f));
    }
}
