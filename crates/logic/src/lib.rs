//! # ddb-logic — propositional substrate for disjunctive databases
//!
//! This crate provides the syntactic and semantic groundwork used by every
//! other crate in the workspace:
//!
//! * [`Atom`] / [`Literal`] — interned propositional variables and signed
//!   occurrences thereof;
//! * [`Symbols`] — the string ↔ [`Atom`] interner (the *vocabulary* `V` of
//!   the paper);
//! * [`Rule`] — a disjunctive clause `a₁ ∨ … ∨ aₙ ← b₁ ∧ … ∧ bₖ ∧ ¬c₁ ∧ … ∧ ¬cₘ`,
//!   including *integrity clauses* (empty head) and facts (empty body);
//! * [`Database`] — a finite set of rules over a vocabulary, together with
//!   its classification into the paper's syntactic classes
//!   ([`DbClass::Positive`], [`DbClass::Deductive`], [`DbClass::Stratified`],
//!   [`DbClass::Normal`]);
//! * [`Interpretation`] — a two-valued interpretation as a bitset over the
//!   vocabulary, and [`PartialInterpretation`] — a three-valued (partial)
//!   interpretation used by the partial disjunctive stable model semantics;
//! * [`Formula`] — a full propositional formula AST with two- and
//!   three-valued evaluation, used for the paper's *formula inference*
//!   problem;
//! * [`cnf`] — clausal form and a Tseitin transformation, the bridge to the
//!   SAT substrate;
//! * [`parse`] — a small concrete syntax for databases and formulas.
//!
//! Everything in this crate is deterministic and allocation-conscious;
//! interpretations are fixed-width bitsets sized to the vocabulary so that
//! the model-enumeration loops in `ddb-models` can clone and compare them
//! cheaply.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atom;
pub mod cnf;
mod database;
pub mod depgraph;
mod formula;
mod interp;
pub mod parse;
mod partial;
pub mod rng;
mod rule;
mod symbols;

pub use atom::{Atom, Literal};
pub use database::{Database, DbClass};
pub use formula::Formula;
pub use interp::Interpretation;
pub use partial::{PartialInterpretation, TruthValue};
pub use rule::Rule;
pub use symbols::Symbols;
