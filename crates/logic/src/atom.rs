//! Atoms and literals.

use std::fmt;

/// A propositional variable, identified by its index in a [`crate::Symbols`]
/// table.
///
/// Atoms are plain `u32` indices so that interpretations can be bitsets and
/// rules can be flat vectors. An `Atom` is only meaningful relative to the
/// vocabulary it was interned in.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom(u32);

impl Atom {
    /// Creates an atom from a raw index.
    #[inline]
    pub fn new(index: u32) -> Self {
        Atom(index)
    }

    /// The raw index of this atom.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal over this atom.
    #[inline]
    pub fn pos(self) -> Literal {
        Literal::positive(self)
    }

    /// The negative literal over this atom.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Literal {
        Literal::negative(self)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Atom({})", self.0)
    }
}

/// A signed occurrence of an atom: either `x` or `¬x`.
///
/// Encoded as `2·atom + sign` so a literal fits in a `u32` and can index
/// watch lists directly (the same trick the SAT crate uses).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal(u32);

impl Literal {
    /// The positive literal `x`.
    #[inline]
    pub fn positive(atom: Atom) -> Self {
        Literal(atom.0 << 1)
    }

    /// The negative literal `¬x`.
    #[inline]
    pub fn negative(atom: Atom) -> Self {
        Literal((atom.0 << 1) | 1)
    }

    /// Builds a literal with an explicit sign; `positive == true` yields `x`.
    #[inline]
    pub fn with_sign(atom: Atom, positive: bool) -> Self {
        if positive {
            Self::positive(atom)
        } else {
            Self::negative(atom)
        }
    }

    /// The underlying atom.
    #[inline]
    pub fn atom(self) -> Atom {
        Atom(self.0 >> 1)
    }

    /// `true` for `x`, `false` for `¬x`.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// `true` for `¬x`.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal (`x` ↦ `¬x`, `¬x` ↦ `x`).
    #[inline]
    pub fn complement(self) -> Self {
        Literal(self.0 ^ 1)
    }

    /// Dense code of the literal (`2·atom + sign`), usable as an array index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬")?;
        }
        write!(f, "v{}", self.atom().index())
    }
}

impl From<Atom> for Literal {
    fn from(a: Atom) -> Self {
        a.pos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_roundtrip() {
        let a = Atom::new(7);
        assert_eq!(a.pos().atom(), a);
        assert_eq!(a.neg().atom(), a);
        assert!(a.pos().is_positive());
        assert!(a.neg().is_negative());
    }

    #[test]
    fn complement_is_involution() {
        let a = Atom::new(3);
        assert_eq!(a.pos().complement(), a.neg());
        assert_eq!(a.neg().complement(), a.pos());
        assert_eq!(a.pos().complement().complement(), a.pos());
    }

    #[test]
    fn codes_are_dense() {
        let a = Atom::new(0);
        let b = Atom::new(1);
        assert_eq!(a.pos().code(), 0);
        assert_eq!(a.neg().code(), 1);
        assert_eq!(b.pos().code(), 2);
        assert_eq!(b.neg().code(), 3);
    }

    #[test]
    fn ordering_groups_by_atom() {
        let a = Atom::new(1);
        let b = Atom::new(2);
        assert!(a.pos() < a.neg());
        assert!(a.neg() < b.pos());
    }
}
