//! Disjunctive rules (clauses) and their evaluation.

use crate::{Atom, Interpretation, PartialInterpretation, TruthValue};

/// A disjunctive rule
/// `a₁ ∨ … ∨ aₙ ← b₁ ∧ … ∧ bₖ ∧ ¬c₁ ∧ … ∧ ¬cₘ`,
/// the paper's clause form `C`.
///
/// * `n = 0` makes this an **integrity clause** (the body must not hold);
/// * `k = m = 0` makes it a **(disjunctive) fact**;
/// * `m = 0` for all rules of a database makes the database **positive**
///   (class `C⁺` in the paper).
///
/// Logically the rule is the clause
/// `a₁ ∨ … ∨ aₙ ∨ ¬b₁ ∨ … ∨ ¬bₖ ∨ c₁ ∨ … ∨ cₘ`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Rule {
    head: Vec<Atom>,
    body_pos: Vec<Atom>,
    body_neg: Vec<Atom>,
}

impl Rule {
    /// Builds a rule from head atoms, positive body atoms, and negated body
    /// atoms. Duplicates are removed and atoms sorted, so rules compare
    /// structurally.
    pub fn new(
        head: impl IntoIterator<Item = Atom>,
        body_pos: impl IntoIterator<Item = Atom>,
        body_neg: impl IntoIterator<Item = Atom>,
    ) -> Self {
        fn norm(it: impl IntoIterator<Item = Atom>) -> Vec<Atom> {
            let mut v: Vec<Atom> = it.into_iter().collect();
            v.sort_unstable();
            v.dedup();
            v
        }
        Rule {
            head: norm(head),
            body_pos: norm(body_pos),
            body_neg: norm(body_neg),
        }
    }

    /// A (possibly disjunctive) fact `a₁ ∨ … ∨ aₙ.`
    pub fn fact(head: impl IntoIterator<Item = Atom>) -> Self {
        Self::new(head, [], [])
    }

    /// An integrity clause `← body⁺ ∧ ¬body⁻`.
    pub fn integrity(
        body_pos: impl IntoIterator<Item = Atom>,
        body_neg: impl IntoIterator<Item = Atom>,
    ) -> Self {
        Self::new([], body_pos, body_neg)
    }

    /// The head atoms (disjunction).
    pub fn head(&self) -> &[Atom] {
        &self.head
    }

    /// The positive body atoms (conjunction).
    pub fn body_pos(&self) -> &[Atom] {
        &self.body_pos
    }

    /// The atoms under negation in the body.
    pub fn body_neg(&self) -> &[Atom] {
        &self.body_neg
    }

    /// Whether the head is empty (an integrity clause).
    pub fn is_integrity(&self) -> bool {
        self.head.is_empty()
    }

    /// Whether the body is empty (a fact).
    pub fn is_fact(&self) -> bool {
        self.body_pos.is_empty() && self.body_neg.is_empty()
    }

    /// Whether the rule contains no negation (is in `C⁺`).
    pub fn is_positive(&self) -> bool {
        self.body_neg.is_empty()
    }

    /// Whether the head is a single atom and the body positive — a Horn rule.
    pub fn is_horn(&self) -> bool {
        self.head.len() <= 1 && self.body_neg.is_empty()
    }

    /// Whether the body of the rule holds in `m`.
    pub fn body_holds(&self, m: &Interpretation) -> bool {
        self.body_pos.iter().all(|&b| m.contains(b))
            && self.body_neg.iter().all(|&c| !m.contains(c))
    }

    /// Whether `m ⊨ rule` (classical satisfaction of the corresponding
    /// clause): if the body holds, some head atom must be true.
    pub fn satisfied_by(&self, m: &Interpretation) -> bool {
        !self.body_holds(m) || self.head.iter().any(|&a| m.contains(a))
    }

    /// Three-valued truth value of the rule under `p`, reading `←` as the
    /// three-valued implication that is true iff `value(head) ≥ value(body)`
    /// (Przymusinski's convention for partial models).
    pub fn value3(&self, p: &PartialInterpretation) -> bool {
        let head = self
            .head
            .iter()
            .map(|&a| p.value(a))
            .fold(TruthValue::False, TruthValue::or);
        let body = self
            .body_pos
            .iter()
            .map(|&a| p.value(a))
            .chain(self.body_neg.iter().map(|&a| p.value(a).not()))
            .fold(TruthValue::True, TruthValue::and);
        head.rank() >= body.rank()
    }

    /// The largest atom index occurring in the rule, if any. Used to size
    /// vocabularies defensively.
    pub fn max_atom(&self) -> Option<Atom> {
        self.head
            .iter()
            .chain(&self.body_pos)
            .chain(&self.body_neg)
            .copied()
            .max()
    }

    /// Iterates over every atom occurring in the rule (with repetitions
    /// across the three parts removed within each part only).
    pub fn atoms(&self) -> impl Iterator<Item = Atom> + '_ {
        self.head
            .iter()
            .chain(&self.body_pos)
            .chain(&self.body_neg)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> Atom {
        Atom::new(i)
    }

    fn interp(n: usize, atoms: &[u32]) -> Interpretation {
        Interpretation::from_atoms(n, atoms.iter().map(|&i| Atom::new(i)))
    }

    #[test]
    fn normalization_sorts_and_dedups() {
        let r = Rule::new([a(2), a(1), a(2)], [a(3)], []);
        assert_eq!(r.head(), &[a(1), a(2)]);
    }

    #[test]
    fn classification() {
        assert!(Rule::fact([a(0)]).is_fact());
        assert!(Rule::integrity([a(0)], []).is_integrity());
        assert!(Rule::new([a(0)], [a(1)], []).is_positive());
        assert!(!Rule::new([a(0)], [], [a(1)]).is_positive());
        assert!(Rule::new([a(0)], [a(1)], []).is_horn());
        assert!(!Rule::new([a(0), a(2)], [a(1)], []).is_horn());
        // Integrity clauses are Horn (empty head counts as ≤ 1).
        assert!(Rule::integrity([a(0)], []).is_horn());
    }

    #[test]
    fn classical_satisfaction() {
        // a ∨ b ← c ∧ ¬d
        let r = Rule::new([a(0), a(1)], [a(2)], [a(3)]);
        assert!(r.satisfied_by(&interp(4, &[]))); // body fails (no c)
        assert!(r.satisfied_by(&interp(4, &[2, 3]))); // body fails (d true)
        assert!(r.satisfied_by(&interp(4, &[2, 0]))); // body holds, head true
        assert!(!r.satisfied_by(&interp(4, &[2]))); // body holds, head false
    }

    #[test]
    fn integrity_clause_satisfaction() {
        // ← a ∧ b
        let r = Rule::integrity([a(0), a(1)], []);
        assert!(r.satisfied_by(&interp(2, &[0])));
        assert!(!r.satisfied_by(&interp(2, &[0, 1])));
    }

    #[test]
    fn three_valued_rule_truth() {
        use crate::TruthValue::*;
        // a ← ¬b : value(a) must be ≥ value(¬b).
        let r = Rule::new([a(0)], [], [a(1)]);
        let mut p = PartialInterpretation::undefined(2);
        // a=½, b=½: head ½ ≥ body ¬½=½ → holds.
        assert!(r.value3(&p));
        // a=0, b=½: 0 ≥ ½ fails.
        p.set(a(0), False);
        assert!(!r.value3(&p));
        // a=0, b=1: 0 ≥ 0 holds.
        p.set(a(1), True);
        assert!(r.value3(&p));
    }

    #[test]
    fn value3_agrees_with_classical_on_total() {
        // For total interpretations, value3 must coincide with satisfied_by.
        let rules = [
            Rule::new([a(0), a(1)], [a(2)], [a(3)]),
            Rule::integrity([a(0)], [a(1)]),
            Rule::fact([a(2)]),
        ];
        for bits in 0u32..16 {
            let m = Interpretation::from_atoms(4, (0..4).filter(|&i| bits >> i & 1 == 1).map(a));
            let p = PartialInterpretation::from_total(&m);
            for r in &rules {
                assert_eq!(r.satisfied_by(&m), r.value3(&p), "rule {r:?} model {m:?}");
            }
        }
    }
}
