//! Randomized tests for the concrete syntax: the parser must never panic,
//! and display ∘ parse must be a semantic identity.
//!
//! These were formerly `proptest` properties; they now run on the in-repo
//! deterministic PRNG so the suite needs no external crates. Each test
//! draws a fixed number of cases from seeded streams, so failures are
//! reproducible from the loop index alone.

use ddb_logic::parse::{display_database, display_formula, parse_formula, parse_program};
use ddb_logic::rng::XorShift64Star;
use ddb_logic::{Atom, Database, Formula, Interpretation, Rule, Symbols};

/// A random string mixing arbitrary unicode scalars with grammar-adjacent
/// ASCII, to reach deep parser states.
fn random_string(rng: &mut XorShift64Star) -> String {
    let len = rng.gen_range(0, 60);
    (0..len)
        .map(|_| match rng.gen_range(0, 4) {
            0 => *rng.choose(&[
                '.', ',', '|', ':', '-', '~', '(', ')', ' ', '\n', '\t', '"', '\\',
            ]),
            1 => (b'a' + rng.gen_range(0, 26) as u8) as char,
            2 => char::from_u32(rng.gen_range(1, 0xD7FF) as u32).unwrap_or('x'),
            _ => rng.gen_range(0, 0x80) as u8 as char,
        })
        .collect()
}

/// Arbitrary input never panics the program parser.
#[test]
fn program_parser_total() {
    let mut rng = XorShift64Star::seed_from_u64(0xA11CE);
    for _ in 0..400 {
        let input = random_string(&mut rng);
        let _ = parse_program(&input);
    }
}

/// Arbitrary token soup (drawn from the grammar's alphabet) never panics
/// either — this exercises deeper parser states than fully random bytes.
#[test]
fn program_parser_total_on_token_soup() {
    const TOKENS: [&str; 8] = [".", ",", "|", ":-", "not", "~", "(", ")"];
    let mut rng = XorShift64Star::seed_from_u64(0x50FA);
    for _ in 0..400 {
        let n = rng.gen_range(0, 30);
        let toks: Vec<String> = (0..n)
            .map(|_| {
                if rng.gen_bool(8.0 / 9.0) {
                    (*rng.choose(&TOKENS)).to_owned()
                } else {
                    // A short identifier over {a, b, c}.
                    (0..rng.gen_range_inclusive(1, 2))
                        .map(|_| (b'a' + rng.gen_range(0, 3) as u8) as char)
                        .collect()
                }
            })
            .collect();
        let _ = parse_program(&toks.join(" "));
    }
}

/// Arbitrary input never panics the formula parser.
#[test]
fn formula_parser_total() {
    let mut rng = XorShift64Star::seed_from_u64(0xF0121);
    for _ in 0..400 {
        let input = random_string(&mut rng);
        let symbols = Symbols::fresh(3);
        let _ = parse_formula(&input, &symbols);
    }
}

/// Random rule over 5 named atoms; `None` when all three parts came up
/// empty (not a clause).
fn random_rule(rng: &mut XorShift64Star) -> Option<Rule> {
    let part = |rng: &mut XorShift64Star| -> Vec<u32> {
        (0..rng.gen_range_inclusive(0, 2))
            .map(|_| rng.gen_range(0, 5) as u32)
            .collect()
    };
    let (h, bp, bn) = (part(rng), part(rng), part(rng));
    if h.is_empty() && bp.is_empty() && bn.is_empty() {
        return None;
    }
    Some(Rule::new(
        h.into_iter().map(Atom::new),
        bp.into_iter().map(Atom::new),
        bn.into_iter().map(Atom::new),
    ))
}

/// display ∘ parse is the identity on databases (up to the vocabulary
/// renaming induced by first-occurrence interning, which we normalize by
/// comparing rendered text fixpoints and model sets).
#[test]
fn database_display_parse_roundtrip() {
    let mut rng = XorShift64Star::seed_from_u64(0xDB0B);
    for case in 0..200 {
        let mut db = Database::with_fresh_atoms(5);
        let want = rng.gen_range_inclusive(1, 7);
        let mut added = 0;
        while added < want {
            if let Some(r) = random_rule(&mut rng) {
                db.add_rule(r);
                added += 1;
            }
        }
        let text = display_database(&db);
        let db2 = parse_program(&text).expect("rendered text parses");
        // After one re-interning round the rendered text is a fixpoint
        // (the first round may permute atom indices, which reorders the
        // sorted-by-index disjunctions).
        let text2 = display_database(&db2);
        let db3 = parse_program(&text2).expect("re-rendered text parses");
        assert_eq!(display_database(&db3), text2, "case {case}");
        // Same satisfaction behaviour under the name correspondence:
        // db2's atom k corresponds to the name it carries; build the
        // mapping and compare models brute-force.
        let n = db.num_atoms();
        let map: Vec<Option<Atom>> = (0..db2.num_atoms())
            .map(|k| db.symbols().lookup(db2.symbols().name(Atom::new(k as u32))))
            .collect();
        for bits in 0u32..1 << n {
            let m1 = Interpretation::from_atoms(
                n,
                (0..n as u32).filter(|&i| bits >> i & 1 == 1).map(Atom::new),
            );
            let mut m2 = Interpretation::empty(db2.num_atoms());
            for (k, &mapped) in map.iter().enumerate() {
                if let Some(orig) = mapped {
                    if m1.contains(orig) {
                        m2.insert(Atom::new(k as u32));
                    }
                }
            }
            assert_eq!(db.satisfied_by(&m1), db2.satisfied_by(&m2), "case {case}");
        }
    }
}

/// Random formula over 4 atoms with bounded connective depth.
fn random_formula(rng: &mut XorShift64Star, depth: usize) -> Formula {
    if depth == 0 || rng.gen_bool(0.25) {
        return match rng.gen_range(0, 6) {
            0..=3 => Formula::Atom(Atom::new(rng.gen_range(0, 4) as u32)),
            4 => Formula::True,
            _ => Formula::False,
        };
    }
    match rng.gen_range(0, 5) {
        0 => random_formula(rng, depth - 1).negated(),
        1 => Formula::And(
            (0..rng.gen_range_inclusive(1, 2))
                .map(|_| random_formula(rng, depth - 1))
                .collect(),
        ),
        2 => Formula::Or(
            (0..rng.gen_range_inclusive(1, 2))
                .map(|_| random_formula(rng, depth - 1))
                .collect(),
        ),
        3 => random_formula(rng, depth - 1).implies(random_formula(rng, depth - 1)),
        _ => random_formula(rng, depth - 1).iff(random_formula(rng, depth - 1)),
    }
}

/// display ∘ parse preserves formula semantics exactly.
#[test]
fn formula_display_parse_roundtrip() {
    let mut rng = XorShift64Star::seed_from_u64(0x4E57);
    for case in 0..200 {
        let f = random_formula(&mut rng, 4);
        let symbols = Symbols::fresh(4);
        let text = display_formula(&f, &symbols);
        let f2 = parse_formula(&text, &symbols).expect("rendered formula parses");
        for bits in 0u32..16 {
            let m = Interpretation::from_atoms(
                4,
                (0..4u32).filter(|&i| bits >> i & 1 == 1).map(Atom::new),
            );
            assert_eq!(f.eval(&m), f2.eval(&m), "case {case}, text: {text}");
        }
    }
}

/// NNF conversion preserves semantics on random formulas.
#[test]
fn nnf_preserves_semantics() {
    let mut rng = XorShift64Star::seed_from_u64(0x22F);
    for case in 0..200 {
        let f = random_formula(&mut rng, 4);
        let g = f.to_nnf();
        for bits in 0u32..16 {
            let m = Interpretation::from_atoms(
                4,
                (0..4u32).filter(|&i| bits >> i & 1 == 1).map(Atom::new),
            );
            assert_eq!(f.eval(&m), g.eval(&m), "case {case}");
        }
    }
}

/// Simplification preserves semantics, never grows the formula, and is
/// idempotent.
#[test]
fn simplify_preserves_semantics() {
    let mut rng = XorShift64Star::seed_from_u64(0x51289);
    for case in 0..200 {
        let f = random_formula(&mut rng, 4);
        let g = f.simplify();
        assert!(g.size() <= f.size(), "case {case}");
        assert_eq!(g.simplify(), g.clone(), "case {case}");
        for bits in 0u32..16 {
            let m = Interpretation::from_atoms(
                4,
                (0..4u32).filter(|&i| bits >> i & 1 == 1).map(Atom::new),
            );
            assert_eq!(f.eval(&m), g.eval(&m), "case {case}");
        }
    }
}
