//! Property tests for the concrete syntax: the parser must never panic,
//! and display ∘ parse must be a semantic identity.

use ddb_logic::parse::{display_database, display_formula, parse_formula, parse_program};
use ddb_logic::{Atom, Database, Formula, Interpretation, Rule, Symbols};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Arbitrary input never panics the program parser.
    #[test]
    fn program_parser_total(input in "\\PC*") {
        let _ = parse_program(&input);
    }

    /// Arbitrary token soup (drawn from the grammar's alphabet) never
    /// panics either — this exercises deeper parser states than fully
    /// random bytes.
    #[test]
    fn program_parser_total_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just(".".to_owned()),
                Just(",".to_owned()),
                Just("|".to_owned()),
                Just(":-".to_owned()),
                Just("not".to_owned()),
                Just("~".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                "[a-c]{1,2}".prop_map(|s| s),
            ],
            0..30
        )
    ) {
        let _ = parse_program(&toks.join(" "));
    }

    /// Arbitrary input never panics the formula parser.
    #[test]
    fn formula_parser_total(input in "\\PC*") {
        let symbols = Symbols::fresh(3);
        let _ = parse_formula(&input, &symbols);
    }
}

/// Random rule over 5 named atoms.
fn arb_rule() -> impl Strategy<Value = Rule> {
    let atoms = proptest::collection::vec(0u32..5, 0..=2);
    (atoms.clone(), atoms.clone(), atoms).prop_filter_map("nonempty clause", |(h, bp, bn)| {
        if h.is_empty() && bp.is_empty() && bn.is_empty() {
            return None;
        }
        Some(Rule::new(
            h.into_iter().map(Atom::new),
            bp.into_iter().map(Atom::new),
            bn.into_iter().map(Atom::new),
        ))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// display ∘ parse is the identity on databases (up to the vocabulary
    /// renaming induced by first-occurrence interning, which we normalize
    /// by comparing rendered text fixpoints and model sets).
    #[test]
    fn database_display_parse_roundtrip(rules in proptest::collection::vec(arb_rule(), 1..8)) {
        let mut db = Database::with_fresh_atoms(5);
        for r in rules {
            db.add_rule(r);
        }
        let text = display_database(&db);
        let db2 = parse_program(&text).expect("rendered text parses");
        // After one re-interning round the rendered text is a fixpoint
        // (the first round may permute atom indices, which reorders the
        // sorted-by-index disjunctions).
        let text2 = display_database(&db2);
        let db3 = parse_program(&text2).expect("re-rendered text parses");
        prop_assert_eq!(display_database(&db3), text2);
        // Same satisfaction behaviour under the name correspondence:
        // db2's atom k corresponds to the name it carries; build the
        // mapping and compare models brute-force.
        let n = db.num_atoms();
        let map: Vec<Option<Atom>> = (0..db2.num_atoms())
            .map(|k| db.symbols().lookup(db2.symbols().name(Atom::new(k as u32))))
            .collect();
        for bits in 0u32..1 << n {
            let m1 = Interpretation::from_atoms(
                n,
                (0..n as u32).filter(|&i| bits >> i & 1 == 1).map(Atom::new),
            );
            let mut m2 = Interpretation::empty(db2.num_atoms());
            for k in 0..db2.num_atoms() {
                if let Some(orig) = map[k] {
                    if m1.contains(orig) {
                        m2.insert(Atom::new(k as u32));
                    }
                }
            }
            prop_assert_eq!(db.satisfied_by(&m1), db2.satisfied_by(&m2));
        }
    }
}

/// Random formula over 4 atoms.
fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (0u32..4).prop_map(|i| Formula::Atom(Atom::new(i))),
        Just(Formula::True),
        Just(Formula::False),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.negated()),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Formula::And),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Formula::Or),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.iff(b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// display ∘ parse preserves formula semantics exactly.
    #[test]
    fn formula_display_parse_roundtrip(f in arb_formula()) {
        let symbols = Symbols::fresh(4);
        let text = display_formula(&f, &symbols);
        let f2 = parse_formula(&text, &symbols).expect("rendered formula parses");
        for bits in 0u32..16 {
            let m = Interpretation::from_atoms(
                4,
                (0..4u32).filter(|&i| bits >> i & 1 == 1).map(Atom::new),
            );
            prop_assert_eq!(f.eval(&m), f2.eval(&m), "text: {}", text);
        }
    }

    /// NNF conversion preserves semantics on random formulas.
    #[test]
    fn nnf_preserves_semantics(f in arb_formula()) {
        let g = f.to_nnf();
        for bits in 0u32..16 {
            let m = Interpretation::from_atoms(
                4,
                (0..4u32).filter(|&i| bits >> i & 1 == 1).map(Atom::new),
            );
            prop_assert_eq!(f.eval(&m), g.eval(&m));
        }
    }

    /// Simplification preserves semantics, never grows the formula, and
    /// is idempotent.
    #[test]
    fn simplify_preserves_semantics(f in arb_formula()) {
        let g = f.simplify();
        prop_assert!(g.size() <= f.size());
        prop_assert_eq!(g.simplify(), g.clone());
        for bits in 0u32..16 {
            let m = Interpretation::from_atoms(
                4,
                (0..4u32).filter(|&i| bits >> i & 1 == 1).map(Atom::new),
            );
            prop_assert_eq!(f.eval(&m), g.eval(&m));
        }
    }
}
