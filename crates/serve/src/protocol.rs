//! The wire protocol: newline-framed JSON over [`ddb_obs::json`].
//!
//! One request per line, one response line per request, in order. A frame
//! is a JSON object; the grammar is documented in `docs/SERVING.md`:
//!
//! ```text
//! {"op":"query","db":"vase","semantics":"gcwa","formula":"-treat",
//!  "id":1,"limits":{"timeout_ms":500,"max_oracle_calls":100}}
//! ```
//!
//! Every rejection is *typed* — the [`ErrorKind`] taxonomy maps onto the
//! CLI's exit-code contract (`parse`/`usage` ↔ exit 4, `resource` ↔ exit
//! 3) plus the server-only kinds `overloaded` (load shed; carries a
//! `retry_after_ms` hint) and `internal` (a caught panic: the connection
//! gets an answer and the process stays up). No client input path may
//! panic the server; the seeded wire fuzz test pins that.

use ddb_obs::json::{self, Json};
use ddb_obs::Budget;
use std::fmt;
use std::time::Duration;

/// The structured wire error taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The frame is not a JSON object (malformed JSON, not an object,
    /// or over the frame-size/framing limits the reader enforces).
    Parse,
    /// The frame is well-formed but the request is invalid: unknown op,
    /// unknown database or semantics, missing or ill-typed fields.
    Usage,
    /// A server-side resource bound other than the query budget: frame
    /// read timeout, or the server draining for shutdown. (A *query*
    /// budget trip is not an error — the query completes gracefully with
    /// an `unknown` answer and the tripped resource.)
    Resource,
    /// Load shed: admission queues are full. Carries a
    /// `retry_after_ms` hint; the request was not started.
    Overloaded,
    /// A caught panic inside request handling. The server stays up.
    Internal,
}

impl ErrorKind {
    /// The wire label (`"parse"`, `"usage"`, …).
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Usage => "usage",
            ErrorKind::Resource => "resource",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Internal => "internal",
        }
    }

    /// The CLI exit code a one-shot client (`ddb call`) maps this kind
    /// to: `parse`/`usage`/`internal` are exit 4 (the CLI's usage/parse
    /// contract), `resource`/`overloaded` are exit 3 (retryable — the
    /// work was bounded away, not wrong).
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorKind::Parse | ErrorKind::Usage | ErrorKind::Internal => 4,
            ErrorKind::Resource | ErrorKind::Overloaded => 3,
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A typed wire-level error response body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Taxonomy kind.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub message: String,
    /// `Retry-After`-style hint in milliseconds (overload shedding).
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// A `parse` error.
    pub fn parse(message: impl Into<String>) -> Self {
        WireError {
            kind: ErrorKind::Parse,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// A `usage` error.
    pub fn usage(message: impl Into<String>) -> Self {
        WireError {
            kind: ErrorKind::Usage,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// A `resource` error.
    pub fn resource(message: impl Into<String>) -> Self {
        WireError {
            kind: ErrorKind::Resource,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// An `overloaded` (load-shed) error with a retry hint.
    pub fn overloaded(message: impl Into<String>, retry_after_ms: u64) -> Self {
        WireError {
            kind: ErrorKind::Overloaded,
            message: message.into(),
            retry_after_ms: Some(retry_after_ms),
        }
    }

    /// An `internal` error (caught panic).
    pub fn internal(message: impl Into<String>) -> Self {
        WireError {
            kind: ErrorKind::Internal,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Renders the error body as the wire `"error"` object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("kind", Json::Str(self.kind.label().to_owned())),
            ("message", Json::Str(self.message.clone())),
        ];
        if let Some(ms) = self.retry_after_ms {
            fields.push(("retry_after_ms", Json::UInt(ms)));
        }
        Json::obj(fields)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

/// A rejected frame: the typed error plus the request `id` when the
/// frame was well-formed enough to carry one (so the response can still
/// be correlated by the client).
#[derive(Clone, Debug)]
pub struct RequestError {
    /// Echoed request id, when recoverable.
    pub id: Option<Json>,
    /// The typed rejection.
    pub error: WireError,
}

impl RequestError {
    fn bare(error: WireError) -> Self {
        RequestError { id: None, error }
    }
}

/// Request operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Liveness probe.
    Ping,
    /// List the named databases.
    Catalog,
    /// Observability snapshot: counters, histograms, uptime, sessions.
    Stats,
    /// Cautious (or brave) formula/literal inference.
    Query,
    /// Enumerate characteristic models.
    Models,
    /// The paper's model-existence problem.
    Exists,
    /// Ground a new database into the catalog (runs under the request
    /// budget — grounding is checkpointed).
    Load,
    /// Cooperatively cancel in-flight requests by their client id.
    Cancel,
    /// Graceful shutdown: stop accepting, trip in-flight budgets, drain.
    Shutdown,
}

impl Op {
    /// Parses a wire op name.
    pub fn from_name(name: &str) -> Option<Op> {
        Some(match name {
            "ping" => Op::Ping,
            "catalog" => Op::Catalog,
            "stats" => Op::Stats,
            "query" => Op::Query,
            "models" => Op::Models,
            "exists" => Op::Exists,
            "load" => Op::Load,
            "cancel" => Op::Cancel,
            "shutdown" => Op::Shutdown,
            _ => return None,
        })
    }

    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Catalog => "catalog",
            Op::Stats => "stats",
            Op::Query => "query",
            Op::Models => "models",
            Op::Exists => "exists",
            Op::Load => "load",
            Op::Cancel => "cancel",
            Op::Shutdown => "shutdown",
        }
    }
}

/// Client-declared resource limits, all optional. The effective budget of
/// a request is the server's defaults ∩ these limits ([`Budget::intersect`]):
/// clients can narrow the operator's bounds, never widen them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Limits {
    /// Wall-clock deadline, relative, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// NP-oracle (SAT solve) call cap.
    pub max_oracle_calls: Option<u64>,
    /// SAT conflict cap.
    pub max_conflicts: Option<u64>,
    /// Enumerated-model cap.
    pub max_models: Option<u64>,
    /// Deterministic fault injection at checkpoint index `n`.
    pub fail_after: Option<u64>,
}

impl Limits {
    /// The limits as a [`Budget`] (no cancel flag attached).
    pub fn to_budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(ms) = self.timeout_ms {
            b = b.with_timeout(Duration::from_millis(ms));
        }
        if let Some(n) = self.max_oracle_calls {
            b = b.with_max_oracle_calls(n);
        }
        if let Some(n) = self.max_conflicts {
            b = b.with_max_conflicts(n);
        }
        if let Some(n) = self.max_models {
            b = b.with_max_models(n);
        }
        if let Some(n) = self.fail_after {
            b = b.fail_after(n);
        }
        b
    }
}

/// One parsed request frame.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client correlation id (echoed verbatim; string or number).
    pub id: Option<Json>,
    /// The operation.
    pub op: Op,
    /// Catalog database name (`query`/`models`/`exists`/`load`).
    pub db: Option<String>,
    /// Semantics name, CLI spelling (`gcwa` … `pdsm`).
    pub semantics: Option<String>,
    /// Query formula source.
    pub formula: Option<String>,
    /// Query literal (`atom` or `-atom`), alternative to `formula`.
    pub literal: Option<String>,
    /// Brave instead of cautious inference.
    pub brave: bool,
    /// Worker-pool width for component-parallel evaluation (clamped by
    /// the server's configured maximum).
    pub threads: Option<usize>,
    /// Client resource limits.
    pub limits: Limits,
    /// `cancel`: the target request id (rendered form).
    pub target: Option<String>,
    /// `load`: program source text.
    pub source: Option<String>,
    /// `load`: force (`true`) or suppress (`false`) Datalog∨ parsing;
    /// absent means auto-detect.
    pub datalog: Option<bool>,
    /// `load`: explicitly allow replacing an existing (client-loaded)
    /// catalog entry. Operator-preloaded entries are never replaceable.
    pub overwrite: bool,
    /// CCWA/ECWA partition: atoms to minimize (P).
    pub partition_p: Vec<String>,
    /// CCWA/ECWA partition: fixed atoms (Q).
    pub partition_q: Vec<String>,
}

impl Request {
    /// The id in rendered form (registry key for cancellation).
    pub fn id_key(&self) -> Option<String> {
        self.id.as_ref().map(render_id)
    }
}

/// Canonical rendering of a request id for registry lookups: strings
/// render unquoted so `"id":"a"` and a `cancel` with `"target":"a"`
/// agree; everything else renders as its JSON text.
pub fn render_id(id: &Json) -> String {
    match id {
        Json::Str(s) => s.clone(),
        other => other.render(),
    }
}

fn field_str(obj: &Json, key: &str) -> Result<Option<String>, WireError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(WireError::usage(format!("field `{key}` must be a string"))),
    }
}

fn field_u64(obj: &Json, key: &str) -> Result<Option<u64>, WireError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| WireError::usage(format!("field `{key}` must be an unsigned integer"))),
    }
}

fn field_bool(obj: &Json, key: &str) -> Result<Option<bool>, WireError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(WireError::usage(format!("field `{key}` must be a boolean"))),
    }
}

fn field_names(obj: &Json, key: &str) -> Result<Vec<String>, WireError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| match v {
                Json::Str(s) => Ok(s.clone()),
                _ => Err(WireError::usage(format!(
                    "field `{key}` must be an array of atom names"
                ))),
            })
            .collect(),
        Some(_) => Err(WireError::usage(format!(
            "field `{key}` must be an array of atom names"
        ))),
    }
}

/// Parses one frame line into a [`Request`].
///
/// Malformed JSON (or a non-object frame) is a `parse` error; a
/// well-formed object with an unknown op or ill-typed fields is a
/// `usage` error carrying the frame's `id` when one was present. This
/// function never panics on any input — the seeded wire-fuzz test
/// (`tests/wire_fuzz.rs`) sweeps mutated frames through it.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let value =
        json::parse(line).map_err(|e| RequestError::bare(WireError::parse(e.to_string())))?;
    if !matches!(value, Json::Obj(_)) {
        return Err(RequestError::bare(WireError::parse(
            "frame must be a JSON object",
        )));
    }
    let id = value
        .get("id")
        .cloned()
        .filter(|v| !matches!(v, Json::Null));
    let fail = |error: WireError| RequestError {
        id: id.clone(),
        error,
    };
    let op_name = field_str(&value, "op")
        .map_err(&fail)?
        .ok_or_else(|| fail(WireError::usage("missing field `op`")))?;
    let op = Op::from_name(&op_name)
        .ok_or_else(|| fail(WireError::usage(format!("unknown op `{op_name}`"))))?;
    let limits = match value.get("limits") {
        None | Some(Json::Null) => Limits::default(),
        Some(l @ Json::Obj(_)) => Limits {
            timeout_ms: field_u64(l, "timeout_ms").map_err(&fail)?,
            max_oracle_calls: field_u64(l, "max_oracle_calls").map_err(&fail)?,
            max_conflicts: field_u64(l, "max_conflicts").map_err(&fail)?,
            max_models: field_u64(l, "max_models").map_err(&fail)?,
            fail_after: field_u64(l, "fail_after").map_err(&fail)?,
        },
        Some(_) => return Err(fail(WireError::usage("field `limits` must be an object"))),
    };
    let threads = match field_u64(&value, "threads").map_err(&fail)? {
        None => None,
        Some(0) => return Err(fail(WireError::usage("field `threads` must be positive"))),
        Some(n) => Some(usize::try_from(n).unwrap_or(usize::MAX)),
    };
    let target = match value.get("target") {
        None | Some(Json::Null) => None,
        Some(v) => Some(render_id(v)),
    };
    let db = field_str(&value, "db").map_err(&fail)?;
    let semantics = field_str(&value, "semantics").map_err(&fail)?;
    let formula = field_str(&value, "formula").map_err(&fail)?;
    let literal = field_str(&value, "literal").map_err(&fail)?;
    let brave = field_bool(&value, "brave").map_err(&fail)?.unwrap_or(false);
    let source = field_str(&value, "source").map_err(&fail)?;
    let datalog = field_bool(&value, "datalog").map_err(&fail)?;
    let overwrite = field_bool(&value, "overwrite")
        .map_err(&fail)?
        .unwrap_or(false);
    let partition_p = field_names(&value, "partition_p").map_err(&fail)?;
    let partition_q = field_names(&value, "partition_q").map_err(&fail)?;
    Ok(Request {
        id,
        op,
        db,
        semantics,
        formula,
        literal,
        brave,
        threads,
        limits,
        target,
        source,
        datalog,
        overwrite,
        partition_p,
        partition_q,
    })
}

/// Renders a success frame: `{"id":…,"ok":true,…fields}`.
pub fn ok_frame(id: Option<&Json>, fields: Vec<(&str, Json)>) -> String {
    let mut all = vec![
        ("id", id.cloned().unwrap_or(Json::Null)),
        ("ok", Json::Bool(true)),
    ];
    all.extend(fields);
    Json::obj(all).render()
}

/// Renders an error frame: `{"id":…,"ok":false,"error":{…}}`.
pub fn error_frame(id: Option<&Json>, error: &WireError) -> String {
    Json::obj([
        ("id", id.cloned().unwrap_or(Json::Null)),
        ("ok", Json::Bool(false)),
        ("error", error.to_json()),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_query_frame() {
        let req = parse_request(
            r#"{"id":7,"op":"query","db":"vase","semantics":"gcwa","formula":"-treat",
                "brave":false,"threads":2,
                "limits":{"timeout_ms":500,"max_oracle_calls":10,"fail_after":3}}"#,
        )
        .unwrap();
        assert_eq!(req.op, Op::Query);
        assert_eq!(req.db.as_deref(), Some("vase"));
        assert_eq!(req.semantics.as_deref(), Some("gcwa"));
        assert_eq!(req.formula.as_deref(), Some("-treat"));
        assert_eq!(req.threads, Some(2));
        assert_eq!(req.limits.timeout_ms, Some(500));
        assert_eq!(req.limits.max_oracle_calls, Some(10));
        assert_eq!(req.limits.fail_after, Some(3));
        assert_eq!(req.id_key().as_deref(), Some("7"));
    }

    #[test]
    fn garbage_is_a_parse_error() {
        let err = parse_request("{nope").unwrap_err();
        assert_eq!(err.error.kind, ErrorKind::Parse);
        let err = parse_request("[1,2]").unwrap_err();
        assert_eq!(err.error.kind, ErrorKind::Parse);
    }

    #[test]
    fn unknown_op_is_usage_and_keeps_the_id() {
        let err = parse_request(r#"{"id":"x","op":"frobnicate"}"#).unwrap_err();
        assert_eq!(err.error.kind, ErrorKind::Usage);
        assert_eq!(err.id.as_ref().map(render_id).as_deref(), Some("x"));
    }

    #[test]
    fn ill_typed_fields_are_usage_errors() {
        for frame in [
            r#"{"op":5}"#,
            r#"{"op":"query","db":7}"#,
            r#"{"op":"query","limits":{"timeout_ms":"soon"}}"#,
            r#"{"op":"query","threads":0}"#,
            r#"{"op":"query","brave":"very"}"#,
            r#"{"op":"query","partition_p":[1]}"#,
        ] {
            let err = parse_request(frame).unwrap_err();
            assert_eq!(err.error.kind, ErrorKind::Usage, "{frame}");
        }
    }

    #[test]
    fn string_and_numeric_ids_share_a_key_space_with_targets() {
        let req = parse_request(r#"{"op":"cancel","target":"job-1"}"#).unwrap();
        assert_eq!(req.target.as_deref(), Some("job-1"));
        let req = parse_request(r#"{"op":"query","id":"job-1"}"#).unwrap();
        assert_eq!(req.id_key().as_deref(), Some("job-1"));
    }

    #[test]
    fn frames_render_and_roundtrip() {
        let line = ok_frame(
            Some(&Json::UInt(3)),
            vec![("answer", Json::Str("pong".into()))],
        );
        let back = json::parse(&line).unwrap();
        assert_eq!(back.get("ok"), Some(&Json::Bool(true)));
        let line = error_frame(None, &WireError::overloaded("queue full", 250));
        let back = json::parse(&line).unwrap();
        let err = back.get("error").unwrap();
        assert_eq!(err.get("kind").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(err.get("retry_after_ms").and_then(Json::as_u64), Some(250));
    }
}
