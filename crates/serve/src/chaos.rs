//! The chaos harness: a hostile-but-honest client that attacks a running
//! server the way the field does — malformed frames, oversized payloads,
//! half-closed sockets, mid-request disconnects, concurrent cancellation,
//! and a deterministic `fail_after` fault-injection sweep over every
//! budget checkpoint — and asserts the robustness contract after each
//! attack: the server stays up, answers stay byte-identical to the
//! baseline, and every rejection is a typed wire error, never a panic or
//! a hang.
//!
//! The harness is a library (driven by `ddb chaos` and the integration
//! tests) so CI and local runs share one attack corpus. All randomness
//! is a seeded `XorShift64Star`: a failure report names the seed and
//! round that found it, and re-running reproduces it exactly.

use ddb_logic::rng::XorShift64Star;
use ddb_obs::json::{self, Json};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// JSON-structure tokens the frame mutator splices in; newline is
/// deliberately absent so one mutant stays one frame.
const TOKENS: &[&str] = &[
    "{", "}", "\"", ":", ",", "[", "]", "null", "true", "false", "-1", "1e309", "\\u0000", "\\",
    "op", "\u{00e9}", " ",
];

/// What to attack and how hard.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Malformed-frame rounds (mutants per seed frame).
    pub rounds: u64,
    /// RNG seed; every failure message names it.
    pub seed: u64,
    /// Database to query; default: first catalog entry.
    pub db: Option<String>,
    /// Query formula; default: the database's first sample atom.
    pub formula: Option<String>,
    /// Upper bound for the `fail_after` sweep.
    pub fail_after_max: u64,
    /// Client-side receive timeout — a server that stops answering
    /// within this is a failed check, not a hang.
    pub recv_timeout: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            addr: String::new(),
            rounds: 200,
            seed: 0xC0A5_0001,
            db: None,
            formula: None,
            fail_after_max: 64,
            recv_timeout: Duration::from_secs(10),
        }
    }
}

/// All ten paper semantics, in the CLI's canonical order.
pub const ALL_SEMANTICS: &[&str] = &[
    "gcwa", "egcwa", "ccwa", "ecwa", "ddr", "pws", "perf", "icwa", "dsm", "pdsm",
];

/// Outcome of a chaos run.
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Individual assertions that ran.
    pub checks: u64,
    /// Human-readable failures; empty means the contract held.
    pub failures: Vec<String>,
}

impl ChaosReport {
    /// Whether every check passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-paragraph summary (plus one line per failure).
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos: {} check(s), {} failure(s)\n",
            self.checks,
            self.failures.len()
        );
        for f in &self.failures {
            out.push_str("  FAIL: ");
            out.push_str(f);
            out.push('\n');
        }
        out
    }

    fn check(&mut self, ok: bool, what: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.failures.push(what());
        }
    }
}

/// A blocking newline-framed client with a receive timeout.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    timeout: Duration,
}

impl Client {
    /// Connects with the given receive timeout.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(|e| e.to_string())?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            buf: Vec::new(),
            timeout,
        })
    }

    /// Sends one frame (a newline is appended).
    pub fn send_line(&mut self, line: &str) -> Result<(), String> {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))
    }

    /// Sends raw bytes with no newline — for injecting partial frames.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.stream
            .write_all(bytes)
            .map_err(|e| format!("send: {e}"))
    }

    /// Receives one frame, or `Err` on close/timeout.
    pub fn recv_line(&mut self) -> Result<String, String> {
        let deadline = Instant::now() + self.timeout;
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return Ok(String::from_utf8_lossy(&line[..line.len() - 1]).into_owned());
            }
            if Instant::now() > deadline {
                return Err("recv: timed out".to_owned());
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err("recv: connection closed".to_owned()),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut
                        || e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("recv: {e}")),
            }
        }
    }

    /// Sends a frame and parses the one-line response as JSON.
    pub fn call(&mut self, line: &str) -> Result<Json, String> {
        self.send_line(line)?;
        let response = self.recv_line()?;
        json::parse(&response).map_err(|e| format!("response is not JSON ({e}): {response}"))
    }

    /// Half-closes the write side (the server must still answer what it
    /// already read).
    pub fn shutdown_write(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
    }
}

/// Builds a canonical query frame.
pub fn query_frame(
    id: &str,
    db: &str,
    semantics: &str,
    formula: &str,
    fail_after: Option<u64>,
) -> String {
    let mut fields = vec![
        ("id", Json::Str(id.to_owned())),
        ("op", Json::Str("query".to_owned())),
        ("db", Json::Str(db.to_owned())),
        ("semantics", Json::Str(semantics.to_owned())),
        ("formula", Json::Str(formula.to_owned())),
    ];
    if let Some(k) = fail_after {
        fields.push(("limits", Json::obj([("fail_after", Json::UInt(k))])));
    }
    Json::obj(fields).render()
}

fn get_str(doc: &Json, key: &str) -> Option<String> {
    doc.get(key).and_then(Json::as_str).map(str::to_owned)
}

fn is_ok(doc: &Json) -> bool {
    doc.get("ok").and_then(Json::as_bool) == Some(true)
}

fn error_kind(doc: &Json) -> Option<String> {
    doc.get("error").and_then(|e| get_str(e, "kind"))
}

/// Mutates a valid frame into hostile input. Newlines and control bytes
/// are scrubbed so the mutant stays a single frame.
fn mutate_frame(rng: &mut XorShift64Star, seed: &str) -> String {
    let mut bytes = seed.as_bytes().to_vec();
    for _ in 0..=rng.gen_range(0, 4) {
        match rng.gen_range(0, 5) {
            0 if !bytes.is_empty() => {
                let i = rng.gen_range(0, bytes.len());
                bytes[i] = (rng.next_u64() & 0xFF) as u8;
            }
            1 if !bytes.is_empty() => {
                bytes.truncate(rng.gen_range(0, bytes.len()));
            }
            2 if !bytes.is_empty() => {
                let i = rng.gen_range(0, bytes.len());
                let j = rng.gen_range_inclusive(i, bytes.len());
                let slice = bytes[i..j].to_vec();
                bytes.extend_from_slice(&slice);
            }
            3 => {
                let tok = TOKENS[rng.gen_range(0, TOKENS.len())].as_bytes();
                let i = rng.gen_range_inclusive(0, bytes.len());
                bytes.splice(i..i, tok.iter().copied());
            }
            _ if bytes.len() >= 2 => {
                let i = rng.gen_range(0, bytes.len());
                let j = rng.gen_range(0, bytes.len());
                bytes.swap(i, j);
            }
            _ => {}
        }
    }
    String::from_utf8_lossy(&bytes)
        .chars()
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect()
}

/// Runs the full attack sequence against a live server. `Err` means the
/// harness itself could not run (e.g. nothing listening); contract
/// violations land in the report instead.
pub fn run_chaos(config: &ChaosConfig) -> Result<ChaosReport, String> {
    let mut report = ChaosReport::default();
    let connect = || Client::connect(&config.addr, config.recv_timeout);

    // Phase 0: baseline. Ping, pick a database and formula, and record
    // the answer of every semantics — the parity oracle for later phases.
    let mut c = connect()?;
    let pong = c.call(r#"{"op":"ping"}"#)?;
    if !is_ok(&pong) {
        return Err(format!("server did not answer ping: {}", pong.render()));
    }
    let catalog = c.call(r#"{"op":"catalog"}"#)?;
    let dbs = catalog
        .get("databases")
        .and_then(Json::as_arr)
        .ok_or("catalog response has no databases")?;
    let db = match &config.db {
        Some(name) => name.clone(),
        None => dbs
            .first()
            .and_then(|d| get_str(d, "db"))
            .ok_or("catalog is empty; chaos needs at least one database")?,
    };
    let formula = match &config.formula {
        Some(f) => f.clone(),
        None => dbs
            .iter()
            .find(|d| get_str(d, "db").as_deref() == Some(db.as_str()))
            .and_then(|d| d.get("sample_atoms"))
            .and_then(Json::as_arr)
            .and_then(|a| a.first())
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("database `{db}` has no atoms to query"))?,
    };
    let mut baseline: Vec<(String, String)> = Vec::new();
    for &semantics in ALL_SEMANTICS {
        let frame = query_frame("baseline", &db, semantics, &formula, None);
        let doc = c.call(&frame)?;
        report.check(is_ok(&doc), || {
            format!("baseline query under {semantics} failed: {}", doc.render())
        });
        let answer = get_str(&doc, "answer").unwrap_or_default();
        report.check(!answer.is_empty(), || {
            format!("baseline under {semantics} has no answer: {}", doc.render())
        });
        baseline.push((semantics.to_owned(), answer));
    }
    drop(c);

    // Phase 1: malformed frames. Every response must be a well-formed
    // frame with a typed parse/usage error (or a legal accept — some
    // mutants are valid), and the connection must keep answering.
    let seed_frame = query_frame("m", &db, "gcwa", &formula, None);
    let mut c = connect()?;
    let mut sent_on_conn = 0u32;
    for round in 0..config.rounds {
        let mut rng = XorShift64Star::seed_from_u64(config.seed ^ round);
        let mutant = mutate_frame(&mut rng, &seed_frame);
        if mutant.trim().is_empty() {
            continue;
        }
        match c.call(&mutant) {
            Ok(doc) => {
                let typed = is_ok(&doc)
                    || matches!(error_kind(&doc).as_deref(), Some("parse") | Some("usage"));
                report.check(typed, || {
                    format!(
                        "round {round} (seed {:#x}): untyped response {} to mutant {mutant}",
                        config.seed,
                        doc.render()
                    )
                });
                sent_on_conn += 1;
                if sent_on_conn >= 32 {
                    // Rotate connections so the idle/accounting paths are
                    // exercised too.
                    c = connect()?;
                    sent_on_conn = 0;
                }
            }
            Err(why) => {
                // A closed connection is only legal for framing
                // violations; the server must accept a replacement
                // connection immediately either way.
                report.check(why.contains("closed"), || {
                    format!(
                        "round {round} (seed {:#x}): {why} on mutant {mutant}",
                        config.seed
                    )
                });
                c = connect()?;
                sent_on_conn = 0;
            }
        }
    }
    let doc = c.call(r#"{"op":"ping"}"#)?;
    report.check(is_ok(&doc), || {
        format!(
            "server unresponsive after malformed frames: {}",
            doc.render()
        )
    });
    drop(c);

    // Phase 2: an oversized frame (no newline). The server must reject it
    // with a typed parse error or close — and keep serving others.
    {
        let mut c = connect()?;
        let blob = "x".repeat(2 << 20);
        let _ = c.stream.write_all(blob.as_bytes());
        let outcome = c.recv_line();
        let typed = match &outcome {
            Ok(line) => json::parse(line)
                .map(|doc| error_kind(&doc).as_deref() == Some("parse"))
                .unwrap_or(false),
            Err(why) => why.contains("closed"),
        };
        report.check(typed, || {
            format!("oversized frame: unexpected outcome {outcome:?}")
        });
        let mut probe = connect()?;
        let doc = probe.call(r#"{"op":"ping"}"#)?;
        report.check(is_ok(&doc), || {
            "server down after oversized frame".to_owned()
        });
    }

    // Phase 3: half-closed connection. Send a query, shut down the write
    // side; the server must still deliver the answer.
    {
        let mut c = connect()?;
        c.send_line(&query_frame("half", &db, "gcwa", &formula, None))?;
        c.shutdown_write();
        match c.recv_line() {
            Ok(line) => {
                let ok = json::parse(&line).map(|d| is_ok(&d)).unwrap_or(false);
                report.check(ok, || format!("half-close: bad response {line}"));
            }
            Err(why) => report
                .failures
                .push(format!("half-close: no answer after write shutdown: {why}")),
        }
    }

    // Phase 4: mid-request disconnects. Send a query and vanish, many
    // times; the server must shrug (no leaked sessions — asserted by the
    // drain report at shutdown) and keep answering everyone else.
    for i in 0..8 {
        let mut c = connect()?;
        let semantics = ALL_SEMANTICS[i % ALL_SEMANTICS.len()];
        c.send_line(&query_frame("gone", &db, semantics, &formula, None))?;
        drop(c);
    }
    {
        let mut probe = connect()?;
        let doc = probe.call(r#"{"op":"ping"}"#)?;
        report.check(is_ok(&doc), || "server down after disconnects".to_owned());
    }

    // Phase 5: concurrent cancellation. A query from one connection,
    // `cancel` from another. The query must answer either way —
    // completed (cancel lost the race) or `unknown` with the cancelled
    // resource — never hang, never crash.
    {
        let mut victim = connect()?;
        let mut attacker = connect()?;
        victim.send_line(&query_frame("chaos-victim", &db, "pdsm", &formula, None))?;
        let cancel = attacker.call(r#"{"op":"cancel","target":"chaos-victim"}"#)?;
        report.check(is_ok(&cancel), || {
            format!("cancel op failed: {}", cancel.render())
        });
        match victim.recv_line() {
            Ok(line) => {
                let ok = json::parse(&line)
                    .map(|d| {
                        is_ok(&d)
                            && match get_str(&d, "resource") {
                                None => true,
                                Some(r) => r == "cancelled",
                            }
                    })
                    .unwrap_or(false);
                report.check(ok, || format!("cancelled query: bad response {line}"));
            }
            Err(why) => report
                .failures
                .push(format!("cancelled query never answered: {why}")),
        }
    }

    // Phase 6: fault-injection sweep. Every `fail_after` k yields either
    // a graceful `unknown (fault injection)` or — once k exceeds the
    // query's checkpoint count — the baseline answer, byte-identical.
    {
        let gcwa_baseline = &baseline
            .iter()
            .find(|(s, _)| s == "gcwa")
            .expect("baseline covers gcwa")
            .1;
        let mut c = connect()?;
        let mut completed = false;
        for k in 0..=config.fail_after_max {
            let frame = query_frame("sweep", &db, "gcwa", &formula, Some(k));
            let doc = c.call(&frame)?;
            report.check(is_ok(&doc), || {
                format!(
                    "fail_after={k}: typed error instead of graceful degrade: {}",
                    doc.render()
                )
            });
            if !is_ok(&doc) {
                break;
            }
            let answer = get_str(&doc, "answer").unwrap_or_default();
            match get_str(&doc, "resource").as_deref() {
                Some("fault_injection") => report.check(answer == "unknown", || {
                    format!("fail_after={k}: interrupted but answer is `{answer}`")
                }),
                None => {
                    report.check(&answer == gcwa_baseline, || {
                        format!("fail_after={k}: answer `{answer}` != baseline `{gcwa_baseline}`")
                    });
                    completed = true;
                }
                Some(other) => report.check(other == "deadline", || {
                    format!("fail_after={k}: unexpected resource `{other}`")
                }),
            }
            if completed {
                break;
            }
        }
        report.check(completed, || {
            format!(
                "fail_after sweep never completed within {} checkpoints",
                config.fail_after_max
            )
        });
    }

    // Phase 7: parity after abuse. Every semantics must answer exactly as
    // it did before the attacks.
    {
        let mut c = connect()?;
        for (semantics, expected) in &baseline {
            let frame = query_frame("parity", &db, semantics, &formula, None);
            let doc = c.call(&frame)?;
            let answer = get_str(&doc, "answer").unwrap_or_default();
            report.check(&answer == expected, || {
                format!("post-chaos parity: {semantics} answered `{answer}`, baseline `{expected}`")
            });
        }
        let stats = c.call(r#"{"op":"stats"}"#)?;
        report.check(is_ok(&stats), || {
            format!("stats op failed after chaos: {}", stats.render())
        });
    }

    Ok(report)
}
