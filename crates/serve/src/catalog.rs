//! The catalog: named, pre-parsed databases a server answers queries
//! against. Entries load at startup from files (propositional `.dl` or
//! Datalog∨ `.dlv`, with the CLI's auto-detection) and can be added at
//! runtime through the `load` op — which runs under the request budget,
//! so a pathological grounding is bounded like any other query.

use ddb_ground::{ground_reduced, parse::parse_datalog, GroundingError};
use ddb_logic::parse::parse_program;
use ddb_logic::Database;
use ddb_obs::Interrupted;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Why a database failed to load.
#[derive(Debug)]
pub enum LoadError {
    /// Parse/safety/size failure — a `usage`-class rejection.
    Invalid(String),
    /// The installed budget tripped mid-grounding (the grounder is
    /// checkpointed); graceful degradation, not a wrong database.
    Interrupted(Interrupted),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Invalid(m) => f.write_str(m),
            LoadError::Interrupted(i) => write!(f, "grounding {i}"),
        }
    }
}

/// Parses (and, for Datalog∨, grounds) one program source. `datalog`
/// forces the mode; `None` auto-detects exactly like the CLI: a `(`
/// anywhere in the source means predicate atoms. `limit` bounds the
/// grounded-rule count.
pub fn load_source(
    source: &str,
    datalog: Option<bool>,
    limit: usize,
) -> Result<Database, LoadError> {
    let datalog = datalog.unwrap_or_else(|| source.contains('('));
    if datalog {
        let program = parse_datalog(source).map_err(|e| LoadError::Invalid(e.to_string()))?;
        ground_reduced(&program, limit).map_err(|e| match e {
            GroundingError::Interrupted(i) => LoadError::Interrupted(i),
            other => LoadError::Invalid(other.to_string()),
        })
    } else {
        parse_program(source).map_err(|e| LoadError::Invalid(e.to_string()))
    }
}

/// Named databases, shared across sessions.
///
/// Trust model: entries the *operator* loads at startup can be sealed
/// with [`Catalog::protect_all`]; the server then refuses wire `load`
/// requests that would replace them, so no client can silently change
/// another tenant's answers against an operator-provisioned database.
/// Client-loaded entries are replaceable only with an explicit
/// `overwrite` flag on the request.
#[derive(Default)]
pub struct Catalog {
    entries: BTreeMap<String, Arc<Database>>,
    protected: BTreeSet<String>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Loads a file into the catalog under `name`. `.dlv` files (or any
    /// source containing `(`) go through the Datalog∨ grounder.
    pub fn load_file(&mut self, name: &str, path: &str, limit: usize) -> Result<(), String> {
        let source = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let datalog = path.ends_with(".dlv") || source.contains('(');
        let db = load_source(&source, Some(datalog), limit).map_err(|e| e.to_string())?;
        self.insert(name, db);
        Ok(())
    }

    /// Inserts (or replaces) a named database.
    pub fn insert(&mut self, name: &str, db: Database) {
        self.entries.insert(name.to_owned(), Arc::new(db));
    }

    /// Seals every current entry as operator-provisioned: runtime `load`
    /// requests may no longer replace them. Called once after startup
    /// loading, before the catalog is handed to the server.
    pub fn protect_all(&mut self) {
        self.protected.extend(self.entries.keys().cloned());
    }

    /// Whether `name` is a sealed, operator-provisioned entry.
    pub fn is_protected(&self, name: &str) -> bool {
        self.protected.contains(name)
    }

    /// Whether a database with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Looks up a database by name.
    pub fn get(&self, name: &str) -> Option<Arc<Database>> {
        self.entries.get(name).cloned()
    }

    /// The catalog names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Derives a catalog name from a file path: the file stem
/// (`examples/vase.dl` → `vase`).
pub fn name_from_path(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propositional_and_datalog_sources_auto_detect() {
        let db = load_source("a | b. c :- a.", None, 1000).unwrap();
        assert_eq!(db.num_atoms(), 3);
        let db = load_source("edge(a,b). path(X,Y) :- edge(X,Y).", None, 1000).unwrap();
        assert!(db.symbols().lookup("path(a,b)").is_some());
    }

    #[test]
    fn bad_source_is_invalid_not_a_panic() {
        assert!(matches!(
            load_source("p(X) :- .", None, 1000),
            Err(LoadError::Invalid(_))
        ));
        assert!(matches!(
            load_source("p(X).", None, 1000), // unsafe: head var unbound
            Err(LoadError::Invalid(_))
        ));
    }

    #[test]
    fn protect_all_seals_current_entries_only() {
        let mut c = Catalog::new();
        c.insert("ops", load_source("x.", None, 10).unwrap());
        c.protect_all();
        c.insert("tenant", load_source("y.", None, 10).unwrap());
        assert!(c.is_protected("ops"));
        assert!(!c.is_protected("tenant"));
        assert!(c.contains("tenant"));
        assert!(!c.contains("nope"));
    }

    #[test]
    fn catalog_names_are_sorted_and_stems_derive() {
        let mut c = Catalog::new();
        c.insert("b", load_source("x.", None, 10).unwrap());
        c.insert("a", load_source("y.", None, 10).unwrap());
        assert_eq!(c.names(), vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(name_from_path("examples/vase.dl"), "vase");
    }
}
