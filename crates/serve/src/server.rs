//! The `ddb serve` daemon: a zero-dependency TCP server (std
//! `TcpListener` + threads) speaking the newline-framed JSON protocol of
//! [`crate::protocol`].
//!
//! Robustness is the design driver:
//!
//! * **Admission control** — concurrent sessions are capped
//!   ([`ServerConfig::max_sessions`]); query execution goes through a
//!   bounded gate of [`ServerConfig::workers`] permits plus
//!   [`ServerConfig::queue`] waiters. Excess load is *shed* with a typed
//!   `overloaded` response carrying a `Retry-After`-style hint — queues
//!   never grow without bound.
//! * **Budgets** — every query runs under the server's default
//!   [`Budget`] ∩ the client's declared limits, with a per-request
//!   cancel flag. Interrupted queries degrade gracefully to `unknown`
//!   with the tripped resource, mirroring the CLI's exit-3 contract.
//! * **Hostile clients** — per-connection read/write timeouts, a
//!   max-frame-size guard (slowloris, oversized payloads), and a
//!   `catch_unwind` fence per request: no client input panics the
//!   process.
//! * **Graceful shutdown** — a `shutdown` ctl request (or
//!   [`ServerHandle::shutdown`], e.g. wired to stdin-close by the CLI)
//!   stops the accept loop, trips every in-flight budget via its cancel
//!   flag, drains sessions, and reports what was served and shed.
//!
//! Query evaluation itself rides the budget-inheriting worker pool
//! (`ddb_obs::pool`) through `SemanticsConfig::with_threads`, so
//! component-parallel routes stay governed by the session's budget.

use crate::catalog::{load_source, Catalog, LoadError};
use crate::protocol::{error_frame, ok_frame, parse_request, Op, Request, WireError};
use ddb_core::{witness, SemanticsConfig, SemanticsId, Verdict};
use ddb_logic::parse::parse_formula;
use ddb_logic::{Database, Formula};
use ddb_models::{Cost, Partition};
use ddb_obs::json::Json;
use ddb_obs::{budget, Budget, Interrupted};

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tick granularity for blocking socket reads: sessions wake at least
/// this often to observe the stop flag and their frame/idle deadlines.
const TICK: Duration = Duration::from_millis(50);

/// Server tuning knobs. Defaults are conservative; the CLI maps
/// `ddb serve` flags onto these.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Cap on concurrent connections; excess connections are shed at
    /// accept time with an `overloaded` response.
    pub max_sessions: usize,
    /// Concurrent query executions (gate permits).
    pub workers: usize,
    /// Queries allowed to *wait* for a permit; beyond this the gate
    /// sheds immediately.
    pub queue: usize,
    /// Per-frame read budget: a partial frame older than this is
    /// rejected (`resource`) and the connection closed. Also bounds how
    /// long a query waits at the admission gate.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Idle connections (no partial frame) older than this are closed.
    pub idle_timeout: Duration,
    /// Maximum frame size in bytes; longer frames are rejected
    /// (`parse`) and the connection closed.
    pub max_frame_bytes: usize,
    /// `retry_after_ms` hint attached to `overloaded` responses.
    pub retry_after_ms: u64,
    /// Server-side default budget; the effective per-request budget is
    /// `defaults ∩ client limits` ([`Budget::intersect`]).
    pub defaults: Budget,
    /// Clamp for the per-request `threads` field.
    pub max_query_threads: usize,
    /// Ground-rule limit for `load` requests.
    pub grounding_limit: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_sessions: 32,
            workers: 4,
            queue: 8,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            max_frame_bytes: 1 << 20,
            retry_after_ms: 250,
            defaults: Budget::unlimited(),
            max_query_threads: 8,
            grounding_limit: 1_000_000,
        }
    }
}

/// What a drained server did over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests answered (any op, success or typed error).
    pub served: u64,
    /// Requests/connections shed with `overloaded`.
    pub shed: u64,
    /// Sessions joined during the drain.
    pub sessions_drained: usize,
    /// Sessions still registered after the drain — must be 0; a leak
    /// here is a bug the chaos tests assert against.
    pub sessions_leaked: usize,
}

impl std::fmt::Display for DrainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served {} request(s), shed {}, drained {} session(s), leaked {}",
            self.served, self.shed, self.sessions_drained, self.sessions_leaked
        )
    }
}

/// An in-flight, cancellable request.
struct Inflight {
    key: u64,
    client_id: Option<String>,
    flag: Arc<AtomicBool>,
}

struct Gate {
    running: usize,
    waiting: usize,
}

struct Shared {
    config: ServerConfig,
    catalog: RwLock<Catalog>,
    stop: AtomicBool,
    active_sessions: AtomicUsize,
    served: AtomicU64,
    shed: AtomicU64,
    gate: Mutex<Gate>,
    gate_cv: Condvar,
    inflight: Mutex<Vec<Inflight>>,
    next_key: AtomicU64,
    started: Instant,
}

impl Shared {
    fn initiate_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake gate waiters so they fail fast with a typed response…
        self.gate_cv.notify_all();
        // …and trip every in-flight budget: running queries observe the
        // cancel flag at their next checkpoint and degrade to `unknown`.
        let inflight = lock(&self.inflight);
        for entry in inflight.iter() {
            entry.flag.store(true, Ordering::SeqCst);
        }
    }
}

/// Mutex lock that shrugs off poisoning: session panics are already
/// fenced by `catch_unwind`, and every structure guarded here stays
/// valid under early exits.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The server factory.
pub struct Server;

impl Server {
    /// Binds, spawns the accept loop, and returns a handle. The handle's
    /// [`ServerHandle::join`] blocks until shutdown and returns the
    /// drain report.
    pub fn start(config: ServerConfig, catalog: Catalog) -> Result<ServerHandle, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking listener: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let shared = Arc::new(Shared {
            config,
            catalog: RwLock::new(catalog),
            stop: AtomicBool::new(false),
            active_sessions: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            gate: Mutex::new(Gate {
                running: 0,
                waiting: 0,
            }),
            gate_cv: Condvar::new(),
            inflight: Mutex::new(Vec::new()),
            next_key: AtomicU64::new(1),
            started: Instant::now(),
        });
        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = shared.clone();
        let accept_sessions = sessions.clone();
        let listener_thread = std::thread::Builder::new()
            .name("ddb-serve-accept".to_owned())
            .spawn(move || accept_loop(listener, accept_shared, accept_sessions))
            .map_err(|e| format!("spawning accept loop: {e}"))?;
        Ok(ServerHandle {
            addr,
            shared,
            listener_thread,
            sessions,
        })
    }
}

/// A running server. Dropping the handle without [`ServerHandle::join`]
/// detaches the server (it keeps running until process exit).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener_thread: JoinHandle<()>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful shutdown, exactly like the `shutdown` ctl op:
    /// stop accepting, trip in-flight budgets, let sessions drain.
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Whether shutdown has been initiated.
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// A cloneable shutdown signal that outlives the borrow of the
    /// handle — hand it to a watcher thread (the CLI's
    /// `--drain-on-stdin-close`) while [`ServerHandle::join`] blocks.
    pub fn shutdown_trigger(&self) -> ShutdownTrigger {
        ShutdownTrigger(self.shared.clone())
    }

    /// Blocks until the server has fully drained (accept loop exited,
    /// every session joined) and returns the drain report. Flushes this
    /// thread's observability buffers so `serve.*` counters are visible
    /// to the caller.
    pub fn join(self) -> DrainReport {
        let _ = self.listener_thread.join();
        let mut drained = 0usize;
        loop {
            let batch: Vec<JoinHandle<()>> = std::mem::take(&mut *lock(&self.sessions));
            if batch.is_empty() {
                break;
            }
            for handle in batch {
                let _ = handle.join();
                drained += 1;
            }
        }
        ddb_obs::flush_thread_counters();
        ddb_obs::flush_thread_histograms();
        DrainReport {
            served: self.shared.served.load(Ordering::SeqCst),
            shed: self.shared.shed.load(Ordering::SeqCst),
            sessions_drained: drained,
            sessions_leaked: self.shared.active_sessions.load(Ordering::SeqCst),
        }
    }
}

/// A detached, cloneable graceful-shutdown signal (see
/// [`ServerHandle::shutdown_trigger`]).
#[derive(Clone)]
pub struct ShutdownTrigger(Arc<Shared>);

impl ShutdownTrigger {
    /// Initiates the same drain as the `shutdown` ctl op.
    pub fn shutdown(&self) {
        self.0.initiate_shutdown();
    }
}

/// Accept loop: admission control at the connection level, then hand
/// each admitted connection its own session thread.
fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut reap_tick = 0u32;
    let mut accepted = 0u32;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Reap finished session handles on the accept path too: a
                // sustained connection flood keeps accept() hot, so the
                // idle-branch reaper below may never run, and unjoined
                // threads would otherwise accumulate their stacks exactly
                // under the hostile load the server is built to shed.
                accepted += 1;
                if accepted.is_multiple_of(64) {
                    lock(&sessions).retain(|h| !h.is_finished());
                }
                let active = shared.active_sessions.load(Ordering::SeqCst);
                if active >= shared.config.max_sessions {
                    shed_connection(&shared, stream, "session limit reached");
                    continue;
                }
                shared.active_sessions.fetch_add(1, Ordering::SeqCst);
                ddb_obs::counter_bump("serve.sessions", 1);
                ddb_obs::counter_max("serve.active.peak", (active + 1) as u64);
                ddb_obs::flush_thread_counters();
                let session_shared = shared.clone();
                match std::thread::Builder::new()
                    .name("ddb-serve-session".to_owned())
                    .spawn(move || session_loop(stream, session_shared))
                {
                    Ok(handle) => lock(&sessions).push(handle),
                    Err(_) => {
                        // Spawn failure: undo the admission; the stream
                        // drops (connection reset) — still no leak.
                        shared.active_sessions.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
                reap_tick += 1;
                if reap_tick.is_multiple_of(256) {
                    lock(&sessions).retain(|h| !h.is_finished());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Sheds a connection at accept time with a typed `overloaded` frame.
fn shed_connection(shared: &Shared, mut stream: TcpStream, why: &str) {
    shared.shed.fetch_add(1, Ordering::SeqCst);
    ddb_obs::counter_bump("serve.shed", 1);
    ddb_obs::flush_thread_counters();
    let frame = error_frame(
        None,
        &WireError::overloaded(why, shared.config.retry_after_ms),
    );
    let short = shared.config.write_timeout.min(Duration::from_millis(500));
    let _ = stream.set_write_timeout(Some(short));
    let _ = stream.write_all(frame.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// RAII session accounting: decrements `active_sessions` on every exit
/// path (including panics), so the leak check in [`DrainReport`] is
/// trustworthy.
struct SessionTicket<'a>(&'a Shared);

impl Drop for SessionTicket<'_> {
    fn drop(&mut self) {
        self.0.active_sessions.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One connection: read newline-delimited frames under the frame-size
/// and timing guards, answer each in order, close on EOF, fatal frame
/// violations, write failure, `shutdown`, or server stop.
fn session_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ticket = SessionTicket(&shared);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(TICK));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut frame_started: Option<Instant> = None;
    let mut idle_since = Instant::now();
    loop {
        // Drain complete frames already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            frame_started = None;
            idle_since = Instant::now();
            if line.trim().is_empty() {
                continue;
            }
            match handle_frame(&shared, &line, &mut stream) {
                FrameOutcome::Continue => {}
                FrameOutcome::Close => return,
            }
        }
        // Any bytes left after the drain are a partial frame (pipelined
        // tail), so the frame clock must be running — otherwise a client
        // could trickle a frame forever, bypassing the read timeout and
        // bounded only by the much longer idle timeout.
        if frame_started.is_none() && !buf.is_empty() {
            frame_started = Some(Instant::now());
        }
        if buf.len() > shared.config.max_frame_bytes {
            let err = WireError::parse(format!(
                "frame exceeds {} bytes",
                shared.config.max_frame_bytes
            ));
            ddb_obs::counter_bump("serve.errors.parse", 1);
            ddb_obs::flush_thread_counters();
            let _ = write_line(&mut stream, &error_frame(None, &err));
            return;
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF (or half-close): client is done.
            Ok(n) => {
                if frame_started.is_none() {
                    frame_started = Some(Instant::now());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if let Some(t0) = frame_started {
                    if t0.elapsed() > shared.config.read_timeout {
                        let err = WireError::resource("frame read timed out");
                        let _ = write_line(&mut stream, &error_frame(None, &err));
                        return;
                    }
                } else if idle_since.elapsed() > shared.config.idle_timeout {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

enum FrameOutcome {
    Continue,
    Close,
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

/// Parses and answers one frame. Every path writes exactly one response
/// line; a failed write (mid-request disconnect) closes the session.
fn handle_frame(shared: &Arc<Shared>, line: &str, stream: &mut TcpStream) -> FrameOutcome {
    // Root span for the request: its depth-0 exit flushes this session
    // thread's counter/histogram buffers, so `stats` stays fresh and
    // `dispatch.query.ns` samples land attributed to this request.
    let _root = ddb_obs::hist_span("serve.request", "serve.request.ns");
    ddb_obs::counter_bump("serve.requests", 1);
    shared.served.fetch_add(1, Ordering::SeqCst);
    let (response, outcome) = match parse_request(line) {
        Err(rejected) => {
            match rejected.error.kind {
                crate::protocol::ErrorKind::Parse => ddb_obs::counter_bump("serve.errors.parse", 1),
                _ => ddb_obs::counter_bump("serve.errors.usage", 1),
            }
            (
                error_frame(rejected.id.as_ref(), &rejected.error),
                FrameOutcome::Continue,
            )
        }
        Ok(request) => execute(shared, request),
    };
    match write_line(stream, &response) {
        Ok(()) => outcome,
        Err(_) => {
            ddb_obs::counter_bump("serve.errors.write", 1);
            FrameOutcome::Close
        }
    }
}

/// Dispatches one parsed request.
fn execute(shared: &Arc<Shared>, request: Request) -> (String, FrameOutcome) {
    let id = request.id.clone();
    match request.op {
        Op::Ping => (
            ok_frame(
                id.as_ref(),
                vec![
                    ("answer", Json::Str("pong".to_owned())),
                    (
                        "uptime_ms",
                        Json::UInt(shared.started.elapsed().as_millis() as u64),
                    ),
                ],
            ),
            FrameOutcome::Continue,
        ),
        Op::Catalog => (
            catalog_response(shared, id.as_ref()),
            FrameOutcome::Continue,
        ),
        Op::Stats => (stats_response(shared, id.as_ref()), FrameOutcome::Continue),
        Op::Cancel => (cancel_response(shared, &request), FrameOutcome::Continue),
        Op::Shutdown => {
            let active = shared.active_sessions.load(Ordering::SeqCst);
            shared.initiate_shutdown();
            (
                ok_frame(
                    id.as_ref(),
                    vec![
                        ("answer", Json::Str("shutting down".to_owned())),
                        ("draining", Json::UInt(active.saturating_sub(1) as u64)),
                    ],
                ),
                FrameOutcome::Close,
            )
        }
        Op::Load => (
            governed_response(shared, request, run_load),
            FrameOutcome::Continue,
        ),
        Op::Query | Op::Models | Op::Exists => (
            governed_response(shared, request, run_query_class),
            FrameOutcome::Continue,
        ),
    }
}

fn catalog_response(shared: &Arc<Shared>, id: Option<&Json>) -> String {
    let catalog = shared.catalog.read().unwrap_or_else(|e| e.into_inner());
    let dbs: Vec<Json> = catalog
        .names()
        .into_iter()
        .map(|name| {
            let db = catalog.get(&name).expect("name from listing");
            let sample: Vec<Json> = db
                .symbols()
                .atoms()
                .take(8)
                .map(|a| Json::Str(db.symbols().name(a).to_owned()))
                .collect();
            Json::obj([
                ("db", Json::Str(name)),
                ("atoms", Json::UInt(db.num_atoms() as u64)),
                ("rules", Json::UInt(db.rules().len() as u64)),
                ("sample_atoms", Json::Arr(sample)),
            ])
        })
        .collect();
    ok_frame(id, vec![("databases", Json::Arr(dbs))])
}

fn stats_response(shared: &Arc<Shared>, id: Option<&Json>) -> String {
    let counters = ddb_obs::snapshot();
    let hists = ddb_obs::hist_snapshot();
    let (running, waiting) = {
        let gate = lock(&shared.gate);
        (gate.running as u64, gate.waiting as u64)
    };
    ok_frame(
        id,
        vec![
            (
                "uptime_ms",
                Json::UInt(shared.started.elapsed().as_millis() as u64),
            ),
            (
                "active_sessions",
                Json::UInt(shared.active_sessions.load(Ordering::SeqCst) as u64),
            ),
            ("workers_busy", Json::UInt(running)),
            ("queue_waiting", Json::UInt(waiting)),
            ("served", Json::UInt(shared.served.load(Ordering::SeqCst))),
            ("shed", Json::UInt(shared.shed.load(Ordering::SeqCst))),
            ("counters", counters.to_json()),
            ("histograms", hists.to_json()),
        ],
    )
}

fn cancel_response(shared: &Arc<Shared>, request: &Request) -> String {
    let Some(target) = request.target.as_deref() else {
        return error_frame(
            request.id.as_ref(),
            &WireError::usage("cancel needs a `target` request id"),
        );
    };
    let mut tripped = 0u64;
    for entry in lock(&shared.inflight).iter() {
        if entry.client_id.as_deref() == Some(target) {
            entry.flag.store(true, Ordering::SeqCst);
            tripped += 1;
        }
    }
    ddb_obs::counter_bump("serve.cancelled", tripped);
    ok_frame(
        request.id.as_ref(),
        vec![("cancelled", Json::UInt(tripped))],
    )
}

/// Body of a governed op: the success fields, or a typed error.
type GovernedRun = fn(&Shared, &Request) -> Result<Vec<(&'static str, Json)>, WireError>;

/// Admission gate + budget + panic fence around the governed ops
/// (`query`/`models`/`exists`/`load`).
fn governed_response(shared: &Arc<Shared>, request: Request, run: GovernedRun) -> String {
    let id = request.id.clone();
    let _slot = match acquire_slot(shared) {
        Ok(slot) => slot,
        Err(e) => return error_frame(id.as_ref(), &e),
    };
    // Register the in-flight request for cancellation (by client id) and
    // for the shutdown sweep; the guard deregisters on every exit path.
    let flag = Arc::new(AtomicBool::new(false));
    let key = shared.next_key.fetch_add(1, Ordering::SeqCst);
    lock(&shared.inflight).push(Inflight {
        key,
        client_id: request.id_key(),
        flag: flag.clone(),
    });
    let _unregister = InflightGuard { shared, key };
    // Already draining? Trip immediately rather than racing the sweep.
    if shared.stop.load(Ordering::SeqCst) {
        flag.store(true, Ordering::SeqCst);
    }
    let effective = shared
        .config
        .defaults
        .intersect(&request.limits.to_budget().with_cancel_flag(flag));
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _guard = effective.install();
        let result = run(shared, &request);
        let consumed = budget::consumed();
        (result, consumed)
    }));
    match outcome {
        Ok((Ok(mut fields), consumed)) => {
            fields.push((
                "consumed",
                consumed.map_or(Json::Null, |c| {
                    Json::obj([
                        ("checkpoints", Json::UInt(c.checkpoints)),
                        ("conflicts", Json::UInt(c.conflicts)),
                        ("oracle_calls", Json::UInt(c.oracle_calls)),
                        ("models", Json::UInt(c.models)),
                    ])
                }),
            ));
            fields.push(("wall_ms", Json::UInt(started.elapsed().as_millis() as u64)));
            ok_frame(id.as_ref(), fields)
        }
        Ok((Err(e), _)) => {
            match e.kind {
                crate::protocol::ErrorKind::Usage => ddb_obs::counter_bump("serve.errors.usage", 1),
                crate::protocol::ErrorKind::Resource => {
                    ddb_obs::counter_bump("serve.errors.resource", 1)
                }
                _ => {}
            }
            error_frame(id.as_ref(), &e)
        }
        Err(panic) => {
            ddb_obs::counter_bump("serve.errors.internal", 1);
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_owned());
            error_frame(
                id.as_ref(),
                &WireError::internal(format!("request handler panicked: {what}")),
            )
        }
    }
}

struct InflightGuard<'a> {
    shared: &'a Shared,
    key: u64,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        lock(&self.shared.inflight).retain(|e| e.key != self.key);
    }
}

/// A gate permit; releasing it wakes one waiter.
struct SlotGuard<'a>(&'a Shared);

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        let mut gate = lock(&self.0.gate);
        gate.running -= 1;
        drop(gate);
        self.0.gate_cv.notify_one();
    }
}

/// Bounded admission: `workers` permits, at most `queue` waiters, and a
/// wait no longer than the read timeout — beyond any of these the
/// request is shed with a typed `overloaded` response.
fn acquire_slot(shared: &Shared) -> Result<SlotGuard<'_>, WireError> {
    let config = &shared.config;
    let mut gate = lock(&shared.gate);
    if gate.running < config.workers {
        gate.running += 1;
        return Ok(SlotGuard(shared));
    }
    if gate.waiting >= config.queue {
        drop(gate);
        shed_request(shared);
        return Err(WireError::overloaded(
            format!(
                "admission queue full ({} running, {} waiting)",
                config.workers, config.queue
            ),
            config.retry_after_ms,
        ));
    }
    gate.waiting += 1;
    let deadline = Instant::now() + config.read_timeout;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            gate.waiting -= 1;
            return Err(WireError::resource("server is shutting down"));
        }
        if gate.running < config.workers {
            gate.waiting -= 1;
            gate.running += 1;
            return Ok(SlotGuard(shared));
        }
        let now = Instant::now();
        if now >= deadline {
            gate.waiting -= 1;
            drop(gate);
            shed_request(shared);
            return Err(WireError::overloaded(
                "admission wait exceeded the read timeout",
                config.retry_after_ms,
            ));
        }
        let (next, _) = shared
            .gate_cv
            .wait_timeout(gate, deadline - now)
            .unwrap_or_else(|e| e.into_inner());
        gate = next;
    }
}

fn shed_request(shared: &Shared) {
    shared.shed.fetch_add(1, Ordering::SeqCst);
    ddb_obs::counter_bump("serve.shed", 1);
}

/// CLI-compatible semantics-name resolution (the ten paper semantics).
fn semantics_from_name(name: &str) -> Result<SemanticsId, WireError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "gcwa" => SemanticsId::Gcwa,
        "egcwa" => SemanticsId::Egcwa,
        "ccwa" => SemanticsId::Ccwa,
        "ecwa" | "circ" => SemanticsId::Ecwa,
        "ddr" | "wgcwa" => SemanticsId::Ddr,
        "pws" | "pms" => SemanticsId::Pws,
        "perf" => SemanticsId::Perf,
        "icwa" => SemanticsId::Icwa,
        "dsm" | "stable" => SemanticsId::Dsm,
        "pdsm" => SemanticsId::Pdsm,
        "cwa" => {
            return Err(WireError::usage(
                "semantics `cwa` is not served; use one of the ten paper semantics",
            ))
        }
        other => return Err(WireError::usage(format!("unknown semantics `{other}`"))),
    })
}

/// CLI-compatible query-formula parsing: formula grammar first, verbatim
/// symbol lookup (with optional leading `-`) as the fallback for Datalog
/// atom names like `path(a,b)`.
fn parse_query_formula(raw: &str, db: &Database) -> Result<Formula, WireError> {
    match parse_formula(raw, db.symbols()) {
        Ok(f) => Ok(f),
        Err(parse_err) => {
            let (name, positive) = match raw.trim().strip_prefix('-') {
                Some(rest) => (rest.trim(), false),
                None => (raw.trim(), true),
            };
            let atom = db
                .symbols()
                .lookup(name)
                .ok_or_else(|| WireError::usage(parse_err.to_string()))?;
            Ok(Formula::literal(atom, positive))
        }
    }
}

fn resolve_db(shared: &Shared, request: &Request) -> Result<Arc<Database>, WireError> {
    let name = request
        .db
        .as_deref()
        .ok_or_else(|| WireError::usage("missing field `db`"))?;
    shared
        .catalog
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .get(name)
        .ok_or_else(|| WireError::usage(format!("unknown database `{name}`")))
}

fn config_from_request(
    shared: &Shared,
    request: &Request,
    db: &Database,
) -> Result<SemanticsConfig, WireError> {
    let name = request
        .semantics
        .as_deref()
        .ok_or_else(|| WireError::usage("missing field `semantics`"))?;
    let id = semantics_from_name(name)?;
    let mut cfg = SemanticsConfig::new(id);
    if !request.partition_p.is_empty() || !request.partition_q.is_empty() {
        let collect = |names: &[String]| -> Result<Vec<ddb_logic::Atom>, WireError> {
            names
                .iter()
                .map(|n| {
                    db.symbols()
                        .lookup(n)
                        .ok_or_else(|| WireError::usage(format!("unknown partition atom `{n}`")))
                })
                .collect()
        };
        let p = collect(&request.partition_p)?;
        let q = collect(&request.partition_q)?;
        cfg = cfg.with_partition(Partition::from_p_q(db.num_atoms(), p, q));
    }
    let threads = request
        .threads
        .unwrap_or(1)
        .min(shared.config.max_query_threads.max(1));
    Ok(cfg.with_threads(threads))
}

fn request_formula(request: &Request, db: &Database) -> Result<Formula, WireError> {
    match (request.formula.as_deref(), request.literal.as_deref()) {
        (Some(f), None) => parse_query_formula(f, db),
        (None, Some(l)) => {
            let (name, positive) = match l.strip_prefix('-') {
                Some(rest) => (rest, false),
                None => (l, true),
            };
            let atom = db
                .symbols()
                .lookup(name)
                .ok_or_else(|| WireError::usage(format!("unknown atom `{name}`")))?;
            Ok(Formula::literal(atom, positive))
        }
        _ => Err(WireError::usage(
            "need exactly one of `formula` / `literal`",
        )),
    }
}

fn interrupt_fields(interrupted: Option<&Interrupted>) -> Vec<(&'static str, Json)> {
    match interrupted {
        None => vec![("resource", Json::Null)],
        Some(i) => {
            let mut fields = vec![
                ("resource", Json::Str(i.resource.label().to_owned())),
                ("checkpoint", Json::UInt(i.checkpoint)),
            ];
            if let Some(p) = &i.partial {
                fields.push(("partial", Json::Str(p.clone())));
            }
            fields
        }
    }
}

/// The `query`/`models`/`exists` body, running under the installed
/// budget. Answer strings are byte-identical to the CLI's stdout lines —
/// the chaos harness and CI parity checks diff them directly.
fn run_query_class(
    shared: &Shared,
    request: &Request,
) -> Result<Vec<(&'static str, Json)>, WireError> {
    let db = resolve_db(shared, request)?;
    let cfg = config_from_request(shared, request, &db)?;
    let mut cost = Cost::new();
    let mut fields: Vec<(&'static str, Json)> = Vec::new();
    match request.op {
        Op::Query => {
            let formula = request_formula(request, &db)?;
            let verdict: Verdict = if request.brave {
                witness::brave_infers_formula(&cfg, &db, &formula, &mut cost)
                    .map_err(|e| WireError::usage(e.to_string()))?
            } else {
                cfg.infers_formula(&db, &formula, &mut cost)
                    .map_err(|e| WireError::usage(e.to_string()))?
            };
            let answer = match (request.brave, verdict.as_bool()) {
                (false, Some(true)) => "inferred".to_owned(),
                (false, Some(false)) => "not inferred".to_owned(),
                (true, Some(true)) => "bravely inferred (holds in some model)".to_owned(),
                (true, Some(false)) => "not bravely inferred".to_owned(),
                (_, None) => "unknown".to_owned(),
            };
            fields.push(("answer", Json::Str(answer)));
            fields.push(("verdict", verdict.as_bool().map_or(Json::Null, Json::Bool)));
            fields.extend(interrupt_fields(verdict.interrupted()));
        }
        Op::Exists => {
            let verdict = cfg
                .has_model(&db, &mut cost)
                .map_err(|e| WireError::usage(e.to_string()))?;
            let answer = match verdict.as_bool() {
                Some(true) => "has a model",
                Some(false) => "no model",
                None => "unknown",
            };
            fields.push(("answer", Json::Str(answer.to_owned())));
            fields.push(("verdict", verdict.as_bool().map_or(Json::Null, Json::Bool)));
            fields.extend(interrupt_fields(verdict.interrupted()));
        }
        Op::Models => {
            let enumeration = cfg
                .models(&db, &mut cost)
                .map_err(|e| WireError::usage(e.to_string()))?;
            let answer = if enumeration.is_complete() {
                format!("{} model(s) under {}:", enumeration.len(), cfg.id)
            } else {
                format!(
                    "{} model(s) under {} (incomplete — budget exhausted):",
                    enumeration.len(),
                    cfg.id
                )
            };
            let models: Vec<Json> = enumeration
                .iter()
                .map(|m| {
                    Json::Arr(
                        m.iter()
                            .map(|a| Json::Str(db.symbols().name(a).to_owned()))
                            .collect(),
                    )
                })
                .collect();
            fields.push(("answer", Json::Str(answer)));
            fields.push(("count", Json::UInt(models.len() as u64)));
            fields.push(("complete", Json::Bool(enumeration.is_complete())));
            fields.push(("models", Json::Arr(models)));
            fields.extend(interrupt_fields(enumeration.interrupted.as_ref()));
        }
        _ => unreachable!("run_query_class only handles query/models/exists"),
    }
    fields.push(("sat_calls", Json::UInt(cost.sat_calls)));
    fields.push(("candidates", Json::UInt(cost.candidates)));
    Ok(fields)
}

/// The `load` body: parse/ground under the request budget, then publish
/// into the catalog. A budget trip degrades gracefully — typed
/// `resource` error, no partial catalog entry, server keeps running.
fn run_load(shared: &Shared, request: &Request) -> Result<Vec<(&'static str, Json)>, WireError> {
    let name = request
        .db
        .as_deref()
        .ok_or_else(|| WireError::usage("missing field `db`"))?;
    let source = request
        .source
        .as_deref()
        .ok_or_else(|| WireError::usage("load needs a `source` field"))?;
    // Multi-tenant name protection: a `load` must not silently replace
    // somebody else's database. Operator-preloaded (sealed) names are
    // never replaceable; client-loaded names need an explicit
    // `overwrite` flag. Checked cheaply before grounding, and again
    // under the write lock before publishing (grounding is long, so the
    // name set can change in between).
    check_load_name(
        &shared.catalog.read().unwrap_or_else(|e| e.into_inner()),
        name,
        request.overwrite,
    )?;
    let db =
        load_source(source, request.datalog, shared.config.grounding_limit).map_err(
            |e| match e {
                LoadError::Invalid(m) => WireError::usage(m),
                LoadError::Interrupted(i) => {
                    WireError::resource(format!("unknown ({}): grounding {i}", i.resource.label()))
                }
            },
        )?;
    let atoms = db.num_atoms() as u64;
    let rules = db.rules().len() as u64;
    {
        let mut catalog = shared.catalog.write().unwrap_or_else(|e| e.into_inner());
        check_load_name(&catalog, name, request.overwrite)?;
        catalog.insert(name, db);
    }
    Ok(vec![
        ("answer", Json::Str(format!("loaded `{name}`"))),
        ("atoms", Json::UInt(atoms)),
        ("rules", Json::UInt(rules)),
    ])
}

/// The `load` naming policy (see [`Catalog`]'s trust model).
fn check_load_name(catalog: &Catalog, name: &str, overwrite: bool) -> Result<(), WireError> {
    if catalog.is_protected(name) {
        return Err(WireError::usage(format!(
            "database `{name}` is operator-provisioned and cannot be replaced"
        )));
    }
    if catalog.contains(name) && !overwrite {
        return Err(WireError::usage(format!(
            "database `{name}` already exists; set `overwrite`:true to replace it"
        )));
    }
    Ok(())
}
