//! `ddb-serve` — a fault-tolerant multi-tenant query server for
//! disjunctive databases.
//!
//! The crate turns the engine into a daemon with nothing beyond the
//! standard library: [`server`] hosts a newline-framed JSON protocol
//! ([`protocol`]) over TCP, answering the paper's three decision
//! problems for every named database in a [`catalog::Catalog`]. Each
//! request runs under an effective [`ddb_obs::Budget`] — the server's
//! defaults intersected with the client's declared limits — so tenants
//! cannot starve each other, and every degradation is typed: overload
//! sheds with `overloaded` + a retry hint, budget trips answer `unknown`
//! with the tripped resource, malformed input gets `parse`/`usage`
//! errors, and a handler panic is fenced into an `internal` error
//! without taking the process down.
//!
//! [`chaos`] is the matching attack harness: it drives malformed
//! frames, oversized payloads, half-closes, disconnects, concurrent
//! cancellation, and a deterministic fault-injection sweep against a
//! live server and asserts answers stay byte-identical to the baseline
//! throughout. `ddb serve`, `ddb call`, and `ddb chaos` are the CLI
//! fronts for the three pieces.

pub mod catalog;
pub mod chaos;
pub mod protocol;
pub mod server;

pub use catalog::Catalog;
pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use protocol::{ErrorKind, WireError};
pub use server::{DrainReport, Server, ServerConfig, ServerHandle, ShutdownTrigger};
