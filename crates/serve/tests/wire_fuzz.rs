//! Seeded fuzz loop over the wire-frame parser (the serving counterpart
//! of the repo's `tests/parser_fuzz.rs`): 500 deterministic mutations per
//! round against `parse_request`, requiring that no input panics, every
//! rejection is a typed `parse`/`usage` error, and the error frame the
//! server would write back is itself well-formed JSON. A failure names
//! the seed and round, so it replays exactly.

use ddb_logic::rng::XorShift64Star;
use ddb_obs::json;
use ddb_serve::protocol::{error_frame, parse_request, ErrorKind};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Valid frames as mutation seeds — one per op class, plus edge shapes.
fn seed_frames() -> Vec<String> {
    vec![
        r#"{"id":1,"op":"query","db":"vase","semantics":"gcwa","formula":"-treat","brave":true,"threads":2,"limits":{"timeout_ms":500,"max_oracle_calls":10,"max_conflicts":3,"max_models":7,"fail_after":2}}"#.to_owned(),
        r#"{"id":"s-1","op":"models","db":"layers","semantics":"pdsm","partition_p":["a","b"],"partition_q":["c"]}"#.to_owned(),
        r#"{"op":"exists","db":"vase","semantics":"dsm"}"#.to_owned(),
        r#"{"op":"load","db":"new","source":"a | b. c :- a.","datalog":false}"#.to_owned(),
        r#"{"op":"cancel","target":"s-1"}"#.to_owned(),
        r#"{"op":"ping"}"#.to_owned(),
        r#"{"op":"stats"}"#.to_owned(),
        r#"{"op":"shutdown"}"#.to_owned(),
        r#"{}"#.to_owned(),
        r#"[1,2,3]"#.to_owned(),
        r#""just a string""#.to_owned(),
        String::new(),
    ]
}

/// JSON-structure tokens; splicing these reaches grammar edges a uniform
/// byte flip rarely hits.
const TOKENS: &[&str] = &[
    "{",
    "}",
    "\"",
    ":",
    ",",
    "[",
    "]",
    "null",
    "true",
    "false",
    "-0",
    "1e309",
    "\\u0000",
    "\\",
    "op",
    "id",
    "limits",
    "1e-999",
    "\u{00e9}",
    " ",
    "[[[[[[[[",
    "{\"d\":{\"d\":{\"d\":",
];

fn mutate(rng: &mut XorShift64Star, seed: &str) -> String {
    let mut bytes = seed.as_bytes().to_vec();
    for _ in 0..=rng.gen_range(0, 4) {
        match rng.gen_range(0, 5) {
            0 if !bytes.is_empty() => {
                let i = rng.gen_range(0, bytes.len());
                bytes[i] = (rng.next_u64() & 0xFF) as u8;
            }
            1 if !bytes.is_empty() => {
                bytes.truncate(rng.gen_range(0, bytes.len()));
            }
            2 if !bytes.is_empty() => {
                let i = rng.gen_range(0, bytes.len());
                let j = rng.gen_range_inclusive(i, bytes.len());
                let slice = bytes[i..j].to_vec();
                bytes.extend_from_slice(&slice);
            }
            3 => {
                let tok = TOKENS[rng.gen_range(0, TOKENS.len())].as_bytes();
                let i = rng.gen_range_inclusive(0, bytes.len());
                bytes.splice(i..i, tok.iter().copied());
            }
            _ if bytes.len() >= 2 => {
                let i = rng.gen_range(0, bytes.len());
                let j = rng.gen_range(0, bytes.len());
                bytes.swap(i, j);
            }
            _ => {}
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn wire_parser_never_panics_and_rejections_stay_typed() {
    let seeds = seed_frames();
    for round in 0..500u64 {
        let mut rng = XorShift64Star::seed_from_u64(0x5E4F_0000 + round);
        let seed = &seeds[rng.gen_range(0, seeds.len())];
        let mutant = mutate(&mut rng, seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| parse_request(&mutant)));
        let result = match outcome {
            Ok(r) => r,
            Err(_) => panic!("parse_request panicked on round {round}; mutant:\n{mutant}"),
        };
        if let Err(rejected) = result {
            assert!(
                matches!(rejected.error.kind, ErrorKind::Parse | ErrorKind::Usage),
                "round {round}: rejection is `{}`, not parse/usage; mutant:\n{mutant}",
                rejected.error.kind.label()
            );
            // The frame the server would write back must itself be
            // well-formed JSON with the taxonomy fields in place.
            let frame = error_frame(rejected.id.as_ref(), &rejected.error);
            let doc = json::parse(&frame).unwrap_or_else(|e| {
                panic!("round {round}: error frame is not JSON ({e}):\n{frame}")
            });
            assert_eq!(
                doc.get("ok").and_then(json::Json::as_bool),
                Some(false),
                "round {round}: error frame missing ok:false:\n{frame}"
            );
            assert!(
                doc.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(json::Json::as_str)
                    .is_some(),
                "round {round}: error frame missing error.kind:\n{frame}"
            );
        }
    }
}

#[test]
fn deeply_nested_frames_are_typed_parse_errors_not_aborts() {
    // A single 100KB frame of nesting — well under the 1MiB frame cap —
    // must come back as a typed `parse` rejection. Without the parser's
    // depth limit this is a stack overflow, which aborts the whole
    // process (catch_unwind cannot fence it), so this case is pinned
    // explicitly rather than left to the random mutator.
    let deep_arrays = "[".repeat(100_000);
    let deep_objects = "{\"a\":".repeat(100_000);
    let balanced = format!("{}1{}", "[".repeat(10_000), "]".repeat(10_000));
    let in_a_field = format!(
        "{{\"op\":\"query\",\"id\":{}1{}}}",
        "[".repeat(10_000),
        "]".repeat(10_000)
    );
    for frame in [deep_arrays, deep_objects, balanced, in_a_field] {
        let rejected = parse_request(&frame).unwrap_err();
        assert_eq!(rejected.error.kind, ErrorKind::Parse);
        let response = error_frame(rejected.id.as_ref(), &rejected.error);
        assert!(
            json::parse(&response).is_ok(),
            "error frame must stay well-formed"
        );
    }
}

#[test]
fn accepted_mutants_round_trip_their_ids() {
    // Any mutant the parser accepts must carry a consistent id: the
    // response frame built from it echoes the id (or null), and both
    // render as parseable JSON — the server's invariant that no accepted
    // frame can produce an unparseable response.
    let seeds = seed_frames();
    let mut accepted = 0u32;
    for round in 0..500u64 {
        let mut rng = XorShift64Star::seed_from_u64(0x5E4F_8000 + round);
        let seed = &seeds[rng.gen_range(0, seeds.len())];
        let mutant = mutate(&mut rng, seed);
        if let Ok(request) = parse_request(&mutant) {
            accepted += 1;
            let frame = ddb_serve::protocol::ok_frame(
                request.id.as_ref(),
                vec![("answer", json::Json::Str("ok".to_owned()))],
            );
            let doc = json::parse(&frame).unwrap_or_else(|e| {
                panic!("round {round}: response to accepted mutant is not JSON ({e}):\n{frame}")
            });
            assert_eq!(doc.get("ok").and_then(json::Json::as_bool), Some(true));
        }
    }
    assert!(accepted > 0, "mutator never produced a legal frame");
}
