//! Cross-thread cancellation fairness: N concurrent sessions query
//! distinct databases; one session is cancelled mid-flight. Exactly that
//! session's query must be interrupted (`unknown` with the `cancelled`
//! resource), and every other session must complete with verdicts AND
//! oracle bills identical to an uncontended baseline — cancellation must
//! not bleed across budgets that merely share the process.

use ddb_obs::json::{self, Json};
use ddb_serve::chaos::Client;
use ddb_serve::{Catalog, Server, ServerConfig};
use ddb_workloads::structured::{layered_disjunctive, sliceable_towers};
use std::time::{Duration, Instant};

fn get_str(doc: &Json, key: &str) -> Option<String> {
    doc.get(key).and_then(Json::as_str).map(str::to_owned)
}

fn get_u64(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key).and_then(Json::as_u64)
}

fn query_frame(id: &str, db: &str, formula: &str) -> String {
    Json::obj([
        ("id", Json::Str(id.to_owned())),
        ("op", Json::Str("query".to_owned())),
        ("db", Json::Str(db.to_owned())),
        ("semantics", Json::Str("pdsm".to_owned())),
        ("formula", Json::Str(formula.to_owned())),
    ])
    .render()
}

#[test]
fn cancelling_one_session_leaves_the_others_byte_identical() {
    const BYSTANDERS: usize = 3;
    let mut catalog = Catalog::new();
    // The victim's database: enumerating the minimal models of a layered
    // disjunctive program is exponential in the layer count, so the
    // `models` op reliably outlives the cancel that chases it.
    catalog.insert("heavy", layered_disjunctive(9, 4));
    // Each bystander gets its own PDSM towers database.
    let mut formulas = Vec::new();
    for b in 0..BYSTANDERS {
        let db = sliceable_towers(2, 3);
        formulas.push(db.symbols().name(ddb_logic::Atom::new(0)).to_owned());
        catalog.insert(&format!("towers{b}"), db);
    }
    let config = ServerConfig {
        workers: BYSTANDERS + 2,
        queue: 8,
        read_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let handle = Server::start(config, catalog).expect("server starts");
    let addr = handle.addr().to_string();
    let timeout = Duration::from_secs(60);

    // Uncontended baseline: answer and oracle bill per bystander.
    let mut baseline = Vec::new();
    for (b, formula) in formulas.iter().enumerate() {
        let mut c = Client::connect(&addr, timeout).unwrap();
        let doc = c
            .call(&query_frame("base", &format!("towers{b}"), formula))
            .unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert!(get_str(&doc, "resource").is_none(), "baseline interrupted");
        baseline.push((
            get_str(&doc, "answer").expect("baseline answer"),
            get_u64(&doc, "sat_calls").expect("baseline sat_calls"),
        ));
    }

    // Launch the victim: an exponential `models` enumeration.
    let victim_addr = addr.clone();
    let victim = std::thread::spawn(move || {
        let mut c = Client::connect(&victim_addr, timeout).unwrap();
        c.send_line(
            &Json::obj([
                ("id", Json::Str("victim".to_owned())),
                ("op", Json::Str("models".to_owned())),
                ("db", Json::Str("heavy".to_owned())),
                ("semantics", Json::Str("gcwa".to_owned())),
            ])
            .render(),
        )
        .unwrap();
        c.recv_line().unwrap()
    });

    // Chase it with `cancel` until the flag actually trips an in-flight
    // request — the op reports how many it reached, so this is
    // deterministic, not a timing guess.
    let mut attacker = Client::connect(&addr, timeout).unwrap();
    let chase_deadline = Instant::now() + Duration::from_secs(30);
    let mut tripped = 0;
    while tripped == 0 {
        assert!(
            Instant::now() < chase_deadline,
            "cancel never reached the victim"
        );
        let doc = attacker
            .call(r#"{"op":"cancel","target":"victim"}"#)
            .unwrap();
        tripped = get_u64(&doc, "cancelled").unwrap_or(0);
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(tripped, 1, "cancel tripped {tripped} sessions, not 1");

    // While the victim dies, the bystanders work — concurrently.
    let bystanders: Vec<_> = formulas
        .iter()
        .enumerate()
        .map(|(b, formula)| {
            let addr = addr.clone();
            let frame = query_frame(&format!("s{b}"), &format!("towers{b}"), formula);
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, timeout).unwrap();
                (0..3)
                    .map(|_| c.call(&frame).unwrap())
                    .collect::<Vec<Json>>()
            })
        })
        .collect();

    // The victim must answer `unknown` with the `cancelled` resource.
    let victim_line = victim.join().expect("victim thread");
    let victim_doc = json::parse(&victim_line).expect("victim response is JSON");
    assert_eq!(
        victim_doc.get("ok").and_then(Json::as_bool),
        Some(true),
        "victim got a hard error, not graceful degradation: {victim_line}"
    );
    assert_eq!(
        get_str(&victim_doc, "resource").as_deref(),
        Some("cancelled"),
        "victim resource: {victim_line}"
    );
    assert_eq!(
        victim_doc.get("complete").and_then(Json::as_bool),
        Some(false),
        "victim enumeration claims completeness: {victim_line}"
    );

    // Every bystander run: verdict AND oracle bill identical to baseline.
    for (b, handle) in bystanders.into_iter().enumerate() {
        let (expected_answer, expected_bill) = &baseline[b];
        for doc in handle.join().expect("bystander thread") {
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
            assert!(
                get_str(&doc, "resource").is_none(),
                "bystander {b} was interrupted: {}",
                doc.render()
            );
            assert_eq!(
                get_str(&doc, "answer").as_deref(),
                Some(expected_answer.as_str()),
                "bystander {b} verdict changed under contention"
            );
            assert_eq!(
                get_u64(&doc, "sat_calls"),
                Some(*expected_bill),
                "bystander {b} oracle bill changed under contention"
            );
        }
    }

    handle.shutdown();
    let report = handle.join();
    assert_eq!(report.sessions_leaked, 0, "leaked sessions: {report}");
}
