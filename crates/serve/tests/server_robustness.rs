//! End-to-end robustness contract of the server: typed overload under a
//! full admission queue, budget precedence (server defaults ∩ client
//! limits), graceful shutdown with zero leaked sessions, and a full
//! in-process chaos run.

use ddb_obs::json::Json;
use ddb_serve::catalog::load_source;
use ddb_serve::chaos::Client;
use ddb_serve::{run_chaos, Catalog, ChaosConfig, Server, ServerConfig};
use ddb_workloads::structured::layered_disjunctive;
use std::time::{Duration, Instant};

const VASE: &str = "alice | bob. grounded :- alice. grounded :- bob. treat :- alice, bob.";

fn vase_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.insert("vase", load_source(VASE, None, 1000).unwrap());
    catalog
}

fn vase_query(id: &str) -> String {
    Json::obj([
        ("id", Json::Str(id.to_owned())),
        ("op", Json::Str("query".to_owned())),
        ("db", Json::Str("vase".to_owned())),
        ("semantics", Json::Str("gcwa".to_owned())),
        ("formula", Json::Str("-treat".to_owned())),
    ])
    .render()
}

fn heavy_models(id: &str) -> String {
    Json::obj([
        ("id", Json::Str(id.to_owned())),
        ("op", Json::Str("models".to_owned())),
        ("db", Json::Str("heavy".to_owned())),
        ("semantics", Json::Str("gcwa".to_owned())),
    ])
    .render()
}

/// Acceptance: with worker capacity 1 and queue capacity 1, a burst of
/// hard queries gets exactly the typed degradation the taxonomy
/// promises — the excess is shed with `overloaded` + a retry hint well
/// inside the read-timeout bound, and the admitted requests still finish
/// with correct answers.
#[test]
fn overload_sheds_typed_and_admitted_requests_still_answer() {
    let mut catalog = vase_catalog();
    catalog.insert("heavy", layered_disjunctive(9, 4));
    let read_timeout = Duration::from_secs(30);
    let config = ServerConfig {
        workers: 1,
        queue: 1,
        read_timeout,
        ..ServerConfig::default()
    };
    let handle = Server::start(config, catalog).expect("server starts");
    let addr = handle.addr().to_string();
    let timeout = Duration::from_secs(60);

    // Occupy the single worker with an exponential enumeration.
    let mut occupant = Client::connect(&addr, timeout).unwrap();
    occupant.send_line(&heavy_models("occupant")).unwrap();
    // Fill the one queue slot with a query that will eventually run.
    let waiter_addr = addr.clone();
    let waiter = std::thread::spawn(move || {
        let mut c = Client::connect(&waiter_addr, timeout).unwrap();
        c.call(&vase_query("waiter")).unwrap()
    });
    // Deterministically wait until the occupant holds the worker AND the
    // waiter occupies the queue slot — the stats op exposes both.
    let mut probe = Client::connect(&addr, timeout).unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        assert!(Instant::now() < deadline, "gate never filled up");
        let stats = probe.call(r#"{"op":"stats"}"#).unwrap();
        let busy = stats.get("workers_busy").and_then(Json::as_u64);
        let waiting = stats.get("queue_waiting").and_then(Json::as_u64);
        if busy == Some(1) && waiting == Some(1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // The burst: with the worker busy and the queue full, excess hard
    // queries must shed immediately with the typed overload response.
    let mut shed_seen = 0;
    let burst_started = Instant::now();
    for i in 0..4 {
        let mut c = Client::connect(&addr, timeout).unwrap();
        let doc = c.call(&vase_query(&format!("burst{i}"))).unwrap();
        if doc.get("ok").and_then(Json::as_bool) == Some(false) {
            let error = doc.get("error").expect("error body");
            assert_eq!(
                error.get("kind").and_then(Json::as_str),
                Some("overloaded"),
                "shed response is not typed overloaded: {}",
                doc.render()
            );
            assert!(
                error.get("retry_after_ms").and_then(Json::as_u64).is_some(),
                "overloaded without a retry hint: {}",
                doc.render()
            );
            shed_seen += 1;
        }
    }
    let burst_elapsed = burst_started.elapsed();
    assert_eq!(shed_seen, 4, "queue capacity 1 shed only {shed_seen} of 4");
    assert!(
        burst_elapsed < read_timeout,
        "shedding took {burst_elapsed:?}, beyond the read-timeout bound"
    );

    // Free the worker; the queued waiter must then finish correctly.
    let doc = probe
        .call(r#"{"op":"cancel","target":"occupant"}"#)
        .unwrap();
    assert_eq!(doc.get("cancelled").and_then(Json::as_u64), Some(1));
    let waiter_doc = waiter.join().expect("waiter thread");
    assert_eq!(
        waiter_doc.get("answer").and_then(Json::as_str),
        Some("inferred"),
        "admitted request answered wrongly: {}",
        waiter_doc.render()
    );
    let occupant_line = occupant.recv_line().unwrap();
    assert!(
        occupant_line.contains("cancelled"),
        "occupant not cancelled: {occupant_line}"
    );

    handle.shutdown();
    let report = handle.join();
    assert_eq!(report.sessions_leaked, 0, "leaked sessions: {report}");
    assert!(
        report.shed >= 2,
        "drain report lost the shed count: {report}"
    );
}

/// Budget precedence: the effective budget is the intersection, so the
/// tighter side wins no matter which side it is.
#[test]
fn server_defaults_intersect_client_limits() {
    let config = ServerConfig {
        defaults: ddb_obs::Budget::unlimited().with_max_oracle_calls(2),
        ..ServerConfig::default()
    };
    let handle = Server::start(config, vase_catalog()).expect("server starts");
    let addr = handle.addr().to_string();
    let mut c = Client::connect(&addr, Duration::from_secs(30)).unwrap();

    // Client asks for more than the server allows: server's cap trips.
    let doc = c
        .call(r#"{"op":"query","db":"vase","semantics":"gcwa","formula":"-treat","limits":{"max_oracle_calls":1000}}"#)
        .unwrap();
    assert_eq!(doc.get("answer").and_then(Json::as_str), Some("unknown"));
    assert_eq!(
        doc.get("resource").and_then(Json::as_str),
        Some("oracle_calls"),
        "server-side cap did not win: {}",
        doc.render()
    );

    // Client asks for less than the server allows: client's cap trips
    // first (fault injection at checkpoint 1 beats the oracle cap).
    let doc = c
        .call(r#"{"op":"query","db":"vase","semantics":"gcwa","formula":"-treat","limits":{"fail_after":1}}"#)
        .unwrap();
    assert_eq!(
        doc.get("resource").and_then(Json::as_str),
        Some("fault_injection"),
        "client-side limit did not apply: {}",
        doc.render()
    );

    handle.shutdown();
    assert_eq!(handle.join().sessions_leaked, 0);
}

/// The full chaos harness, in-process: malformed frames, oversized
/// payloads, half-closes, disconnects, concurrent cancels, and the
/// fault-injection sweep, ending in a clean drain with no leaked
/// sessions.
#[test]
fn chaos_harness_passes_against_an_in_process_server() {
    let config = ServerConfig {
        read_timeout: Duration::from_secs(2),
        idle_timeout: Duration::from_secs(30),
        max_frame_bytes: 1 << 20,
        ..ServerConfig::default()
    };
    let handle = Server::start(config, vase_catalog()).expect("server starts");
    let chaos = ChaosConfig {
        addr: handle.addr().to_string(),
        rounds: 120,
        fail_after_max: 128,
        ..ChaosConfig::default()
    };
    let report = run_chaos(&chaos).expect("harness ran");
    assert!(report.ok(), "{}", report.render());
    assert!(report.checks > 100, "suspiciously few checks ran");
    handle.shutdown();
    let drain = handle.join();
    assert_eq!(drain.sessions_leaked, 0, "leaked sessions: {drain}");
}

/// Shutdown drains in-flight work: a long enumeration is tripped via its
/// cancel flag and answers gracefully before the server exits.
#[test]
fn shutdown_trips_inflight_queries_and_drains() {
    let mut catalog = vase_catalog();
    catalog.insert("heavy", layered_disjunctive(9, 4));
    let handle = Server::start(ServerConfig::default(), catalog).expect("server starts");
    let addr = handle.addr().to_string();
    let timeout = Duration::from_secs(60);

    let mut victim = Client::connect(&addr, timeout).unwrap();
    victim.send_line(&heavy_models("v")).unwrap();
    // Wait until it is registered in-flight, then shut down.
    let mut probe = Client::connect(&addr, timeout).unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        assert!(Instant::now() < deadline, "victim never started");
        let stats = probe.call(r#"{"op":"stats"}"#).unwrap();
        if stats
            .get("active_sessions")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 2
        {
            std::thread::sleep(Duration::from_millis(100));
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
    // The in-flight query answers gracefully (cancelled, incomplete)
    // rather than being dropped on the floor.
    let line = victim.recv_line().unwrap();
    assert!(
        line.contains("\"resource\":\"cancelled\"") || line.contains("model(s)"),
        "in-flight query neither finished nor degraded: {line}"
    );
    let report = handle.join();
    assert_eq!(report.sessions_leaked, 0, "leaked sessions: {report}");
}

/// The catalog's trust model over the wire: no client can replace an
/// operator-provisioned database, and replacing another client-loaded
/// entry needs an explicit `overwrite` flag.
#[test]
fn load_cannot_shadow_operator_databases_or_silently_overwrite() {
    let mut catalog = vase_catalog();
    catalog.protect_all();
    let handle = Server::start(ServerConfig::default(), catalog).expect("server starts");
    let addr = handle.addr().to_string();
    let mut c = Client::connect(&addr, Duration::from_secs(30)).unwrap();

    let load = |name: &str, source: &str, overwrite: bool| {
        let mut fields = vec![
            ("op", Json::Str("load".to_owned())),
            ("db", Json::Str(name.to_owned())),
            ("source", Json::Str(source.to_owned())),
            ("datalog", Json::Bool(false)),
        ];
        if overwrite {
            fields.push(("overwrite", Json::Bool(true)));
        }
        Json::obj(fields).render()
    };

    // Replacing the operator's `vase` is refused even with overwrite.
    for overwrite in [false, true] {
        let resp = c.call(&load("vase", "x.", overwrite)).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        let kind = resp
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned();
        assert_eq!(kind, "usage", "expected usage rejection: {resp:?}");
    }
    // The operator database is untouched and still answers.
    let resp = c.call(&vase_query("q1")).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));

    // A fresh name loads fine; re-loading it needs the explicit flag.
    let resp = c.call(&load("tenant", "p | q.", false)).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let resp = c.call(&load("tenant", "r.", false)).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    let resp = c.call(&load("tenant", "r.", true)).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));

    handle.shutdown();
    let report = handle.join();
    assert_eq!(report.sessions_leaked, 0, "leaked sessions: {report}");
}

/// The slowloris guard covers pipelined partial frames: bytes left in
/// the buffer after a complete frame start the frame clock, so a
/// trickled tail is cut off by the read timeout, not the (much longer)
/// idle timeout.
#[test]
fn partial_frame_after_a_pipelined_request_hits_the_read_timeout() {
    let config = ServerConfig {
        read_timeout: Duration::from_millis(300),
        idle_timeout: Duration::from_secs(120),
        ..ServerConfig::default()
    };
    let handle = Server::start(config, vase_catalog()).expect("server starts");
    let addr = handle.addr().to_string();
    let mut c = Client::connect(&addr, Duration::from_secs(30)).unwrap();

    // One write: a complete ping frame plus the start of a second frame
    // that never finishes.
    c.send_line(r#"{"op":"ping"}"#).unwrap();
    c.send_line(r#"{"op":"ping"}"#).unwrap();
    let started = Instant::now();
    c.send_raw(br#"{"op":"#).unwrap();
    let first = c.recv_line().unwrap();
    assert!(
        first.contains("pong"),
        "first pipelined frame answered: {first}"
    );
    let second = c.recv_line().unwrap();
    assert!(
        second.contains("pong"),
        "second pipelined frame answered: {second}"
    );
    // The dangling tail must be rejected within the read-timeout bound.
    let line = c.recv_line().unwrap();
    assert!(
        line.contains("frame read timed out"),
        "expected the read-timeout rejection, got: {line}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "read timeout took implausibly long"
    );

    handle.shutdown();
    let report = handle.join();
    assert_eq!(report.sessions_leaked, 0, "leaked sessions: {report}");
}
