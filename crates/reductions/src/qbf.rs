//! Quantified Boolean formulas with one quantifier alternation.
//!
//! `∀X∃Y φ` (CNF matrix) validity is the canonical Πᵖ₂-complete problem;
//! its complement `∃X∀Y ¬φ` (DNF matrix) is Σᵖ₂-complete. The reductions
//! in this crate consume these forms, and the evaluators here provide the
//! ground truth the reduction tests compare against.

use ddb_logic::{Atom, Literal};
use ddb_sat::Solver;

/// A literal over QBF variables: variable index + sign.
pub type QLit = (u32, bool);

/// A two-level QBF `∀x₁…xₙ ∃y₁…yₘ φ` with `φ` in CNF.
///
/// Universal variables are `0..num_universal`, existential variables
/// `num_universal..num_universal+num_existential`. Clause literals are
/// `(var, positive)` pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForallExistsCnf {
    /// Number of universally quantified variables (`|X|`).
    pub num_universal: u32,
    /// Number of existentially quantified variables (`|Y|`).
    pub num_existential: u32,
    /// CNF clauses of the matrix.
    pub clauses: Vec<Vec<QLit>>,
}

impl ForallExistsCnf {
    /// Total variable count.
    pub fn num_vars(&self) -> u32 {
        self.num_universal + self.num_existential
    }

    /// Evaluates the matrix under a full assignment (bit `i` of `bits` =
    /// value of variable `i`).
    fn matrix(&self, bits: u64) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|&(v, s)| (bits >> v & 1 == 1) == s))
    }

    /// Brute-force validity check (≤ 2^(|X|+|Y|) matrix evaluations —
    /// test-sized).
    pub fn valid_brute(&self) -> bool {
        let (nx, ny) = (self.num_universal, self.num_existential);
        assert!(nx + ny <= 24, "brute evaluation is test-sized");
        (0u64..1 << nx)
            .all(|x_bits| (0u64..1 << ny).any(|y_bits| self.matrix(x_bits | (y_bits << nx))))
    }

    /// Oracle-style evaluation: enumerate universal assignments, decide
    /// each `∃Y φ(σ,Y)` with one SAT-oracle call. Exponential only in
    /// `|X|` — the structure of the Πᵖ₂ upper bound.
    pub fn valid_oracle(&self) -> bool {
        let nx = self.num_universal;
        assert!(nx <= 24, "universal enumeration is test-sized");
        let mut solver = Solver::new();
        solver.ensure_vars(self.num_vars() as usize);
        for clause in &self.clauses {
            let lits: Vec<Literal> = clause
                .iter()
                .map(|&(v, s)| Literal::with_sign(Atom::new(v), s))
                .collect();
            if !solver.add_clause(&lits) {
                return false; // matrix unsatisfiable outright
            }
        }
        (0u64..1 << nx).all(|x_bits| {
            let assumptions: Vec<Literal> = (0..nx)
                .map(|v| Literal::with_sign(Atom::new(v), x_bits >> v & 1 == 1))
                .collect();
            solver
                .solve_with_assumptions(&assumptions)
                .expect("reference oracle runs unbudgeted")
                .is_sat()
        })
    }

    /// The complementary Σᵖ₂ formula `∃X∀Y ¬φ` with DNF matrix.
    pub fn complement(&self) -> ExistsForallDnf {
        ExistsForallDnf {
            num_existential_outer: self.num_universal,
            num_universal_inner: self.num_existential,
            terms: self
                .clauses
                .iter()
                .map(|c| c.iter().map(|&(v, s)| (v, !s)).collect())
                .collect(),
        }
    }
}

/// A two-level QBF `∃x₁…xₙ ∀y₁…yₘ ψ` with `ψ` in DNF (terms are
/// conjunctions of literals). Truth of this form is Σᵖ₂-complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExistsForallDnf {
    /// Number of outer existential variables.
    pub num_existential_outer: u32,
    /// Number of inner universal variables.
    pub num_universal_inner: u32,
    /// DNF terms of the matrix.
    pub terms: Vec<Vec<QLit>>,
}

impl ExistsForallDnf {
    /// Total variable count.
    pub fn num_vars(&self) -> u32 {
        self.num_existential_outer + self.num_universal_inner
    }

    fn matrix(&self, bits: u64) -> bool {
        self.terms
            .iter()
            .any(|t| t.iter().all(|&(v, s)| (bits >> v & 1 == 1) == s))
    }

    /// Brute-force truth check (test-sized).
    pub fn true_brute(&self) -> bool {
        let (nx, ny) = (self.num_existential_outer, self.num_universal_inner);
        assert!(nx + ny <= 24, "brute evaluation is test-sized");
        (0u64..1 << nx)
            .any(|x_bits| (0u64..1 << ny).all(|y_bits| self.matrix(x_bits | (y_bits << nx))))
    }
}

/// Deterministic pseudo-random generator of `∀∃`-CNF instances, for
/// reduction validation and hard benchmark families.
pub fn random_forall_exists(
    num_universal: u32,
    num_existential: u32,
    num_clauses: usize,
    clause_width: usize,
    seed: u64,
) -> ForallExistsCnf {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = num_universal + num_existential;
    let clauses = (0..num_clauses)
        .map(|_| {
            (0..clause_width)
                .map(|_| ((next() % n as u64) as u32, next() % 2 == 0))
                .collect()
        })
        .collect();
    ForallExistsCnf {
        num_universal,
        num_existential,
        clauses,
    }
}

/// The *parity family*: `∀x₁…xₙ ∃y₁…yₙ φ` where `φ` forces
/// `yᵢ ↔ x₁ ⊕ … ⊕ xᵢ` (prefix parities). Valid by construction, and the
/// witness `Y` differs for every `X` — the worst case for
/// counterexample-guided procedures, which must refute one
/// assignment-signature at a time. This is the scaling family behind the
/// Πᵖ₂ lower-bound benches.
pub fn parity_family(n: u32) -> ForallExistsCnf {
    assert!(n >= 1);
    let x = |i: u32| i; // universal variables 0..n
    let y = |i: u32| n + i; // existential variables n..2n
    let mut clauses: Vec<Vec<QLit>> = Vec::new();
    // y₀ ↔ x₀.
    clauses.push(vec![(y(0), false), (x(0), true)]);
    clauses.push(vec![(y(0), true), (x(0), false)]);
    for i in 1..n {
        // yᵢ ↔ yᵢ₋₁ ⊕ xᵢ  (4 clauses).
        clauses.push(vec![(y(i), false), (y(i - 1), true), (x(i), true)]);
        clauses.push(vec![(y(i), false), (y(i - 1), false), (x(i), false)]);
        clauses.push(vec![(y(i), true), (y(i - 1), true), (x(i), false)]);
        clauses.push(vec![(y(i), true), (y(i - 1), false), (x(i), true)]);
    }
    ForallExistsCnf {
        num_universal: n,
        num_existential: n,
        clauses,
    }
}

/// The invalid twin of [`parity_family`]: additionally demands `yₙ` be
/// true, which fails for every even-parity `X` — a family where the
/// Σᵖ₂ witness search succeeds (half the `X` space are countermodels).
pub fn parity_family_invalid(n: u32) -> ForallExistsCnf {
    let mut q = parity_family(n);
    q.clauses.push(vec![(2 * n - 1, true)]);
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tautological_matrix_is_valid() {
        // ∀x ∃y (x ∨ y) ∧ (¬x ∨ ¬y): pick y = ¬x.
        let q = ForallExistsCnf {
            num_universal: 1,
            num_existential: 1,
            clauses: vec![vec![(0, true), (1, true)], vec![(0, false), (1, false)]],
        };
        assert!(q.valid_brute());
        assert!(q.valid_oracle());
    }

    #[test]
    fn contradictory_matrix_invalid() {
        // ∀x ∃y (x) — fails for x = false.
        let q = ForallExistsCnf {
            num_universal: 1,
            num_existential: 1,
            clauses: vec![vec![(0, true)]],
        };
        assert!(!q.valid_brute());
        assert!(!q.valid_oracle());
    }

    #[test]
    fn no_universals_is_sat() {
        // ∃y (y) — satisfiable.
        let q = ForallExistsCnf {
            num_universal: 0,
            num_existential: 1,
            clauses: vec![vec![(0, true)]],
        };
        assert!(q.valid_brute() && q.valid_oracle());
    }

    #[test]
    fn no_existentials_is_validity() {
        // ∀x (x ∨ ¬x) valid; ∀x (x) invalid.
        let valid = ForallExistsCnf {
            num_universal: 1,
            num_existential: 0,
            clauses: vec![vec![(0, true), (0, false)]],
        };
        assert!(valid.valid_brute() && valid.valid_oracle());
        let invalid = ForallExistsCnf {
            num_universal: 1,
            num_existential: 0,
            clauses: vec![vec![(0, true)]],
        };
        assert!(!invalid.valid_brute() && !invalid.valid_oracle());
    }

    #[test]
    fn oracle_matches_brute_on_random_instances() {
        for seed in 0..200 {
            let q = random_forall_exists(3, 3, 6, 3, seed);
            assert_eq!(q.valid_brute(), q.valid_oracle(), "seed {seed}");
        }
    }

    #[test]
    fn complement_flips_answer() {
        for seed in 0..100 {
            let q = random_forall_exists(3, 2, 5, 3, seed);
            assert_eq!(q.valid_brute(), !q.complement().true_brute(), "seed {seed}");
        }
    }

    #[test]
    fn parity_family_is_valid() {
        for n in 1..=4 {
            assert!(parity_family(n).valid_brute(), "n={n}");
            assert!(parity_family(n).valid_oracle(), "n={n}");
        }
    }

    #[test]
    fn parity_family_invalid_is_invalid() {
        for n in 1..=4 {
            assert!(!parity_family_invalid(n).valid_brute(), "n={n}");
        }
    }

    #[test]
    fn empty_clause_never_valid_with_universals() {
        let q = ForallExistsCnf {
            num_universal: 1,
            num_existential: 1,
            clauses: vec![vec![]],
        };
        assert!(!q.valid_brute());
        assert!(!q.valid_oracle());
    }
}
