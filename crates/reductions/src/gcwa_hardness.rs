//! The Theorem-3.1-style reduction: Πᵖ₂-hardness of literal inference from
//! a **positive, integrity-free** DDB under minimal-model semantics.
//!
//! Given `Φ = ∀X ∃Y φ` (CNF matrix), build the positive DDB
//!
//! ```text
//! x ∨ x̄.                 for every x ∈ X        (exclusive choice)
//! y ∨ ȳ.                 for every y ∈ Y
//! y ← w.   ȳ ← w.        for every y ∈ Y        (w saturates Y)
//! w ← ¬̃c.                for every clause c ∈ φ (¬̃c = complements of c's
//!                                                 literals, as atoms)
//! ```
//!
//! **Claim**: `Φ` is valid iff `MM(DB) ⊨ ¬w` (equivalently, iff
//! `GCWA(DB) ⊨ ¬w`).
//!
//! *Why*: a minimal model either omits `w` — then it is an exact
//! assignment to `X ∪ Y` firing no `w`-rule, i.e. one satisfying `φ` — or
//! contains `w`, in which case it has the shape
//! `σ(X) ∪ {y, ȳ : y ∈ Y} ∪ {w}`. Such a saturated model is minimal
//! exactly when no proper submodel exists, i.e. when **every** exact
//! `Y`-assignment under `σ` falsifies `φ` (any satisfying one would give a
//! smaller `w`-free model inside it). Hence a minimal model containing `w`
//! exists iff `∃σ ∀Y ¬φ(σ, ·)` iff `Φ` is invalid.
//!
//! Because GCWA, EGCWA, ECWA (with `P = V`), ICWA (degenerate
//! stratification), PERF, DSM and PDSM all reduce to minimal-model
//! inference on positive databases, this single construction witnesses the
//! Πᵖ₂-hardness entries of their Table-1 rows — exactly how the paper
//! derives them.

use crate::qbf::ForallExistsCnf;
use ddb_logic::{Atom, Database, Rule, Symbols};

/// The output of the reduction: the database and the distinguished atom.
pub struct GcwaInstance {
    /// The positive, integrity-free disjunctive database.
    pub db: Database,
    /// The atom `w`: `Φ` is valid iff `MM(db) ⊨ ¬w`.
    pub w: Atom,
}

/// Builds the reduction instance from a `∀X∃Y`-CNF formula.
pub fn forall_exists_to_gcwa(qbf: &ForallExistsCnf) -> GcwaInstance {
    let mut symbols = Symbols::new();
    let n = qbf.num_vars();
    // Positive and negative atom for every QBF variable.
    let pos: Vec<Atom> = (0..n).map(|v| symbols.intern(&format!("v{v}"))).collect();
    let neg: Vec<Atom> = (0..n)
        .map(|v| symbols.intern(&format!("v{v}_bar")))
        .collect();
    let w = symbols.intern("w");
    let mut db = Database::new(symbols);

    let lit_atom = |(v, s): (u32, bool)| if s { pos[v as usize] } else { neg[v as usize] };

    for v in 0..n as usize {
        db.add_rule(Rule::fact([pos[v], neg[v]]));
    }
    for y in qbf.num_universal..n {
        let y = y as usize;
        db.add_rule(Rule::new([pos[y]], [w], []));
        db.add_rule(Rule::new([neg[y]], [w], []));
    }
    for clause in &qbf.clauses {
        // w ← complements of the clause's literals.
        let body: Vec<Atom> = clause.iter().map(|&(v, s)| lit_atom((v, !s))).collect();
        db.add_rule(Rule::new([w], body, []));
    }
    GcwaInstance { db, w }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qbf::random_forall_exists;
    use ddb_core::{SemanticsConfig, SemanticsId};
    use ddb_models::Cost;

    #[test]
    fn produces_positive_integrity_free_db() {
        let q = random_forall_exists(2, 2, 4, 3, 7);
        let inst = forall_exists_to_gcwa(&q);
        assert!(inst.db.is_positive());
        assert_eq!(inst.db.class(), ddb_logic::DbClass::Positive);
    }

    #[test]
    fn reduction_preserves_answers_gcwa() {
        for seed in 0..60 {
            let q = random_forall_exists(2, 2, 4, 2, seed);
            let inst = forall_exists_to_gcwa(&q);
            let mut cost = Cost::new();
            let inferred =
                ddb_core::gcwa::infers_literal(&inst.db, inst.w.neg(), &mut cost).unwrap();
            assert_eq!(inferred, q.valid_brute(), "seed {seed}: {q:?}");
        }
    }

    #[test]
    fn reduction_preserves_answers_across_mm_semantics() {
        // The same instance must give the same answer under every
        // minimal-model-based semantics (they coincide on positive DBs).
        for seed in [3u64, 11, 19, 42] {
            let q = random_forall_exists(2, 2, 3, 2, seed);
            let inst = forall_exists_to_gcwa(&q);
            let expected = q.valid_brute();
            let mut cost = Cost::new();
            for id in [
                SemanticsId::Gcwa,
                SemanticsId::Egcwa,
                SemanticsId::Ecwa,
                SemanticsId::Icwa,
                SemanticsId::Perf,
                SemanticsId::Dsm,
                SemanticsId::Pdsm,
            ] {
                let cfg = SemanticsConfig::new(id);
                let got = cfg
                    .infers_literal(&inst.db, inst.w.neg(), &mut cost)
                    .expect("applicable on positive DBs");
                assert_eq!(got, expected, "seed {seed} semantics {id}");
            }
        }
    }

    #[test]
    fn valid_and_invalid_fixed_instances() {
        // ∀x∃y (x∨y)(¬x∨¬y): valid → ¬w inferred.
        let valid = ForallExistsCnf {
            num_universal: 1,
            num_existential: 1,
            clauses: vec![vec![(0, true), (1, true)], vec![(0, false), (1, false)]],
        };
        let inst = forall_exists_to_gcwa(&valid);
        let mut cost = Cost::new();
        assert!(ddb_core::gcwa::infers_literal(&inst.db, inst.w.neg(), &mut cost).unwrap());

        // ∀x∃y (x): invalid → some minimal model contains w.
        let invalid = ForallExistsCnf {
            num_universal: 1,
            num_existential: 1,
            clauses: vec![vec![(0, true)]],
        };
        let inst = forall_exists_to_gcwa(&invalid);
        assert!(!ddb_core::gcwa::infers_literal(&inst.db, inst.w.neg(), &mut cost).unwrap());
    }

    use crate::qbf::ForallExistsCnf;
}
