//! NP/coNP-level reductions for the first-level table cells.
//!
//! * [`cnf_to_deductive_db`] — SAT ⇔ model existence for EGCWA (and GCWA,
//!   CCWA, ECWA) over deductive databases *with integrity clauses*: each
//!   CNF clause becomes a rule whose head holds the positive literals and
//!   whose body the atoms under negation; clauses without positive
//!   literals become integrity clauses. Model existence under those
//!   semantics equals classical satisfiability, so the cell is
//!   NP-complete (Table 2) versus `O(1)` for positive databases (Table 1).
//! * [`cnf_to_formula_query`] — UNSAT ⇔ formula inference under DDR/PWS
//!   (and classical entailment): with an *empty* database over the CNF's
//!   vocabulary, `DDR(∅) ⊨ ¬F_C` iff `C` is unsatisfiable... except DDR
//!   over the empty database closes every atom; instead we query the
//!   negated CNF against the database of *excluded-middle disjunctions*
//!   `a ∨ ā`, which keeps every atom active and makes the semantics' model
//!   set the full assignment space. coNP-hardness of formula inference for
//!   DDR and PWS follows (their Table-1 formula cells).

use ddb_logic::{Atom, Database, Formula, Rule, Symbols};

/// CNF clauses as `(var, sign)` lists.
pub type CnfInput = Vec<Vec<(u32, bool)>>;

/// Converts a CNF over `num_vars` variables into a deductive database
/// (positive rules + integrity clauses) with the same models.
pub fn cnf_to_deductive_db(num_vars: u32, cnf: &CnfInput) -> Database {
    let mut symbols = Symbols::new();
    let atoms: Vec<Atom> = (0..num_vars)
        .map(|v| symbols.intern(&format!("v{v}")))
        .collect();
    let mut db = Database::new(symbols);
    for clause in cnf {
        let head: Vec<Atom> = clause
            .iter()
            .filter(|&&(_, s)| s)
            .map(|&(v, _)| atoms[v as usize])
            .collect();
        let body: Vec<Atom> = clause
            .iter()
            .filter(|&&(_, s)| !s)
            .map(|&(v, _)| atoms[v as usize])
            .collect();
        db.add_rule(Rule::new(head, body, []));
    }
    db
}

/// The instance for the coNP-hardness of formula inference: a database of
/// excluded-middle disjunctions `vᵢ ∨ v̄ᵢ` plus the query formula
/// "`C` translated, negated" — the semantics infers the query iff `C` is
/// unsatisfiable.
pub struct FormulaQuery {
    /// Database of excluded-middle disjunctions (positive,
    /// integrity-free).
    pub db: Database,
    /// Query: inferred under DDR/PWS iff the CNF is unsatisfiable.
    pub query: Formula,
}

/// Builds the coNP formula-inference instance from a CNF.
pub fn cnf_to_formula_query(num_vars: u32, cnf: &CnfInput) -> FormulaQuery {
    let mut symbols = Symbols::new();
    let pos: Vec<Atom> = (0..num_vars)
        .map(|v| symbols.intern(&format!("v{v}")))
        .collect();
    let neg: Vec<Atom> = (0..num_vars)
        .map(|v| symbols.intern(&format!("v{v}_bar")))
        .collect();
    let mut db = Database::new(symbols);
    for v in 0..num_vars as usize {
        db.add_rule(Rule::fact([pos[v], neg[v]]));
    }
    // C translated: each literal v ↦ atom v, ¬v ↦ atom v̄ (so the formula
    // is positive and its truth under an exact assignment matches C's).
    let translated = Formula::And(
        cnf.iter()
            .map(|clause| {
                Formula::Or(
                    clause
                        .iter()
                        .map(|&(v, s)| {
                            Formula::atom(if s { pos[v as usize] } else { neg[v as usize] })
                        })
                        .collect(),
                )
            })
            .collect(),
    );
    // Under DDR/PWS the models include every exact assignment; C is
    // unsatisfiable iff ¬(translated) holds in all of them... except
    // non-exact models (both v, v̄) can satisfy `translated` spuriously.
    // Guard with exactness: query = (exact assignment) → ¬translated.
    let exact = Formula::And(
        (0..num_vars as usize)
            .map(|v| {
                Formula::Or(vec![
                    Formula::atom(pos[v]).negated(),
                    Formula::atom(neg[v]).negated(),
                ])
            })
            .collect(),
    );
    let query = exact.implies(translated.negated());
    FormulaQuery { db, query }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_models::{classical, Cost};

    fn random_cnf(num_vars: u32, num_clauses: usize, width: usize, seed: u64) -> CnfInput {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..num_clauses)
            .map(|_| {
                (0..width)
                    .map(|_| ((next() % num_vars as u64) as u32, next() % 2 == 0))
                    .collect()
            })
            .collect()
    }

    fn brute_sat(num_vars: u32, cnf: &CnfInput) -> bool {
        (0u64..1 << num_vars).any(|bits| {
            cnf.iter()
                .all(|c| c.iter().any(|&(v, s)| (bits >> v & 1 == 1) == s))
        })
    }

    #[test]
    fn deductive_db_preserves_models() {
        for seed in 0..50 {
            let cnf = random_cnf(4, 6, 3, seed);
            let db = cnf_to_deductive_db(4, &cnf);
            assert!(!db.has_negation());
            let mut cost = Cost::new();
            assert_eq!(
                classical::is_satisfiable(&db, &mut cost).unwrap(),
                brute_sat(4, &cnf),
                "seed {seed}"
            );
            // EGCWA model existence coincides with satisfiability.
            assert_eq!(
                ddb_core::egcwa::has_model(&db, &mut cost).unwrap(),
                brute_sat(4, &cnf),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn all_negative_clause_becomes_integrity() {
        let cnf: CnfInput = vec![vec![(0, false), (1, false)]];
        let db = cnf_to_deductive_db(2, &cnf);
        assert!(db.has_integrity_clauses());
        assert_eq!(db.class(), ddb_logic::DbClass::Deductive);
    }

    #[test]
    fn formula_query_decides_unsat_under_ddr_and_pws() {
        for seed in 0..40 {
            let cnf = random_cnf(3, 5, 2, seed);
            let q = cnf_to_formula_query(3, &cnf);
            let unsat = !brute_sat(3, &cnf);
            let mut cost = Cost::new();
            assert_eq!(
                ddb_core::ddr::infers_formula(&q.db, &q.query, &mut cost).unwrap(),
                unsat,
                "DDR seed {seed}"
            );
            assert_eq!(
                ddb_core::pws::infers_formula(&q.db, &q.query, &mut cost).unwrap(),
                unsat,
                "PWS seed {seed}"
            );
        }
    }

    #[test]
    fn formula_query_db_is_positive() {
        let q = cnf_to_formula_query(2, &vec![vec![(0, true), (1, false)]]);
        assert!(q.db.is_positive());
    }
}
