//! UMINSAT — does a CNF have a **unique** minimal model? (Proposition 5.4
//! of the paper: coNP-hard, and not in coDᵖ unless the polynomial
//! hierarchy collapses.)
//!
//! The coNP-hardness reduction implemented here: given a CNF `C` over
//! variables `V`, add fresh atoms `t` and `q`, and let
//!
//! `C′ = {c ∨ t : c ∈ C} ∪ {q ∨ t}`.
//!
//! * If `C` is unsatisfiable, every model of `C′` contains `t`, and `{t}`
//!   is a model — the unique minimal one.
//! * If `C` is satisfiable with model `M`, then `M ∪ {q}` is a `t`-free
//!   model of `C′`, so some minimal model avoids `t`; meanwhile `{t}` is
//!   still minimal (its only proper subset `∅` violates `q ∨ t`). Two
//!   incomparable minimal models — not unique.
//!
//! Hence `C` is unsatisfiable iff `C′` has a unique minimal model.

use ddb_logic::{Database, Interpretation, Rule, Symbols};
use ddb_models::{minimal, Cost};
use ddb_obs::Governed;

/// Decides UMINSAT for a database (clausal theory): does it have exactly
/// one minimal model? Enumerates at most two minimal models.
pub fn has_unique_minimal_model(db: &Database, cost: &mut Cost) -> Governed<bool> {
    // Reuse the enumeration machinery but stop after two.
    let mut count = 0usize;
    let models = minimal::minimal_models(db, cost)?;
    for _ in models.iter().take(2) {
        count += 1;
    }
    Ok(count == 1)
}

/// The UNSAT → UMINSAT reduction; returns the padded database `C′`.
pub fn unsat_to_uminsat(num_vars: u32, cnf: &[Vec<(u32, bool)>]) -> Database {
    let mut symbols = Symbols::new();
    let atoms: Vec<ddb_logic::Atom> = (0..num_vars)
        .map(|v| symbols.intern(&format!("v{v}")))
        .collect();
    let t = symbols.intern("t");
    let q = symbols.intern("q");
    let mut db = Database::new(symbols);
    for clause in cnf {
        // c ∨ t as a rule: positive literals (and t) in the head, negated
        // atoms in the body.
        let mut head: Vec<ddb_logic::Atom> = clause
            .iter()
            .filter(|&&(_, s)| s)
            .map(|&(v, _)| atoms[v as usize])
            .collect();
        head.push(t);
        let body: Vec<ddb_logic::Atom> = clause
            .iter()
            .filter(|&&(_, s)| !s)
            .map(|&(v, _)| atoms[v as usize])
            .collect();
        db.add_rule(Rule::new(head, body, []));
    }
    db.add_rule(Rule::fact([q, t]));
    db
}

/// Convenience: the unique minimal model, when it exists.
pub fn unique_minimal_model(db: &Database, cost: &mut Cost) -> Governed<Option<Interpretation>> {
    let models = minimal::minimal_models(db, cost)?;
    Ok(if models.len() == 1 {
        models.into_iter().next()
    } else {
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_sat(num_vars: u32, cnf: &[Vec<(u32, bool)>]) -> bool {
        (0u64..1 << num_vars).any(|bits| {
            cnf.iter()
                .all(|c| c.iter().any(|&(v, s)| (bits >> v & 1 == 1) == s))
        })
    }

    fn random_cnf(
        num_vars: u32,
        num_clauses: usize,
        width: usize,
        seed: u64,
    ) -> Vec<Vec<(u32, bool)>> {
        let mut state = seed.wrapping_mul(0xD1342543DE82EF95).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..num_clauses)
            .map(|_| {
                (0..width)
                    .map(|_| ((next() % num_vars as u64) as u32, next() % 2 == 0))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn reduction_preserves_answers() {
        for seed in 0..80 {
            let cnf = random_cnf(4, 7, 2, seed);
            let db = unsat_to_uminsat(4, &cnf);
            let mut cost = Cost::new();
            assert_eq!(
                has_unique_minimal_model(&db, &mut cost).unwrap(),
                !brute_sat(4, &cnf),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn unsat_gives_the_t_model() {
        // (v0) ∧ (¬v0): unsatisfiable.
        let cnf = vec![vec![(0, true)], vec![(0, false)]];
        let db = unsat_to_uminsat(1, &cnf);
        let mut cost = Cost::new();
        let unique = unique_minimal_model(&db, &mut cost)
            .unwrap()
            .expect("unique");
        let t = db.symbols().lookup("t").unwrap();
        assert_eq!(unique, Interpretation::from_atoms(db.num_atoms(), [t]));
    }

    #[test]
    fn sat_gives_two_minimal_models() {
        // (v0): satisfiable.
        let cnf = vec![vec![(0, true)]];
        let db = unsat_to_uminsat(1, &cnf);
        let mut cost = Cost::new();
        assert!(!has_unique_minimal_model(&db, &mut cost).unwrap());
        assert!(unique_minimal_model(&db, &mut cost).unwrap().is_none());
    }

    #[test]
    fn uminsat_direct_examples() {
        use ddb_logic::parse::parse_program;
        let mut cost = Cost::new();
        // Horn database: unique minimal model.
        let horn = parse_program("a. b :- a.").unwrap();
        assert!(has_unique_minimal_model(&horn, &mut cost).unwrap());
        // Disjunction: two minimal models.
        let dis = parse_program("a | b.").unwrap();
        assert!(!has_unique_minimal_model(&dis, &mut cost).unwrap());
        // Unsatisfiable: zero minimal models — not unique.
        let bad = parse_program("a. :- a.").unwrap();
        assert!(!has_unique_minimal_model(&bad, &mut cost).unwrap());
    }
}
