//! Σᵖ₂-hardness of disjunctive stable model existence.
//!
//! Given `Ψ = ∃X ∀Y ψ` with DNF matrix, build the normal database
//!
//! ```text
//! x ← ¬x̄.   x̄ ← ¬x.      for every x ∈ X        (stable choice)
//! y ∨ ȳ.                  for every y ∈ Y
//! y ← w.    ȳ ← w.        for every y ∈ Y        (w saturates Y)
//! w ← d̃.                  for every DNF term d    (d̃ = its literal atoms)
//! ← ¬w.                   (w must hold)
//! ```
//!
//! **Claim**: `DB` has a disjunctive stable model iff `Ψ` is true.
//!
//! *Why*: any stable model fixes an exclusive `X`-choice `σ` (the negative
//! loop), must contain `w` (the constraint), hence saturates `Y`. The
//! GL-reduct is then the positive program of the GCWA reduction, and the
//! saturated model is minimal in it exactly when every exact
//! `Y`-assignment satisfies some term of `ψ` under `σ` — i.e. when
//! `∀Y ψ(σ,·)`. So stable models correspond to the outer witnesses of `Ψ`.
//!
//! (Przymusinski's equivalence `PDSM = DSM` on the relevant fragments
//! carries the same lower bound to PDSM; the paper notes integrity clauses
//! are not even essential there.)

use crate::qbf::ExistsForallDnf;
use ddb_logic::{Atom, Database, Rule, Symbols};

/// Reduction output.
pub struct DsmInstance {
    /// The disjunctive normal database.
    pub db: Database,
    /// The saturation atom `w` (every stable model contains it).
    pub w: Atom,
}

/// Builds the reduction instance from an `∃X∀Y`-DNF formula.
pub fn exists_forall_to_dsm_existence(qbf: &ExistsForallDnf) -> DsmInstance {
    let mut symbols = Symbols::new();
    let n = qbf.num_vars();
    let pos: Vec<Atom> = (0..n).map(|v| symbols.intern(&format!("v{v}"))).collect();
    let neg: Vec<Atom> = (0..n)
        .map(|v| symbols.intern(&format!("v{v}_bar")))
        .collect();
    let w = symbols.intern("w");
    let mut db = Database::new(symbols);

    let lit_atom = |(v, s): (u32, bool)| if s { pos[v as usize] } else { neg[v as usize] };

    for x in 0..qbf.num_existential_outer as usize {
        db.add_rule(Rule::new([pos[x]], [], [neg[x]]));
        db.add_rule(Rule::new([neg[x]], [], [pos[x]]));
    }
    for y in qbf.num_existential_outer..n {
        let y = y as usize;
        db.add_rule(Rule::fact([pos[y], neg[y]]));
        db.add_rule(Rule::new([pos[y]], [w], []));
        db.add_rule(Rule::new([neg[y]], [w], []));
    }
    for term in &qbf.terms {
        let body: Vec<Atom> = term.iter().map(|&l| lit_atom(l)).collect();
        db.add_rule(Rule::new([w], body, []));
    }
    db.add_rule(Rule::integrity([], [w]));
    DsmInstance { db, w }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qbf::{random_forall_exists, ExistsForallDnf};
    use ddb_models::Cost;

    #[test]
    fn reduction_preserves_answers() {
        for seed in 0..60 {
            // Random Σᵖ₂ instances as complements of ∀∃ ones.
            let q = random_forall_exists(2, 2, 4, 2, seed).complement();
            let inst = exists_forall_to_dsm_existence(&q);
            let mut cost = Cost::new();
            let has_stable = ddb_core::dsm::has_model(&inst.db, &mut cost).unwrap();
            assert_eq!(has_stable, q.true_brute(), "seed {seed}: {q:?}");
        }
    }

    #[test]
    fn fixed_instances() {
        // ∃x ∀y (x ∧ y) ∨ (x ∧ ¬y): true with x = 1.
        let yes = ExistsForallDnf {
            num_existential_outer: 1,
            num_universal_inner: 1,
            terms: vec![vec![(0, true), (1, true)], vec![(0, true), (1, false)]],
        };
        let inst = exists_forall_to_dsm_existence(&yes);
        let mut cost = Cost::new();
        assert!(ddb_core::dsm::has_model(&inst.db, &mut cost).unwrap());

        // ∃x ∀y (y): false (y = 0 refutes every x).
        let no = ExistsForallDnf {
            num_existential_outer: 1,
            num_universal_inner: 1,
            terms: vec![vec![(1, true)]],
        };
        let inst = exists_forall_to_dsm_existence(&no);
        assert!(!ddb_core::dsm::has_model(&inst.db, &mut cost).unwrap());
    }

    #[test]
    fn stable_models_are_saturated_witnesses() {
        let q = ExistsForallDnf {
            num_existential_outer: 1,
            num_universal_inner: 1,
            terms: vec![vec![(0, true), (1, true)], vec![(0, true), (1, false)]],
        };
        let inst = exists_forall_to_dsm_existence(&q);
        let mut cost = Cost::new();
        let models = ddb_core::dsm::models(&inst.db, &mut cost).unwrap();
        assert_eq!(models.len(), 1);
        let m = &models[0];
        assert!(m.contains(inst.w));
        // Saturated: both y and ȳ true.
        let y = inst.db.symbols().lookup("v1").unwrap();
        let ybar = inst.db.symbols().lookup("v1_bar").unwrap();
        assert!(m.contains(y) && m.contains(ybar));
        // Witness: x chosen true, x̄ false.
        let x = inst.db.symbols().lookup("v0").unwrap();
        let xbar = inst.db.symbols().lookup("v0_bar").unwrap();
        assert!(m.contains(x) && !m.contains(xbar));
    }
}
