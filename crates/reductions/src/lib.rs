//! # ddb-reductions — the lower bounds, made executable
//!
//! The hardness halves of the paper's table entries are reductions. This
//! crate implements them as *executable transformations* and the test
//! suite verifies, on thousands of randomly generated instances, that each
//! reduction preserves yes/no answers — which is precisely the correctness
//! content of the corresponding proof:
//!
//! * [`qbf`] — quantified Boolean formulas with one quantifier
//!   alternation (`∀X∃Y φ` with CNF matrix, `∃X∀Y ψ` with DNF matrix),
//!   with a brute-force evaluator and an oracle-style evaluator
//!   (outer-assignment enumeration around the SAT substrate);
//! * [`gcwa_hardness`] — the Theorem-3.1-style reduction: `∀X∃Y φ` is
//!   valid iff `MM(DB) ⊨ ¬w` for a *positive, integrity-free* DDB — the
//!   source of Πᵖ₂-hardness for literal inference under GCWA, EGCWA,
//!   ECWA/CIRC, ICWA, PERF, DSM and PDSM (all of which coincide with
//!   minimal-model inference on positive databases);
//! * [`dsm_hardness`] — `∃X∀Y ψ` is true iff a normal database has a
//!   disjunctive stable model (Σᵖ₂-hardness of DSM model existence);
//! * [`sat_reductions`] — the NP/coNP-level cells: SAT ⇔ model existence
//!   for EGCWA with integrity clauses, and UNSAT/validity ⇔ formula
//!   inference for DDR/PWS;
//! * [`uminsat`] — the UMINSAT problem (does a CNF have a *unique*
//!   minimal model?) with the coNP-hardness reduction of Proposition 5.4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dsm_hardness;
pub mod gcwa_hardness;
pub mod qbf;
pub mod sat_reductions;
pub mod uminsat;
