//! Seeded property tests for the magic (goal-directed restriction)
//! route: on databases whose atoms carry ground argument tuples, bound
//! queries may be answered on the demand-restricted sub-database, and
//! whatever `RoutingMode::Auto` decides the answers must be identical to
//! the generic whole-database procedures — for all ten semantics, on the
//! corpus and on random structured databases, for bound and unbound
//! queries alike. Where the route is admitted it must never pay more
//! oracle calls, and both the admitted route and the blocked fallback
//! must be observable in the `route.magic.*` counters.

use ddb_analysis::magic_restrict;
use ddb_core::{RoutingMode, SemanticsConfig, SemanticsId};
use ddb_logic::parse::parse_program;
use ddb_logic::rng::XorShift64Star;
use ddb_logic::{Atom, Database, Formula};
use ddb_models::Cost;
use std::sync::Mutex;

/// Serializes tests that assert on the process-global obs counters.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

/// Hand-picked structured databases covering the admission paths: a
/// two-component ancestry program (pruned and admitted), negation read
/// into the restriction from outside (blocked for the stable family),
/// constraints riding the restriction, an inconsistent program,
/// unstratifiable negation, a propositional/structured mix, and a
/// program whose query component is everything (no savings, still
/// sound).
const CORPUS: &[&str] = &[
    "root(t1,a) | root(t1,b). anc(t1,a) :- root(t1,a). anc(t1,b) :- root(t1,b). \
     anc(t1,m) :- anc(t1,b). root(t2,x). anc(t2,x) :- root(t2,x).",
    "p(a) | p(b). q(a) :- p(a). r(b) :- not q(a). s(b).",
    "t(a). :- t(a), u(b). v(c) | w(c).",
    "x(a). :- x(a).",
    "a(p) :- not b(p). b(p) :- not a(p). c(q) | d(q) :- a(p).",
    "e. f(a) :- e. g(b).",
    "h(k) | i(k). j(k) :- h(k). j(k) :- i(k).",
];

fn query_formulas(db: &Database) -> Vec<Formula> {
    let mut fs = Vec::new();
    let n = db.num_atoms();
    if n >= 1 {
        fs.push(Formula::Atom(Atom::new(0)));
        fs.push(Formula::Atom(Atom::new(0)).negated());
    }
    if n >= 2 {
        fs.push(Formula::Or(vec![
            Formula::Atom(Atom::new(0)),
            Formula::Atom(Atom::new(1)).negated(),
        ]));
        fs.push(Formula::And(vec![
            Formula::Atom(Atom::new(0)),
            Formula::Atom(Atom::new(1)),
        ]));
    }
    fs
}

/// The heart of the suite: the auto-routed config (magic, slice, split,
/// Horn — whichever the planner picks) must agree with the generic one
/// on every public entry point. Literal queries over structured atoms
/// are the bound case; the formula queries and propositional atoms
/// exercise the unbound fallback.
fn assert_magic_agrees(id: SemanticsId, db: &Database) {
    let auto = SemanticsConfig::new(id);
    let generic = SemanticsConfig::new(id).with_routing(RoutingMode::Generic);
    let mut ca = Cost::new();
    let mut cg = Cost::new();

    match (auto.has_model(db, &mut ca), generic.has_model(db, &mut cg)) {
        (Ok(a), Ok(g)) => assert_eq!(a, g, "{id:?} has_model on {db:?}"),
        (Err(_), Err(_)) => return, // unsupported either way
        _ => panic!("{id:?}: routed and generic disagree on applicability for {db:?}"),
    }

    // Cap the sweep: the first atoms of a structured database are the
    // interesting bound-query targets; sweeping all ~12 atoms of the
    // random databases × ten semantics × 120 databases is pure runtime.
    for i in 0..db.num_atoms().min(6) as u32 {
        for lit in [Atom::new(i).pos(), Atom::new(i).neg()] {
            assert_eq!(
                auto.infers_literal(db, lit, &mut ca).unwrap(),
                generic.infers_literal(db, lit, &mut cg).unwrap(),
                "{id:?} infers_literal {lit:?} on {db:?}"
            );
        }
    }
    for f in query_formulas(db) {
        assert_eq!(
            auto.infers_formula(db, &f, &mut ca).unwrap(),
            generic.infers_formula(db, &f, &mut cg).unwrap(),
            "{id:?} infers_formula {f:?} on {db:?}"
        );
    }
}

#[test]
fn corpus_magic_answers_equal_generic_for_all_ten_semantics() {
    for src in CORPUS {
        let db = parse_program(src).unwrap();
        for id in SemanticsId::ALL {
            assert_magic_agrees(id, &db);
        }
    }
}

/// A random ground structured program rendered as source text: three
/// predicates over two component keys and two values, so most atoms are
/// bound-queryable and components overlap often enough to exercise both
/// proper restrictions and whole-database ones.
fn random_structured_db(rng: &mut XorShift64Star, allow_neg: bool) -> Database {
    let pool: Vec<String> = (0..2)
        .flat_map(|p| (0..2).flat_map(move |k| (0..2).map(move |v| format!("p{p}(k{k},v{v})"))))
        .collect();
    let pick = |rng: &mut XorShift64Star| pool[rng.gen_range(0, pool.len())].clone();
    let mut src = String::new();
    for _ in 0..rng.gen_range(1, 6) {
        let heads: Vec<String> = (0..rng.gen_range(0, 3)).map(|_| pick(rng)).collect();
        let mut body: Vec<String> = (0..rng.gen_range(0, 3)).map(|_| pick(rng)).collect();
        for _ in 0..rng.gen_range(0, 1 + 2 * usize::from(allow_neg)) {
            body.push(format!("not {}", pick(rng)));
        }
        if heads.is_empty() && body.is_empty() {
            src.push_str("p0(k0,v0). ");
            continue;
        }
        src.push_str(&heads.join(" | "));
        if !body.is_empty() {
            src.push_str(" :- ");
            src.push_str(&body.join(", "));
        }
        src.push_str(". ");
    }
    parse_program(&src).unwrap()
}

#[test]
fn random_positive_structured_dbs_magic_answers_equal_generic() {
    let mut rng = XorShift64Star::seed_from_u64(0xDDB_0901);
    for _ in 0..60 {
        let db = random_structured_db(&mut rng, false);
        for id in SemanticsId::ALL {
            assert_magic_agrees(id, &db);
        }
    }
}

#[test]
fn random_normal_structured_dbs_magic_answers_equal_generic() {
    let mut rng = XorShift64Star::seed_from_u64(0xDDB_0902);
    for _ in 0..60 {
        let db = random_structured_db(&mut rng, true);
        for id in SemanticsId::ALL {
            assert_magic_agrees(id, &db);
        }
    }
}

/// A positive program of `components` independent derivation chains
/// sharing a vocabulary shape, where a bound query touches exactly one
/// component: `start(ci,a) | start(ci,b).` then `reach(ci,n0)` from
/// either founder and `reach(ci,nj) :- reach(ci,n{j-1})`.
fn chained_db(components: usize, depth: usize) -> (Database, String) {
    let mut src = String::new();
    for c in 0..components {
        src.push_str(&format!("start(c{c},a) | start(c{c},b). "));
        src.push_str(&format!("reach(c{c},n0) :- start(c{c},a). "));
        src.push_str(&format!("reach(c{c},n0) :- start(c{c},b). "));
        for j in 1..=depth {
            src.push_str(&format!("reach(c{c},n{j}) :- reach(c{c},n{}). ", j - 1));
        }
    }
    let query = format!("reach(c0,n{depth})");
    (parse_program(&src).unwrap(), query)
}

#[test]
fn magic_restriction_never_grows_the_rule_set_and_prunes_chains() {
    let (db, query) = chained_db(6, 4);
    let atom = db.symbols().lookup(&query).unwrap();
    let restriction = magic_restrict(&db, &[atom], true);
    assert!(
        restriction.slice.rules.len() <= db.len(),
        "a restriction can never have more rules than the database"
    );
    // Six identical components, one demanded: the restriction keeps one
    // component's 7 rules out of 42.
    assert_eq!(restriction.slice.rules.len(), 7);
    assert!(restriction.slice.split_closed);
}

#[test]
fn admitted_magic_pays_no_more_oracle_calls_for_any_semantics() {
    let (db, query) = chained_db(4, 3);
    let atom = db.symbols().lookup(&query).unwrap();
    for id in SemanticsId::ALL {
        let auto = SemanticsConfig::new(id);
        let generic = SemanticsConfig::new(id).with_routing(RoutingMode::Generic);
        let mut ca = Cost::new();
        let mut cg = Cost::new();
        let (a, g) = match (
            auto.infers_literal(&db, atom.pos(), &mut ca),
            generic.infers_literal(&db, atom.pos(), &mut cg),
        ) {
            (Ok(a), Ok(g)) => (a, g),
            (Err(_), Err(_)) => continue,
            _ => panic!("{id:?}: routed and generic disagree on applicability"),
        };
        assert_eq!(a, g, "{id:?} on the chained family");
        assert!(
            ca.sat_calls <= cg.sat_calls,
            "{id:?}: the magic route must never pay more oracle calls \
             ({} vs {} SAT calls)",
            ca.sat_calls,
            cg.sat_calls
        );
    }
}

#[test]
fn bound_query_takes_the_magic_route_and_counts_dropped_rules() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let (db, query) = chained_db(4, 3);
    let atom = db.symbols().lookup(&query).unwrap();
    let before = ddb_obs::snapshot();
    let mut cost = Cost::new();
    let ans = SemanticsConfig::new(SemanticsId::Gcwa)
        .infers_literal(&db, atom.pos(), &mut cost)
        .unwrap()
        .definite();
    assert!(ans, "the chain endpoint holds in every minimal model");
    let diff = ddb_obs::snapshot().diff(&before);
    assert!(diff.get("route.magic") > 0, "magic route taken: {diff:?}");
    assert!(
        diff.get("route.magic.dropped_rules") > 0,
        "pruned rules must be counted: {diff:?}"
    );
}

#[test]
fn blocked_restriction_falls_back_and_counts_it() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    // The restriction of `q(a)` is {p(a), p(b), q(a)}, but `r(b) :- not
    // q(a).` reads `q(a)` through negation from outside: not
    // split-closed, and the database is not positive, so the magic
    // admission is Blocked for DSM and the generic route must answer.
    let db = parse_program("p(a) | p(b). q(a) :- p(a). r(b) :- not q(a). s(b).").unwrap();
    let before = ddb_obs::snapshot();
    assert_magic_agrees(SemanticsId::Dsm, &db);
    let diff = ddb_obs::snapshot().diff(&before);
    assert!(
        diff.get("route.magic.blocked") > 0,
        "fallback must be observable: {diff:?}"
    );
}

#[test]
fn propositional_queries_never_take_the_magic_route() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    // `e` carries no argument tuple, so the query is unbound and the
    // planner must not attempt a demand restriction.
    let db = parse_program("e. f(a) :- e. g(b).").unwrap();
    let atom = db.symbols().lookup("e").unwrap();
    let before = ddb_obs::snapshot();
    let mut cost = Cost::new();
    let ans = SemanticsConfig::new(SemanticsId::Gcwa)
        .infers_literal(&db, atom.pos(), &mut cost)
        .unwrap()
        .definite();
    assert!(ans, "a fact holds everywhere");
    let diff = ddb_obs::snapshot().diff(&before);
    assert_eq!(
        diff.get("route.magic"),
        0,
        "unbound query routed magic: {diff:?}"
    );
}
