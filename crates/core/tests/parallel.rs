//! Determinism and budget-inheritance properties of component-parallel
//! evaluation: for every semantics and every database, the answers, the
//! model sets, and the oracle bills must be byte-identical at every
//! thread count — the worker pool may only change wall-clock time. A
//! parent budget that trips mid-run must stop every worker with a typed
//! interrupt and leave the thread in a clean, reusable state.

use ddb_core::{parallel, SemanticsConfig, SemanticsId, Verdict};
use ddb_logic::parse::parse_program;
use ddb_logic::{Atom, Database, Formula};
use ddb_models::Cost;
use ddb_obs::{Budget, Resource};
use ddb_workloads::random::{random_db, DbSpec};

/// Same corpus as the governance suite: the syntactic classes the ten
/// semantics split on.
const CORPUS: &[&str] = &[
    "a | b. c :- a, b.",
    "a | b. :- a, b. c :- a, b.",
    "a. b :- a. c | d :- b. :- c, d.",
    "p :- not q. q :- not p. r | s :- p.",
    "p :- not q. q :- not p. r :- not r.",
];

/// Thread counts the pool must be indistinguishable across.
const WIDTHS: [usize; 3] = [1, 2, 8];

fn corpus_and_random() -> Vec<Database> {
    let mut dbs: Vec<Database> = CORPUS.iter().map(|s| parse_program(s).unwrap()).collect();
    for seed in 0..100u64 {
        let spec = match seed % 3 {
            0 => DbSpec::positive(4, 7),
            1 => DbSpec::deductive(4, 7),
            _ => DbSpec::normal(4, 7),
        };
        dbs.push(random_db(&spec, seed));
    }
    dbs
}

/// One full pass over the paper's decision problems plus the oracle
/// accounting. `None` when the semantics does not support the class.
fn run_all(cfg: &SemanticsConfig, db: &Database) -> Option<(Verdict, Verdict, Verdict, Cost)> {
    let lit = Atom::new(0).neg();
    let f = Formula::Or(vec![
        Formula::Atom(Atom::new(0)),
        Formula::Atom(Atom::new(1)).negated(),
    ]);
    let mut cost = Cost::new();
    let l = cfg.infers_literal(db, lit, &mut cost).ok()?;
    let fo = cfg.infers_formula(db, &f, &mut cost).ok()?;
    let e = cfg.has_model(db, &mut cost).ok()?;
    Some((l, fo, e, cost))
}

#[test]
fn thread_count_never_changes_answers_or_oracle_bills() {
    for (di, db) in corpus_and_random().iter().enumerate() {
        for id in SemanticsId::ALL {
            let base = match run_all(&SemanticsConfig::new(id), db) {
                Some(r) => r,
                None => continue,
            };
            for width in [2, 8] {
                let cfg = SemanticsConfig::new(id).with_threads(width);
                let wide = run_all(&cfg, db).expect("applicability cannot depend on threads");
                assert_eq!(
                    (&base.0, &base.1, &base.2),
                    (&wide.0, &wide.1, &wide.2),
                    "{id} db {di} threads {width}: answers must be identical"
                );
                assert_eq!(
                    base.3.sat_calls, wide.3.sat_calls,
                    "{id} db {di} threads {width}: oracle-call totals must be identical"
                );
                assert_eq!(
                    base.3.candidates, wide.3.candidates,
                    "{id} db {di} threads {width}: candidate counts must be identical"
                );
            }
        }
    }
}

#[test]
fn thread_count_never_changes_model_sets() {
    for (di, src) in CORPUS.iter().enumerate() {
        let db = parse_program(src).unwrap();
        for id in SemanticsId::ALL {
            let mut cost = Cost::new();
            let base = match SemanticsConfig::new(id).models(&db, &mut cost) {
                Ok(e) => e,
                Err(_) => continue,
            };
            assert!(base.is_complete(), "{id} db {di}: ungoverned run completes");
            for width in [2, 8] {
                let cfg = SemanticsConfig::new(id).with_threads(width);
                let mut cost = Cost::new();
                let wide = cfg.models(&db, &mut cost).expect("same applicability");
                assert_eq!(
                    base.models, wide.models,
                    "{id} db {di} threads {width}: model sets must be identical"
                );
            }
        }
    }
}

#[test]
fn batch_inference_matches_sequential_loop_on_corpus() {
    let a = |i: u32| Formula::Atom(Atom::new(i));
    let formulas: Vec<Formula> = vec![
        a(0),
        a(1).negated(),
        Formula::Or(vec![a(0), a(1)]),
        Formula::And(vec![a(0), a(2).negated()]),
        a(1).implies(a(0)),
    ];
    for (di, src) in CORPUS.iter().enumerate() {
        let db = parse_program(src).unwrap();
        for id in SemanticsId::ALL {
            let sequential: Option<Vec<(Verdict, Cost)>> = formulas
                .iter()
                .map(|f| {
                    let mut c = Cost::new();
                    SemanticsConfig::new(id)
                        .infers_formula(&db, f, &mut c)
                        .ok()
                        .map(|v| (v, c))
                })
                .collect();
            for width in WIDTHS {
                let cfg = SemanticsConfig::new(id).with_threads(width);
                let batch = parallel::infers_formulas_batch(&cfg, &db, &formulas).ok();
                match (&sequential, &batch) {
                    (None, None) => {}
                    (Some(seq), Some(bat)) => {
                        assert_eq!(seq.len(), bat.len());
                        for (fi, ((sv, sc), (bv, bc))) in seq.iter().zip(bat.iter()).enumerate() {
                            assert_eq!(
                                sv, bv,
                                "{id} db {di} formula {fi} threads {width}: batch verdict"
                            );
                            assert_eq!(
                                sc.sat_calls, bc.sat_calls,
                                "{id} db {di} formula {fi} threads {width}: batch oracle bill"
                            );
                        }
                    }
                    _ => panic!("{id} db {di} threads {width}: applicability diverged"),
                }
            }
        }
    }
}

/// A database whose dependency graph is many disjoint islands, so
/// existence checks route through the worker pool at every width ≥ 2.
fn many_islands() -> Database {
    ddb_workloads::structured::sliceable_towers(8, 3)
}

#[test]
fn parallel_islands_route_fires_and_agrees_with_sequential() {
    let db = many_islands();
    let cfg = SemanticsConfig::new(SemanticsId::Gcwa);
    let mut cost = Cost::new();
    let base = cfg.has_model(&db, &mut cost).unwrap();
    assert_eq!(base.as_bool(), Some(true));
    for width in [2, 8] {
        let cfg = SemanticsConfig::new(SemanticsId::Gcwa).with_threads(width);
        let before = ddb_obs::thread_counter_total("route.islands");
        let mut cost = Cost::new();
        let wide = cfg.has_model(&db, &mut cost).unwrap();
        assert_eq!(base, wide, "threads {width}");
        assert!(
            ddb_obs::thread_counter_total("route.islands") > before,
            "threads {width}: the islands route must actually fire"
        );
    }
}

#[test]
fn parent_fault_trip_interrupts_workers_with_typed_interrupt() {
    // The parent installs a budget that faults after a handful of
    // checkpoints. Workers inherit the shared trip state, so the fault
    // stops the whole pool: the verdict degrades to a typed Unknown,
    // never a wrong answer, and the thread is clean afterwards.
    let db = many_islands();
    for width in WIDTHS {
        let cfg = SemanticsConfig::new(SemanticsId::Gcwa).with_threads(width);
        let guard = Budget::unlimited().fail_after(3).install();
        let mut cost = Cost::new();
        let got = cfg.has_model(&db, &mut cost).unwrap();
        drop(guard);
        match got.as_bool() {
            Some(b) => assert!(b, "threads {width}: a definite answer must be correct"),
            None => assert_eq!(
                got.interrupted()
                    .expect("unknown carries its trip")
                    .resource,
                Resource::FaultInjection,
                "threads {width}"
            ),
        }
        // Clean state: an ungoverned re-run on this thread is definite.
        let mut cost = Cost::new();
        let after = cfg.has_model(&db, &mut cost).unwrap();
        assert_eq!(
            after.as_bool(),
            Some(true),
            "threads {width}: post-trip state"
        );
    }
}

#[test]
fn zero_oracle_budget_is_inherited_by_every_worker() {
    let db = many_islands();
    for width in [2, 8] {
        let cfg = SemanticsConfig::new(SemanticsId::Gcwa).with_threads(width);
        let guard = Budget::unlimited().with_max_oracle_calls(0).install();
        let mut cost = Cost::new();
        let got = cfg.has_model(&db, &mut cost).unwrap();
        drop(guard);
        let interrupt = got
            .interrupted()
            .expect("zero-oracle budget cannot answer a SAT question");
        assert_eq!(interrupt.resource, Resource::OracleCalls, "threads {width}");
    }
}

#[test]
fn batch_inference_stops_under_parent_trip_without_wrong_answers() {
    // Small island count: GCWA formula inference is exponential in the
    // number of towers, and this test is about interrupt plumbing, not
    // solver throughput.
    let db = ddb_workloads::structured::sliceable_towers(2, 2);
    let formulas: Vec<Formula> = (0..6).map(|i| Formula::Atom(Atom::new(i as u32))).collect();
    let cfg = SemanticsConfig::new(SemanticsId::Gcwa).with_threads(4);
    let mut baseline = Vec::new();
    for f in &formulas {
        let mut c = Cost::new();
        baseline.push(cfg.infers_formula(&db, f, &mut c).unwrap());
    }
    let guard = Budget::unlimited().fail_after(2).install();
    let governed = parallel::infers_formulas_batch(&cfg, &db, &formulas).unwrap();
    drop(guard);
    for (fi, ((v, _), truth)) in governed.iter().zip(baseline.iter()).enumerate() {
        match v.as_bool() {
            Some(b) => assert_eq!(
                Some(b),
                truth.as_bool(),
                "formula {fi}: interrupted batch may not flip a verdict"
            ),
            None => assert_eq!(
                v.interrupted().expect("unknown carries its trip").resource,
                Resource::FaultInjection,
                "formula {fi}"
            ),
        }
    }
}
