//! Seeded property tests for the analysis-driven dispatch fast paths:
//! whatever route the classifier picks, the answers must be identical to
//! the generic oracle-based procedures, and the head-cycle-free detector
//! must agree with the brute-force semantics of the shifted program.

use ddb_core::{route, RoutingMode, SemanticsConfig, SemanticsId};
use ddb_logic::rng::XorShift64Star;
use ddb_logic::{Atom, Database, Formula, Interpretation, Rule};
use ddb_models::Cost;

const N: usize = 4;

fn random_horn_db(rng: &mut XorShift64Star) -> Database {
    let mut db = Database::with_fresh_atoms(N);
    for _ in 0..rng.gen_range(0, 7) {
        // Head of size 0 (integrity clause) or 1, positive body only.
        let h: Vec<u32> = (0..rng.gen_range(0, 2))
            .map(|_| rng.gen_range(0, N) as u32)
            .collect();
        let bp: Vec<u32> = (0..rng.gen_range(0, 3))
            .map(|_| rng.gen_range(0, N) as u32)
            .collect();
        db.add_rule(Rule::new(
            h.into_iter().map(Atom::new),
            bp.into_iter().map(Atom::new),
            [],
        ));
    }
    db
}

fn random_disjunctive_db(rng: &mut XorShift64Star, allow_neg: bool) -> Database {
    let mut db = Database::with_fresh_atoms(N);
    for _ in 0..rng.gen_range(0, 6) {
        let h: Vec<u32> = (0..rng.gen_range(1, 3))
            .map(|_| rng.gen_range(0, N) as u32)
            .collect();
        let bp: Vec<u32> = (0..rng.gen_range(0, 3))
            .map(|_| rng.gen_range(0, N) as u32)
            .collect();
        let bn: Vec<u32> = (0..rng.gen_range(0, 1 + 2 * usize::from(allow_neg)))
            .map(|_| rng.gen_range(0, N) as u32)
            .collect();
        db.add_rule(Rule::new(
            h.into_iter().map(Atom::new),
            bp.into_iter().map(Atom::new),
            bn.into_iter().map(Atom::new),
        ));
    }
    db
}

fn all_interpretations() -> impl Iterator<Item = Interpretation> {
    (0u32..(1 << N)).map(|bits| {
        Interpretation::from_atoms(
            N,
            (0..N as u32).filter(|&i| bits >> i & 1 == 1).map(Atom::new),
        )
    })
}

/// Compare the auto-routed and generic answers for one semantics on one
/// database, across all four public dispatch entry points.
fn assert_routes_agree(id: SemanticsId, db: &Database) {
    let auto = SemanticsConfig::new(id);
    let generic = SemanticsConfig::new(id).with_routing(RoutingMode::Generic);
    let mut ca = Cost::new();
    let mut cg = Cost::new();

    let ma = auto.models(db, &mut ca);
    let mg = generic.models(db, &mut cg);
    match (&ma, &mg) {
        (Ok(a), Ok(g)) => assert_eq!(a, g, "{id:?} models on {db:?}"),
        (Err(_), Err(_)) => return, // unsupported either way; nothing to compare
        _ => panic!("{id:?}: routed and generic disagree on applicability for {db:?}"),
    }

    assert_eq!(
        auto.has_model(db, &mut ca).unwrap(),
        generic.has_model(db, &mut cg).unwrap(),
        "{id:?} has_model on {db:?}"
    );
    for i in 0..db.num_atoms() as u32 {
        for lit in [Atom::new(i).pos(), Atom::new(i).neg()] {
            assert_eq!(
                auto.infers_literal(db, lit, &mut ca).unwrap(),
                generic.infers_literal(db, lit, &mut cg).unwrap(),
                "{id:?} infers_literal {lit:?} on {db:?}"
            );
        }
    }
    let f = Formula::Or(vec![
        Formula::Atom(Atom::new(0)),
        Formula::Atom(Atom::new(1)).negated(),
    ]);
    assert_eq!(
        auto.infers_formula(db, &f, &mut ca).unwrap(),
        generic.infers_formula(db, &f, &mut cg).unwrap(),
        "{id:?} infers_formula on {db:?}"
    );
}

#[test]
fn horn_fast_path_agrees_with_generic_for_all_ten_semantics() {
    let mut rng = XorShift64Star::seed_from_u64(0xDDB_0301);
    for _ in 0..60 {
        let db = random_horn_db(&mut rng);
        assert!(ddb_analysis::classify(&db).horn, "generator broke: {db:?}");
        for id in SemanticsId::ALL {
            assert_routes_agree(id, &db);
        }
    }
}

#[test]
fn horn_fast_path_pays_no_oracle_calls() {
    let mut rng = XorShift64Star::seed_from_u64(0xDDB_0302);
    for _ in 0..30 {
        let db = random_horn_db(&mut rng);
        for id in SemanticsId::ALL {
            let mut cost = Cost::new();
            if SemanticsConfig::new(id).models(&db, &mut cost).is_ok() {
                assert_eq!(cost.sat_calls, 0, "{id:?} paid oracle calls on Horn {db:?}");
            }
        }
    }
}

#[test]
fn hcf_routing_agrees_with_generic_dsm() {
    let mut rng = XorShift64Star::seed_from_u64(0xDDB_0303);
    let mut hcf_seen = 0;
    for _ in 0..80 {
        let db = random_disjunctive_db(&mut rng, true);
        if !ddb_analysis::classify(&db).head_cycle_free {
            continue;
        }
        hcf_seen += 1;
        assert_routes_agree(SemanticsId::Dsm, &db);
    }
    assert!(hcf_seen >= 20, "generator produced too few HCF cases");
}

#[test]
fn hcf_detection_matches_shifted_program_stability_brute_force() {
    // Ben-Eliyahu & Dechter: on head-cycle-free databases the disjunctive
    // stable models are exactly the stable models of the shifted normal
    // program. Check the classifier's HCF verdict against a brute-force
    // sweep of all interpretations.
    let mut rng = XorShift64Star::seed_from_u64(0xDDB_0304);
    let mut checked = 0;
    for _ in 0..80 {
        let db = random_disjunctive_db(&mut rng, true);
        if !ddb_analysis::classify(&db).head_cycle_free {
            continue;
        }
        checked += 1;
        let shifted = ddb_analysis::shift(&db);
        let mut via_shift: Vec<Interpretation> = all_interpretations()
            .filter(|m| route::normal_is_stable(&shifted, m))
            .collect();
        via_shift.sort();
        let mut cost = Cost::new();
        let generic = SemanticsConfig::new(SemanticsId::Dsm)
            .with_routing(RoutingMode::Generic)
            .models(&db, &mut cost)
            .unwrap()
            .expect_complete();
        assert_eq!(via_shift, generic, "shift/stability mismatch on {db:?}");
    }
    assert!(checked >= 20, "generator produced too few HCF cases");
}

#[test]
fn head_cycle_stays_on_generic_route() {
    // The canonical non-HCF witness: both head atoms share a positive
    // cycle, and shifting is unsound (shift has no stable model containing
    // both, yet the disjunctive program's semantics must still be served).
    let db = ddb_logic::parse::parse_program("a | b. a :- b. b :- a.").unwrap();
    assert!(!ddb_analysis::classify(&db).head_cycle_free);
    assert_routes_agree(SemanticsId::Dsm, &db);
}
