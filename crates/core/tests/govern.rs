//! End-to-end property tests for resource-governed execution: budgeted
//! runs that complete are bit-for-bit identical to unbudgeted ones,
//! deterministic fault injection at every checkpoint never panics and
//! never produces a wrong definite verdict, and cooperative cancellation
//! from another thread degrades promptly to `Unknown` while leaving the
//! solver stack reusable.

use ddb_core::{SemanticsConfig, SemanticsId, Verdict};
use ddb_logic::parse::parse_program;
use ddb_logic::{Atom, Database, Formula};
use ddb_models::Cost;
use ddb_obs::{budget, Budget, Resource};
use ddb_workloads::random::{random_db, DbSpec};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fixed programs covering the syntactic classes the ten semantics
/// split on: positive, deductive, stratified, normal with loops.
const CORPUS: &[&str] = &[
    "a | b. c :- a, b.",
    "a | b. :- a, b. c :- a, b.",
    "a. b :- a. c | d :- b. :- c, d.",
    "p :- not q. q :- not p. r | s :- p.",
    "p :- not q. q :- not p. r :- not r.",
];

fn corpus_and_random() -> Vec<Database> {
    let mut dbs: Vec<Database> = CORPUS.iter().map(|s| parse_program(s).unwrap()).collect();
    for seed in 0..100u64 {
        let spec = match seed % 3 {
            0 => DbSpec::positive(4, 7),
            1 => DbSpec::deductive(4, 7),
            _ => DbSpec::normal(4, 7),
        };
        dbs.push(random_db(&spec, seed));
    }
    dbs
}

/// One full pass over the paper's three decision problems. `None` when
/// the semantics does not support the database's class.
fn run_all(
    cfg: &SemanticsConfig,
    db: &Database,
    cost: &mut Cost,
) -> Option<(Verdict, Verdict, Verdict)> {
    let lit = Atom::new(0).neg();
    let f = Formula::Or(vec![
        Formula::Atom(Atom::new(0)),
        Formula::Atom(Atom::new(1)).negated(),
    ]);
    let l = cfg.infers_literal(db, lit, cost).ok()?;
    let fo = cfg.infers_formula(db, &f, cost).ok()?;
    let e = cfg.has_model(db, cost).ok()?;
    Some((l, fo, e))
}

#[test]
fn budgeted_runs_that_complete_agree_bit_for_bit() {
    for (di, db) in corpus_and_random().iter().enumerate() {
        for id in SemanticsId::ALL {
            let cfg = SemanticsConfig::new(id);
            let mut cost_free = Cost::new();
            let Some(free) = run_all(&cfg, db, &mut cost_free) else {
                continue;
            };
            assert!(
                free.0.is_definite() && free.1.is_definite() && free.2.is_definite(),
                "{id} db {di}: unbudgeted runs are always definite"
            );
            // A generous budget never trips, so the governed run must be
            // indistinguishable: same verdicts, same oracle accounting.
            let mut cost_gov = Cost::new();
            let guard = Budget::unlimited()
                .with_timeout(Duration::from_secs(600))
                .with_max_oracle_calls(10_000_000)
                .with_max_conflicts(1 << 40)
                .with_max_models(10_000_000)
                .install();
            let gov = run_all(&cfg, db, &mut cost_gov);
            drop(guard);
            let gov = gov.expect("applicability cannot depend on the budget");
            assert_eq!(free, gov, "{id} db {di}: answers must be identical");
            assert_eq!(
                cost_free.sat_calls, cost_gov.sat_calls,
                "{id} db {di}: oracle-call counts must be identical"
            );
            assert_eq!(
                cost_free.candidates, cost_gov.candidates,
                "{id} db {di}: candidate counts must be identical"
            );
        }
    }
}

#[test]
fn fault_injection_at_every_checkpoint_is_safe() {
    for src in CORPUS {
        let db = parse_program(src).unwrap();
        for id in SemanticsId::ALL {
            let cfg = SemanticsConfig::new(id);
            let mut cost = Cost::new();
            let Some(truth) = run_all(&cfg, &db, &mut cost) else {
                continue;
            };
            // Count the checkpoints of one full governed pass, then
            // re-run with a fault injected at every index in turn.
            let guard = Budget::unlimited().install();
            let mut c = Cost::new();
            run_all(&cfg, &db, &mut c);
            let total = budget::consumed().expect("governor installed").checkpoints;
            drop(guard);
            for k in 0..=total {
                let guard = Budget::unlimited().fail_after(k).install();
                let mut c = Cost::new();
                let got = run_all(&cfg, &db, &mut c);
                drop(guard);
                let got = got.expect("applicability cannot depend on the budget");
                for (slot, (g, t)) in [(&got.0, &truth.0), (&got.1, &truth.1), (&got.2, &truth.2)]
                    .into_iter()
                    .enumerate()
                {
                    match g.as_bool() {
                        // Work that completed before the injected fault
                        // must still be correct — never a wrong verdict.
                        Some(b) => assert_eq!(
                            b,
                            t.as_bool().expect("truth is definite"),
                            "{id} on `{src}` slot {slot} fail_after({k})"
                        ),
                        None => assert_eq!(
                            g.interrupted().expect("unknown carries its trip").resource,
                            Resource::FaultInjection,
                            "{id} on `{src}` slot {slot} fail_after({k})"
                        ),
                    }
                }
            }
            // The solver stack is clean after every interruption: an
            // unbudgeted re-run still produces the ground truth.
            let mut c = Cost::new();
            assert_eq!(
                run_all(&cfg, &db, &mut c).expect("still applicable"),
                truth,
                "{id} on `{src}`: state corrupted by injected faults"
            );
        }
    }
}

#[test]
fn exhausted_oracle_budget_is_unknown_for_every_semantics() {
    // A zero-oracle budget on a non-trivial disjunctive database: every
    // oracle-backed procedure degrades to Unknown, none panics, and the
    // trip is attributed to the right resource.
    let db = parse_program("a | b. :- a, b. c :- a, b.").unwrap();
    for id in SemanticsId::ALL {
        let cfg = SemanticsConfig::new(id).with_routing(ddb_core::RoutingMode::Generic);
        let guard = Budget::unlimited().with_max_oracle_calls(0).install();
        let mut cost = Cost::new();
        let got = cfg.infers_literal(&db, Atom::new(2).neg(), &mut cost);
        drop(guard);
        if let Ok(v) = got {
            if let Some(i) = v.interrupted() {
                assert_eq!(i.resource, Resource::OracleCalls, "{id}");
            }
        }
    }
}

#[test]
fn cancellation_from_another_thread_is_prompt_and_leaves_clean_state() {
    // A tower family big enough that full minimal-model enumeration
    // takes far longer than the cancellation delay: 2^16 minimal models.
    let db = ddb_workloads::structured::sliceable_towers(16, 4);
    let flag = Arc::new(AtomicBool::new(false));
    let setter = {
        let flag = Arc::clone(&flag);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            flag.store(true, Ordering::Relaxed);
        })
    };
    let cfg = SemanticsConfig::new(SemanticsId::Egcwa);
    let guard = Budget::unlimited()
        .with_cancel_flag(Arc::clone(&flag))
        .install();
    let started = std::time::Instant::now();
    let mut cost = Cost::new();
    let enumeration = cfg.models(&db, &mut cost).expect("EGCWA applies");
    let elapsed = started.elapsed();
    drop(guard);
    setter.join().unwrap();
    let interrupt = enumeration
        .interrupted
        .as_ref()
        .expect("2^16-model enumeration cannot finish before the cancel");
    assert_eq!(interrupt.resource, Resource::Cancelled);
    assert!(
        elapsed < Duration::from_secs(5),
        "cancellation must be prompt, took {elapsed:?}"
    );
    // Partial results are real: every model handed back before the trip
    // is a genuine minimal model of the database (sample the first few).
    for m in enumeration.models.iter().take(5) {
        let mut c = Cost::new();
        assert!(
            ddb_models::minimal::is_minimal_model(&db, m, &mut c).unwrap(),
            "interrupted enumeration leaked a non-minimal model"
        );
    }
    // The thread's governor stack is clean: a fresh unbudgeted query on
    // the same thread answers definitively and correctly.
    let small = ddb_workloads::structured::sliceable_towers(2, 2);
    let mut cost = Cost::new();
    let after = cfg.models(&small, &mut cost).expect("EGCWA applies");
    assert!(after.is_complete(), "post-cancel run must be ungoverned");
    assert!(!after.models.is_empty());
}
