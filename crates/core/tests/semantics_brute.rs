//! The repository's most important test file: every one of the ten
//! semantics, as implemented with oracle-based decision procedures, is
//! cross-checked against an *independent brute-force rendition of its
//! textbook definition* on random small databases. Randomization runs on
//! the in-repo deterministic PRNG (formerly proptest).

use ddb_core::{icwa::Layers, SemanticsConfig, SemanticsId};
use ddb_core::{pdsm, perf, pws, reduct};
use ddb_logic::rng::XorShift64Star;
use ddb_logic::{Atom, Database, Formula, Interpretation, PartialInterpretation, Rule, TruthValue};
use ddb_models::{brute, Cost, Partition};

const N: usize = 4;
const CASES: usize = 120;

fn random_rule(rng: &mut XorShift64Star, allow_neg: bool, allow_integrity: bool) -> Rule {
    let lo = usize::from(!allow_integrity);
    let h: Vec<u32> = (0..rng.gen_range_inclusive(lo, 2))
        .map(|_| rng.gen_range(0, N) as u32)
        .collect();
    let bp: Vec<u32> = (0..rng.gen_range_inclusive(0, 2))
        .map(|_| rng.gen_range(0, N) as u32)
        .collect();
    let bn: Vec<u32> = (0..rng.gen_range_inclusive(0, 2 * usize::from(allow_neg)))
        .map(|_| rng.gen_range(0, N) as u32)
        .collect();
    Rule::new(
        h.into_iter().map(Atom::new),
        bp.into_iter().map(Atom::new),
        bn.into_iter().map(Atom::new),
    )
}

fn random_db(rng: &mut XorShift64Star, allow_neg: bool, allow_integrity: bool) -> Database {
    let mut db = Database::with_fresh_atoms(N);
    for _ in 0..rng.gen_range(0, 7) {
        db.add_rule(random_rule(rng, allow_neg, allow_integrity));
    }
    db
}

fn random_formula(rng: &mut XorShift64Star, depth: usize) -> Formula {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0, 6) {
            0..=3 => Formula::Atom(Atom::new(rng.gen_range(0, N) as u32)),
            _ => Formula::True,
        };
    }
    match rng.gen_range(0, 4) {
        0 => random_formula(rng, depth - 1).negated(),
        1 => Formula::And(
            (0..rng.gen_range_inclusive(1, 2))
                .map(|_| random_formula(rng, depth - 1))
                .collect(),
        ),
        2 => Formula::Or(
            (0..rng.gen_range_inclusive(1, 2))
                .map(|_| random_formula(rng, depth - 1))
                .collect(),
        ),
        _ => random_formula(rng, depth - 1).implies(random_formula(rng, depth - 1)),
    }
}

fn random_partition(rng: &mut XorShift64Star) -> Partition {
    let assignment: Vec<u8> = (0..N).map(|_| rng.gen_range(0, 3) as u8).collect();
    let p = (0..N)
        .filter(|&i| assignment[i] == 0)
        .map(|i| Atom::new(i as u32));
    let q = (0..N)
        .filter(|&i| assignment[i] == 1)
        .map(|i| Atom::new(i as u32));
    Partition::from_p_q(N, p, q)
}

/// Brute-force GCWA model set.
fn gcwa_models_brute(db: &Database) -> Vec<Interpretation> {
    let mm = brute::minimal_models(db);
    let false_atoms: Vec<Atom> = (0..N)
        .map(|i| Atom::new(i as u32))
        .filter(|&a| mm.iter().all(|m| !m.contains(a)))
        .collect();
    brute::models(db)
        .into_iter()
        .filter(|m| false_atoms.iter().all(|&a| !m.contains(a)))
        .collect()
}

/// Brute-force CCWA model set for a partition.
fn ccwa_models_brute(db: &Database, part: &Partition) -> Vec<Interpretation> {
    let pz_mm = brute::pz_minimal_models(db, part);
    let false_atoms: Vec<Atom> = part
        .p()
        .iter()
        .filter(|&a| pz_mm.iter().all(|m| !m.contains(a)))
        .collect();
    brute::models(db)
        .into_iter()
        .filter(|m| false_atoms.iter().all(|&a| !m.contains(a)))
        .collect()
}

/// Brute-force DDR model set.
fn ddr_models_brute(db: &Database) -> Vec<Interpretation> {
    let active = ddb_models::fixpoint::active_atoms(db);
    brute::models(db)
        .into_iter()
        .filter(|m| m.is_subset(&active))
        .collect()
}

/// Brute-force stable models: filter subsets by the reduct definition,
/// with minimality itself checked by brute force.
fn dsm_models_brute(db: &Database) -> Vec<Interpretation> {
    brute::models(db)
        .into_iter()
        .filter(|m| {
            let r = reduct::gl_reduct(db, m);
            brute::minimal_models(&r).contains(m)
        })
        .collect()
}

/// Brute-force perfect models: pairwise preference over all model pairs,
/// with the priority relation from `perf::priority_lt` (itself unit-tested
/// against hand examples).
fn perf_models_brute(db: &Database) -> Vec<Interpretation> {
    let lt = perf::priority_lt(db);
    let ms = brute::models(db);
    let preferable = |n: &Interpretation, m: &Interpretation| -> bool {
        if n == m {
            return false;
        }
        n.iter().all(|x| {
            m.contains(x)
                || lt[x.index()]
                    .iter()
                    .any(|y| m.contains(y) && !n.contains(y))
        })
    };
    ms.iter()
        .filter(|m| !ms.iter().any(|n2| preferable(n2, m)))
        .cloned()
        .collect()
}

/// Brute-force ICWA models along the default stratification.
fn icwa_models_brute(db: &Database) -> Option<Vec<Interpretation>> {
    let strata = db.stratification()?;
    let layers = Layers::new(db, &strata, &Interpretation::empty(N));
    let full = brute::models(db);
    Some(
        full.iter()
            .filter(|m| {
                (0..layers.len()).all(|i| {
                    let prefix = layers.prefix(i);
                    let part = layers.partition(i);
                    prefix.satisfied_by(m) && !brute::models(prefix).iter().any(|m2| part.lt(m2, m))
                })
            })
            .cloned()
            .collect(),
    )
}

/// All 3^N partial interpretations.
fn all_partials() -> Vec<PartialInterpretation> {
    let mut out = Vec::new();
    for code in 0..3usize.pow(N as u32) {
        let mut p = PartialInterpretation::undefined(N);
        let mut c = code;
        for i in 0..N {
            let a = Atom::new(i as u32);
            match c % 3 {
                0 => p.set(a, TruthValue::False),
                1 => p.set(a, TruthValue::Undefined),
                _ => p.set(a, TruthValue::True),
            }
            c /= 3;
        }
        out.push(p);
    }
    out
}

/// Brute-force partial stable models by the 3-valued definition.
fn pdsm_models_brute(db: &Database) -> Vec<PartialInterpretation> {
    let partials = all_partials();
    partials
        .iter()
        .filter(|i| {
            let rules = reduct::reduct3(db, i);
            if !reduct::satisfies_reduct3(&rules, i) {
                return false;
            }
            !partials.iter().any(|j| {
                j.truth_cmp(i) == Some(std::cmp::Ordering::Less)
                    && reduct::satisfies_reduct3(&rules, j)
            })
        })
        .cloned()
        .collect()
}

fn check_inference(
    id: SemanticsId,
    cfg: &SemanticsConfig,
    db: &Database,
    f: &Formula,
    reference: &[Interpretation],
    case: usize,
) {
    let mut cost = Cost::new();
    let expected = reference.iter().all(|m| f.eval(m));
    let got = cfg
        .infers_formula(db, f, &mut cost)
        .expect("applicable by construction");
    assert_eq!(got, expected, "{id} inference mismatch, case {case}");
    let nonempty = cfg.has_model(db, &mut cost).expect("applicable");
    assert_eq!(
        nonempty,
        !reference.is_empty(),
        "{id} existence mismatch, case {case}"
    );
}

#[test]
fn gcwa_matches_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0x5B01);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let f = random_formula(&mut rng, 3);
        let cfg = SemanticsConfig::new(SemanticsId::Gcwa);
        let mut cost = Cost::new();
        let reference = gcwa_models_brute(&db);
        assert_eq!(
            cfg.models(&db, &mut cost).unwrap(),
            reference,
            "case {case}"
        );
        check_inference(SemanticsId::Gcwa, &cfg, &db, &f, &reference, case);
    }
}

#[test]
fn egcwa_matches_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0x5B02);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let f = random_formula(&mut rng, 3);
        let cfg = SemanticsConfig::new(SemanticsId::Egcwa);
        let mut cost = Cost::new();
        let reference = brute::minimal_models(&db);
        assert_eq!(
            cfg.models(&db, &mut cost).unwrap(),
            reference,
            "case {case}"
        );
        check_inference(SemanticsId::Egcwa, &cfg, &db, &f, &reference, case);
    }
}

#[test]
fn ccwa_matches_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0x5B03);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let f = random_formula(&mut rng, 3);
        let part = random_partition(&mut rng);
        let cfg = SemanticsConfig::new(SemanticsId::Ccwa).with_partition(part.clone());
        let mut cost = Cost::new();
        let reference = ccwa_models_brute(&db, &part);
        assert_eq!(
            cfg.models(&db, &mut cost).unwrap(),
            reference,
            "case {case}"
        );
        check_inference(SemanticsId::Ccwa, &cfg, &db, &f, &reference, case);
    }
}

#[test]
fn ecwa_matches_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0x5B04);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let f = random_formula(&mut rng, 3);
        let part = random_partition(&mut rng);
        let cfg = SemanticsConfig::new(SemanticsId::Ecwa).with_partition(part.clone());
        let mut cost = Cost::new();
        let reference = brute::pz_minimal_models(&db, &part);
        assert_eq!(
            cfg.models(&db, &mut cost).unwrap(),
            reference,
            "case {case}"
        );
        check_inference(SemanticsId::Ecwa, &cfg, &db, &f, &reference, case);
    }
}

#[test]
fn ddr_matches_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0x5B05);
    for case in 0..CASES {
        let db = random_db(&mut rng, false, true);
        let f = random_formula(&mut rng, 3);
        let cfg = SemanticsConfig::new(SemanticsId::Ddr);
        let mut cost = Cost::new();
        let reference = ddr_models_brute(&db);
        assert_eq!(
            cfg.models(&db, &mut cost).unwrap(),
            reference,
            "case {case}"
        );
        check_inference(SemanticsId::Ddr, &cfg, &db, &f, &reference, case);
    }
}

#[test]
fn pws_matches_split_reference() {
    let mut rng = XorShift64Star::seed_from_u64(0x5B06);
    for case in 0..CASES {
        let db = random_db(&mut rng, false, true);
        let f = random_formula(&mut rng, 3);
        let cfg = SemanticsConfig::new(SemanticsId::Pws);
        let mut cost = Cost::new();
        let reference = pws::possible_models_by_splits(&db);
        assert_eq!(
            cfg.models(&db, &mut cost).unwrap(),
            reference,
            "case {case}"
        );
        check_inference(SemanticsId::Pws, &cfg, &db, &f, &reference, case);
    }
}

#[test]
fn perf_matches_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0x5B07);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let f = random_formula(&mut rng, 3);
        let cfg = SemanticsConfig::new(SemanticsId::Perf);
        let mut cost = Cost::new();
        let reference = perf_models_brute(&db);
        assert_eq!(
            cfg.models(&db, &mut cost).unwrap(),
            reference,
            "case {case}"
        );
        check_inference(SemanticsId::Perf, &cfg, &db, &f, &reference, case);
    }
}

#[test]
fn icwa_matches_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0x5B08);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let f = random_formula(&mut rng, 3);
        if let Some(reference) = icwa_models_brute(&db) {
            let cfg = SemanticsConfig::new(SemanticsId::Icwa);
            let mut cost = Cost::new();
            assert_eq!(
                cfg.models(&db, &mut cost).unwrap(),
                reference,
                "case {case}"
            );
            check_inference(SemanticsId::Icwa, &cfg, &db, &f, &reference, case);
        }
    }
}

#[test]
fn dsm_matches_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0x5B09);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let f = random_formula(&mut rng, 3);
        let cfg = SemanticsConfig::new(SemanticsId::Dsm);
        let mut cost = Cost::new();
        let reference = dsm_models_brute(&db);
        assert_eq!(
            cfg.models(&db, &mut cost).unwrap(),
            reference,
            "case {case}"
        );
        check_inference(SemanticsId::Dsm, &cfg, &db, &f, &reference, case);
    }
}

#[test]
fn pdsm_matches_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0x5B0A);
    for case in 0..CASES {
        let db = random_db(&mut rng, true, true);
        let f = random_formula(&mut rng, 3);
        let mut cost = Cost::new();
        let mut got = pdsm::models(&db, &mut cost).unwrap();
        let mut reference = pdsm_models_brute(&db);
        let key = |p: &PartialInterpretation| (p.true_set().clone(), p.false_set().clone());
        got.sort_by_key(key);
        reference.sort_by_key(key);
        assert_eq!(got, reference, "case {case}");
        // Inference: value 1 in all partial stable models.
        let f_ref = reference.iter().all(|i| f.eval3(i) == TruthValue::True);
        assert_eq!(
            pdsm::infers_formula(&db, &f, &mut cost).unwrap(),
            f_ref,
            "case {case}"
        );
        assert_eq!(
            pdsm::has_model(&db, &mut cost).unwrap(),
            !reference.is_empty(),
            "case {case}"
        );
    }
}

#[test]
fn literal_and_formula_inference_consistent() {
    let mut rng = XorShift64Star::seed_from_u64(0x5B0B);
    for case in 0..CASES {
        // For every semantics: infers_literal must equal infers_formula on
        // the literal read as a formula.
        let db = random_db(&mut rng, true, true);
        let mut cost = Cost::new();
        for id in SemanticsId::ALL {
            let cfg = SemanticsConfig::new(id);
            for i in 0..N {
                for sign in [true, false] {
                    let a = Atom::new(i as u32);
                    let lit = ddb_logic::Literal::with_sign(a, sign);
                    let f = Formula::literal(a, sign);
                    let l = cfg.infers_literal(&db, lit, &mut cost);
                    let g = cfg.infers_formula(&db, &f, &mut cost);
                    match (l, g) {
                        (Ok(a1), Ok(a2)) => assert_eq!(a1, a2, "{id}, case {case}"),
                        (Err(_), Err(_)) => {}
                        _ => panic!("support mismatch for {id}, case {case}"),
                    }
                }
            }
        }
    }
}
