//! The repository's most important test file: every one of the ten
//! semantics, as implemented with oracle-based decision procedures, is
//! cross-checked against an *independent brute-force rendition of its
//! textbook definition* on random small databases.

use ddb_core::{icwa::Layers, SemanticsConfig, SemanticsId};
use ddb_core::{pdsm, perf, pws, reduct};
use ddb_logic::{Atom, Database, Formula, Interpretation, PartialInterpretation, Rule, TruthValue};
use ddb_models::{brute, Cost, Partition};
use proptest::prelude::*;

const N: usize = 4;

fn arb_rule(allow_neg: bool, allow_integrity: bool) -> impl Strategy<Value = Rule> {
    let head = proptest::collection::vec(0u32..N as u32, usize::from(!allow_integrity)..=2);
    let body_pos = proptest::collection::vec(0u32..N as u32, 0..=2);
    let body_neg = proptest::collection::vec(0u32..N as u32, 0..=(2 * usize::from(allow_neg)));
    (head, body_pos, body_neg).prop_map(|(h, bp, bn)| {
        Rule::new(
            h.into_iter().map(Atom::new),
            bp.into_iter().map(Atom::new),
            bn.into_iter().map(Atom::new),
        )
    })
}

fn arb_db(allow_neg: bool, allow_integrity: bool) -> impl Strategy<Value = Database> {
    proptest::collection::vec(arb_rule(allow_neg, allow_integrity), 0..7).prop_map(|rules| {
        let mut db = Database::with_fresh_atoms(N);
        for r in rules {
            db.add_rule(r);
        }
        db
    })
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (0u32..N as u32).prop_map(|i| Formula::Atom(Atom::new(i))),
        Just(Formula::True),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.negated()),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Formula::And),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Formula::Or),
            (inner.clone(), inner).prop_map(|(a, b)| a.implies(b)),
        ]
    })
}

fn arb_partition() -> impl Strategy<Value = Partition> {
    proptest::collection::vec(0u8..3, N).prop_map(|assignment| {
        let p = (0..N)
            .filter(|&i| assignment[i] == 0)
            .map(|i| Atom::new(i as u32));
        let q = (0..N)
            .filter(|&i| assignment[i] == 1)
            .map(|i| Atom::new(i as u32));
        Partition::from_p_q(N, p, q)
    })
}

/// Brute-force GCWA model set.
fn gcwa_models_brute(db: &Database) -> Vec<Interpretation> {
    let mm = brute::minimal_models(db);
    let false_atoms: Vec<Atom> = (0..N)
        .map(|i| Atom::new(i as u32))
        .filter(|&a| mm.iter().all(|m| !m.contains(a)))
        .collect();
    brute::models(db)
        .into_iter()
        .filter(|m| false_atoms.iter().all(|&a| !m.contains(a)))
        .collect()
}

/// Brute-force CCWA model set for a partition.
fn ccwa_models_brute(db: &Database, part: &Partition) -> Vec<Interpretation> {
    let pz_mm = brute::pz_minimal_models(db, part);
    let false_atoms: Vec<Atom> = part
        .p()
        .iter()
        .filter(|&a| pz_mm.iter().all(|m| !m.contains(a)))
        .collect();
    brute::models(db)
        .into_iter()
        .filter(|m| false_atoms.iter().all(|&a| !m.contains(a)))
        .collect()
}

/// Brute-force DDR model set.
fn ddr_models_brute(db: &Database) -> Vec<Interpretation> {
    let active = ddb_models::fixpoint::active_atoms(db);
    brute::models(db)
        .into_iter()
        .filter(|m| m.is_subset(&active))
        .collect()
}

/// Brute-force stable models: filter subsets by the reduct definition,
/// with minimality itself checked by brute force.
fn dsm_models_brute(db: &Database) -> Vec<Interpretation> {
    brute::models(db)
        .into_iter()
        .filter(|m| {
            let r = reduct::gl_reduct(db, m);
            brute::minimal_models(&r).contains(m)
        })
        .collect()
}

/// Brute-force perfect models: pairwise preference over all model pairs,
/// with the priority relation from `perf::priority_lt` (itself unit-tested
/// against hand examples).
fn perf_models_brute(db: &Database) -> Vec<Interpretation> {
    let lt = perf::priority_lt(db);
    let ms = brute::models(db);
    let preferable = |n: &Interpretation, m: &Interpretation| -> bool {
        if n == m {
            return false;
        }
        n.iter().all(|x| {
            m.contains(x)
                || lt[x.index()]
                    .iter()
                    .any(|y| m.contains(y) && !n.contains(y))
        })
    };
    ms.iter()
        .filter(|m| !ms.iter().any(|n2| preferable(n2, m)))
        .cloned()
        .collect()
}

/// Brute-force ICWA models along the default stratification.
fn icwa_models_brute(db: &Database) -> Option<Vec<Interpretation>> {
    let strata = db.stratification()?;
    let layers = Layers::new(db, &strata, &Interpretation::empty(N));
    let full = brute::models(db);
    Some(
        full.iter()
            .filter(|m| {
                (0..layers.len()).all(|i| {
                    let prefix = layers.prefix(i);
                    let part = layers.partition(i);
                    prefix.satisfied_by(m) && !brute::models(prefix).iter().any(|m2| part.lt(m2, m))
                })
            })
            .cloned()
            .collect(),
    )
}

/// All 3^N partial interpretations.
fn all_partials() -> Vec<PartialInterpretation> {
    let mut out = Vec::new();
    for code in 0..3usize.pow(N as u32) {
        let mut p = PartialInterpretation::undefined(N);
        let mut c = code;
        for i in 0..N {
            let a = Atom::new(i as u32);
            match c % 3 {
                0 => p.set(a, TruthValue::False),
                1 => p.set(a, TruthValue::Undefined),
                _ => p.set(a, TruthValue::True),
            }
            c /= 3;
        }
        out.push(p);
    }
    out
}

/// Brute-force partial stable models by the 3-valued definition.
fn pdsm_models_brute(db: &Database) -> Vec<PartialInterpretation> {
    let partials = all_partials();
    partials
        .iter()
        .filter(|i| {
            let rules = reduct::reduct3(db, i);
            if !reduct::satisfies_reduct3(&rules, i) {
                return false;
            }
            !partials.iter().any(|j| {
                j.truth_cmp(i) == Some(std::cmp::Ordering::Less)
                    && reduct::satisfies_reduct3(&rules, j)
            })
        })
        .cloned()
        .collect()
}

fn check_inference(
    id: SemanticsId,
    cfg: &SemanticsConfig,
    db: &Database,
    f: &Formula,
    reference: &[Interpretation],
) -> Result<(), TestCaseError> {
    let mut cost = Cost::new();
    let expected = reference.iter().all(|m| f.eval(m));
    let got = cfg
        .infers_formula(db, f, &mut cost)
        .expect("applicable by construction");
    prop_assert_eq!(got, expected, "{} inference mismatch", id);
    let nonempty = cfg.has_model(db, &mut cost).expect("applicable");
    prop_assert_eq!(nonempty, !reference.is_empty(), "{} existence mismatch", id);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn gcwa_matches_brute(db in arb_db(true, true), f in arb_formula()) {
        let cfg = SemanticsConfig::new(SemanticsId::Gcwa);
        let mut cost = Cost::new();
        let reference = gcwa_models_brute(&db);
        prop_assert_eq!(cfg.models(&db, &mut cost).unwrap(), reference.clone());
        check_inference(SemanticsId::Gcwa, &cfg, &db, &f, &reference)?;
    }

    #[test]
    fn egcwa_matches_brute(db in arb_db(true, true), f in arb_formula()) {
        let cfg = SemanticsConfig::new(SemanticsId::Egcwa);
        let mut cost = Cost::new();
        let reference = brute::minimal_models(&db);
        prop_assert_eq!(cfg.models(&db, &mut cost).unwrap(), reference.clone());
        check_inference(SemanticsId::Egcwa, &cfg, &db, &f, &reference)?;
    }

    #[test]
    fn ccwa_matches_brute(db in arb_db(true, true), f in arb_formula(), part in arb_partition()) {
        let cfg = SemanticsConfig::new(SemanticsId::Ccwa).with_partition(part.clone());
        let mut cost = Cost::new();
        let reference = ccwa_models_brute(&db, &part);
        prop_assert_eq!(cfg.models(&db, &mut cost).unwrap(), reference.clone());
        check_inference(SemanticsId::Ccwa, &cfg, &db, &f, &reference)?;
    }

    #[test]
    fn ecwa_matches_brute(db in arb_db(true, true), f in arb_formula(), part in arb_partition()) {
        let cfg = SemanticsConfig::new(SemanticsId::Ecwa).with_partition(part.clone());
        let mut cost = Cost::new();
        let reference = brute::pz_minimal_models(&db, &part);
        prop_assert_eq!(cfg.models(&db, &mut cost).unwrap(), reference.clone());
        check_inference(SemanticsId::Ecwa, &cfg, &db, &f, &reference)?;
    }

    #[test]
    fn ddr_matches_brute(db in arb_db(false, true), f in arb_formula()) {
        let cfg = SemanticsConfig::new(SemanticsId::Ddr);
        let mut cost = Cost::new();
        let reference = ddr_models_brute(&db);
        prop_assert_eq!(cfg.models(&db, &mut cost).unwrap(), reference.clone());
        check_inference(SemanticsId::Ddr, &cfg, &db, &f, &reference)?;
    }

    #[test]
    fn pws_matches_split_reference(db in arb_db(false, true), f in arb_formula()) {
        let cfg = SemanticsConfig::new(SemanticsId::Pws);
        let mut cost = Cost::new();
        let reference = pws::possible_models_by_splits(&db);
        prop_assert_eq!(cfg.models(&db, &mut cost).unwrap(), reference.clone());
        check_inference(SemanticsId::Pws, &cfg, &db, &f, &reference)?;
    }

    #[test]
    fn perf_matches_brute(db in arb_db(true, true), f in arb_formula()) {
        let cfg = SemanticsConfig::new(SemanticsId::Perf);
        let mut cost = Cost::new();
        let reference = perf_models_brute(&db);
        prop_assert_eq!(cfg.models(&db, &mut cost).unwrap(), reference.clone());
        check_inference(SemanticsId::Perf, &cfg, &db, &f, &reference)?;
    }

    #[test]
    fn icwa_matches_brute(db in arb_db(true, true), f in arb_formula()) {
        if let Some(reference) = icwa_models_brute(&db) {
            let cfg = SemanticsConfig::new(SemanticsId::Icwa);
            let mut cost = Cost::new();
            prop_assert_eq!(cfg.models(&db, &mut cost).unwrap(), reference.clone());
            check_inference(SemanticsId::Icwa, &cfg, &db, &f, &reference)?;
        }
    }

    #[test]
    fn dsm_matches_brute(db in arb_db(true, true), f in arb_formula()) {
        let cfg = SemanticsConfig::new(SemanticsId::Dsm);
        let mut cost = Cost::new();
        let reference = dsm_models_brute(&db);
        prop_assert_eq!(cfg.models(&db, &mut cost).unwrap(), reference.clone());
        check_inference(SemanticsId::Dsm, &cfg, &db, &f, &reference)?;
    }

    #[test]
    fn pdsm_matches_brute(db in arb_db(true, true), f in arb_formula()) {
        let mut cost = Cost::new();
        let mut got = pdsm::models(&db, &mut cost);
        let mut reference = pdsm_models_brute(&db);
        let key = |p: &PartialInterpretation| (p.true_set().clone(), p.false_set().clone());
        got.sort_by_key(key);
        reference.sort_by_key(key);
        prop_assert_eq!(got, reference.clone());
        // Inference: value 1 in all partial stable models.
        let f_ref = reference.iter().all(|i| f.eval3(i) == TruthValue::True);
        prop_assert_eq!(pdsm::infers_formula(&db, &f, &mut cost), f_ref);
        prop_assert_eq!(pdsm::has_model(&db, &mut cost), !reference.is_empty());
    }

    #[test]
    fn literal_and_formula_inference_consistent(db in arb_db(true, true)) {
        // For every semantics: infers_literal must equal infers_formula on
        // the literal read as a formula.
        let mut cost = Cost::new();
        for id in SemanticsId::ALL {
            let cfg = SemanticsConfig::new(id);
            for i in 0..N {
                for sign in [true, false] {
                    let a = Atom::new(i as u32);
                    let lit = ddb_logic::Literal::with_sign(a, sign);
                    let f = Formula::literal(a, sign);
                    let l = cfg.infers_literal(&db, lit, &mut cost);
                    let g = cfg.infers_formula(&db, &f, &mut cost);
                    match (l, g) {
                        (Ok(a1), Ok(a2)) => prop_assert_eq!(a1, a2, "{}", id),
                        (Err(_), Err(_)) => {}
                        _ => prop_assert!(false, "support mismatch for {}", id),
                    }
                }
            }
        }
    }
}
