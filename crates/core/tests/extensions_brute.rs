//! Brute-force cross-checks for the post-green extension semantics:
//! supported models (Clark completion) and the well-founded semantics,
//! on random *normal* (singleton-head) programs. Driven by the in-repo
//! deterministic PRNG (formerly proptest).

use ddb_core::{dsm, pdsm, supported, wfs};
use ddb_logic::rng::XorShift64Star;
use ddb_logic::{Atom, Database, Interpretation, Rule, TruthValue};
use ddb_models::{brute, Cost};

const N: usize = 4;
const CASES: usize = 150;

/// Random normal rule: exactly one head atom.
fn random_normal_rule(rng: &mut XorShift64Star) -> Rule {
    let h = rng.gen_range(0, N) as u32;
    let bp: Vec<u32> = (0..rng.gen_range_inclusive(0, 2))
        .map(|_| rng.gen_range(0, N) as u32)
        .collect();
    let bn: Vec<u32> = (0..rng.gen_range_inclusive(0, 2))
        .map(|_| rng.gen_range(0, N) as u32)
        .collect();
    Rule::new(
        [Atom::new(h)],
        bp.into_iter().map(Atom::new),
        bn.into_iter().map(Atom::new),
    )
}

fn random_normal_db(rng: &mut XorShift64Star) -> Database {
    let mut db = Database::with_fresh_atoms(N);
    for _ in 0..rng.gen_range(0, 7) {
        db.add_rule(random_normal_rule(rng));
    }
    db
}

/// Supported models straight from the definition.
fn supported_brute(db: &Database) -> Vec<Interpretation> {
    brute::models(db)
        .into_iter()
        .filter(|m| {
            m.iter().all(|a| {
                db.rules()
                    .iter()
                    .any(|r| r.head() == [a] && r.body_holds(m))
            })
        })
        .collect()
}

#[test]
fn supported_models_match_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0xE01);
    for case in 0..CASES {
        let db = random_normal_db(&mut rng);
        let mut cost = Cost::new();
        assert_eq!(
            supported::models(&db, &mut cost).unwrap(),
            supported_brute(&db),
            "case {case}"
        );
    }
}

#[test]
fn supported_inference_matches_brute() {
    let mut rng = XorShift64Star::seed_from_u64(0xE02);
    for case in 0..CASES {
        let db = random_normal_db(&mut rng);
        let reference = supported_brute(&db);
        let mut cost = Cost::new();
        assert_eq!(
            supported::has_model(&db, &mut cost).unwrap(),
            !reference.is_empty(),
            "case {case}"
        );
        for i in 0..N {
            let a = Atom::new(i as u32);
            let f = ddb_logic::Formula::atom(a);
            assert_eq!(
                supported::infers_formula(&db, &f, &mut cost).unwrap(),
                reference.iter().all(|m| m.contains(a)),
                "case {case}"
            );
            assert_eq!(
                supported::brave_infers_formula(&db, &f, &mut cost).unwrap(),
                reference.iter().any(|m| m.contains(a)),
                "case {case}"
            );
        }
    }
}

#[test]
fn stable_subset_of_supported() {
    let mut rng = XorShift64Star::seed_from_u64(0xE03);
    for case in 0..CASES {
        let db = random_normal_db(&mut rng);
        let mut cost = Cost::new();
        let supported = supported::models(&db, &mut cost).unwrap();
        for m in dsm::models(&db, &mut cost).unwrap() {
            assert!(supported.contains(&m), "case {case}");
        }
    }
}

#[test]
fn wfs_is_knowledge_least_partial_stable() {
    let mut rng = XorShift64Star::seed_from_u64(0xE04);
    for case in 0..CASES {
        let db = random_normal_db(&mut rng);
        let w = wfs::well_founded_model(&db);
        let mut cost = Cost::new();
        assert!(
            pdsm::is_partial_stable(&db, &w, &mut cost).unwrap(),
            "case {case}"
        );
        for p in pdsm::models(&db, &mut cost).unwrap() {
            assert!(w.true_set().is_subset(p.true_set()), "case {case}");
            assert!(w.false_set().is_subset(p.false_set()), "case {case}");
        }
    }
}

#[test]
fn wfs_sound_for_stable() {
    let mut rng = XorShift64Star::seed_from_u64(0xE05);
    for case in 0..CASES {
        let db = random_normal_db(&mut rng);
        let w = wfs::well_founded_model(&db);
        let mut cost = Cost::new();
        for m in dsm::models(&db, &mut cost).unwrap() {
            for a in w.true_set().iter() {
                assert!(m.contains(a), "case {case}");
            }
            for a in w.false_set().iter() {
                assert!(!m.contains(a), "case {case}");
            }
        }
    }
}

#[test]
fn wfs_total_implies_unique_stable() {
    let mut rng = XorShift64Star::seed_from_u64(0xE06);
    for case in 0..CASES {
        // When WFS decides everything, its total model is the unique
        // stable model.
        let db = random_normal_db(&mut rng);
        let w = wfs::well_founded_model(&db);
        if w.is_total() {
            let total = w.to_total();
            // The total WFS model is stable iff it is a model at all —
            // and for normal programs a total well-founded model is
            // always stable.
            let mut cost = Cost::new();
            let stable = dsm::models(&db, &mut cost).unwrap();
            assert_eq!(stable, vec![total], "case {case}");
        }
    }
}

#[test]
fn wfs_value_matches_pdsm_consensus() {
    let mut rng = XorShift64Star::seed_from_u64(0xE07);
    for case in 0..CASES {
        // An atom true (false) in WFS has value 1 (0) in every partial
        // stable model — restated per atom via eval3 for coverage of the
        // three-valued evaluation path.
        let db = random_normal_db(&mut rng);
        let w = wfs::well_founded_model(&db);
        let mut cost = Cost::new();
        let partials = pdsm::models(&db, &mut cost).unwrap();
        for i in 0..N {
            let a = Atom::new(i as u32);
            match w.value(a) {
                TruthValue::True => {
                    for p in &partials {
                        assert_eq!(p.value(a), TruthValue::True, "case {case}");
                    }
                }
                TruthValue::False => {
                    for p in &partials {
                        assert_eq!(p.value(a), TruthValue::False, "case {case}");
                    }
                }
                TruthValue::Undefined => {}
            }
        }
    }
}
