//! Brute-force cross-checks for the post-green extension semantics:
//! supported models (Clark completion) and the well-founded semantics,
//! on random *normal* (singleton-head) programs.

use ddb_core::{dsm, pdsm, supported, wfs};
use ddb_logic::{Atom, Database, Interpretation, Rule, TruthValue};
use ddb_models::{brute, Cost};
use proptest::prelude::*;

const N: usize = 4;

/// Random normal rule: exactly one head atom.
fn arb_normal_rule() -> impl Strategy<Value = Rule> {
    let head = 0u32..N as u32;
    let body_pos = proptest::collection::vec(0u32..N as u32, 0..=2);
    let body_neg = proptest::collection::vec(0u32..N as u32, 0..=2);
    (head, body_pos, body_neg).prop_map(|(h, bp, bn)| {
        Rule::new(
            [Atom::new(h)],
            bp.into_iter().map(Atom::new),
            bn.into_iter().map(Atom::new),
        )
    })
}

fn arb_normal_db() -> impl Strategy<Value = Database> {
    proptest::collection::vec(arb_normal_rule(), 0..7).prop_map(|rules| {
        let mut db = Database::with_fresh_atoms(N);
        for r in rules {
            db.add_rule(r);
        }
        db
    })
}

/// Supported models straight from the definition.
fn supported_brute(db: &Database) -> Vec<Interpretation> {
    brute::models(db)
        .into_iter()
        .filter(|m| {
            m.iter().all(|a| {
                db.rules()
                    .iter()
                    .any(|r| r.head() == [a] && r.body_holds(m))
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn supported_models_match_brute(db in arb_normal_db()) {
        let mut cost = Cost::new();
        prop_assert_eq!(supported::models(&db, &mut cost), supported_brute(&db));
    }

    #[test]
    fn supported_inference_matches_brute(db in arb_normal_db()) {
        let reference = supported_brute(&db);
        let mut cost = Cost::new();
        prop_assert_eq!(supported::has_model(&db, &mut cost), !reference.is_empty());
        for i in 0..N {
            let a = Atom::new(i as u32);
            let f = ddb_logic::Formula::atom(a);
            prop_assert_eq!(
                supported::infers_formula(&db, &f, &mut cost),
                reference.iter().all(|m| m.contains(a))
            );
            prop_assert_eq!(
                supported::brave_infers_formula(&db, &f, &mut cost),
                reference.iter().any(|m| m.contains(a))
            );
        }
    }

    #[test]
    fn stable_subset_of_supported(db in arb_normal_db()) {
        let mut cost = Cost::new();
        let supported = supported::models(&db, &mut cost);
        for m in dsm::models(&db, &mut cost) {
            prop_assert!(supported.contains(&m));
        }
    }

    #[test]
    fn wfs_is_knowledge_least_partial_stable(db in arb_normal_db()) {
        let w = wfs::well_founded_model(&db);
        let mut cost = Cost::new();
        prop_assert!(pdsm::is_partial_stable(&db, &w, &mut cost));
        for p in pdsm::models(&db, &mut cost) {
            prop_assert!(w.true_set().is_subset(p.true_set()));
            prop_assert!(w.false_set().is_subset(p.false_set()));
        }
    }

    #[test]
    fn wfs_sound_for_stable(db in arb_normal_db()) {
        let w = wfs::well_founded_model(&db);
        let mut cost = Cost::new();
        for m in dsm::models(&db, &mut cost) {
            for a in w.true_set().iter() {
                prop_assert!(m.contains(a));
            }
            for a in w.false_set().iter() {
                prop_assert!(!m.contains(a));
            }
        }
    }

    #[test]
    fn wfs_total_implies_unique_stable(db in arb_normal_db()) {
        // When WFS decides everything, its total model is the unique
        // stable model.
        let w = wfs::well_founded_model(&db);
        if w.is_total() {
            let total = w.to_total();
            // The total WFS model is stable iff it is a model at all —
            // and for normal programs a total well-founded model is
            // always stable.
            let mut cost = Cost::new();
            let stable = dsm::models(&db, &mut cost);
            prop_assert_eq!(stable, vec![total]);
        }
    }

    #[test]
    fn wfs_value_matches_pdsm_consensus(db in arb_normal_db()) {
        // An atom true (false) in WFS has value 1 (0) in every partial
        // stable model — restated per atom via eval3 for coverage of the
        // three-valued evaluation path.
        let w = wfs::well_founded_model(&db);
        let mut cost = Cost::new();
        let partials = pdsm::models(&db, &mut cost);
        for i in 0..N {
            let a = Atom::new(i as u32);
            match w.value(a) {
                TruthValue::True => {
                    for p in &partials {
                        prop_assert_eq!(p.value(a), TruthValue::True);
                    }
                }
                TruthValue::False => {
                    for p in &partials {
                        prop_assert_eq!(p.value(a), TruthValue::False);
                    }
                }
                TruthValue::Undefined => {}
            }
        }
    }
}
