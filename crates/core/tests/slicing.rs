//! Seeded property tests for the query-relevant slicing and splitting
//! routes: whatever reduction `RoutingMode::Auto` applies, the answers
//! must be identical to the generic whole-database procedures, for all
//! ten semantics, on the corpus and on random databases — including
//! databases engineered to *fail* the soundness preconditions, where the
//! fallback to the generic route must fire (and be observable in the
//! `route.slice.blocked` counter).

use ddb_core::{RoutingMode, SemanticsConfig, SemanticsId};
use ddb_logic::parse::parse_program;
use ddb_logic::rng::XorShift64Star;
use ddb_logic::{Atom, Database, Formula, Rule};
use ddb_models::Cost;
use std::sync::Mutex;

/// Serializes tests that assert on the process-global obs counters.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

/// Hand-picked databases covering every admission/peel path: positive
/// sliceable layers, the GCWA/CCWA non-minimal-model trap, blocked
/// slices, constraints riding the peel, unstratifiable negation, and a
/// flatly inconsistent program.
const CORPUS: &[&str] = &[
    "a | b. c :- a. c :- b. x | y. z :- x.",
    "a | b. c :- a, b.",
    "a | b. c :- a. d :- not c. e.",
    "a. b :- a. c | d :- b. :- a, z.",
    "x0. x1 :- x0. a | b :- x1. q :- a. q :- b.",
    "a :- not b. b :- not a. p | q :- a.",
    "t. :- t. a | b.",
    "p :- q, not u. p :- q, s. q. s.",
    "a | b. :- a. c :- b.",
    "a | b | c. d :- a. d :- b. e :- d, not c.",
];

fn query_formulas(db: &Database) -> Vec<Formula> {
    let mut fs = Vec::new();
    let n = db.num_atoms();
    if n >= 1 {
        fs.push(Formula::Atom(Atom::new(0)));
        fs.push(Formula::Atom(Atom::new(0)).negated());
    }
    if n >= 2 {
        fs.push(Formula::Or(vec![
            Formula::Atom(Atom::new(0)),
            Formula::Atom(Atom::new(1)).negated(),
        ]));
        fs.push(Formula::And(vec![
            Formula::Atom(Atom::new(0)),
            Formula::Atom(Atom::new(1)),
        ]));
    }
    fs
}

/// The heart of the suite: the auto-routed config (slice/split/Horn/HCF,
/// whichever applies) must agree with the generic one on every public
/// entry point.
fn assert_sliced_agrees(id: SemanticsId, db: &Database) {
    let auto = SemanticsConfig::new(id);
    let generic = SemanticsConfig::new(id).with_routing(RoutingMode::Generic);
    let mut ca = Cost::new();
    let mut cg = Cost::new();

    match (auto.has_model(db, &mut ca), generic.has_model(db, &mut cg)) {
        (Ok(a), Ok(g)) => assert_eq!(a, g, "{id:?} has_model on {db:?}"),
        (Err(_), Err(_)) => return, // unsupported either way
        _ => panic!("{id:?}: routed and generic disagree on applicability for {db:?}"),
    }

    for i in 0..db.num_atoms() as u32 {
        for lit in [Atom::new(i).pos(), Atom::new(i).neg()] {
            assert_eq!(
                auto.infers_literal(db, lit, &mut ca).unwrap(),
                generic.infers_literal(db, lit, &mut cg).unwrap(),
                "{id:?} infers_literal {lit:?} on {db:?}"
            );
        }
    }
    for f in query_formulas(db) {
        assert_eq!(
            auto.infers_formula(db, &f, &mut ca).unwrap(),
            generic.infers_formula(db, &f, &mut cg).unwrap(),
            "{id:?} infers_formula {f:?} on {db:?}"
        );
    }
}

#[test]
fn corpus_sliced_answers_equal_generic_for_all_ten_semantics() {
    for src in CORPUS {
        let db = parse_program(src).unwrap();
        for id in SemanticsId::ALL {
            assert_sliced_agrees(id, &db);
        }
    }
}

const N: usize = 4;

fn random_db(rng: &mut XorShift64Star, allow_neg: bool) -> Database {
    let mut db = Database::with_fresh_atoms(N);
    for _ in 0..rng.gen_range(0, 6) {
        let h: Vec<u32> = (0..rng.gen_range(0, 3))
            .map(|_| rng.gen_range(0, N) as u32)
            .collect();
        let bp: Vec<u32> = (0..rng.gen_range(0, 3))
            .map(|_| rng.gen_range(0, N) as u32)
            .collect();
        let bn: Vec<u32> = (0..rng.gen_range(0, 1 + 2 * usize::from(allow_neg)))
            .map(|_| rng.gen_range(0, N) as u32)
            .collect();
        db.add_rule(Rule::new(
            h.into_iter().map(Atom::new),
            bp.into_iter().map(Atom::new),
            bn.into_iter().map(Atom::new),
        ));
    }
    db
}

#[test]
fn random_positive_dbs_sliced_answers_equal_generic() {
    let mut rng = XorShift64Star::seed_from_u64(0xDDB_0401);
    for _ in 0..50 {
        let db = random_db(&mut rng, false);
        for id in SemanticsId::ALL {
            assert_sliced_agrees(id, &db);
        }
    }
}

#[test]
fn random_normal_dbs_sliced_answers_equal_generic() {
    let mut rng = XorShift64Star::seed_from_u64(0xDDB_0402);
    for _ in 0..50 {
        let db = random_db(&mut rng, true);
        for id in SemanticsId::ALL {
            assert_sliced_agrees(id, &db);
        }
    }
}

/// A positive database of `layers` stacked disjunctive stages:
/// `c0 | d0.` then `a_i | b_i :- c_{i-1}. c_i :- a_i. c_i :- b_i.` — the
/// slice of a low-layer query drops every stage above it.
fn layered_db(layers: usize) -> Database {
    let n = 2 + 3 * layers;
    let mut db = Database::with_fresh_atoms(n);
    let c = |i: usize| Atom::new(if i == 0 { 0 } else { (3 * i + 1) as u32 });
    db.add_rule(Rule::new([Atom::new(0), Atom::new(1)], [], [])); // c0 | d0.
    for i in 1..=layers {
        let a = Atom::new((3 * i - 1) as u32);
        let b = Atom::new((3 * i) as u32);
        db.add_rule(Rule::new([a, b], [c(i - 1)], []));
        db.add_rule(Rule::new([c(i)], [a], []));
        db.add_rule(Rule::new([c(i)], [b], []));
    }
    db
}

#[test]
fn sliced_literal_inference_pays_strictly_fewer_oracle_calls() {
    let db = layered_db(4);
    // c1 (one stage up from the base) and its negation: the slice keeps 5
    // of 14 atoms, and the semantics whose literal procedures enumerate
    // characteristic models pay per model they no longer see.
    for (id, lit) in [
        (SemanticsId::Ccwa, Atom::new(4).pos()),
        (SemanticsId::Icwa, Atom::new(4).neg()),
        (SemanticsId::Dsm, Atom::new(4).pos()),
        (SemanticsId::Pdsm, Atom::new(4).neg()),
    ] {
        let mut ca = Cost::new();
        let mut cg = Cost::new();
        let auto = SemanticsConfig::new(id);
        let generic = SemanticsConfig::new(id).with_routing(RoutingMode::Generic);
        let a = auto.infers_literal(&db, lit, &mut ca).unwrap();
        let g = generic.infers_literal(&db, lit, &mut cg).unwrap();
        assert_eq!(a, g, "{id:?} on the layered family");
        assert!(
            ca.sat_calls < cg.sat_calls,
            "{id:?}: sliced route must be strictly cheaper ({} vs {} SAT calls)",
            ca.sat_calls,
            cg.sat_calls
        );
    }
}

#[test]
fn blocked_precondition_falls_back_and_counts_it() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    // The slice of `c` is {a, b, c}, but `d :- not c.` reads `c` through
    // negation from outside: not split-closed, and the database is not
    // positive, so every admission is Blocked for DSM.
    let db = parse_program("a | b. c :- a. d :- not c. e.").unwrap();
    let before = ddb_obs::snapshot();
    assert_sliced_agrees(SemanticsId::Dsm, &db);
    let diff = ddb_obs::snapshot().diff(&before);
    assert!(
        diff.get("route.slice.blocked") > 0,
        "fallback must be observable: {diff:?}"
    );
}

#[test]
fn admitted_slices_and_peels_are_observable() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let db = parse_program("a | b. c :- a. c :- b. x | y. z :- x.").unwrap();
    let before = ddb_obs::snapshot();
    let mut cost = Cost::new();
    let ans = SemanticsConfig::new(SemanticsId::Egcwa)
        .infers_literal(&db, Atom::new(2).pos(), &mut cost)
        .unwrap()
        .definite();
    assert!(ans, "c holds in every minimal model");
    let diff = ddb_obs::snapshot().diff(&before);
    assert!(diff.get("route.slice") > 0, "slice route taken: {diff:?}");

    let db = parse_program("x0. x1 :- x0. a | b :- x1. q :- a. q :- b.").unwrap();
    let before = ddb_obs::snapshot();
    let mut cost = Cost::new();
    let ans = SemanticsConfig::new(SemanticsId::Dsm)
        .infers_formula(
            &db,
            &Formula::And(vec![
                Formula::Atom(Atom::new(1)),
                Formula::Atom(Atom::new(4)),
            ]),
            &mut cost,
        )
        .unwrap()
        .definite();
    assert!(ans, "x1 and q hold in every stable model");
    let diff = ddb_obs::snapshot().diff(&before);
    assert!(
        diff.get("route.slice") > 0 || diff.get("route.split") > 0,
        "a reduction route must be taken: {diff:?}"
    );
}
