//! The acceptance property of the static planner: on random databases,
//! for every semantics and every decision problem, the route the plan
//! tree predicts is exactly the route dispatch takes, and the observed
//! oracle calls never exceed the plan's static bound.
//!
//! Both sides run through the same decision kernel
//! (`ddb_core::planner::decide`), so a mismatch here means the plan
//! *interpreter* in dispatch diverged from the plan *builder* — the one
//! regression this layer must never allow.

use ddb_analysis::PlanQuery;
use ddb_core::profile::{profile_cell, Problem};
use ddb_core::{SemanticsConfig, SemanticsId};
use ddb_logic::{Atom, Formula};
use ddb_workloads::random::{random_db, DbSpec};

const SEEDS_PER_SPEC: u64 = 40;

#[test]
fn predicted_route_and_bound_hold_on_random_dbs() {
    let specs = [
        DbSpec::positive(8, 14),
        DbSpec::deductive(8, 14),
        DbSpec::normal(8, 14),
    ];
    let lit = Atom::new(0).pos();
    let f = Formula::Or(vec![
        Formula::Atom(Atom::new(1)),
        Formula::Atom(Atom::new(2)).negated(),
    ]);
    let cells = [
        (Problem::Literal, PlanQuery::Literal(lit.atom())),
        (Problem::Formula, PlanQuery::Formula(f.atoms())),
        (Problem::Existence, PlanQuery::Existence),
    ];
    let mut dbs = 0usize;
    let mut checked = 0usize;
    for (si, spec) in specs.iter().enumerate() {
        for seed in 0..SEEDS_PER_SPEC {
            let db = random_db(spec, 0xDDB_0800 + si as u64 * 1000 + seed);
            dbs += 1;
            for id in SemanticsId::ALL {
                let cfg = SemanticsConfig::new(id);
                for (problem, q) in &cells {
                    let Ok(plan) = cfg.plan(&db, q) else {
                        continue; // semantics not applicable to this class
                    };
                    let cell = profile_cell(&cfg, &db, *problem, lit, &f, None);
                    if cell.unsupported.is_some() {
                        continue; // problem-specific gap the planner can't see
                    }
                    assert_eq!(
                        cell.route,
                        Some(plan.route.label()),
                        "{id:?} {problem:?} route mismatch (seed {seed}) on {db:?}"
                    );
                    assert!(
                        cell.cost.sat_calls <= plan.oracle_bound,
                        "{id:?} {problem:?}: {} sat calls exceed static bound {} \
                         (seed {seed}) on {db:?}",
                        cell.cost.sat_calls,
                        plan.oracle_bound,
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(dbs >= 100, "property swept only {dbs} databases");
    assert!(
        checked >= 1000,
        "too few supported cells checked: {checked}"
    );
}
