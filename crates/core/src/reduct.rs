//! Reducts: the Gelfond–Lifschitz reduct `DB^M` (for DSM) and the
//! three-valued reduct (for PDSM).

use ddb_logic::{Database, Interpretation, PartialInterpretation, Rule, TruthValue};

/// The Gelfond–Lifschitz reduct `DB^M`: drop every rule whose negative body
/// intersects `M`; strip the negative body from the rest. The result is a
/// positive database (possibly with integrity clauses) over the same
/// vocabulary.
pub fn gl_reduct(db: &Database, m: &Interpretation) -> Database {
    let mut out = Database::new(db.symbols().clone());
    for rule in db.rules() {
        if rule.body_neg().iter().any(|&c| m.contains(c)) {
            continue;
        }
        out.add_rule(Rule::new(
            rule.head().iter().copied(),
            rule.body_pos().iter().copied(),
            [],
        ));
    }
    out
}

/// A rule of a three-valued reduct: negative body literals have been
/// replaced by the constant truth value they take under the reducing
/// interpretation (`body_const` is the minimum of those values; `True`
/// when there were none).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reduct3Rule {
    /// Head atoms (disjunction); empty for integrity clauses.
    pub head: Vec<ddb_logic::Atom>,
    /// Positive body atoms (conjunction).
    pub body_pos: Vec<ddb_logic::Atom>,
    /// The constant contributed by the reduced negative body.
    pub body_const: TruthValue,
}

impl Reduct3Rule {
    /// Three-valued satisfaction: `val(head) ≥ min(val(body), body_const)`.
    pub fn satisfied_by(&self, i: &PartialInterpretation) -> bool {
        let head = self
            .head
            .iter()
            .map(|&a| i.value(a))
            .fold(TruthValue::False, TruthValue::or);
        let body = self
            .body_pos
            .iter()
            .map(|&a| i.value(a))
            .fold(self.body_const, TruthValue::and);
        head.rank() >= body.rank()
    }
}

/// The three-valued reduct `DB^I` (Przymusinski): each negated body atom
/// `¬c` is replaced by the constant `¬I(c)`. Rules whose reduced negative
/// body is already `False` are kept (they are trivially satisfied), so the
/// structure mirrors the definition literally.
pub fn reduct3(db: &Database, i: &PartialInterpretation) -> Vec<Reduct3Rule> {
    db.rules()
        .iter()
        .map(|rule| {
            let body_const = rule
                .body_neg()
                .iter()
                .map(|&c| i.value(c).not())
                .fold(TruthValue::True, TruthValue::and);
            Reduct3Rule {
                head: rule.head().to_vec(),
                body_pos: rule.body_pos().to_vec(),
                body_const,
            }
        })
        .collect()
}

/// Whether `i` satisfies every rule of a three-valued reduct.
pub fn satisfies_reduct3(rules: &[Reduct3Rule], i: &PartialInterpretation) -> bool {
    rules.iter().all(|r| r.satisfied_by(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::parse_program;
    use ddb_logic::Atom;

    fn interp(n: usize, atoms: &[u32]) -> Interpretation {
        Interpretation::from_atoms(n, atoms.iter().map(|&i| Atom::new(i)))
    }

    #[test]
    fn gl_reduct_drops_blocked_rules() {
        // a :- not b.  b :- not a.
        let db = parse_program("a :- not b. b :- not a.").unwrap();
        let r_a = gl_reduct(&db, &interp(2, &[0])); // M = {a}
                                                    // Rule "a :- not b" survives (b ∉ M) as fact a; "b :- not a" dropped.
        assert_eq!(r_a.len(), 1);
        assert_eq!(r_a.rules()[0], ddb_logic::Rule::fact([Atom::new(0)]));
        assert!(!r_a.has_negation());
    }

    #[test]
    fn gl_reduct_keeps_positive_parts() {
        let db = parse_program("c | d :- a, not b.").unwrap();
        let r = gl_reduct(&db, &interp(4, &[]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.rules()[0].head().len(), 2);
        assert_eq!(r.rules()[0].body_pos().len(), 1);
        assert!(r.rules()[0].body_neg().is_empty());
    }

    #[test]
    fn gl_reduct_of_positive_db_is_identity() {
        let db = parse_program("a | b. c :- a. :- b, c.").unwrap();
        let r = gl_reduct(&db, &interp(3, &[0, 2]));
        assert_eq!(r.rules(), db.rules());
    }

    #[test]
    fn reduct3_replaces_negation_by_constant() {
        let db = parse_program("a :- not b.").unwrap();
        let b_atom = db.symbols().lookup("b").unwrap();
        let mut i = PartialInterpretation::undefined(2);
        // b undefined → ¬b = ½.
        let r = reduct3(&db, &i);
        assert_eq!(r[0].body_const, TruthValue::Undefined);
        i.set(b_atom, TruthValue::True);
        assert_eq!(reduct3(&db, &i)[0].body_const, TruthValue::False);
        i.set(b_atom, TruthValue::False);
        assert_eq!(reduct3(&db, &i)[0].body_const, TruthValue::True);
    }

    #[test]
    fn reduct3_rule_satisfaction() {
        // a :- not b, with b false → body_const True → need val(a) = 1.
        let db = parse_program("a :- not b.").unwrap();
        let a_atom = db.symbols().lookup("a").unwrap();
        let b_atom = db.symbols().lookup("b").unwrap();
        let mut i = PartialInterpretation::undefined(2);
        i.set(b_atom, TruthValue::False);
        let rules = reduct3(&db, &i);
        assert!(!satisfies_reduct3(&rules, &i)); // a undefined (½) < 1
        i.set(a_atom, TruthValue::True);
        assert!(satisfies_reduct3(&rules, &i));
        // With b undefined, a = ½ suffices.
        let mut j = PartialInterpretation::undefined(2);
        j.set(a_atom, TruthValue::Undefined);
        let rules_j = reduct3(&db, &j);
        assert!(satisfies_reduct3(&rules_j, &j));
    }

    #[test]
    fn reduct3_on_total_matches_gl() {
        // For total I, satisfaction of reduct3 must agree with classical
        // satisfaction of the GL reduct.
        let db = parse_program("a | b :- c, not d. e :- not a. :- b, not e.").unwrap();
        let n = db.num_atoms();
        for bits in 0u32..1 << n {
            let m = Interpretation::from_atoms(
                n,
                (0..n as u32).filter(|&i| bits >> i & 1 == 1).map(Atom::new),
            );
            let p = PartialInterpretation::from_total(&m);
            let r3 = reduct3(&db, &p);
            let gl = gl_reduct(&db, &m);
            assert_eq!(
                satisfies_reduct3(&r3, &p),
                gl.satisfied_by(&m),
                "model {m:?}"
            );
        }
    }
}
