//! Bridge between [`SemanticsConfig`] and the semantics-agnostic planner
//! in [`ddb_analysis::plan`].
//!
//! The analysis crate's decision kernel ([`ddb_analysis::decide`]) knows
//! nothing about the ten semantics; everything semantics-specific is
//! funneled through [`SemanticsTraits`], and [`traits_for`] is the one
//! place those traits are derived from a [`SemanticsConfig`]:
//!
//! * the minimal-model determinedness of formula queries (GCWA/CCWA keep
//!   non-minimal models — see [`crate::slicing::admission`]);
//! * the peel gate ([`crate::slicing::peel_mode`]);
//! * the HCF shift (DSM only) and the Horn collapse (default structure
//!   only);
//! * the routing mode and the `no_slice` inner-call marker;
//! * the paper's complexity class for the (semantics, problem) cell
//!   ([`crate::profile::paper_complexity`]).
//!
//! `dispatch` calls [`decide`] on every query and executes the returned
//! [`Decision`]; `ddb explain` calls [`SemanticsConfig::plan`], which lands
//! on [`plan`] here — both feed the *same* traits into the *same* kernel,
//! so the predicted route always matches the executed one.

use crate::dispatch::{RoutingMode, SemanticsConfig, SemanticsId};
use crate::profile::{paper_complexity, Problem};
use ddb_analysis::{Decision, Fragments, PlanNode, PlanQuery, SemanticsTraits};
use ddb_logic::Database;

/// The paper's problem row a [`PlanQuery`] is scored against. Enumeration
/// has no row of its own; its gating (and its complexity floor) is the
/// existence problem's.
pub fn problem_of(q: &PlanQuery) -> Problem {
    match q {
        PlanQuery::Literal(_) => Problem::Literal,
        PlanQuery::Formula(_) => Problem::Formula,
        PlanQuery::Existence | PlanQuery::Enumeration => Problem::Existence,
    }
}

/// Derives the routing-relevant traits of `cfg` for one problem — the
/// single source of the facts the planner kernel consumes.
pub fn traits_for(cfg: &SemanticsConfig, problem: Problem) -> SemanticsTraits {
    SemanticsTraits {
        name: cfg.id.name(),
        mm_determined_formulas: !matches!(cfg.id, SemanticsId::Gcwa | SemanticsId::Ccwa),
        peel_negation: crate::slicing::peel_mode(cfg.id),
        hcf_shift: cfg.id == SemanticsId::Dsm,
        horn_collapse: cfg.has_default_structure(),
        reductions: cfg.routing == RoutingMode::Auto
            && !cfg.no_slice
            && cfg.has_default_structure(),
        generic_only: cfg.routing == RoutingMode::Generic,
        class: paper_complexity(cfg.id, problem),
    }
}

/// The decision kernel, specialized to `cfg`: what `dispatch` executes.
pub fn decide(cfg: &SemanticsConfig, db: &Database, frags: &Fragments, q: &PlanQuery) -> Decision {
    ddb_analysis::decide(db, frags, &traits_for(cfg, problem_of(q)), q)
}

/// The full plan tree, specialized to `cfg`: what `ddb explain` prints.
pub fn plan(cfg: &SemanticsConfig, db: &Database, frags: &Fragments, q: &PlanQuery) -> PlanNode {
    ddb_analysis::build_plan(db, frags, &traits_for(cfg, problem_of(q)), q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_analysis::{classify, RouteKind};
    use ddb_logic::parse::parse_program;

    #[test]
    fn traits_mirror_the_config() {
        let cfg = SemanticsConfig::new(SemanticsId::Gcwa);
        let t = traits_for(&cfg, Problem::Formula);
        assert!(!t.mm_determined_formulas);
        assert!(t.reductions && t.horn_collapse && !t.generic_only);
        assert_eq!(t.peel_negation, Some(false));
        let t = traits_for(&SemanticsConfig::new(SemanticsId::Dsm), Problem::Literal);
        assert!(t.hcf_shift && t.mm_determined_formulas);
        assert_eq!(t.peel_negation, Some(true));
        let t = traits_for(&SemanticsConfig::new(SemanticsId::Perf), Problem::Existence);
        assert_eq!(t.peel_negation, None);
        let generic = SemanticsConfig::new(SemanticsId::Egcwa).with_routing(RoutingMode::Generic);
        assert!(traits_for(&generic, Problem::Existence).generic_only);
    }

    #[test]
    fn inner_configs_lose_the_reductions() {
        let inner = crate::slicing::inner(&SemanticsConfig::new(SemanticsId::Dsm));
        let t = traits_for(&inner, Problem::Existence);
        assert!(!t.reductions, "no_slice must disable slice/split/islands");
        assert!(t.horn_collapse, "but the Horn collapse stays");
    }

    #[test]
    fn decide_routes_horn_on_horn_dbs() {
        let db = parse_program("a. b :- a.").unwrap();
        let frags = classify(&db);
        let cfg = SemanticsConfig::new(SemanticsId::Pdsm);
        let d = decide(&cfg, &db, &frags, &PlanQuery::Existence);
        assert_eq!(d.route, RouteKind::Horn);
    }
}
