//! Witness extraction: when a formula is *not* inferred, produce the
//! countermodel that refutes it — a characteristic model of the semantics
//! in which the formula fails.
//!
//! Witnesses turn the decision procedures into explainable ones: the
//! guess half of every "guess-and-check" upper bound in the paper is a
//! certificate, and this module hands it to the caller. The test suite
//! checks that every witness (a) falsifies the query and (b) belongs to
//! the semantics' characteristic model set.

use crate::dispatch::{SemanticsConfig, SemanticsId, Unsupported, Verdict};
use crate::icwa::Layers;
use ddb_logic::cnf::CnfBuilder;
use ddb_logic::{Database, Formula, Interpretation, PartialInterpretation, TruthValue};
use ddb_models::{circumscribe, Cost, Partition};
use ddb_obs::{Governed, Interrupted};
use ddb_sat::Solver;

/// Outcome of an explained inference query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The formula holds in every characteristic model.
    Inferred,
    /// A two-valued countermodel (a characteristic model falsifying the
    /// query).
    Countermodel(Interpretation),
    /// A three-valued countermodel (PDSM: a partial stable model where
    /// the query's value is not 1).
    CountermodelPartial(PartialInterpretation),
    /// The search was interrupted by resource exhaustion before it could
    /// either certify inference or produce a countermodel.
    Unknown(Interrupted),
}

impl QueryOutcome {
    /// `true` iff the query was inferred.
    pub fn is_inferred(&self) -> bool {
        matches!(self, QueryOutcome::Inferred)
    }
}

/// Finds a model of `DB ∪ units ∧ ¬F` projected to the vocabulary.
fn refuting_model(
    db: &Database,
    units: &Interpretation,
    f: &Formula,
    cost: &mut Cost,
) -> Governed<Option<Interpretation>> {
    let n = db.num_atoms();
    let mut b = CnfBuilder::new(n);
    b.add_database(db);
    for a in units.iter() {
        b.add_clause(vec![a.neg()]);
    }
    b.assert_formula(&f.clone().negated());
    let cnf = b.finish();
    let mut solver = Solver::from_cnf(&cnf);
    solver.ensure_vars(cnf.num_vars.max(n));
    let result = solver.solve();
    cost.absorb(&solver);
    if !result?.is_sat() {
        return Ok(None);
    }
    let full = solver.model();
    let mut m = Interpretation::empty(n);
    for a in full.iter().filter(|a| a.index() < n) {
        m.insert(a);
    }
    Ok(Some(m))
}

/// Explains formula inference under `cfg`: `Inferred`, a countermodel
/// from the semantics' characteristic model set, or `Unknown` when the
/// installed [`ddb_obs::Budget`] tripped mid-search.
pub fn explain_formula(
    cfg: &SemanticsConfig,
    db: &Database,
    f: &Formula,
    cost: &mut Cost,
) -> Result<QueryOutcome, Unsupported> {
    let _span = ddb_obs::span("witness.explain_formula");
    cfg.check_applicable(db)?;
    let n = db.num_atoms();
    let neg = f.clone().negated();
    let run = |cost: &mut Cost| -> Governed<QueryOutcome> {
        Ok(match cfg.id {
            SemanticsId::Gcwa => {
                let n_set = crate::gcwa::false_atoms(db, cost)?;
                refuting_model(db, &n_set, f, cost)?
                    .map_or(QueryOutcome::Inferred, QueryOutcome::Countermodel)
            }
            SemanticsId::Ccwa => {
                let part = cfg
                    .partition
                    .clone()
                    .unwrap_or_else(|| Partition::minimize_all(n));
                let n_set = crate::ccwa::false_atoms(db, &part, cost)?;
                refuting_model(db, &n_set, f, cost)?
                    .map_or(QueryOutcome::Inferred, QueryOutcome::Countermodel)
            }
            SemanticsId::Egcwa => {
                let part = Partition::minimize_all(n);
                circumscribe::find_pz_minimal_model_satisfying(db, &part, &neg, cost)?
                    .map_or(QueryOutcome::Inferred, QueryOutcome::Countermodel)
            }
            SemanticsId::Ecwa => {
                let part = cfg
                    .partition
                    .clone()
                    .unwrap_or_else(|| Partition::minimize_all(n));
                circumscribe::find_pz_minimal_model_satisfying(db, &part, &neg, cost)?
                    .map_or(QueryOutcome::Inferred, QueryOutcome::Countermodel)
            }
            SemanticsId::Ddr => {
                let n_set = crate::ddr::false_atoms(db);
                refuting_model(db, &n_set, f, cost)?
                    .map_or(QueryOutcome::Inferred, QueryOutcome::Countermodel)
            }
            SemanticsId::Pws => {
                // Possible-model encoding ∧ ¬F.
                let base = crate::pws::possible_model_cnf(db);
                let mut b = CnfBuilder::new(base.num_vars);
                for c in &base.clauses {
                    b.add_clause(c.clone());
                }
                b.assert_formula(&neg);
                let cnf = b.finish();
                let mut solver = Solver::from_cnf(&cnf);
                solver.ensure_vars(cnf.num_vars.max(n));
                let result = solver.solve();
                cost.absorb(&solver);
                if result?.is_sat() {
                    let full = solver.model();
                    let mut m = Interpretation::empty(n);
                    for a in full.iter().filter(|a| a.index() < n) {
                        m.insert(a);
                    }
                    QueryOutcome::Countermodel(m)
                } else {
                    QueryOutcome::Inferred
                }
            }
            SemanticsId::Perf => {
                let mut found = None;
                crate::perf::for_each_perfect_model(db, cost, |m| {
                    if !f.eval(m) {
                        found = Some(m.clone());
                        return false;
                    }
                    true
                })?;
                found.map_or(QueryOutcome::Inferred, QueryOutcome::Countermodel)
            }
            SemanticsId::Icwa => {
                let strata = db.stratification().expect("checked stratifiable");
                let z = cfg
                    .icwa_varying
                    .clone()
                    .unwrap_or_else(|| Interpretation::empty(n));
                let layers = Layers::new(db, &strata, &z);
                let mut found = None;
                crate::icwa::for_each_icwa_model(db, &layers, Some(&neg), cost, |m| {
                    found = Some(m.clone());
                    false
                })?;
                found.map_or(QueryOutcome::Inferred, QueryOutcome::Countermodel)
            }
            SemanticsId::Dsm => {
                let mut found = None;
                crate::dsm::for_each_stable_model(db, cost, |m| {
                    if !f.eval(m) {
                        found = Some(m.clone());
                        return false;
                    }
                    true
                })?;
                found.map_or(QueryOutcome::Inferred, QueryOutcome::Countermodel)
            }
            SemanticsId::Pdsm => {
                let not_value1 = crate::pdsm::encode_ge1(f, n).negated();
                let mut found = None;
                crate::pdsm::for_each_partial_stable(db, Some(&not_value1), cost, |p| {
                    found = Some(p.clone());
                    false
                })?;
                found.map_or(QueryOutcome::Inferred, QueryOutcome::CountermodelPartial)
            }
        })
    };
    Ok(match run(cost) {
        Ok(outcome) => outcome,
        Err(i) => {
            crate::dispatch::note_interrupt(&i);
            QueryOutcome::Unknown(i)
        }
    })
}

/// Brave (possibility) inference: does `F` hold in *some* characteristic
/// model? The Σ-side dual of the paper's cautious inference problems.
/// For PDSM, "holds" means value 1. A tripped budget surfaces as
/// [`Verdict::Unknown`].
pub fn brave_infers_formula(
    cfg: &SemanticsConfig,
    db: &Database,
    f: &Formula,
    cost: &mut Cost,
) -> Result<Verdict, Unsupported> {
    let _span = ddb_obs::span("witness.brave_infers_formula");
    match cfg.id {
        SemanticsId::Pdsm => {
            cfg.check_applicable(db)?;
            let value1 = crate::pdsm::encode_ge1(f, db.num_atoms());
            let mut found = false;
            let result = crate::pdsm::for_each_partial_stable(db, Some(&value1), cost, |p| {
                debug_assert_eq!(f.eval3(p), TruthValue::True);
                found = true;
                false
            });
            Ok(match result {
                Ok(()) => Verdict::from(found),
                Err(i) => {
                    crate::dispatch::note_interrupt(&i);
                    Verdict::Unknown(i)
                }
            })
        }
        _ => {
            // F holds somewhere iff ¬F is not cautiously inferred…
            // except in the empty-model-set case, where cautious inference
            // is vacuous and brave inference must be false.
            match cfg.has_model(db, cost)? {
                Verdict::False => return Ok(Verdict::False),
                Verdict::Unknown(i) => return Ok(Verdict::Unknown(i)),
                Verdict::True => {}
            }
            Ok(
                match explain_formula(cfg, db, &f.clone().negated(), cost)? {
                    QueryOutcome::Unknown(i) => Verdict::Unknown(i),
                    out => Verdict::from(!out.is_inferred()),
                },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{parse_formula, parse_program};
    use ddb_workloads::queries::random_formula;
    use ddb_workloads::random::{random_db, DbSpec};

    #[test]
    fn witnesses_falsify_and_belong() {
        for seed in 0..10 {
            let db = random_db(&DbSpec::deductive(5, 8), seed);
            let f = random_formula(5, 5, seed + 50);
            for id in SemanticsId::ALL {
                if id == SemanticsId::Pdsm {
                    continue; // checked separately below
                }
                let cfg = SemanticsConfig::new(id);
                let mut cost = Cost::new();
                let Ok(outcome) = explain_formula(&cfg, &db, &f, &mut cost) else {
                    continue;
                };
                let models = cfg.models(&db, &mut cost).unwrap();
                match outcome {
                    QueryOutcome::Inferred => {
                        assert!(models.iter().all(|m| f.eval(m)), "{id} seed {seed}");
                    }
                    QueryOutcome::Countermodel(m) => {
                        assert!(!f.eval(&m), "{id} seed {seed}: witness must falsify");
                        assert!(models.contains(&m), "{id} seed {seed}: witness must belong");
                    }
                    QueryOutcome::CountermodelPartial(_) | QueryOutcome::Unknown(_) => {
                        unreachable!("no budget installed")
                    }
                }
            }
        }
    }

    #[test]
    fn pdsm_witnesses() {
        let db = parse_program("a :- not b. b :- not a. c.").unwrap();
        let f = parse_formula("a | b", db.symbols()).unwrap();
        let cfg = SemanticsConfig::new(SemanticsId::Pdsm);
        let mut cost = Cost::new();
        match explain_formula(&cfg, &db, &f, &mut cost).unwrap() {
            QueryOutcome::CountermodelPartial(p) => {
                assert_ne!(f.eval3(&p), TruthValue::True);
                assert!(crate::pdsm::is_partial_stable(&db, &p, &mut cost).unwrap());
            }
            other => panic!("expected a partial countermodel, got {other:?}"),
        }
        let g = parse_formula("c", db.symbols()).unwrap();
        assert!(explain_formula(&cfg, &db, &g, &mut cost)
            .unwrap()
            .is_inferred());
    }

    #[test]
    fn brave_vs_cautious() {
        let db = parse_program("a | b.").unwrap();
        let fa = parse_formula("a", db.symbols()).unwrap();
        let fab = parse_formula("a & b", db.symbols()).unwrap();
        let mut cost = Cost::new();
        let egcwa = SemanticsConfig::new(SemanticsId::Egcwa);
        // a holds in some but not all minimal models.
        assert!(brave_infers_formula(&egcwa, &db, &fa, &mut cost)
            .unwrap()
            .definite());
        assert!(!egcwa
            .infers_formula(&db, &fa, &mut cost)
            .unwrap()
            .definite());
        // a ∧ b holds in no minimal model but in a GCWA model.
        assert!(!brave_infers_formula(&egcwa, &db, &fab, &mut cost)
            .unwrap()
            .definite());
        let gcwa = SemanticsConfig::new(SemanticsId::Gcwa);
        assert!(brave_infers_formula(&gcwa, &db, &fab, &mut cost)
            .unwrap()
            .definite());
    }

    #[test]
    fn brave_on_empty_model_set() {
        // No stable model: cautious inference is vacuous, brave is empty.
        let db = parse_program("a :- not a.").unwrap();
        let cfg = SemanticsConfig::new(SemanticsId::Dsm);
        let f = parse_formula("a", db.symbols()).unwrap();
        let mut cost = Cost::new();
        assert!(cfg.infers_formula(&db, &f, &mut cost).unwrap().definite());
        assert!(!brave_infers_formula(&cfg, &db, &f, &mut cost)
            .unwrap()
            .definite());
    }

    #[test]
    fn brave_matches_model_sets() {
        use ddb_workloads::queries::random_formula;
        for seed in 0..10 {
            let db = random_db(&DbSpec::positive(5, 8), seed);
            let f = random_formula(5, 5, seed + 77);
            for id in [
                SemanticsId::Egcwa,
                SemanticsId::Gcwa,
                SemanticsId::Ddr,
                SemanticsId::Dsm,
            ] {
                let cfg = SemanticsConfig::new(id);
                let mut cost = Cost::new();
                let models = cfg.models(&db, &mut cost).unwrap();
                let expected = models.iter().any(|m| f.eval(m));
                assert_eq!(
                    brave_infers_formula(&cfg, &db, &f, &mut cost).unwrap(),
                    expected,
                    "{id} seed {seed}"
                );
            }
        }
    }
}
