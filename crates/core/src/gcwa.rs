//! The Generalized Closed World Assumption (GCWA), Minker \[16\].
//!
//! `GCWA(DB) = {M ∈ M(DB) : ∀x ∈ V. MM(DB) ⊨ ¬x ⇒ M ⊨ ¬x}` — the models
//! of `DB` that also satisfy every negative literal `¬x` whose atom is
//! false in all minimal models (the *GCWA-false* atoms `N`).
//!
//! Complexity structure implemented here (matching the paper's bounds):
//!
//! * **Literal inference is one Πᵖ₂ query.** `GCWA(DB) ⊨ ℓ ⟺ MM(DB) ⊨ ℓ`
//!   for literals of either sign: every model in `GCWA(DB)` contains a
//!   minimal model, and `MM(DB) ⊆ GCWA(DB)` (a minimal model trivially
//!   satisfies all GCWA-false negations). So a single
//!   [`ddb_models::circumscribe::holds_in_all_minimal_models`] call decides
//!   it — "it suffices to check a restricted set of DB models".
//! * **Formula inference** computes the GCWA-false set `N` (`|V|` Σᵖ₂
//!   queries) and finishes with one coNP entailment `DB ∪ ¬N ⊨ F`. The
//!   `O(log n)`-query census variant of \[7\] is exposed as
//!   [`census_false_atoms`] for the ablation bench.
//! * **Model existence** is a single SAT call: `GCWA(DB) ≠ ∅ ⟺ DB`
//!   satisfiable, because `MM(DB) ⊆ GCWA(DB)` and every satisfiable finite
//!   database has a minimal model.

use ddb_logic::{Atom, Database, Formula, Interpretation, Literal};
use ddb_models::{circumscribe, classical, minimal, Cost, Partition};
use ddb_obs::Governed;

/// The set `N` of GCWA-false atoms: atoms false in every minimal model.
/// `|V|` Σᵖ₂-style queries (one CEGAR run per atom).
pub fn false_atoms(db: &Database, cost: &mut Cost) -> Governed<Interpretation> {
    let n = db.num_atoms();
    let part = Partition::minimize_all(n);
    let mut out = Interpretation::empty(n);
    for i in 0..n {
        let a = Atom::new(i as u32);
        let f = Formula::atom(a);
        if !circumscribe::exists_pz_minimal_model_satisfying(db, &part, &f, cost)? {
            out.insert(a);
        }
    }
    Ok(out)
}

/// Counts `|N|` with `O(log |V|)` Σᵖ₂-style queries, the census technique
/// of Eiter & Gottlob \[7\]: binary-search the largest `k` such that some
/// collection of minimal models leaves at most `|V| − k` atoms … here
/// realized as the query "do at least `k` atoms occur in minimal models?",
/// decided by a single CEGAR search for a *set* of minimal models covering
/// `k` atoms.
///
/// This is an ablation target (`bench_gcwa`): it demonstrates the
/// `P^{Σᵖ₂}[O(log n)]` upper-bound structure without being needed for
/// correctness (inference uses [`false_atoms`]).
pub fn census_false_atoms(db: &Database, cost: &mut Cost) -> Governed<usize> {
    let n = db.num_atoms();
    // Binary search on t = number of atoms occurring in some minimal model.
    let (mut lo, mut hi) = (0usize, n); // invariant: occ(t) true for t ≤ lo, false for t > hi
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if at_least_k_atoms_occur(db, mid, cost)? {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Ok(n - lo)
}

/// One census oracle query: "are there ≥ k atoms that each occur in some
/// minimal model?" — implemented as a greedy cover by CEGAR witnesses
/// (each witness is a minimal model; its atoms all occur).
fn at_least_k_atoms_occur(db: &Database, k: usize, cost: &mut Cost) -> Governed<bool> {
    if k == 0 {
        return Ok(true);
    }
    let n = db.num_atoms();
    let part = Partition::minimize_all(n);
    let mut occurring = Interpretation::empty(n);
    // Greedily find a minimal model containing an atom not yet covered.
    loop {
        if occurring.count() >= k {
            return Ok(true);
        }
        let uncovered: Vec<Formula> = (0..n)
            .map(|i| Atom::new(i as u32))
            .filter(|a| !occurring.contains(*a))
            .map(Formula::atom)
            .collect();
        if uncovered.is_empty() {
            return Ok(false);
        }
        let f = Formula::Or(uncovered);
        match circumscribe::find_pz_minimal_model_satisfying(db, &part, &f, cost)? {
            Some(m) => occurring.union_with(&m),
            None => return Ok(false),
        }
    }
}

/// Literal inference `GCWA(DB) ⊨ ℓ`: a single Πᵖ₂ CEGAR query
/// (`MM(DB) ⊨ ℓ`).
///
/// ```
/// use ddb_logic::parse::parse_program;
/// use ddb_models::Cost;
/// let db = parse_program("a | b. c :- a, b.").unwrap();
/// let c = db.symbols().lookup("c").unwrap();
/// let mut cost = Cost::new();
/// assert!(ddb_core::gcwa::infers_literal(&db, c.neg(), &mut cost).unwrap());
/// assert!(!ddb_core::gcwa::infers_literal(&db, c.pos(), &mut cost).unwrap());
/// ```
pub fn infers_literal(db: &Database, lit: Literal, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("gcwa.infers_literal");
    let f = Formula::literal(lit.atom(), lit.is_positive());
    circumscribe::holds_in_all_minimal_models(db, &f, cost)
}

/// Formula inference `GCWA(DB) ⊨ F`: compute `N`, then `DB ∪ ¬N ⊨ F`.
pub fn infers_formula(db: &Database, f: &Formula, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("gcwa.infers_formula");
    let n_set = false_atoms(db, cost)?;
    let units: Vec<Literal> = n_set.iter().map(|a| a.neg()).collect();
    classical::entails(db, &units, f, cost)
}

/// Model existence: `GCWA(DB) ≠ ∅ ⟺ DB` satisfiable (one SAT call).
pub fn has_model(db: &Database, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("gcwa.has_model");
    classical::is_satisfiable(db, cost)
}

/// The characteristic model set `GCWA(DB)` (enumerative; test/example
/// sized). Computes `N`, then enumerates the models of `DB ∪ ¬N`.
pub fn models(db: &Database, cost: &mut Cost) -> Governed<Vec<Interpretation>> {
    let _span = ddb_obs::span("gcwa.models");
    let n_set = false_atoms(db, cost)?;
    Ok(classical::all_models(db, cost)?
        .into_iter()
        .filter(|m| n_set.iter().all(|x| !m.contains(x)))
        .collect())
}

/// Convenience: some minimal model (a canonical member of `GCWA(DB)`).
pub fn witness(db: &Database, cost: &mut Cost) -> Governed<Option<Interpretation>> {
    minimal::some_minimal_model(db, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{parse_formula, parse_program};

    fn lit(db: &Database, name: &str, positive: bool) -> Literal {
        Literal::with_sign(db.symbols().lookup(name).unwrap(), positive)
    }

    #[test]
    fn minker_classic() {
        // a ∨ b: GCWA infers neither ¬a nor ¬b (each occurs in a minimal
        // model), unlike naive CWA which would be inconsistent.
        let db = parse_program("a | b.").unwrap();
        let mut cost = Cost::new();
        assert!(!infers_literal(&db, lit(&db, "a", false), &mut cost).unwrap());
        assert!(!infers_literal(&db, lit(&db, "b", false), &mut cost).unwrap());
        assert!(!infers_literal(&db, lit(&db, "a", true), &mut cost).unwrap());
    }

    #[test]
    fn derived_atom_closed_off() {
        // a ∨ b, c ← a ∧ b: c is false in both minimal models.
        let db = parse_program("a | b. c :- a, b.").unwrap();
        let mut cost = Cost::new();
        assert!(infers_literal(&db, lit(&db, "c", false), &mut cost).unwrap());
        let n = false_atoms(&db, &mut cost).unwrap();
        assert_eq!(n.count(), 1);
        assert!(n.contains(db.symbols().lookup("c").unwrap()));
    }

    #[test]
    fn positive_literal_inference() {
        let db = parse_program("a. b | c :- a.").unwrap();
        let mut cost = Cost::new();
        assert!(infers_literal(&db, lit(&db, "a", true), &mut cost).unwrap());
        assert!(!infers_literal(&db, lit(&db, "b", true), &mut cost).unwrap());
    }

    #[test]
    fn formula_inference_uses_closed_world() {
        // a ∨ b, GCWA adds nothing; but with c: ¬c becomes derivable,
        // so ¬c ∨ a is inferred while ¬a is not.
        let db = parse_program("a | b. c :- a, b.").unwrap();
        let mut cost = Cost::new();
        let f = parse_formula("!c | a", db.symbols()).unwrap();
        assert!(infers_formula(&db, &f, &mut cost).unwrap());
        let g = parse_formula("!a", db.symbols()).unwrap();
        assert!(!infers_formula(&db, &g, &mut cost).unwrap());
        // a ∨ b is classical, hence GCWA-inferred.
        let h = parse_formula("a | b", db.symbols()).unwrap();
        assert!(infers_formula(&db, &h, &mut cost).unwrap());
    }

    #[test]
    fn formula_vs_models_reference() {
        let db = parse_program("a | b. b | c. d :- a, c.").unwrap();
        let mut cost = Cost::new();
        let gm = models(&db, &mut cost).unwrap();
        assert!(!gm.is_empty());
        for text in ["!d", "a | c", "b | (a & c)", "!a", "a -> !c"] {
            let f = parse_formula(text, db.symbols()).unwrap();
            let expected = gm.iter().all(|m| f.eval(m));
            assert_eq!(
                infers_formula(&db, &f, &mut cost).unwrap(),
                expected,
                "{text}"
            );
        }
    }

    #[test]
    fn literal_inference_matches_formula_inference() {
        // The two paths (single Πᵖ₂ query vs N-set + entailment) must agree
        // on literals.
        let db = parse_program("a | b. c :- a. :- b, c. d | e :- c.").unwrap();
        let mut cost = Cost::new();
        for name in ["a", "b", "c", "d", "e"] {
            for sign in [true, false] {
                let l = lit(&db, name, sign);
                let f = Formula::literal(l.atom(), sign);
                assert_eq!(
                    infers_literal(&db, l, &mut cost).unwrap(),
                    infers_formula(&db, &f, &mut cost).unwrap(),
                    "{name} {sign}"
                );
            }
        }
    }

    #[test]
    fn model_existence_is_satisfiability() {
        let mut cost = Cost::new();
        assert!(has_model(&parse_program("a | b. :- a.").unwrap(), &mut cost).unwrap());
        assert!(!has_model(&parse_program("a. :- a.").unwrap(), &mut cost).unwrap());
    }

    #[test]
    fn census_matches_direct_count() {
        for src in [
            "a | b. c :- a, b.",
            "a | b. b | c. d :- a, c.",
            "a. b. c | d :- a. :- c.",
            "p | q. r | s. t :- p, r. u :- v.",
        ] {
            let db = parse_program(src).unwrap();
            let mut cost = Cost::new();
            let direct = false_atoms(&db, &mut cost).unwrap().count();
            let census = census_false_atoms(&db, &mut cost).unwrap();
            assert_eq!(census, direct, "program: {src}");
        }
    }

    #[test]
    fn gcwa_models_contain_minimal_models() {
        let db = parse_program("a | b. c | d :- a.").unwrap();
        let mut cost = Cost::new();
        let gm = models(&db, &mut cost).unwrap();
        for m in minimal::minimal_models(&db, &mut cost).unwrap() {
            assert!(gm.contains(&m));
        }
        // And every GCWA model is a model of DB.
        for m in &gm {
            assert!(db.satisfied_by(m));
        }
    }
}
