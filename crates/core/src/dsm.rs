//! Disjunctive Stable Model semantics (DSM), Przymusinski \[20\],
//! generalizing the stable models of Gelfond & Lifschitz \[10\].
//!
//! `M` is a disjunctive stable model iff `M ∈ MM(DB^M)` where `DB^M` is the
//! Gelfond–Lifschitz reduct ([`crate::reduct::gl_reduct`]). Two structural
//! facts drive the procedures (both from \[20\], both pinned by tests):
//!
//! * `DSM(DB) ⊆ MM(DB)` — stable models are minimal models, so the
//!   enumerator walks the minimal models of `DB` (with superset blocking)
//!   and filters by the stability check;
//! * on positive databases `DB^M = DB`, hence `DSM(DB) = MM(DB)` — which
//!   is how the Πᵖ₂ lower bounds of the EGCWA rows carry over.
//!
//! The stability check itself is one oracle call (minimality of `M` in the
//! reduct — the guess-and-check structure behind the paper's Πᵖ₂/Σᵖ₂
//! memberships: formula inference is Πᵖ₂-complete, model existence
//! Σᵖ₂-complete).

use crate::reduct::gl_reduct;
use ddb_logic::cnf::database_to_cnf;
use ddb_logic::{Database, Formula, Interpretation, Literal};
use ddb_models::{minimal, Cost};
use ddb_obs::{budget, Governed};
use ddb_sat::Solver;

/// Whether `m` is a disjunctive stable model of `db`: `m ∈ MM(DB^m)`.
/// One model check plus one oracle call.
pub fn is_stable_model(db: &Database, m: &Interpretation, cost: &mut Cost) -> Governed<bool> {
    if !db.satisfied_by(m) {
        return Ok(false);
    }
    let reduct = gl_reduct(db, m);
    debug_assert!(reduct.satisfied_by(m), "M ⊨ DB implies M ⊨ DB^M");
    minimal::is_minimal_model(&reduct, m, cost)
}

/// Visits the stable models of `db` one at a time (in the order the
/// underlying enumeration discovers minimal models of `db`). The callback
/// returns `false` to stop early. This is the shared engine for
/// [`models`], [`infers_formula`] and [`has_model`]. Each round starts
/// with a budget checkpoint, so an exhausted [`ddb_obs::Budget`]
/// interrupts between rounds.
pub fn for_each_stable_model(
    db: &Database,
    cost: &mut Cost,
    mut visit: impl FnMut(&Interpretation) -> bool,
) -> Governed<()> {
    let n = db.num_atoms();
    let mut candidates = Solver::from_cnf(&database_to_cnf(db));
    candidates.ensure_vars(n);
    let mut run = |cost: &mut Cost, candidates: &mut Solver| -> Governed<()> {
        loop {
            budget::checkpoint()?;
            if !candidates.solve()?.is_sat() {
                return Ok(());
            }
            let model = {
                let full = candidates.model();
                let mut m = Interpretation::empty(n);
                for a in full.iter().filter(|a| a.index() < n) {
                    m.insert(a);
                }
                m
            };
            // Minimize within DB: stable ⊆ minimal, so only minimal models
            // are worth testing, and blocking their supersets never loses
            // one.
            let minimal = minimal::minimize(db, &model, cost)?;
            if is_stable_model(db, &minimal, cost)? && !visit(&minimal) {
                return Ok(());
            }
            let blocking: Vec<Literal> = minimal.iter().map(|a| a.neg()).collect();
            if blocking.is_empty() || !candidates.add_clause(&blocking) {
                return Ok(());
            }
        }
    };
    let result = run(cost, &mut candidates);
    cost.absorb(&candidates);
    result
}

/// All disjunctive stable models, sorted.
///
/// ```
/// use ddb_logic::parse::parse_program;
/// use ddb_models::Cost;
/// let db = parse_program("a :- not b. b :- not a.").unwrap();
/// let mut cost = Cost::new();
/// assert_eq!(ddb_core::dsm::models(&db, &mut cost).unwrap().len(), 2);
/// ```
pub fn models(db: &Database, cost: &mut Cost) -> Governed<Vec<Interpretation>> {
    let _span = ddb_obs::span("dsm.models");
    let mut out = Vec::new();
    for_each_stable_model(db, cost, |m| {
        out.push(m.clone());
        true
    })?;
    out.sort();
    Ok(out)
}

/// Literal inference `DSM(DB) ⊨ ℓ` (cautious: true in every stable model).
pub fn infers_literal(db: &Database, lit: Literal, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("dsm.infers_literal");
    infers_formula(db, &Formula::literal(lit.atom(), lit.is_positive()), cost)
}

/// Formula inference `DSM(DB) ⊨ F`: true in every stable model
/// (vacuously true when none exists).
pub fn infers_formula(db: &Database, f: &Formula, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("dsm.infers_formula");
    let mut holds = true;
    for_each_stable_model(db, cost, |m| {
        if !f.eval(m) {
            holds = false;
            return false;
        }
        true
    })?;
    Ok(holds)
}

/// Batch cautious inference: in **one** enumeration pass, computes the
/// atoms true in every stable model and the atoms false in every stable
/// model. Returns `None` when no stable model exists (cautious inference
/// is vacuous there). Compared to `2·|V|` separate `infers_literal`
/// calls this shares the whole enumeration.
pub fn cautious_literals(
    db: &Database,
    cost: &mut Cost,
) -> Governed<Option<(Interpretation, Interpretation)>> {
    let n = db.num_atoms();
    let mut true_in_all: Option<Interpretation> = None;
    let mut false_in_all: Option<Interpretation> = None;
    for_each_stable_model(db, cost, |m| {
        match &mut true_in_all {
            None => true_in_all = Some(m.clone()),
            Some(t) => t.intersect_with(m),
        }
        let mut complement = Interpretation::full(n);
        complement.difference_with(m);
        match &mut false_in_all {
            None => false_in_all = Some(complement),
            Some(f) => f.intersect_with(&complement),
        }
        // Early exit once both sets are empty: no literal can be
        // cautiously inferred anymore.
        let t_drained = true_in_all
            .as_ref()
            .is_some_and(Interpretation::is_empty_set);
        let f_drained = false_in_all
            .as_ref()
            .is_some_and(Interpretation::is_empty_set);
        !(t_drained && f_drained)
    })?;
    Ok(true_in_all.zip(false_in_all))
}

/// Counts the stable models, stopping at `cap` (returns
/// `min(count, cap)`).
pub fn count_models(db: &Database, cap: usize, cost: &mut Cost) -> Governed<usize> {
    let mut count = 0usize;
    for_each_stable_model(db, cost, |_| {
        count += 1;
        count < cap
    })?;
    Ok(count)
}

/// Model existence: does `db` have a disjunctive stable model?
/// (Σᵖ₂-complete in general.)
pub fn has_model(db: &Database, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("dsm.has_model");
    let mut found = false;
    for_each_stable_model(db, cost, |_| {
        found = true;
        false
    })?;
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{parse_formula, parse_program};

    fn interp(db: &Database, names: &[&str]) -> Interpretation {
        Interpretation::from_atoms(
            db.num_atoms(),
            names.iter().map(|n| db.symbols().lookup(n).unwrap()),
        )
    }

    #[test]
    fn even_loop_has_two_stable_models() {
        let db = parse_program("a :- not b. b :- not a.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            models(&db, &mut cost).unwrap(),
            vec![interp(&db, &["a"]), interp(&db, &["b"])]
        );
    }

    #[test]
    fn odd_loop_has_no_stable_model() {
        let db = parse_program("a :- not a.").unwrap();
        let mut cost = Cost::new();
        assert!(models(&db, &mut cost).unwrap().is_empty());
        assert!(!has_model(&db, &mut cost).unwrap());
        // Cautious inference is vacuous.
        let f = parse_formula("false", db.symbols()).unwrap();
        assert!(infers_formula(&db, &f, &mut cost).unwrap());
    }

    #[test]
    fn positive_db_stable_equals_minimal() {
        let db = parse_program("a | b. c :- a. :- b, c.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            models(&db, &mut cost).unwrap(),
            minimal::minimal_models(&db, &mut cost).unwrap()
        );
    }

    #[test]
    fn stable_models_are_minimal_models() {
        let db = parse_program("a | b :- not c. c :- not d. d :- not c.").unwrap();
        let mut cost = Cost::new();
        let sm = models(&db, &mut cost).unwrap();
        let mm = minimal::minimal_models(&db, &mut cost).unwrap();
        for m in &sm {
            assert!(mm.contains(m), "{m:?} not minimal");
        }
    }

    #[test]
    fn non_minimal_model_not_stable() {
        // a ∨ b with b ← a: models are {b} and {a,b}; only {b} is minimal,
        // and (the database being positive) only {b} is stable.
        let db = parse_program("a | b. b :- a.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(models(&db, &mut cost).unwrap(), vec![interp(&db, &["b"])]);
        assert!(!is_stable_model(&db, &interp(&db, &["a", "b"]), &mut cost).unwrap());
        assert!(is_stable_model(&db, &interp(&db, &["b"]), &mut cost).unwrap());
    }

    #[test]
    fn gelfond_lifschitz_classic() {
        // p :- not q. — single stable model {p}.
        let db = parse_program("p :- not q.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(models(&db, &mut cost).unwrap(), vec![interp(&db, &["p"])]);
        let p = db.symbols().lookup("p").unwrap();
        let q = db.symbols().lookup("q").unwrap();
        assert!(infers_literal(&db, p.pos(), &mut cost).unwrap());
        assert!(infers_literal(&db, q.neg(), &mut cost).unwrap());
    }

    #[test]
    fn constraint_prunes_stable_models() {
        let db = parse_program("a :- not b. b :- not a. :- a.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(models(&db, &mut cost).unwrap(), vec![interp(&db, &["b"])]);
    }

    #[test]
    fn disjunctive_stable_semantics() {
        // a ∨ b :- not c. — stable models {a}, {b}.
        let db = parse_program("a | b :- not c.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            models(&db, &mut cost).unwrap(),
            vec![interp(&db, &["a"]), interp(&db, &["b"])]
        );
        // c is cautiously false.
        let c = db.symbols().lookup("c").unwrap();
        assert!(infers_literal(&db, c.neg(), &mut cost).unwrap());
    }

    #[test]
    fn formula_inference() {
        let db = parse_program("a :- not b. b :- not a. c :- a. c :- b.").unwrap();
        let mut cost = Cost::new();
        let f = parse_formula("c", db.symbols()).unwrap();
        assert!(infers_formula(&db, &f, &mut cost).unwrap());
        let g = parse_formula("a", db.symbols()).unwrap();
        assert!(!infers_formula(&db, &g, &mut cost).unwrap());
        let h = parse_formula("a | b", db.symbols()).unwrap();
        assert!(infers_formula(&db, &h, &mut cost).unwrap());
    }

    #[test]
    fn cautious_literals_match_per_literal_inference() {
        for src in [
            "a :- not b. b :- not a. c :- a. c :- b.",
            "a | b :- not c. d :- a.",
            "p :- not q. r.",
        ] {
            let db = parse_program(src).unwrap();
            let mut cost = Cost::new();
            let (t, f) = cautious_literals(&db, &mut cost)
                .unwrap()
                .expect("has stable models");
            for i in 0..db.num_atoms() {
                let a = ddb_logic::Atom::new(i as u32);
                assert_eq!(
                    t.contains(a),
                    infers_literal(&db, a.pos(), &mut cost).unwrap(),
                    "{src}: positive {i}"
                );
                assert_eq!(
                    f.contains(a),
                    infers_literal(&db, a.neg(), &mut cost).unwrap(),
                    "{src}: negative {i}"
                );
            }
        }
    }

    #[test]
    fn cautious_literals_none_without_stable_models() {
        let db = parse_program("a :- not a.").unwrap();
        let mut cost = Cost::new();
        assert!(cautious_literals(&db, &mut cost).unwrap().is_none());
    }

    #[test]
    fn count_models_with_cap() {
        use ddb_workloads::structured::even_loops;
        let db = even_loops(3);
        let mut cost = Cost::new();
        assert_eq!(count_models(&db, 100, &mut cost).unwrap(), 8);
        assert_eq!(count_models(&db, 5, &mut cost).unwrap(), 5);
        assert_eq!(count_models(&db, 1, &mut cost).unwrap(), 1);
    }

    #[test]
    fn supportedness_matters() {
        // a :- a. has the single stable model ∅ (a is unfounded).
        let db = parse_program("a :- a.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            models(&db, &mut cost).unwrap(),
            vec![Interpretation::empty(1)]
        );
    }

    #[test]
    fn negative_loop_with_disjunction() {
        // a ∨ b. c :- not a. — stable models: {a} (c blocked? reduct of
        // {a}: drop c rule → a∨b, minimal containing... {a} ∈ MM ✓) and
        // {b, c} (reduct: a∨b, c → {b,c} minimal? {b,c} ⊨, subsets {b}
        // ⊭ c-fact... reduct for M={b,c}: c :- not a stays (a∉M) as fact
        // c; minimal models of {a∨b, c}: {a,c},{b,c}; {b,c} ∈ ✓ stable).
        let db = parse_program("a | b. c :- not a.").unwrap();
        let mut cost = Cost::new();
        assert_eq!(
            models(&db, &mut cost).unwrap(),
            vec![interp(&db, &["a"]), interp(&db, &["b", "c"])]
        );
    }
}
