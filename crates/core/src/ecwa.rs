//! The Extended Closed World Assumption (ECWA), Gelfond, Przymusinska &
//! Przymusinski \[12\] — equivalent, in the finite propositional case, to
//! McCarthy's circumscription as defined by Lifschitz \[14\] (CIRC).
//!
//! `ECWA_{P;Z}(DB) = MM(DB;P;Z) = CIRC_{P;Z}(DB)`: the ⟨P;Z⟩-minimal
//! models. EGCWA is the special case `Q = Z = ∅`.
//!
//! Inference (literal and formula) is truth in all ⟨P;Z⟩-minimal models —
//! one Πᵖ₂ CEGAR query; the paper shows Πᵖ₂-completeness. Model existence
//! is satisfiability (every satisfiable database has a ⟨P;Z⟩-minimal
//! model: descend in the preorder, which is well-founded on finite
//! vocabularies).
//!
//! The circumscription reading is validated in tests: a model `M` satisfies
//! the circumscription axiom
//! `DB[P;Z] ∧ ¬∃P′Z′ (DB[P′;Z′] ∧ P′ < P)` exactly when `M` is
//! ⟨P;Z⟩-minimal ([`satisfies_circumscription`] evaluates the second-order
//! body by explicit search over ⟨P′,Z′⟩, test-sized).

use ddb_logic::{Database, Formula, Interpretation, Literal};
use ddb_models::{brute, circumscribe, classical, minimal, Cost, Partition};
use ddb_obs::Governed;

/// Literal inference `ECWA_{P;Z}(DB) ⊨ ℓ`.
pub fn infers_literal(
    db: &Database,
    part: &Partition,
    lit: Literal,
    cost: &mut Cost,
) -> Governed<bool> {
    let _span = ddb_obs::span("ecwa.infers_literal");
    infers_formula(
        db,
        part,
        &Formula::literal(lit.atom(), lit.is_positive()),
        cost,
    )
}

/// Formula inference `ECWA_{P;Z}(DB) ⊨ F`: one Πᵖ₂ CEGAR query.
pub fn infers_formula(
    db: &Database,
    part: &Partition,
    f: &Formula,
    cost: &mut Cost,
) -> Governed<bool> {
    let _span = ddb_obs::span("ecwa.infers_formula");
    circumscribe::holds_in_all_pz_minimal_models(db, part, f, cost)
}

/// Model existence: `MM(DB;P;Z) ≠ ∅ ⟺ DB` satisfiable. `O(1)` for
/// databases without integrity clauses or negation.
pub fn has_model(db: &Database, cost: &mut Cost) -> Governed<bool> {
    let _span = ddb_obs::span("ecwa.has_model");
    if !db.has_integrity_clauses() && !db.has_negation() {
        return Ok(true);
    }
    classical::is_satisfiable(db, cost)
}

/// The characteristic model set `ECWA_{P;Z}(DB) = MM(DB;P;Z)`.
pub fn models(db: &Database, part: &Partition, cost: &mut Cost) -> Governed<Vec<Interpretation>> {
    let _span = ddb_obs::span("ecwa.models");
    minimal::pz_minimal_models(db, part, cost)
}

/// Whether `m` satisfies the circumscription `Circ(DB; P; Z)` of Lifschitz
/// \[14\]: `m ⊨ DB` and there is **no** reassignment of `P ∪ Z` (fixing
/// `Q`) that still satisfies `DB` with a strictly smaller `P`-part. The
/// existential second-order body is evaluated by explicit enumeration —
/// test/example sized (`|P| + |Z| ≤ 20`).
pub fn satisfies_circumscription(db: &Database, part: &Partition, m: &Interpretation) -> bool {
    if !db.satisfied_by(m) {
        return false;
    }
    let free: Vec<ddb_logic::Atom> = part.p().iter().chain(part.z().iter()).collect();
    assert!(
        free.len() <= 20,
        "explicit circumscription check is test-sized"
    );
    for bits in 0u64..1 << free.len() {
        let mut m2 = m.clone();
        for (i, &a) in free.iter().enumerate() {
            m2.set(a, bits >> i & 1 == 1);
        }
        if db.satisfied_by(&m2) && part.lt(&m2, m) {
            return false;
        }
    }
    true
}

/// Cross-check helper: the circumscription models by the explicit axiom —
/// must coincide with [`models`] (used in tests; brute-force sized).
pub fn circ_models_brute(db: &Database, part: &Partition) -> Vec<Interpretation> {
    brute::models(db)
        .into_iter()
        .filter(|m| satisfies_circumscription(db, part, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{parse_formula, parse_program};
    use ddb_logic::Atom;

    fn part_pq(db: &Database, p: &[&str], q: &[&str]) -> Partition {
        Partition::from_p_q(
            db.num_atoms(),
            p.iter().map(|n| db.symbols().lookup(n).unwrap()),
            q.iter().map(|n| db.symbols().lookup(n).unwrap()),
        )
    }

    #[test]
    fn equals_egcwa_when_q_z_empty() {
        let db = parse_program("a | b. c :- a, b.").unwrap();
        let part = Partition::minimize_all(db.num_atoms());
        let mut cost = Cost::new();
        for text in ["!c", "!(a & b)", "a | b", "!a"] {
            let f = parse_formula(text, db.symbols()).unwrap();
            assert_eq!(
                infers_formula(&db, &part, &f, &mut cost).unwrap(),
                crate::egcwa::infers_formula(&db, &f, &mut cost).unwrap(),
                "{text}"
            );
        }
    }

    #[test]
    fn circumscription_axiom_matches_pz_minimality() {
        let db = parse_program("a | b | c. b :- a. :- a, c.").unwrap();
        let part = part_pq(&db, &["a", "b"], &["c"]);
        let mut cost = Cost::new();
        assert_eq!(
            circ_models_brute(&db, &part),
            models(&db, &part, &mut cost).unwrap()
        );
    }

    #[test]
    fn circumscription_axiom_matches_on_random_partitions() {
        let db = parse_program("p | q. r :- p. s | t :- q, r.").unwrap();
        let n = db.num_atoms();
        let mut cost = Cost::new();
        // All 3^n partitions would be overkill; try a few systematic ones.
        for (p_names, q_names) in [
            (vec!["p", "q", "r", "s", "t"], vec![]),
            (vec!["p", "q"], vec!["r"]),
            (vec!["r", "s"], vec!["p", "q"]),
            (vec![], vec!["p"]),
        ] {
            let part = part_pq(&db, &p_names, &q_names);
            assert_eq!(
                circ_models_brute(&db, &part),
                models(&db, &part, &mut cost).unwrap(),
                "P={p_names:?} Q={q_names:?}"
            );
            let _ = n;
        }
    }

    #[test]
    fn ecwa_closes_more_than_ccwa() {
        // ECWA(DB) ⊆ CCWA(DB) (minimal models are CCWA-models), so ECWA
        // inference is stronger or equal.
        let db = parse_program("a | b. c | d :- b.").unwrap();
        let part = part_pq(&db, &["a", "c"], &["b"]);
        let mut cost = Cost::new();
        for text in ["!a", "!c", "!(a & c)", "b -> (c | d)"] {
            let f = parse_formula(text, db.symbols()).unwrap();
            if crate::ccwa::infers_formula(&db, &part, &f, &mut cost).unwrap() {
                assert!(infers_formula(&db, &part, &f, &mut cost).unwrap(), "{text}");
            }
        }
    }

    #[test]
    fn fixed_part_blocks_minimization() {
        // a ∨ b, Q = {b}: the model {b} cannot shrink a's way; both {a}
        // (Q-part ∅) and {b} (Q-part {b}) are ⟨P;Z⟩-minimal, so ¬a is not
        // inferred.
        let db = parse_program("a | b.").unwrap();
        let part = part_pq(&db, &["a"], &["b"]);
        let mut cost = Cost::new();
        let na = parse_formula("!a", db.symbols()).unwrap();
        assert!(!infers_formula(&db, &part, &na, &mut cost).unwrap());
        // With b varying instead, ¬a is inferred.
        let part2 = part_pq(&db, &["a"], &[]);
        assert!(infers_formula(&db, &part2, &na, &mut cost).unwrap());
    }

    #[test]
    fn existence() {
        let mut cost = Cost::new();
        let pos = parse_program("a | b.").unwrap();
        assert!(has_model(&pos, &mut cost).unwrap());
        assert_eq!(cost.sat_calls, 0);
        let unsat = parse_program("a. :- a.").unwrap();
        assert!(!has_model(&unsat, &mut cost).unwrap());
    }

    #[test]
    fn literal_and_formula_paths_agree() {
        let db = parse_program("a | b. c :- a. :- b, c.").unwrap();
        let part = part_pq(&db, &["a", "b"], &["c"]);
        let mut cost = Cost::new();
        for i in 0..db.num_atoms() {
            for sign in [true, false] {
                let l = Literal::with_sign(Atom::new(i as u32), sign);
                let f = Formula::literal(l.atom(), sign);
                assert_eq!(
                    infers_literal(&db, &part, l, &mut cost).unwrap(),
                    infers_formula(&db, &part, &f, &mut cost).unwrap()
                );
            }
        }
    }
}
