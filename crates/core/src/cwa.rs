//! Reiter's Closed World Assumption (CWA) \[22\] — the baseline the
//! disjunctive semantics generalize.
//!
//! `CWA(DB) = DB ∪ {¬x : DB ⊭ x}`. On definite (Horn) databases this
//! pins down the least model; on disjunctive databases it is famously
//! **inconsistent** (from `a ∨ b` neither `a` nor `b` is entailed, so both
//! `¬a` and `¬b` get added). The paper's §3.1 recalls exactly this as the
//! motivation for GCWA, and notes that deciding whether `CWA(DB)` is
//! consistent is coNP-hard and in `P^{NP}[O(log n)]`, but not in coDᵖ
//! unless the polynomial hierarchy collapses (via \[7\], \[18\]).
//!
//! Procedures: the free-for-negation set takes `|V|` coNP entailment
//! queries; consistency is one more SAT call.

use ddb_logic::{Atom, Database, Formula, Interpretation, Literal};
use ddb_models::{classical, Cost};
use ddb_obs::Governed;

/// The atoms CWA closes off: `{x : DB ⊭ x}` (`|V|` coNP queries).
pub fn closed_atoms(db: &Database, cost: &mut Cost) -> Governed<Interpretation> {
    let n = db.num_atoms();
    let mut out = Interpretation::empty(n);
    for i in 0..n {
        let a = Atom::new(i as u32);
        if !classical::entails(db, &[], &Formula::atom(a), cost)? {
            out.insert(a);
        }
    }
    Ok(out)
}

/// Whether `CWA(DB)` is consistent: `DB ∪ {¬x : DB ⊭ x}` satisfiable.
pub fn is_consistent(db: &Database, cost: &mut Cost) -> Governed<bool> {
    let closed = closed_atoms(db, cost)?;
    let units: Vec<Literal> = closed.iter().map(|a| a.neg()).collect();
    Ok(classical::some_model_with(db, &units, cost)?.is_some())
}

/// The unique CWA model, if consistent: the atoms `DB ⊨ x`.
///
/// When `CWA(DB)` is consistent its model is unique — every atom is
/// either entailed (true) or closed (false).
pub fn model(db: &Database, cost: &mut Cost) -> Governed<Option<Interpretation>> {
    let closed = closed_atoms(db, cost)?;
    let units: Vec<Literal> = closed.iter().map(|a| a.neg()).collect();
    Ok(classical::some_model_with(db, &units, cost)?.map(|_| {
        let mut m = Interpretation::full(db.num_atoms());
        m.difference_with(&closed);
        m
    }))
}

/// Literal inference `CWA(DB) ⊨ ℓ` (everything, if inconsistent).
pub fn infers_literal(db: &Database, lit: Literal, cost: &mut Cost) -> Governed<bool> {
    infers_formula(db, &Formula::literal(lit.atom(), lit.is_positive()), cost)
}

/// Formula inference `CWA(DB) ⊨ F`: entailment from `DB` plus the closed
/// negations.
pub fn infers_formula(db: &Database, f: &Formula, cost: &mut Cost) -> Governed<bool> {
    let closed = closed_atoms(db, cost)?;
    let units: Vec<Literal> = closed.iter().map(|a| a.neg()).collect();
    classical::entails(db, &units, f, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{parse_formula, parse_program};

    #[test]
    fn horn_db_cwa_is_least_model() {
        let db = parse_program("a. b :- a. c :- d.").unwrap();
        let mut cost = Cost::new();
        assert!(is_consistent(&db, &mut cost).unwrap());
        let m = model(&db, &mut cost).unwrap().unwrap();
        let names: Vec<&str> = m.iter().map(|a| db.symbols().name(a)).collect();
        assert_eq!(names, vec!["a", "b"]);
        // The CWA model is the least model: also the unique minimal model.
        let mm = ddb_models::minimal::minimal_models(&db, &mut cost).unwrap();
        assert_eq!(mm, vec![m]);
    }

    #[test]
    fn disjunction_makes_cwa_inconsistent() {
        // The motivating example: a ∨ b with neither entailed.
        let db = parse_program("a | b.").unwrap();
        let mut cost = Cost::new();
        assert!(!is_consistent(&db, &mut cost).unwrap());
        assert!(model(&db, &mut cost).unwrap().is_none());
        // Inconsistent CWA infers everything — including a and ¬a.
        let a = db.symbols().lookup("a").unwrap();
        assert!(infers_literal(&db, a.pos(), &mut cost).unwrap());
        assert!(infers_literal(&db, a.neg(), &mut cost).unwrap());
    }

    #[test]
    fn entailed_disjunct_keeps_cwa_consistent() {
        // a ∨ b plus a: a entailed, b closed → consistent.
        let db = parse_program("a | b. a.").unwrap();
        let mut cost = Cost::new();
        assert!(is_consistent(&db, &mut cost).unwrap());
        let m = model(&db, &mut cost).unwrap().unwrap();
        assert_eq!(m.count(), 1);
        assert!(m.contains(db.symbols().lookup("a").unwrap()));
    }

    #[test]
    fn gcwa_conservative_over_cwa_on_horn() {
        // On Horn databases GCWA = CWA (single minimal model).
        let db = parse_program("p. q :- p. r :- s.").unwrap();
        let mut cost = Cost::new();
        for name in ["p", "q", "r", "s"] {
            let a = db.symbols().lookup(name).unwrap();
            for sign in [true, false] {
                let lit = Literal::with_sign(a, sign);
                assert_eq!(
                    infers_literal(&db, lit, &mut cost).unwrap(),
                    crate::gcwa::infers_literal(&db, lit, &mut cost).unwrap(),
                    "{name} {sign}"
                );
            }
        }
    }

    #[test]
    fn formula_inference() {
        let db = parse_program("a. c :- b.").unwrap();
        let mut cost = Cost::new();
        let f = parse_formula("a & !b & !c", db.symbols()).unwrap();
        assert!(infers_formula(&db, &f, &mut cost).unwrap());
    }

    #[test]
    fn unsat_db_is_inconsistent_cwa() {
        let db = parse_program("a. :- a.").unwrap();
        let mut cost = Cost::new();
        assert!(!is_consistent(&db, &mut cost).unwrap());
    }
}
