//! Uniform dispatch over the ten semantics.
//!
//! The benchmark harness and the `tables` binary iterate over table rows —
//! (semantics, problem) pairs — so they need a single entry point that
//! hides the per-semantics configuration (partitions for CCWA/ECWA,
//! stratifications for ICWA). [`SemanticsConfig`] carries that
//! configuration; [`SemanticsId`] names the row.
//!
//! Semantics that are undefined for a database class (DDR/PWS on negation,
//! ICWA on unstratifiable databases) return [`Unsupported`] instead of
//! panicking, so sweeps can skip inapplicable cells gracefully.
//!
//! # Resource governance
//!
//! Every decision procedure below runs under the ambient
//! [`ddb_obs::Budget`] (when one is installed). Exhaustion never panics
//! and never produces a wrong answer: decision problems return a
//! three-valued [`Verdict`] whose `Unknown` variant carries the typed
//! [`Interrupted`] record, and enumeration returns an [`Enumeration`]
//! whose `interrupted` field marks an incomplete walk. Budgeted runs that
//! complete are bit-for-bit identical to unbudgeted runs.

use crate::icwa::Layers;
use ddb_analysis::{Diagnostic, Fragments, PlanData, PlanNode, PlanQuery, RouteKind};
use ddb_logic::{Database, Formula, Interpretation, Literal};
use ddb_models::{Cost, Partition};
use ddb_obs::{Governed, Interrupted, Resource};
use std::fmt;

/// Identifier of one of the paper's ten semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum SemanticsId {
    /// Generalized CWA (Minker).
    Gcwa,
    /// Extended GCWA (Yahya & Henschen) — minimal models.
    Egcwa,
    /// Careful CWA (Gelfond & Przymusinska) — needs a partition.
    Ccwa,
    /// Extended CWA ≡ circumscription — needs a partition.
    Ecwa,
    /// Disjunctive Database Rule ≡ WGCWA.
    Ddr,
    /// Possible Worlds ≡ Possible Models.
    Pws,
    /// Perfect models.
    Perf,
    /// Iterated CWA — needs a stratification.
    Icwa,
    /// Disjunctive stable models.
    Dsm,
    /// Partial disjunctive stable models.
    Pdsm,
}

impl SemanticsId {
    /// All ten semantics, in the paper's table order.
    pub const ALL: [SemanticsId; 10] = [
        SemanticsId::Gcwa,
        SemanticsId::Ddr,
        SemanticsId::Pws,
        SemanticsId::Egcwa,
        SemanticsId::Ccwa,
        SemanticsId::Ecwa,
        SemanticsId::Icwa,
        SemanticsId::Perf,
        SemanticsId::Dsm,
        SemanticsId::Pdsm,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            SemanticsId::Gcwa => "GCWA",
            SemanticsId::Egcwa => "EGCWA",
            SemanticsId::Ccwa => "CCWA",
            SemanticsId::Ecwa => "ECWA (=CIRC)",
            SemanticsId::Ddr => "DDR (=WGCWA)",
            SemanticsId::Pws => "PWS (=PMS)",
            SemanticsId::Perf => "PERF",
            SemanticsId::Icwa => "ICWA",
            SemanticsId::Dsm => "DSM",
            SemanticsId::Pdsm => "PDSM",
        }
    }
}

impl fmt::Display for SemanticsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A semantics was asked about a database class it is not defined for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Unsupported {
    /// The semantics.
    pub semantics: SemanticsId,
    /// Why it does not apply.
    pub reason: String,
    /// The static-analysis finding explaining the rejection, when the
    /// analyzer has one (e.g. `DDB007` for unstratifiable negation).
    pub lint: Option<Diagnostic>,
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} is not defined here: {}", self.semantics, self.reason)
    }
}

impl std::error::Error for Unsupported {}

/// Records an interrupt surfacing as an `Unknown` verdict (or incomplete
/// enumeration) at the dispatch boundary. The underlying trip was already
/// counted in `govern.interrupts.<resource>` by the budget layer; this
/// counts how many *answers* degraded.
pub(crate) fn note_interrupt(i: &Interrupted) {
    ddb_obs::counter_bump("govern.unknown", 1);
    ddb_obs::counter_bump(
        match i.resource {
            Resource::Deadline => "govern.unknown.deadline",
            Resource::Conflicts => "govern.unknown.conflicts",
            Resource::OracleCalls => "govern.unknown.oracle_calls",
            Resource::Models => "govern.unknown.models",
            Resource::Cancelled => "govern.unknown.cancelled",
            Resource::FaultInjection => "govern.unknown.fault_injection",
            Resource::Invariant => "govern.unknown.invariant",
        },
        1,
    );
}

/// Three-valued outcome of a governed decision problem.
///
/// A budgeted run that completes returns [`Verdict::True`] or
/// [`Verdict::False`] exactly as the unbudgeted run would; a tripped
/// [`ddb_obs::Budget`] surfaces as [`Verdict::Unknown`] carrying the typed
/// [`Interrupted`] record — never as a panic and never as a wrong definite
/// answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The property definitely holds.
    True,
    /// The property definitely does not hold.
    False,
    /// The procedure was interrupted by resource exhaustion before it
    /// could decide.
    Unknown(Interrupted),
}

impl Verdict {
    /// `Some(answer)` for definite verdicts, `None` for `Unknown`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Verdict::True => Some(true),
            Verdict::False => Some(false),
            Verdict::Unknown(_) => None,
        }
    }

    /// Whether the verdict is definite (`True` or `False`).
    pub fn is_definite(&self) -> bool {
        !matches!(self, Verdict::Unknown(_))
    }

    /// The interrupt record, when `Unknown`.
    pub fn interrupted(&self) -> Option<&Interrupted> {
        match self {
            Verdict::Unknown(i) => Some(i),
            _ => None,
        }
    }

    /// The definite answer.
    ///
    /// # Panics
    /// Panics (with the interrupt reason) on `Unknown` — a convenience for
    /// tests and examples that run without a budget.
    pub fn definite(self) -> bool {
        match self {
            Verdict::True => true,
            Verdict::False => false,
            Verdict::Unknown(i) => panic!("verdict is not definite: {i}"),
        }
    }
}

impl From<bool> for Verdict {
    fn from(b: bool) -> Self {
        if b {
            Verdict::True
        } else {
            Verdict::False
        }
    }
}

impl From<Governed<bool>> for Verdict {
    fn from(r: Governed<bool>) -> Self {
        match r {
            Ok(b) => b.into(),
            Err(i) => {
                note_interrupt(&i);
                Verdict::Unknown(i)
            }
        }
    }
}

impl PartialEq<bool> for Verdict {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::True => f.write_str("true"),
            Verdict::False => f.write_str("false"),
            Verdict::Unknown(i) => write!(f, "unknown ({i})"),
        }
    }
}

/// Outcome of governed model enumeration: the models collected, plus the
/// interrupt record when the walk was cut short. Dereferences to the model
/// slice, so complete enumerations read like a plain `Vec`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Enumeration {
    /// The models enumerated (sorted). The set is the full characteristic
    /// model set iff `interrupted` is `None`.
    pub models: Vec<Interpretation>,
    /// Set when the budget tripped before the enumeration finished.
    pub interrupted: Option<Interrupted>,
}

impl Enumeration {
    /// An uninterrupted enumeration.
    pub fn complete(models: Vec<Interpretation>) -> Self {
        Enumeration {
            models,
            interrupted: None,
        }
    }

    /// Whether the enumeration ran to completion.
    pub fn is_complete(&self) -> bool {
        self.interrupted.is_none()
    }

    /// The complete model set.
    ///
    /// # Panics
    /// Panics (with the interrupt reason) when the enumeration was
    /// interrupted — a convenience for tests that run without a budget.
    pub fn expect_complete(self) -> Vec<Interpretation> {
        if let Some(i) = &self.interrupted {
            panic!("enumeration incomplete: {i}");
        }
        self.models
    }

    /// The models collected so far, complete or not.
    pub fn into_models(self) -> Vec<Interpretation> {
        self.models
    }
}

impl From<Governed<Vec<Interpretation>>> for Enumeration {
    fn from(r: Governed<Vec<Interpretation>>) -> Self {
        match r {
            Ok(models) => Enumeration::complete(models),
            Err(i) => {
                note_interrupt(&i);
                Enumeration {
                    models: Vec::new(),
                    interrupted: Some(i),
                }
            }
        }
    }
}

impl std::ops::Deref for Enumeration {
    type Target = [Interpretation];
    fn deref(&self) -> &[Interpretation] {
        &self.models
    }
}

impl IntoIterator for Enumeration {
    type Item = Interpretation;
    type IntoIter = std::vec::IntoIter<Interpretation>;
    fn into_iter(self) -> Self::IntoIter {
        self.models.into_iter()
    }
}

impl<'a> IntoIterator for &'a Enumeration {
    type Item = &'a Interpretation;
    type IntoIter = std::slice::Iter<'a, Interpretation>;
    fn into_iter(self) -> Self::IntoIter {
        self.models.iter()
    }
}

impl PartialEq<Vec<Interpretation>> for Enumeration {
    fn eq(&self, other: &Vec<Interpretation>) -> bool {
        self.interrupted.is_none() && self.models == *other
    }
}

/// How dispatch picks the decision procedure for a query.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RoutingMode {
    /// Consult the static analyzer and take a polynomial fast path when
    /// the database's fragment admits one (the default).
    #[default]
    Auto,
    /// Always run the generic oracle-backed procedure (used by tests and
    /// ablation benchmarks to compare against the fast paths).
    Generic,
}

/// A semantics together with the extra structure some semantics need.
#[derive(Clone, Debug)]
pub struct SemanticsConfig {
    /// Which semantics.
    pub id: SemanticsId,
    /// Partition ⟨P;Q;Z⟩ for CCWA/ECWA (defaults to minimize-all).
    pub partition: Option<Partition>,
    /// Varying atoms `Z` for ICWA (defaults to none).
    pub icwa_varying: Option<Interpretation>,
    /// Whether analysis-driven fast paths may be taken.
    pub routing: RoutingMode,
    /// Worker-pool width for the component-parallel routes (see
    /// [`crate::parallel`]). `1` (the default) evaluates inline on the
    /// calling thread; any value yields answers byte-identical to `1`,
    /// because the decomposition is taken regardless of width and results
    /// are folded in component order.
    pub threads: usize,
    /// Suppresses the slice/split/island routes on recursive inner calls
    /// (see [`crate::slicing`]); never set on user-built configurations.
    pub(crate) no_slice: bool,
}

impl SemanticsConfig {
    /// Default configuration for a semantics.
    pub fn new(id: SemanticsId) -> Self {
        SemanticsConfig {
            id,
            partition: None,
            icwa_varying: None,
            routing: RoutingMode::default(),
            threads: 1,
            no_slice: false,
        }
    }

    /// Sets the CCWA/ECWA partition.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Sets the routing mode (see [`RoutingMode`]).
    pub fn with_routing(mut self, routing: RoutingMode) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the worker-pool width (`0` is clamped to `1`). Answers do not
    /// depend on the width — only wall-clock time does.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    fn partition_for(&self, db: &Database) -> Partition {
        self.partition
            .clone()
            .unwrap_or_else(|| Partition::minimize_all(db.num_atoms()))
    }

    /// Whether this semantics is defined for `db`'s syntactic class;
    /// returns the reason when it is not.
    pub fn check_applicable(&self, db: &Database) -> Result<(), Unsupported> {
        self.check_fragments(db, &ddb_analysis::classify(db))
    }

    /// Applicability from the shared fragment flags (no re-derivation of
    /// `has_negation`/stratifiability per semantics). On rejection the
    /// [`Unsupported`] carries the analyzer's lint where one exists.
    fn check_fragments(&self, db: &Database, frags: &Fragments) -> Result<(), Unsupported> {
        match self.id {
            SemanticsId::Ddr | SemanticsId::Pws if !frags.deductive => Err(Unsupported {
                semantics: self.id,
                reason: "defined only for databases without negation".into(),
                lint: None,
            }),
            SemanticsId::Icwa if !frags.stratified => Err(Unsupported {
                semantics: self.id,
                reason: "database is not stratifiable".into(),
                lint: ddb_analysis::analyze(db)
                    .diagnostics
                    .into_iter()
                    .find(|d| d.code == "DDB007"),
            }),
            _ => Ok(()),
        }
    }

    /// Records a taken leaf route in the `route.*` counters (the
    /// slice/split/island routes bump their own `route.slice*` /
    /// `route.split*` / `route.islands*` families at their executors).
    fn note_leaf(route: RouteKind) {
        ddb_obs::counter_bump(
            match route {
                RouteKind::Horn => "route.horn",
                RouteKind::Hcf => "route.hcf",
                _ => "route.generic",
            },
            1,
        );
    }

    /// The leaf the reduction waterfall bottoms out on when no reduction
    /// applies (or an executor abandons its route): the HCF shift for DSM
    /// on head-cycle-free databases, the generic procedure otherwise.
    /// Mirrors the tail of the planner kernel's waterfall.
    fn tail_route(&self, frags: &Fragments) -> RouteKind {
        if self.routing != RoutingMode::Generic
            && self.id == SemanticsId::Dsm
            && frags.head_cycle_free
        {
            RouteKind::Hcf
        } else {
            RouteKind::Generic
        }
    }

    /// The Horn collapse (all ten semantics = the least model) only holds
    /// for the default configuration: CCWA/ECWA with the minimize-all
    /// partition and ICWA with no varying atoms. The slice/split routes
    /// require the same default structure: with fixed or varying atoms an
    /// underivable atom is no longer forced false.
    pub(crate) fn has_default_structure(&self) -> bool {
        match self.id {
            SemanticsId::Ccwa | SemanticsId::Ecwa => self.partition.is_none(),
            SemanticsId::Icwa => self
                .icwa_varying
                .as_ref()
                .is_none_or(Interpretation::is_empty_set),
            _ => true,
        }
    }

    /// Shared prologue of every query: classify once, reject inapplicable
    /// combinations. The fragments ride along so the planner and the
    /// executors can consult them without re-classifying.
    fn prepare(&self, db: &Database) -> Result<Fragments, Unsupported> {
        let frags = ddb_analysis::classify(db);
        self.check_fragments(db, &frags)?;
        Ok(frags)
    }

    /// The static plan tree for (`db`, `query`) under this configuration —
    /// the backend of `ddb explain`. The root route equals the route the
    /// dispatcher executes on the same query by construction: both sides
    /// feed the same [`ddb_analysis::SemanticsTraits`] (via
    /// [`crate::planner::traits_for`]) into the same decision kernel.
    pub fn plan(&self, db: &Database, query: &PlanQuery) -> Result<PlanNode, Unsupported> {
        let frags = ddb_analysis::classify(db);
        self.check_fragments(db, &frags)?;
        Ok(crate::planner::plan(self, db, &frags, query))
    }

    fn icwa_layers(&self, db: &Database) -> Layers {
        let strata = db.stratification().expect("checked stratifiable");
        let z = self
            .icwa_varying
            .clone()
            .unwrap_or_else(|| Interpretation::empty(db.num_atoms()));
        Layers::new(db, &strata, &z)
    }

    /// The paper's *inference of a literal* problem.
    ///
    /// Runs under a `dispatch.query` trace span with its wall time in the
    /// `dispatch.query.ns` histogram; slice/split routes re-enter the
    /// dispatcher on sub-databases, which shows up as nested
    /// `dispatch.query` spans in timelines.
    pub fn infers_literal(
        &self,
        db: &Database,
        lit: Literal,
        cost: &mut Cost,
    ) -> Result<Verdict, Unsupported> {
        let _q = ddb_obs::hist_span("dispatch.query", "dispatch.query.ns");
        let frags = self.prepare(db)?;
        let d = crate::planner::decide(self, db, &frags, &PlanQuery::Literal(lit.atom()));
        if d.slice_blocked {
            ddb_obs::counter_bump("route.slice.blocked", 1);
        }
        if d.magic_blocked.is_some() {
            ddb_obs::counter_bump("route.magic.blocked", 1);
        }
        match d.data {
            // The reductions go first: they shrink the database, and the
            // recursive call still rides the HCF (or Horn) fast path on
            // the smaller one. `Ok(None)` means the executor abandoned
            // the route (an inner call hit `Unsupported`); fall through
            // to the leaf tail.
            PlanData::Magic {
                restriction,
                admission,
            } => {
                let f = Formula::literal(lit.atom(), lit.is_positive());
                match crate::slicing::run_magic(
                    self,
                    db,
                    &restriction,
                    admission,
                    &f,
                    Some(lit),
                    cost,
                ) {
                    Ok(Some(ans)) => return Ok(ans.into()),
                    Ok(None) => {}
                    Err(i) => return Ok(Verdict::from(Governed::<bool>::Err(i))),
                }
            }
            PlanData::Slice { slice, admission } => {
                let f = Formula::literal(lit.atom(), lit.is_positive());
                match crate::slicing::run_slice(self, db, &slice, admission, &f, Some(lit), cost) {
                    Ok(Some(ans)) => return Ok(ans.into()),
                    Ok(None) => {}
                    Err(i) => return Ok(Verdict::from(Governed::<bool>::Err(i))),
                }
            }
            PlanData::Peel { peel } => {
                let f = Formula::literal(lit.atom(), lit.is_positive());
                match crate::slicing::run_peel(self, &peel, &f, Some(lit), cost) {
                    Ok(Some(ans)) => return Ok(ans.into()),
                    Ok(None) => {}
                    Err(i) => return Ok(Verdict::from(Governed::<bool>::Err(i))),
                }
            }
            PlanData::Leaf if d.route == RouteKind::Horn => {
                Self::note_leaf(RouteKind::Horn);
                return Ok(crate::route::horn_infers_literal(db, lit).into());
            }
            _ => {}
        }
        let tail = self.tail_route(&frags);
        Self::note_leaf(tail);
        if tail == RouteKind::Hcf {
            return Ok(crate::route::hcf_dsm_infers_literal(db, lit, cost).into());
        }
        Ok(Verdict::from(match self.id {
            SemanticsId::Gcwa => crate::gcwa::infers_literal(db, lit, cost),
            SemanticsId::Egcwa => crate::egcwa::infers_literal(db, lit, cost),
            SemanticsId::Ccwa => {
                crate::ccwa::infers_literal(db, &self.partition_for(db), lit, cost)
            }
            SemanticsId::Ecwa => {
                crate::ecwa::infers_literal(db, &self.partition_for(db), lit, cost)
            }
            SemanticsId::Ddr => crate::ddr::infers_literal(db, lit, cost),
            SemanticsId::Pws => crate::pws::infers_literal(db, lit, cost),
            SemanticsId::Perf => crate::perf::infers_literal(db, lit, cost),
            SemanticsId::Icwa => crate::icwa::infers_literal(db, &self.icwa_layers(db), lit, cost),
            SemanticsId::Dsm => crate::dsm::infers_literal(db, lit, cost),
            SemanticsId::Pdsm => crate::pdsm::infers_literal(db, lit, cost),
        }))
    }

    /// The paper's *inference of a formula* problem. Traced like
    /// [`SemanticsConfig::infers_literal`] (`dispatch.query` span,
    /// `dispatch.query.ns` histogram).
    pub fn infers_formula(
        &self,
        db: &Database,
        f: &Formula,
        cost: &mut Cost,
    ) -> Result<Verdict, Unsupported> {
        let _q = ddb_obs::hist_span("dispatch.query", "dispatch.query.ns");
        let frags = self.prepare(db)?;
        let d = crate::planner::decide(self, db, &frags, &PlanQuery::Formula(f.atoms()));
        if d.slice_blocked {
            ddb_obs::counter_bump("route.slice.blocked", 1);
        }
        if d.magic_blocked.is_some() {
            ddb_obs::counter_bump("route.magic.blocked", 1);
        }
        match d.data {
            PlanData::Magic {
                restriction,
                admission,
            } => {
                match crate::slicing::run_magic(self, db, &restriction, admission, f, None, cost) {
                    Ok(Some(ans)) => return Ok(ans.into()),
                    Ok(None) => {}
                    Err(i) => return Ok(Verdict::from(Governed::<bool>::Err(i))),
                }
            }
            PlanData::Slice { slice, admission } => {
                match crate::slicing::run_slice(self, db, &slice, admission, f, None, cost) {
                    Ok(Some(ans)) => return Ok(ans.into()),
                    Ok(None) => {}
                    Err(i) => return Ok(Verdict::from(Governed::<bool>::Err(i))),
                }
            }
            PlanData::Peel { peel } => match crate::slicing::run_peel(self, &peel, f, None, cost) {
                Ok(Some(ans)) => return Ok(ans.into()),
                Ok(None) => {}
                Err(i) => return Ok(Verdict::from(Governed::<bool>::Err(i))),
            },
            PlanData::Leaf if d.route == RouteKind::Horn => {
                Self::note_leaf(RouteKind::Horn);
                return Ok(crate::route::horn_infers_formula(db, f).into());
            }
            _ => {}
        }
        let tail = self.tail_route(&frags);
        Self::note_leaf(tail);
        if tail == RouteKind::Hcf {
            return Ok(crate::route::hcf_dsm_infers_formula(db, f, cost).into());
        }
        Ok(Verdict::from(match self.id {
            SemanticsId::Gcwa => crate::gcwa::infers_formula(db, f, cost),
            SemanticsId::Egcwa => crate::egcwa::infers_formula(db, f, cost),
            SemanticsId::Ccwa => crate::ccwa::infers_formula(db, &self.partition_for(db), f, cost),
            SemanticsId::Ecwa => crate::ecwa::infers_formula(db, &self.partition_for(db), f, cost),
            SemanticsId::Ddr => crate::ddr::infers_formula(db, f, cost),
            SemanticsId::Pws => crate::pws::infers_formula(db, f, cost),
            SemanticsId::Perf => crate::perf::infers_formula(db, f, cost),
            SemanticsId::Icwa => crate::icwa::infers_formula(db, &self.icwa_layers(db), f, cost),
            SemanticsId::Dsm => crate::dsm::infers_formula(db, f, cost),
            SemanticsId::Pdsm => crate::pdsm::infers_formula(db, f, cost),
        }))
    }

    /// The paper's *∃ model* problem: is the semantics non-empty for `db`?
    /// Traced like [`SemanticsConfig::infers_literal`] (`dispatch.query`
    /// span, `dispatch.query.ns` histogram).
    pub fn has_model(&self, db: &Database, cost: &mut Cost) -> Result<Verdict, Unsupported> {
        let _q = ddb_obs::hist_span("dispatch.query", "dispatch.query.ns");
        let frags = self.prepare(db)?;
        let d = crate::planner::decide(self, db, &frags, &PlanQuery::Existence);
        match d.data {
            PlanData::Peel { peel } => match crate::slicing::run_exist_split(self, &peel, cost) {
                Ok(Some(ans)) => return Ok(ans.into()),
                Ok(None) => {}
                Err(i) => return Ok(Verdict::from(Governed::<bool>::Err(i))),
            },
            PlanData::Islands { .. } => match crate::parallel::islands_has_model(self, db, cost) {
                Ok(Some(ans)) => return Ok(ans.into()),
                Ok(None) => {}
                Err(i) => return Ok(Verdict::from(Governed::<bool>::Err(i))),
            },
            PlanData::Leaf if d.route == RouteKind::Horn => {
                Self::note_leaf(RouteKind::Horn);
                return Ok(crate::route::horn_has_model(db).into());
            }
            _ => {}
        }
        let tail = self.tail_route(&frags);
        Self::note_leaf(tail);
        if tail == RouteKind::Hcf {
            return Ok(crate::route::hcf_dsm_has_model(db, cost).into());
        }
        Ok(Verdict::from(match self.id {
            SemanticsId::Gcwa => crate::gcwa::has_model(db, cost),
            SemanticsId::Egcwa => crate::egcwa::has_model(db, cost),
            SemanticsId::Ccwa => crate::ccwa::has_model(db, cost),
            SemanticsId::Ecwa => crate::ecwa::has_model(db, cost),
            SemanticsId::Ddr => crate::ddr::has_model(db, cost),
            SemanticsId::Pws => crate::pws::has_model(db, cost),
            SemanticsId::Perf => crate::perf::has_model(db, cost),
            SemanticsId::Icwa => crate::icwa::has_model(db, &self.icwa_layers(db), cost),
            SemanticsId::Dsm => crate::dsm::has_model(db, cost),
            SemanticsId::Pdsm => crate::pdsm::has_model(db, cost),
        }))
    }

    /// Brave (possibility) inference: `F` true in *some* characteristic
    /// model (value 1 in some partial stable model, for PDSM) — the
    /// Σ-side dual of [`SemanticsConfig::infers_formula`]. Delegates to
    /// [`crate::witness::brave_infers_formula`].
    pub fn brave_infers_formula(
        &self,
        db: &Database,
        f: &Formula,
        cost: &mut Cost,
    ) -> Result<Verdict, Unsupported> {
        crate::witness::brave_infers_formula(self, db, f, cost)
    }

    /// The characteristic (two-valued) model set, where the semantics has
    /// one; PDSM reports its total models. An exhausted budget yields an
    /// [`Enumeration`] with `interrupted` set instead of an error.
    pub fn models(&self, db: &Database, cost: &mut Cost) -> Result<Enumeration, Unsupported> {
        let frags = self.prepare(db)?;
        // Model enumeration needs the whole vocabulary; the planner only
        // ever returns a leaf route for `PlanQuery::Enumeration`.
        let d = crate::planner::decide(self, db, &frags, &PlanQuery::Enumeration);
        Self::note_leaf(d.route);
        match d.route {
            RouteKind::Horn => {
                return Ok(Enumeration::complete(crate::route::horn_models(db)));
            }
            RouteKind::Hcf => {
                return Ok(crate::route::hcf_dsm_models(db, cost).into());
            }
            _ => {}
        }
        let governed: Governed<Vec<Interpretation>> = match self.id {
            SemanticsId::Gcwa => crate::gcwa::models(db, cost),
            SemanticsId::Egcwa => {
                // EGCWA(DB) = MM(DB), and the minimal-model enumerator
                // verifies each model before yielding it — so a tripped
                // budget can still hand back the models found so far.
                let _span = ddb_obs::span("egcwa.models");
                let (models, interrupted) = ddb_models::minimal::minimal_models_partial(db, cost);
                if let Some(i) = &interrupted {
                    note_interrupt(i);
                }
                return Ok(Enumeration {
                    models,
                    interrupted,
                });
            }
            SemanticsId::Ccwa => crate::ccwa::models(db, &self.partition_for(db), cost),
            SemanticsId::Ecwa => crate::ecwa::models(db, &self.partition_for(db), cost),
            SemanticsId::Ddr => crate::ddr::models(db, cost),
            SemanticsId::Pws => crate::pws::models(db, cost),
            SemanticsId::Perf => crate::perf::models(db, cost),
            SemanticsId::Icwa => crate::icwa::models(db, &self.icwa_layers(db), cost),
            SemanticsId::Dsm => crate::dsm::models(db, cost),
            SemanticsId::Pdsm => crate::pdsm::models(db, cost).map(|ps| {
                ps.into_iter()
                    .filter(|p| p.is_total())
                    .map(|p| p.to_total())
                    .collect()
            }),
        };
        Ok(governed.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddb_logic::parse::{parse_formula, parse_program};

    #[test]
    fn all_semantics_answer_on_positive_db() {
        let db = parse_program("a | b. c :- a, b.").unwrap();
        let f = parse_formula("!c", db.symbols()).unwrap();
        let mut cost = Cost::new();
        for id in SemanticsId::ALL {
            let cfg = SemanticsConfig::new(id);
            let got = cfg.infers_formula(&db, &f, &mut cost).expect("applicable");
            // On this DB every minimal-model-based semantics infers ¬c;
            // DDR does not (c occurs in T↑ω); PWS does not either
            // ({a,b,c} is a possible model).
            let expected = !matches!(id, SemanticsId::Ddr | SemanticsId::Pws);
            assert_eq!(got, expected, "{id}");
        }
    }

    #[test]
    fn unsupported_combinations_reported() {
        let with_neg = parse_program("a :- not b.").unwrap();
        let mut cost = Cost::new();
        for id in [SemanticsId::Ddr, SemanticsId::Pws] {
            let cfg = SemanticsConfig::new(id);
            assert!(cfg.has_model(&with_neg, &mut cost).is_err());
        }
        let unstrat = parse_program("a :- not b. b :- not a.").unwrap();
        let cfg = SemanticsConfig::new(SemanticsId::Icwa);
        assert!(cfg.has_model(&unstrat, &mut cost).is_err());
        // DSM is fine with both.
        let cfg = SemanticsConfig::new(SemanticsId::Dsm);
        assert!(cfg.has_model(&unstrat, &mut cost).unwrap().definite());
    }

    #[test]
    fn models_agree_across_equivalent_semantics_on_positive() {
        // On positive DBs: EGCWA = ECWA(minimize-all) = DSM = PERF = PDSM
        // (total) = minimal models.
        let db = parse_program("a | b. b | c. d :- a, c.").unwrap();
        let mut cost = Cost::new();
        let reference = SemanticsConfig::new(SemanticsId::Egcwa)
            .models(&db, &mut cost)
            .unwrap();
        for id in [
            SemanticsId::Ecwa,
            SemanticsId::Dsm,
            SemanticsId::Perf,
            SemanticsId::Pdsm,
            SemanticsId::Icwa,
        ] {
            let got = SemanticsConfig::new(id).models(&db, &mut cost).unwrap();
            assert_eq!(got, reference, "{id}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(SemanticsId::Ddr.to_string(), "DDR (=WGCWA)");
        assert_eq!(SemanticsId::ALL.len(), 10);
    }

    #[test]
    fn exhausted_budget_yields_unknown_never_panics() {
        // A non-Horn database (so the oracle is actually consulted) with a
        // zero-oracle budget: every query must come back Unknown.
        let db = parse_program("a | b. c :- a. c :- b. d :- not c.").unwrap();
        let f = parse_formula("c", db.symbols()).unwrap();
        let _g = ddb_obs::Budget::unlimited()
            .with_max_oracle_calls(0)
            .install();
        let mut cost = Cost::new();
        for id in SemanticsId::ALL {
            let cfg = SemanticsConfig::new(id).with_routing(RoutingMode::Generic);
            let Ok(v) = cfg.infers_formula(&db, &f, &mut cost) else {
                continue; // DDR/PWS: negation → Unsupported, fine
            };
            assert!(
                matches!(v, Verdict::Unknown(_)),
                "{id}: expected Unknown, got {v}"
            );
        }
    }

    #[test]
    fn interrupted_enumeration_is_marked() {
        let db = parse_program("a | b. b | c.").unwrap();
        let _g = ddb_obs::Budget::unlimited()
            .with_max_oracle_calls(0)
            .install();
        let mut cost = Cost::new();
        let cfg = SemanticsConfig::new(SemanticsId::Egcwa).with_routing(RoutingMode::Generic);
        let e = cfg.models(&db, &mut cost).unwrap();
        assert!(!e.is_complete());
        assert!(e.interrupted.is_some());
    }

    #[test]
    fn verdict_conversions() {
        assert_eq!(Verdict::from(true), true);
        assert_eq!(Verdict::from(false).as_bool(), Some(false));
        let unknown = Verdict::Unknown(ddb_obs::Interrupted::invariant("test"));
        assert_ne!(unknown, true);
        assert_ne!(unknown, false);
        assert!(!unknown.is_definite());
        assert!(unknown.interrupted().is_some());
    }
}
